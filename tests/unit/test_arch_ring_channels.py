"""Unit tests for the dual ring, hardware FIFO channels and C-FIFOs."""

import pytest

from repro.arch import CFifo, DualRing, HardwareFifoChannel, RingError
from repro.sim import SimulationError, Simulator, Tracer


# ------------------------------------------------------------------- ring
def test_ring_needs_two_stations():
    with pytest.raises(RingError):
        DualRing(Simulator(), 1)


def test_ring_hop_counts():
    ring = DualRing(Simulator(), 4)
    assert ring.hops(0, 1, DualRing.DATA) == 1
    assert ring.hops(0, 3, DualRing.DATA) == 3
    assert ring.hops(3, 0, DualRing.DATA) == 1  # wraps
    # credit ring runs the other way
    assert ring.hops(1, 0, DualRing.CREDIT) == 1
    assert ring.hops(0, 3, DualRing.CREDIT) == 1


def test_ring_same_station_rejected():
    ring = DualRing(Simulator(), 4)
    with pytest.raises(RingError):
        ring.hops(2, 2, DualRing.DATA)


def test_ring_delivery_latency_equals_hops():
    sim = Simulator()
    ring = DualRing(sim, 6, hop_latency=1)
    _acc, delivered = ring.post(0, 3, "x")
    sim.run(until=delivered)
    assert sim.now == 3


def test_ring_hop_latency_scales():
    sim = Simulator()
    ring = DualRing(sim, 6, hop_latency=4)
    _acc, delivered = ring.post(0, 2, "x")
    sim.run(until=delivered)
    assert sim.now == 8


def test_ring_posted_write_accepts_before_delivery():
    sim = Simulator()
    ring = DualRing(sim, 8)
    accepted, delivered = ring.post(0, 5, "x")
    sim.run(until=accepted)
    t_accept = sim.now
    sim.run(until=delivered)
    assert t_accept < sim.now


def test_ring_link_contention_serialises():
    """Two flits over the same first link cannot both start at cycle 0."""
    sim = Simulator()
    ring = DualRing(sim, 4)
    _a1, d1 = ring.post(0, 1, "a")
    _a2, d2 = ring.post(0, 1, "b")
    sim.run()
    assert d1.processed and d2.processed
    # second flit is delayed one cycle behind the first on the shared link
    assert ring.flits_sent[DualRing.DATA] == 2


def test_ring_in_order_delivery_same_pair():
    sim = Simulator()
    ring = DualRing(sim, 4)
    order = []
    for tag in ("a", "b", "c"):
        ring.post(0, 2, tag, on_delivery=order.append)
    sim.run()
    assert order == ["a", "b", "c"]


def test_ring_tracer_records_deliveries():
    sim = Simulator()
    tracer = Tracer()
    ring = DualRing(sim, 4, tracer=tracer)
    ring.post(0, 1, "x")
    sim.run()
    assert tracer.count("deliver") == 1


# -------------------------------------------------------- hardware channel
def run_gen(sim, gen):
    return sim.process(gen)


def test_hw_channel_transfers_words_in_order():
    sim = Simulator()
    ring = DualRing(sim, 4)
    ch = HardwareFifoChannel(sim, ring, 0, 2, capacity=2)
    got = []

    def producer():
        for i in range(5):
            yield from ch.send(i)

    def consumer():
        for _ in range(5):
            w = yield from ch.recv()
            got.append(w)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]
    assert ch.words_sent == 5
    assert ch.words_received == 5


def test_hw_channel_credits_throttle_producer():
    sim = Simulator()
    ring = DualRing(sim, 4)
    ch = HardwareFifoChannel(sim, ring, 0, 1, capacity=2)
    sent_times = []

    def producer():
        for i in range(4):
            yield from ch.send(i)
            sent_times.append(sim.now)

    def consumer():
        yield sim.timeout(100)
        for _ in range(4):
            yield from ch.recv()
            yield sim.timeout(100)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # first two sends go through on credits; the rest wait for returns
    assert sent_times[1] < 100
    assert sent_times[2] > 100


def test_hw_channel_capacity_validation():
    sim = Simulator()
    ring = DualRing(sim, 4)
    with pytest.raises(SimulationError):
        HardwareFifoChannel(sim, ring, 0, 1, capacity=0)


def test_hw_channel_buffer_never_overflows():
    sim = Simulator()
    ring = DualRing(sim, 4)
    ch = HardwareFifoChannel(sim, ring, 0, 1, capacity=3)

    def producer():
        for i in range(10):
            yield from ch.send(i)

    def consumer():
        for _ in range(10):
            yield sim.timeout(7)
            yield from ch.recv()

    sim.process(producer())
    sim.process(consumer())
    sim.run()  # would raise SimulationError on overflow
    assert ch.buffered == 0


# ------------------------------------------------------------------ C-FIFO
def test_cfifo_put_get_order():
    sim = Simulator()
    ring = DualRing(sim, 4)
    f = CFifo(sim, ring, 0, 2, capacity=8)
    got = []

    def producer():
        for i in range(6):
            yield from f.put(i)

    def consumer():
        for _ in range(6):
            w = yield from f.get()
            got.append(w)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4, 5]


def test_cfifo_capacity_blocks_producer():
    sim = Simulator()
    ring = DualRing(sim, 4)
    f = CFifo(sim, ring, 0, 1, capacity=2)
    put_times = []

    def producer():
        for i in range(4):
            yield from f.put(i)
            put_times.append(sim.now)

    def consumer():
        yield sim.timeout(50)
        for _ in range(4):
            yield from f.get()
            yield sim.timeout(50)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert put_times[1] < 50 < put_times[2]


def test_cfifo_availability_lags_by_ring_latency():
    """The consumer sees a word only after the write-pointer flit arrives."""
    sim = Simulator()
    ring = DualRing(sim, 8)
    f = CFifo(sim, ring, 0, 4, capacity=4)  # 4 hops away
    arrival = []

    def producer():
        yield from f.put("w")

    def consumer():
        w = yield from f.get()
        arrival.append((sim.now, w))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # data flit (4 hops) + wptr flit behind it
    assert arrival[0][0] >= 4
    assert arrival[0][1] == "w"


def test_cfifo_producer_space_view():
    sim = Simulator()
    ring = DualRing(sim, 4)
    f = CFifo(sim, ring, 0, 1, capacity=5)

    def producer():
        for i in range(3):
            yield from f.put(i)

    sim.process(producer())
    sim.run()
    assert f.producer_space == 2
    assert f.consumer_available == 3


def test_cfifo_capacity_validation():
    sim = Simulator()
    ring = DualRing(sim, 4)
    with pytest.raises(SimulationError):
        CFifo(sim, ring, 0, 1, capacity=0)


def test_cfifo_debug_snapshot():
    sim = Simulator()
    ring = DualRing(sim, 4)
    f = CFifo(sim, ring, 0, 1, capacity=4)

    def producer():
        yield from f.put("x")

    sim.process(producer())
    sim.run()
    snap = f.level_debug()
    assert snap["put"] == 1
    assert snap["memory"] == 1
