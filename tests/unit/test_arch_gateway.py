"""Unit tests for the entry/exit gateway protocol."""

from fractions import Fraction

import pytest

from repro.accel import FirDecimatorKernel, MixerKernel
from repro.arch import GatewayError, MPSoC, StreamBinding, TaskSpec
from repro.arch import Get, Put


def build_soc(etas=(4, 4), kernels=None, entry_copy=3, exit_copy=1,
              reconfigure=20, in_cap=64, out_cap=64):
    """Two producer streams through one shared chain to one consumer tile."""
    kernels = kernels or [MixerKernel(0.0)]
    soc = MPSoC(n_stations=6 + len(kernels))
    prod = soc.add_processor("prod")
    cons = soc.add_processor("cons")
    entry_station = 2  # next claimed station inside shared_chain
    in_fifos = [prod.fifo_to(entry_station, capacity=in_cap, name=f"in{i}")
                for i in range(len(etas))]
    exit_station = 2 + 1 + len(kernels)
    out_fifos = [soc.software_fifo(exit_station, cons, capacity=out_cap, name=f"out{i}")
                 for i in range(len(etas))]
    configs = []
    for i, eta in enumerate(etas):
        states = []
        for k in kernels:
            st = k.get_state()
            if "freq_over_fs" in st:
                st = dict(st, freq_over_fs=0.0, phase=0.0)
            states.append(st)
        configs.append({
            "name": f"s{i}", "eta": eta, "in_fifo": in_fifos[i],
            "out_fifo": out_fifos[i], "states": states,
            "reconfigure_cycles": reconfigure,
        })
    chain = soc.shared_chain("gw", kernels, configs,
                             entry_copy=entry_copy, exit_copy=exit_copy)
    return soc, prod, cons, in_fifos, out_fifos, chain


def test_binding_validation():
    soc, *_rest = build_soc()
    fifo = soc.software_fifo(0, 1, 4, "f")
    with pytest.raises(GatewayError):
        StreamBinding("x", 0, fifo, fifo, [])
    with pytest.raises(GatewayError):
        StreamBinding("x", 3, fifo, fifo, [], output_ratio=Fraction(1, 2))


def test_expected_out_with_decimation():
    soc, *_ = build_soc()
    fifo = soc.software_fifo(0, 1, 4, "g")
    b = StreamBinding("x", 8, fifo, fifo, [], output_ratio=Fraction(1, 8))
    assert b.expected_out == 1


def test_blocks_multiplexed_round_robin():
    soc, prod, cons, (in0, in1), (out0, out1), chain = build_soc(etas=(4, 4))
    got0, got1 = [], []

    def producer():
        for i in range(12):
            yield Put(in0, float(i))
            yield Put(in1, float(i))

    def consumer():
        for _ in range(12):
            got0.append((yield Get(out0)))
            got1.append((yield Get(out1)))

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start(); cons.start()
    soc.run(until=30000)
    assert len(got0) == 12 and len(got1) == 12
    assert chain.binding("s0").blocks_done == 3
    assert chain.binding("s1").blocks_done == 3
    # round-robin: admissions interleave
    adm0 = chain.binding("s0").admissions
    adm1 = chain.binding("s1").admissions
    assert adm0[0] < adm1[0] < adm0[1] < adm1[1]


def test_block_not_admitted_without_full_block():
    soc, prod, cons, (in0, in1), (out0, out1), chain = build_soc(etas=(4, 4))

    def producer():
        for i in range(3):  # one short of a block
            yield Put(in0, float(i))

    prod.add_task(TaskSpec("p", producer))
    prod.start()
    soc.run(until=5000)
    assert chain.binding("s0").blocks_done == 0
    assert chain.entry.blocks_admitted == 0


def test_space_check_blocks_admission():
    """With a tiny output buffer the entry-gateway must not admit a block."""
    soc, prod, cons, (in0, in1), (out0, out1), chain = build_soc(
        etas=(4, 4), out_cap=2,
    )

    def producer():
        for i in range(4):
            yield Put(in0, float(i))

    prod.add_task(TaskSpec("p", producer))
    prod.start()
    soc.run(until=5000)
    # a full block is queued but only 2 output spaces exist < η=4
    assert chain.binding("s0").blocks_done == 0


def test_space_check_uses_output_block_size_with_decimation():
    """η=8 inputs through an 8:1 decimator need only 1 output space."""
    soc, prod, cons, (in0,), (out0,), chain = build_soc(
        etas=(8,), kernels=[FirDecimatorKernel(factor=8)], out_cap=1,
    )

    def producer():
        for i in range(8):
            yield Put(in0, 1.0)

    prod.add_task(TaskSpec("p", producer))
    prod.start()
    soc.run(until=10000)
    assert chain.binding("s0").blocks_done == 1
    assert chain.binding("s0").samples_out == 1


def test_pipeline_idle_enforced_between_blocks():
    soc, prod, cons, (in0, in1), (out0, out1), chain = build_soc(etas=(4, 4))

    def producer():
        for i in range(8):
            yield Put(in0, float(i))

    def consumer():
        for _ in range(8):
            yield Get(out0)

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start(); cons.start()
    soc.run(until=30000)
    b = chain.binding("s0")
    assert b.blocks_done == 2
    # second admission strictly after first completion (idle token)
    assert b.admissions[1] >= b.completions[0]


def test_reconfiguration_skipped_for_same_stream():
    soc, prod, cons, (in0, in1), (out0, out1), chain = build_soc(
        etas=(4, 4), reconfigure=500,
    )

    def producer():
        for i in range(8):  # two blocks, only stream 0
            yield Put(in0, float(i))

    def consumer():
        for _ in range(8):
            yield Get(out0)

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start(); cons.start()
    soc.run(until=30000)
    assert chain.binding("s0").blocks_done == 2
    # only the first block pays the context switch
    assert chain.entry.reconfig_cycles == 500


def test_context_isolated_between_streams():
    """Each stream must see its own mixer phase despite sharing the tile."""
    soc, prod, cons, (in0, in1), (out0, out1), chain = build_soc(etas=(2, 2))
    # give the two streams different mixer configurations
    chain.binding("s0").states[0] = {"freq_over_fs": 0.25, "phase": 0.0}
    chain.binding("s1").states[0] = {"freq_over_fs": 0.0, "phase": 0.0}
    got0, got1 = [], []

    def producer():
        for i in range(4):
            yield Put(in0, 1.0)
            yield Put(in1, 1.0)

    def consumer():
        for _ in range(4):
            got0.append((yield Get(out0)))
            got1.append((yield Get(out1)))

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start(); cons.start()
    soc.run(until=30000)
    # stream 1: identity mixing (freq 0) -> all ones
    assert all(abs(g - 1.0) < 1e-3 for g in got1)
    # stream 0: rotation by 0.25 turns/sample -> 1, -j, -1, j
    expected = [1, -1j, -1, 1j]
    assert all(abs(g - e) < 1e-3 for g, e in zip(got0, expected))


def test_gateway_counters_accumulate():
    soc, prod, cons, (in0, in1), (out0, out1), chain = build_soc(
        etas=(4, 4), entry_copy=3, reconfigure=20,
    )

    def producer():
        for i in range(4):
            yield Put(in0, float(i))

    def consumer():
        for _ in range(4):
            yield Get(out0)

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start(); cons.start()
    soc.run(until=30000)
    assert chain.entry.blocks_admitted == 1
    assert chain.entry.copy_cycles >= 4 * 3  # η·ε at least
    assert chain.entry.reconfig_cycles == 20
    assert chain.exit.samples_forwarded == 4


def test_binding_context_count_validated():
    soc = MPSoC(n_stations=8)
    fifo = soc.software_fifo(0, 1, 8, "f")
    with pytest.raises(GatewayError):
        soc.shared_chain(
            "gw", [MixerKernel(0.0)],
            [{"name": "s", "eta": 2, "in_fifo": fifo, "out_fifo": fifo,
              "states": [{}, {}]}],  # two contexts for one kernel
        )
