"""Unit tests for buffer bounding and capacity minimisation."""

from fractions import Fraction

import pytest

from repro.dataflow import (
    GraphError,
    SDFGraph,
    bound_channel,
    bounded_graph,
    capacity_lower_bound,
    min_capacities,
    min_capacity_single,
    steady_state_throughput,
)


def pair(da=1, db=1, prod=1, cons=1, tokens=0):
    g = SDFGraph("pair")
    g.add_actor("A", da)
    g.add_actor("B", db)
    g.add_edge("A", "B", production=prod, consumption=cons, tokens=tokens, name="ch")
    return g


def test_bound_channel_adds_back_edge():
    g = bound_channel(pair(), "ch", 3)
    back = g.edge("cap:ch")
    assert back.src == "B" and back.dst == "A"
    assert back.tokens == 3


def test_bound_channel_subtracts_initial_tokens():
    g = bound_channel(pair(tokens=2), "ch", 5)
    assert g.edge("cap:ch").tokens == 3


def test_bound_channel_capacity_below_tokens_rejected():
    with pytest.raises(GraphError):
        bound_channel(pair(tokens=4), "ch", 3)


def test_bound_channel_reverses_quanta():
    g = bound_channel(pair(prod=3, cons=2), "ch", 6)
    back = g.edge("cap:ch")
    assert back.production == (2,)  # consumer releases what it consumed
    assert back.consumption == (3,)  # producer claims what it will produce


def test_bounded_graph_multiple():
    g = SDFGraph("t")
    for n in "abc":
        g.add_actor(n, 1)
    g.add_edge("a", "b", name="e1")
    g.add_edge("b", "c", name="e2")
    gb = bounded_graph(g, {"e1": 2, "e2": 3})
    assert gb.edge("cap:e1").tokens == 2
    assert gb.edge("cap:e2").tokens == 3


def test_capacity_lower_bound():
    g = pair(prod=4, cons=2, tokens=1)
    assert capacity_lower_bound(g, "ch") == 4
    g2 = pair(prod=1, cons=1, tokens=9)
    assert capacity_lower_bound(g2, "ch") == 9


def test_min_capacity_reaches_target():
    g = pair(da=2, db=3)
    res = min_capacity_single(g, "ch", target=Fraction(1, 3), actor="B")
    assert res.throughput >= Fraction(1, 3)
    # cross-check minimality: one slot less misses the target
    if res.capacities["ch"] > capacity_lower_bound(g, "ch"):
        smaller = bound_channel(g, "ch", res.capacities["ch"] - 1)
        r = steady_state_throughput(smaller, actor="B")
        assert r.firing_rate < Fraction(1, 3)


def test_min_capacity_unreachable_target():
    g = pair(da=2, db=3)
    with pytest.raises(GraphError):
        min_capacity_single(g, "ch", target=Fraction(1, 1), actor="B", cap_limit=16)


def test_min_capacity_max_throughput_mode():
    g = pair(da=3, db=3)
    res = min_capacity_single(g, "ch", target=None, actor="B")
    # max rate = 1/3; pipelining needs 2 slots
    assert res.throughput == Fraction(1, 3)
    assert res.capacities["ch"] == 2


def test_min_capacity_single_slot_serialised_rate():
    # with capacity 1 the space returns at the consumer's END, so the period
    # is da + db = 11; reaching the consumer-limited 1/10 needs 2 slots
    g = pair(da=1, db=10)
    res = min_capacity_single(g, "ch", target=Fraction(1, 11), actor="B")
    assert res.capacities["ch"] == 1
    res2 = min_capacity_single(g, "ch", target=Fraction(1, 10), actor="B")
    assert res2.capacities["ch"] == 2


def test_min_capacities_total_minimal():
    g = SDFGraph("t3")
    g.add_actor("A", 2)
    g.add_actor("B", 2)
    g.add_actor("C", 2)
    g.add_edge("A", "B", name="e1")
    g.add_edge("B", "C", name="e2")
    res = min_capacities(g, ["e1", "e2"], target=Fraction(1, 2), actor="C")
    assert res.throughput >= Fraction(1, 2)
    # any vector with smaller total must fail (checked for the found total-1)
    total = res.total
    from itertools import product

    for caps in product(range(1, total), repeat=2):
        if sum(caps) >= total:
            continue
        gb = bounded_graph(g, {"e1": caps[0], "e2": caps[1]})
        assert steady_state_throughput(gb, actor="C").firing_rate < Fraction(1, 2)


def test_min_capacities_requires_channels():
    g = pair()
    with pytest.raises(GraphError):
        min_capacities(g, [], target=Fraction(1, 2))


def test_min_capacities_unreachable():
    g = pair(da=5, db=5)
    with pytest.raises(GraphError):
        min_capacities(g, ["ch"], target=Fraction(1, 2), cap_limit=8)


def test_buffer_result_total():
    g = pair(da=2, db=2)
    res = min_capacity_single(g, "ch", target=Fraction(1, 2), actor="B")
    assert res.total == sum(res.capacities.values())


def test_throughput_monotone_in_capacity():
    g = pair(da=2, db=2)
    rates = []
    for cap in range(1, 6):
        gb = bound_channel(g, "ch", cap)
        rates.append(steady_state_throughput(gb, actor="B").firing_rate)
    assert all(r2 >= r1 for r1, r2 in zip(rates, rates[1:]))
