"""Unit tests for the verification battery and utilization accounting."""

from fractions import Fraction

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    accelerator_utilization_gain,
    analyze_utilization,
    block_round_length,
    compute_block_sizes,
    verify_system,
)


def system_of(mus, R=20, eps=5, rho=(1,), delta=1, etas=None):
    streams = tuple(
        StreamSpec(f"s{i}", mu, R, block_size=None if etas is None else etas[i])
        for i, mu in enumerate(mus)
    )
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(f"a{i}", r) for i, r in enumerate(rho)),
        streams=streams,
        entry_copy=eps,
        exit_copy=delta,
    )


# ------------------------------------------------------------- verification
def test_verify_system_passes_on_ilp_solution():
    sys_ = system_of([Fraction(1, 60), Fraction(1, 120)], R=20, eps=4)
    res = compute_block_sizes(sys_)
    assigned = sys_.with_block_sizes(res.block_sizes)
    report = verify_system(assigned)
    assert report.ok, report.summary()
    assert len(report.streams) == 2
    for s in report.streams:
        assert s.eq5_ok and s.sdf_ok and s.tau_ok and s.refinement_ok


def test_verify_system_flags_undersized_blocks():
    sys_ = system_of([Fraction(1, 30)], R=100, eps=5, etas=[1])
    report = verify_system(sys_)
    assert not report.ok
    assert not report.streams[0].eq5_ok
    assert "FAIL" in report.summary()


def test_verify_system_requires_block_sizes():
    sys_ = system_of([Fraction(1, 30)])
    with pytest.raises(ParameterError):
        verify_system(sys_)


def test_verify_summary_format():
    sys_ = system_of([Fraction(1, 100)], R=10, eps=3, etas=[4])
    out = verify_system(sys_).summary()
    assert "stream" in out and "s0" in out


# -------------------------------------------------------------- utilization
def test_utilization_round_decomposition():
    sys_ = system_of([Fraction(1, 60), Fraction(1, 120)], R=20, eps=5, etas=[10, 5])
    u = analyze_utilization(sys_)
    assert u.round_length == block_round_length(sys_)
    assert u.samples_per_round == 15
    assert u.copy_cycles == 15 * 5
    assert u.reconfig_cycles == 40
    # fractions sum sensibly
    assert 0 < float(u.gateway_copy_fraction) < 1
    assert u.data_processing_fraction + u.state_management_fraction == 1


def test_utilization_requires_block_sizes():
    sys_ = system_of([Fraction(1, 60)])
    with pytest.raises(ParameterError):
        analyze_utilization(sys_)


def test_utilization_flush_cycles_consistent():
    sys_ = system_of([Fraction(1, 60)], R=20, eps=5, etas=[10])
    u = analyze_utilization(sys_)
    # τ̂ = R + (η + F)c0 => flush = F·c0
    assert u.flush_cycles == sys_.flush_stages * sys_.c0
    assert u.round_length == u.copy_cycles + u.reconfig_cycles + u.flush_cycles


def test_pal_prototype_utilization_split():
    """With the paper's ε=15, R=4100 and computed blocks, the transfer-centric
    split lands near the quoted 5% data / 95% state management."""
    clock = 100_000_000
    audio = 44_100
    mus = [Fraction(64 * audio, clock), Fraction(8 * audio, clock)] * 2
    sys_ = GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", 1), AcceleratorSpec("lpf", 1)),
        streams=tuple(StreamSpec(f"s{i}", mu, 4100) for i, mu in enumerate(mus)),
        entry_copy=15,
        exit_copy=1,
    )
    res = compute_block_sizes(sys_)
    u = analyze_utilization(sys_.with_block_sizes(res.block_sizes))
    assert 0.03 < float(u.data_processing_fraction) < 0.10
    assert 0.90 < float(u.state_management_fraction) < 0.97
    assert 0.02 < float(u.reconfig_fraction) < 0.08


def test_accelerator_utilization_gain():
    assert accelerator_utilization_gain(4, 1) == 4  # the paper's factor 4
    assert accelerator_utilization_gain(6, 2) == 3
    with pytest.raises(ValueError):
        accelerator_utilization_gain(0, 1)
