"""Unit tests for the FIR decimator, synthetic front-end and audio tasks."""

import numpy as np
import pytest

from repro.accel import (
    FirDecimatorKernel,
    KernelError,
    PalChannelPlan,
    correlation,
    design_lowpass,
    fir_decimate_batch,
    make_test_tones,
    normalize_fm_output,
    reconstruct_stereo,
    run_kernel,
    synthesize_pal_baseband,
    tone_frequency,
    tone_snr,
)


# ----------------------------------------------------------------- design
def test_design_unit_dc_gain():
    h = design_lowpass(33, 1 / 16)
    assert np.sum(h) == pytest.approx(1.0)


def test_design_is_symmetric_linear_phase():
    h = design_lowpass(33, 0.1)
    assert np.allclose(h, h[::-1])


def test_design_attenuates_stopband():
    h = design_lowpass(33, 1 / 16)
    w = np.fft.rfft(h, 1024)
    freqs = np.fft.rfftfreq(1024)
    stop = np.abs(w[freqs > 0.2])
    assert np.max(stop) < 0.05  # > 26 dB attenuation


def test_design_validation():
    with pytest.raises(KernelError):
        design_lowpass(0)
    with pytest.raises(KernelError):
        design_lowpass(33, 0.7)
    with pytest.raises(KernelError):
        design_lowpass(33, 0.1, window="bogus")


def test_design_windows():
    for window in ("hamming", "blackman", "rect"):
        h = design_lowpass(17, 0.1, window=window)
        assert np.sum(h) == pytest.approx(1.0)


# --------------------------------------------------------------- decimator
def test_decimator_output_count():
    k = FirDecimatorKernel(factor=8)
    out = run_kernel(k, np.ones(64))
    assert len(out) == 8


def test_decimator_matches_batch():
    h = design_lowpass(33, 1 / 16)
    xs = np.random.default_rng(0).standard_normal(128) * (1 + 1j)
    stream = run_kernel(FirDecimatorKernel(h, 8), xs)
    batch = fir_decimate_batch(xs, h, 8)
    assert np.allclose(stream, batch)


def test_decimator_factor_one_is_plain_fir():
    h = design_lowpass(9, 0.2)
    xs = np.random.default_rng(1).standard_normal(32)
    stream = run_kernel(FirDecimatorKernel(h, 1), xs)
    batch = fir_decimate_batch(xs, h, 1)
    assert np.allclose(stream, batch)
    assert len(stream) == 32


def test_decimator_passes_low_tone_rejects_high():
    fs = 8000.0
    t = np.arange(2048) / fs
    low = np.sin(2 * np.pi * 100 * t)
    high = np.sin(2 * np.pi * 3000 * t)
    k = FirDecimatorKernel(design_lowpass(33, 1 / 16), 8)
    out = run_kernel(k, low + high)
    f = tone_frequency(np.real(out), fs / 8)
    assert f == pytest.approx(100, abs=fs / 8 / len(out) * 2)
    assert tone_snr(np.real(out), 100, fs / 8) > 20


def test_decimator_validation():
    with pytest.raises(KernelError):
        FirDecimatorKernel(factor=0)
    with pytest.raises(KernelError):
        FirDecimatorKernel(np.zeros((2, 2)))


def test_decimator_state_roundtrip_mid_phase():
    h = design_lowpass(9, 0.2)
    xs = np.random.default_rng(2).standard_normal(37)  # not a multiple of 8
    k1 = FirDecimatorKernel(h, 8)
    out_a = run_kernel(k1, xs[:21])
    k2 = FirDecimatorKernel(h, 8)
    k2.set_state(k1.get_state())
    out_b1 = run_kernel(k1, xs[21:])
    out_b2 = run_kernel(k2, xs[21:])
    assert np.allclose(out_b1, out_b2)
    ref = run_kernel(FirDecimatorKernel(h, 8), xs)
    assert np.allclose(np.concatenate([out_a, out_b1]), ref)


def test_decimator_state_validation():
    k = FirDecimatorKernel(factor=8)
    with pytest.raises(KernelError):
        k.set_state({"coefficients": np.ones(3)})
    state = k.get_state()
    state["delay"] = np.zeros(2)
    with pytest.raises(KernelError):
        k.set_state(state)


def test_decimator_state_words_includes_complex_delay():
    k = FirDecimatorKernel(design_lowpass(33, 1 / 16), 8)
    # 33 real coeffs + 33 complex delay (66) + factor + phase = 101
    assert k.state_words == 33 + 66 + 2


# ---------------------------------------------------------------- frontend
def test_plan_validation():
    with pytest.raises(ValueError):
        PalChannelPlan(sample_rate=1000.0, carrier1=600.0)  # beyond Nyquist
    with pytest.raises(ValueError):
        PalChannelPlan(deviation=-1)
    with pytest.raises(ValueError):
        PalChannelPlan(sample_rate=10_000.0, carrier1=100.0, carrier2=200.0,
                       audio_rate=3000.0)


def test_plan_oversample():
    assert PalChannelPlan().oversample == 64


def test_synthesize_length_and_dtype():
    plan = PalChannelPlan()
    L, R = make_test_tones(100, audio_rate=plan.audio_rate)
    bb = synthesize_pal_baseband(L, R, plan)
    assert len(bb) == 100 * plan.oversample
    assert np.iscomplexobj(bb)


def test_synthesize_rejects_mismatched_audio():
    with pytest.raises(ValueError):
        synthesize_pal_baseband(np.zeros(10), np.zeros(11))


def test_synthesize_carriers_present():
    plan = PalChannelPlan()
    L, R = make_test_tones(128, audio_rate=plan.audio_rate)
    bb = synthesize_pal_baseband(L, R, plan)
    spec = np.abs(np.fft.fft(bb))
    freqs = np.fft.fftfreq(len(bb), 1 / plan.sample_rate)
    for carrier in (plan.carrier1, plan.carrier2):
        band = np.abs(freqs - carrier) < 2 * plan.deviation
        outside = np.abs(freqs - carrier) > 8 * plan.deviation
        assert np.max(spec[band]) > 10 * np.median(spec[outside])


def test_synthesize_with_noise_and_vision():
    plan = PalChannelPlan(vision_level=0.2)
    L, R = make_test_tones(64, audio_rate=plan.audio_rate)
    bb = synthesize_pal_baseband(L, R, plan, noise_level=0.05, seed=7)
    assert np.all(np.isfinite(bb))


def test_make_test_tones_frequencies():
    L, R = make_test_tones(4096, audio_rate=8000.0, f_left=440, f_right=1000)
    assert tone_frequency(L, 8000.0) == pytest.approx(440, abs=4)
    assert tone_frequency(R, 8000.0) == pytest.approx(1000, abs=4)


# ------------------------------------------------------------------- audio
def test_reconstruct_stereo_matrix():
    lpr = np.array([1.0, 2.0, 3.0])  # (L+R)/2
    r = np.array([0.0, 1.0, 2.0])
    left, right = reconstruct_stereo(lpr, r)
    assert np.allclose(left, [2.0, 3.0, 4.0])
    assert np.allclose(right, r)


def test_reconstruct_trims_to_common_length():
    left, right = reconstruct_stereo(np.ones(5), np.zeros(3))
    assert len(left) == len(right) == 3


def test_normalize_fm_output_scaling():
    fs, dev = 8000.0, 1000.0
    audio = 0.5 * np.sin(2 * np.pi * 200 * np.arange(256) / fs)
    demod = 2 * np.pi * dev / fs * audio + 0.3  # with a DC offset
    rec = normalize_fm_output(demod, dev, fs)
    assert np.allclose(rec, audio - np.mean(audio), atol=1e-9)


def test_tone_frequency_short_signal_rejected():
    with pytest.raises(ValueError):
        tone_frequency(np.ones(4), 100.0)


def test_tone_snr_clean_vs_noisy():
    fs = 8000.0
    t = np.arange(2048) / fs
    clean = np.sin(2 * np.pi * 500 * t)
    noisy = clean + 0.3 * np.random.default_rng(0).standard_normal(len(t))
    assert tone_snr(clean, 500, fs) > tone_snr(noisy, 500, fs) > 5


def test_correlation_identical_and_shifted():
    x = np.sin(np.linspace(0, 30, 300))
    assert correlation(x, x) == pytest.approx(1.0, abs=1e-9)
    assert correlation(x[:-3], x[3:]) > 0.95  # lag-tolerant
    with pytest.raises(ValueError):
        correlation(np.ones(2), np.ones(2))
