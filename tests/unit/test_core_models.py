"""Unit tests for the Fig. 5 CSDF builder and Fig. 7 SDF abstraction."""

from fractions import Fraction

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    build_stream_csdf,
    build_stream_sdf,
    gamma,
    measure_block_time,
    tau_hat,
    verify_with_sdf_model,
)
from repro.dataflow import execute, repetition_vector, validate_graph


def one_stream_system(eta=4, mu=Fraction(1, 100), R=20, eps=5, rho=(2,), delta=1):
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(f"a{i}", r) for i, r in enumerate(rho)),
        streams=(StreamSpec("s0", mu, R, block_size=eta),),
        entry_copy=eps,
        exit_copy=delta,
    )


# ------------------------------------------------------------- CSDF builder
def test_csdf_structure():
    g, info = build_stream_csdf(one_stream_system(eta=4), "s0")
    assert set(g.actors) == {"vP", "vG0", "vA0", "vG1", "vC"}
    assert g.actor("vG0").phases == 4
    assert g.actor("vG1").phases == 4
    assert info.eta == 4


def test_csdf_requires_block_size():
    sys_ = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(StreamSpec("s0", Fraction(1, 10), 5),),
    )
    with pytest.raises(ParameterError):
        build_stream_csdf(sys_, "s0")


def test_csdf_first_phase_duration_is_eq1():
    sys_ = one_stream_system(eta=4, R=20, eps=5)
    g, _ = build_stream_csdf(sys_, "s0", epsilon_s=100)
    assert g.actor("vG0").duration[0] == 100 + 20 + 5
    assert g.actor("vG0").duration[1] == 5


def test_csdf_is_consistent_and_live():
    g, _ = build_stream_csdf(one_stream_system(eta=3), "s0", prequeued=3)
    rep = validate_graph(g)
    assert rep.ok, rep.errors


def test_csdf_repetition_one_block_per_iteration():
    g, _ = build_stream_csdf(one_stream_system(eta=5), "s0")
    q = repetition_vector(g)
    # one iteration = one block: vG0/vG1 one full cycle, vA eta firings
    assert q["vG0"] == 1
    assert q["vG1"] == 1
    assert q["vA0"] == 5
    assert q["vP"] == 5
    assert q["vC"] == 5


def test_csdf_accelerator_chain_actors():
    sys_ = one_stream_system(rho=(1, 2, 3))
    g, info = build_stream_csdf(sys_, "s0")
    assert info.accelerators == ["vA0", "vA1", "vA2"]
    assert g.actor("vA2").duration == (3.0,)


def test_csdf_alpha_bounds_checked():
    sys_ = one_stream_system(eta=4)
    with pytest.raises(ParameterError):
        build_stream_csdf(sys_, "s0", alpha0=2)
    with pytest.raises(ParameterError):
        build_stream_csdf(sys_, "s0", alpha3=3)
    with pytest.raises(ParameterError):
        build_stream_csdf(sys_, "s0", alpha0=8, prequeued=9)


def test_csdf_idle_token_blocks_second_block():
    """The second block must wait until the first fully drained (vG1 done)."""
    sys_ = one_stream_system(eta=3, eps=2, rho=(1,), delta=1)
    g, info = build_stream_csdf(
        sys_, "s0", producer_period=1, consumer_period=1,
        alpha0=12, alpha3=12, prequeued=12,
    )
    res = execute(g, iterations=2)
    g0 = [f for f in res.firings_of("vG0") if f.phase == 0]
    g1_last = [f for f in res.firings_of("vG1") if f.phase == info.eta - 1]
    assert g0[1].start >= g1_last[0].end


def test_measured_block_time_within_eq2_bound():
    for eta in (1, 2, 5, 8):
        for eps, rho, delta in ((5, 2, 1), (1, 4, 2), (3, 3, 3)):
            sys_ = one_stream_system(eta=eta, R=17, eps=eps, rho=(rho,), delta=delta)
            g, info = build_stream_csdf(
                sys_, "s0", producer_period=Fraction(1, 10),
                consumer_period=Fraction(1, 10),
                alpha0=2 * eta, alpha3=2 * eta, prequeued=2 * eta,
            )
            taus = measure_block_time(g, info, blocks=2)
            bound = tau_hat(sys_, "s0")
            assert max(taus) <= bound, (eta, eps, rho, delta, taus, bound)


def test_measured_block_time_close_to_bound_when_entry_dominates():
    # ε >> ρ, δ: τ = R + η·ε + ρ + δ; bound = R + (η+2)·ε
    eta = 6
    sys_ = one_stream_system(eta=eta, R=10, eps=9, rho=(1,), delta=1)
    g, info = build_stream_csdf(
        sys_, "s0", producer_period=1, consumer_period=1,
        alpha0=2 * eta, alpha3=2 * eta, prequeued=2 * eta,
    )
    tau = measure_block_time(g, info)[0]
    assert tau == 10 + eta * 9 + 1 + 1
    assert tau <= tau_hat(sys_, "s0")


# --------------------------------------------------------- SDF abstraction
def test_sdf_structure():
    sys_ = one_stream_system(eta=4)
    g = build_stream_sdf(sys_, "s0")
    assert set(g.actors) == {"vP", "vS", "vC"}
    assert g.actor("vS").duration[0] == float(gamma(sys_, "s0"))
    assert g.edge("p2s").consumption == (4,)
    assert g.edge("s2c").production == (4,)


def test_sdf_requires_block_size():
    sys_ = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(StreamSpec("s0", Fraction(1, 10), 5),),
    )
    with pytest.raises(ParameterError):
        build_stream_sdf(sys_, "s0")


def test_sdf_alpha_bounds_checked():
    sys_ = one_stream_system(eta=4)
    with pytest.raises(ParameterError):
        build_stream_sdf(sys_, "s0", alpha0=3)


def test_sdf_verification_passes_for_generous_block():
    # very low rate requirement, easy block size
    sys_ = one_stream_system(eta=10, mu=Fraction(1, 1000), R=20, eps=5)
    ok, rate = verify_with_sdf_model(sys_, "s0")
    assert ok
    assert rate >= Fraction(1, 1000)


def test_sdf_verification_fails_for_impossible_rate():
    sys_ = one_stream_system(eta=2, mu=Fraction(1, 2), R=100, eps=5)
    ok, rate = verify_with_sdf_model(sys_, "s0")
    assert not ok
    assert rate < Fraction(1, 2)


def test_sdf_verification_matches_closed_form_on_sweep():
    from repro.core import throughput_satisfied

    for eta in (2, 4, 8, 16):
        for mu in (Fraction(1, 40), Fraction(1, 60), Fraction(1, 200)):
            sys_ = one_stream_system(eta=eta, mu=mu, R=20, eps=5, rho=(2,), delta=1)
            ok_model, _ = verify_with_sdf_model(sys_, "s0")
            ok_formula = throughput_satisfied(sys_, "s0")
            assert ok_model == ok_formula, (eta, mu)
