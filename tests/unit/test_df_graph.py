"""Unit tests for the (C)SDF graph data model."""

import pytest

from repro.dataflow import Actor, CSDFGraph, GraphError, SDFGraph, as_sdf, cyclic


def test_cyclic_expands_groups():
    assert cyclic((3, 1), (1, 0)) == (1, 1, 1, 0)


def test_cyclic_rejects_negative_count():
    with pytest.raises(GraphError):
        cyclic((-1, 1))


def test_cyclic_rejects_empty():
    with pytest.raises(GraphError):
        cyclic((0, 1))


def test_actor_make_scalar_duration():
    a = Actor.make("x", 5)
    assert a.phases == 1
    assert a.duration == (5.0,)
    assert a.is_sdf


def test_actor_make_per_phase_durations():
    a = Actor.make("x", [1, 2, 3])
    assert a.phases == 3
    assert a.total_duration == 6
    assert a.max_duration == 3
    assert not a.is_sdf


def test_actor_phase_duration_mismatch():
    with pytest.raises(GraphError):
        Actor.make("x", [1, 2], phases=3)


def test_actor_negative_duration_rejected():
    with pytest.raises(GraphError):
        Actor.make("x", -1)


def test_actor_zero_phases_rejected():
    with pytest.raises(GraphError):
        Actor("x", (), 0)


def test_add_duplicate_actor_rejected():
    g = CSDFGraph()
    g.add_actor("a")
    with pytest.raises(GraphError):
        g.add_actor("a")


def test_add_edge_unknown_actor_rejected():
    g = CSDFGraph()
    g.add_actor("a")
    with pytest.raises(GraphError):
        g.add_edge("a", "nope")
    with pytest.raises(GraphError):
        g.add_edge("nope", "a")


def test_edge_quanta_phase_length_checked():
    g = CSDFGraph()
    g.add_actor("a", duration=[1, 1], phases=2)
    g.add_actor("b")
    with pytest.raises(GraphError):
        g.add_edge("a", "b", production=[1, 2, 3])


def test_edge_zero_total_production_rejected():
    g = CSDFGraph()
    g.add_actor("a", duration=[1, 1], phases=2)
    g.add_actor("b")
    with pytest.raises(GraphError):
        g.add_edge("a", "b", production=[0, 0])


def test_edge_negative_tokens_rejected():
    g = CSDFGraph()
    g.add_actor("a")
    g.add_actor("b")
    with pytest.raises(GraphError):
        g.add_edge("a", "b", tokens=-1)


def test_edge_totals():
    g = CSDFGraph()
    g.add_actor("a", duration=[1, 1], phases=2)
    g.add_actor("b")
    e = g.add_edge("a", "b", production=[2, 3], consumption=1)
    assert e.total_production == 5
    assert e.total_consumption == 1


def test_in_out_edges():
    g = CSDFGraph()
    for n in "abc":
        g.add_actor(n)
    g.add_edge("a", "b", name="ab")
    g.add_edge("b", "c", name="bc")
    assert [e.name for e in g.out_edges("b")] == ["bc"]
    assert [e.name for e in g.in_edges("b")] == ["ab"]


def test_with_edge_tokens_copies():
    g = CSDFGraph()
    g.add_actor("a")
    g.add_actor("b")
    g.add_edge("a", "b", tokens=1, name="e")
    g2 = g.with_edge_tokens({"e": 7})
    assert g.edge("e").tokens == 1
    assert g2.edge("e").tokens == 7


def test_with_edge_tokens_unknown_edge_rejected():
    g = CSDFGraph()
    g.add_actor("a")
    with pytest.raises(GraphError):
        g.with_edge_tokens({"nope": 1})


def test_unknown_actor_and_edge_lookup():
    g = CSDFGraph()
    with pytest.raises(GraphError):
        g.actor("x")
    with pytest.raises(GraphError):
        g.edge("x")


def test_is_sdf_flag():
    g = CSDFGraph()
    g.add_actor("a")
    assert g.is_sdf
    g.add_actor("b", duration=[1, 2], phases=2)
    assert not g.is_sdf


def test_undirected_components():
    g = CSDFGraph()
    for n in "abcd":
        g.add_actor(n)
    g.add_edge("a", "b")
    g.add_edge("c", "d")
    comps = g.undirected_components()
    assert sorted(sorted(c) for c in comps) == [["a", "b"], ["c", "d"]]


def test_sdfgraph_rejects_phases():
    g = SDFGraph()
    with pytest.raises(GraphError):
        g.add_actor("a", duration=[1, 2])
    with pytest.raises(GraphError):
        g.add_actor("a", duration=1, phases=2)


def test_as_sdf_round_trip():
    g = CSDFGraph("x")
    g.add_actor("a", 1)
    g.add_actor("b", 2)
    g.add_edge("a", "b", name="e")
    s = as_sdf(g)
    assert isinstance(s, SDFGraph)
    assert set(s.actors) == {"a", "b"}


def test_as_sdf_rejects_multiphase():
    g = CSDFGraph()
    g.add_actor("a", duration=[1, 2], phases=2)
    with pytest.raises(GraphError):
        as_sdf(g)


def test_len_and_iter():
    g = CSDFGraph()
    g.add_actor("a")
    g.add_actor("b")
    assert len(g) == 2
    assert {a.name for a in g} == {"a", "b"}
