"""Executor backends: shared contract, digest equality, stop semantics."""

import pytest

from repro.exp import (
    ProcessPoolExecutor,
    SerialExecutor,
    Sweep,
    WorkQueueExecutor,
    resolve_executor,
    run_sweep,
)
from repro.exp.executors import StopExecution
from repro.exp.runner import ChunkRunner


def square_task(params, ctx):
    return {"y": params["x"] ** 2, "seed": ctx.seed}


def make_sweep(n=6):
    return Sweep("backends", square_task, [{"x": i} for i in range(n)], seed=11)


def make_jobs(sweep, size=2):
    pts = sweep.points
    return [
        (i, tuple(pts[lo : lo + size]))
        for i, lo in enumerate(range(0, len(pts), size))
    ]


# -- resolve_executor ---------------------------------------------------------

def test_resolver_defaults_to_serial_for_one_worker():
    assert isinstance(resolve_executor(None, 1), SerialExecutor)


def test_resolver_defaults_to_pool_for_many_workers():
    backend = resolve_executor(None, 3)
    assert isinstance(backend, ProcessPoolExecutor)
    assert backend.workers == 3


def test_resolver_maps_names_and_passes_instances_through():
    assert isinstance(resolve_executor("serial", 4), SerialExecutor)
    assert isinstance(resolve_executor("pool", 1), ProcessPoolExecutor)
    assert isinstance(resolve_executor("queue", 1), WorkQueueExecutor)
    mine = SerialExecutor()
    assert resolve_executor(mine, 8) is mine


def test_resolver_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("threads", 2)


# -- shared contract ----------------------------------------------------------

def collect(backend, sweep, **runner_kwargs):
    runner = ChunkRunner(task=sweep.task, **runner_kwargs)
    landed = {}

    def on_chunk(index, outcomes, stats):
        assert index not in landed, "chunk delivered twice"
        landed[index] = outcomes

    info = backend.run(make_jobs(sweep), runner, on_chunk)
    return landed, info


def test_serial_runs_chunks_in_order():
    sweep = make_sweep()
    landed, info = collect(SerialExecutor(), sweep)
    assert sorted(landed) == [0, 1, 2]
    assert info["mode"] == "serial"
    assert not info["degraded"] and not info["stopped"]
    assert [o.id for o in landed[0]] == ["x=0", "x=1"]


@pytest.mark.parametrize(
    "backend_name,backend",
    [
        ("pool", ProcessPoolExecutor(workers=2)),
        ("queue", WorkQueueExecutor(workers=2, poll_s=0.01)),
    ],
)
def test_parallel_backends_match_serial_exactly(backend_name, backend):
    sweep = make_sweep()
    serial_landed, _ = collect(SerialExecutor(), sweep)
    landed, info = collect(backend, sweep)
    expected_mode = {"pool": "process-pool", "queue": "work-queue"}[backend_name]
    assert info["mode"] == expected_mode
    assert sorted(landed) == sorted(serial_landed)
    for index in serial_landed:
        assert [o.payload() for o in landed[index]] == [
            o.payload() for o in serial_landed[index]
        ]
    assert info["quarantined"] == []


def test_stop_execution_halts_serial_backend():
    sweep = make_sweep()
    seen = []

    def on_chunk(index, outcomes, stats):
        seen.append(index)
        raise StopExecution()

    info = SerialExecutor().run(
        make_jobs(sweep), ChunkRunner(task=sweep.task), on_chunk
    )
    assert seen == [0]
    assert info["stopped"] is True


def test_engine_maps_executor_names_to_modes():
    sweep = make_sweep(4)
    serial = run_sweep(sweep, workers=1)
    assert serial.mode == "serial"
    pooled = run_sweep(sweep, workers=2, executor="pool")
    assert pooled.mode == "process-pool"
    assert pooled.digest() == serial.digest()
    queued = run_sweep(sweep, workers=2, executor="queue")
    assert queued.mode == "work-queue"
    assert queued.digest() == serial.digest()
