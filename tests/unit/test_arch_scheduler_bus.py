"""Unit tests for the budget scheduler, config bus and accelerator tile."""

import pytest

from repro.accel import FirDecimatorKernel, MixerKernel
from repro.arch import (
    AcceleratorTile,
    BudgetScheduler,
    Compute,
    ConfigBus,
    DualRing,
    Get,
    HardwareFifoChannel,
    Put,
    Sleep,
    TaskSpec,
)
from repro.arch.cfifo import CFifo
from repro.sim import SimulationError, Simulator


# -------------------------------------------------------------- config bus
def test_bus_word_timing():
    sim = Simulator()
    bus = ConfigBus(sim, word_time=2)
    done = []

    def xfer():
        yield from bus.transfer(10)
        done.append(sim.now)

    sim.process(xfer())
    sim.run()
    assert done == [20]
    assert bus.words_transferred == 10


def test_bus_serialises_transactions():
    sim = Simulator()
    bus = ConfigBus(sim, word_time=1)
    done = []

    def xfer(tag, words):
        yield from bus.transfer(words, label=tag)
        done.append((tag, sim.now))

    sim.process(xfer("a", 5))
    sim.process(xfer("b", 5))
    sim.run()
    assert done == [("a", 5), ("b", 10)]


def test_bus_transfer_cycles():
    sim = Simulator()
    bus = ConfigBus(sim)
    done = []

    def xfer():
        yield from bus.transfer_cycles(4100)
        done.append(sim.now)

    sim.process(xfer())
    sim.run()
    assert done == [4100]
    assert bus.transactions == 1


def test_bus_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        ConfigBus(sim, word_time=0)


@pytest.mark.parametrize("words", [0, -1, -4100])
def test_bus_transfer_rejects_nonpositive_sizes_eagerly(words):
    """Bad sizes raise at call time, before the generator is ever iterated."""
    sim = Simulator()
    bus = ConfigBus(sim)
    with pytest.raises(ValueError):
        bus.transfer(words)
    with pytest.raises(ValueError):
        bus.transfer_cycles(words)
    assert bus.words_transferred == 0
    assert bus.transactions == 0


def test_bus_transfer_rejects_non_integer_sizes():
    sim = Simulator()
    bus = ConfigBus(sim)
    with pytest.raises(ValueError):
        bus.transfer(2.5)
    with pytest.raises(ValueError):
        bus.transfer_cycles("10")


# --------------------------------------------------------------- scheduler
def test_scheduler_runs_single_task():
    sim = Simulator()
    sched = BudgetScheduler(sim)
    log = []

    def task():
        yield Compute(10)
        log.append(sim.now)

    sched.add_task(TaskSpec("t", task))
    sched.start()
    sim.run()
    assert log == [10]
    assert sched.all_finished


def test_scheduler_priority_order():
    sim = Simulator()
    sched = BudgetScheduler(sim, quantum=5)
    log = []

    def work(tag):
        def gen():
            yield Compute(10)
            log.append((tag, sim.now))
        return gen

    sched.add_task(TaskSpec("low", work("low"), priority=5))
    sched.add_task(TaskSpec("high", work("high"), priority=1))
    sched.start()
    sim.run()
    assert log[0][0] == "high"


def test_scheduler_budget_throttles_task():
    """A task with budget 10 per period 100 runs at most 10 cycles/period."""
    sim = Simulator()
    sched = BudgetScheduler(sim, quantum=10)
    log = []

    def hungry():
        yield Compute(30)
        log.append(sim.now)

    sched.add_task(TaskSpec("hungry", hungry, budget=10, period=100))
    sched.start()
    sim.run()
    # 10 cycles now, 10 more after t=100, last 10 after t=200
    assert log == [210]


def test_scheduler_budget_interference_bounded():
    """A low-priority task still gets the processor when the high-priority
    task's budget is exhausted (the scheduler's whole point, per [18])."""
    sim = Simulator()
    sched = BudgetScheduler(sim, quantum=10)
    log = []

    def spinner():
        while True:
            yield Compute(10)

    def background():
        yield Compute(20)
        log.append(sim.now)

    sched.add_task(TaskSpec("hog", spinner, priority=0, budget=50, period=100))
    sched.add_task(TaskSpec("bg", background, priority=9))
    sched.start()
    sim.run(until=400)
    # hog gets 50 of each 100 cycles; bg's 20 cycles fit in the first gap
    assert log and log[0] <= 100


def test_scheduler_get_put_between_tasks():
    sim = Simulator()
    ring = DualRing(sim, 4)
    fifo = CFifo(sim, ring, 0, 1, capacity=4)
    sched = BudgetScheduler(sim)
    got = []

    def producer():
        for i in range(3):
            yield Put(fifo, i)
            yield Compute(2)

    def consumer():
        for _ in range(3):
            v = yield Get(fifo)
            got.append(v)

    sched.add_task(TaskSpec("p", producer))
    sched.add_task(TaskSpec("c", consumer))
    sched.start()
    sim.run()
    assert got == [0, 1, 2]


def test_scheduler_sleep_releases_processor():
    sim = Simulator()
    sched = BudgetScheduler(sim)
    log = []

    def sleeper():
        yield Sleep(100)
        log.append(("sleeper", sim.now))

    def worker():
        yield Compute(10)
        log.append(("worker", sim.now))

    sched.add_task(TaskSpec("s", sleeper, priority=0))
    sched.add_task(TaskSpec("w", worker, priority=1))
    sched.start()
    sim.run()
    assert ("worker", 10) in log
    assert ("sleeper", 100) in log


def test_scheduler_task_stats():
    sim = Simulator()
    sched = BudgetScheduler(sim)

    def task():
        yield Compute(7)

    sched.add_task(TaskSpec("t", task))
    sched.start()
    sim.run()
    stats = sched.task_stats()
    assert stats["t"]["executed_cycles"] == 7
    assert stats["t"]["finished"] == 1


def test_scheduler_validation():
    sim = Simulator()
    sched = BudgetScheduler(sim)
    with pytest.raises(SimulationError):
        BudgetScheduler(sim, quantum=0)
    with pytest.raises(SimulationError):
        sched.start()  # no tasks

    def t():
        yield Compute(1)

    sched.add_task(TaskSpec("t", t))
    with pytest.raises(SimulationError):
        sched.add_task(TaskSpec("t", t))  # duplicate
    with pytest.raises(SimulationError):
        TaskSpec("bad", t, budget=0)


def test_scheduler_unknown_command_rejected():
    sim = Simulator()
    sched = BudgetScheduler(sim)

    def bad():
        yield "not a command"

    sched.add_task(TaskSpec("bad", bad))
    sched.start()
    with pytest.raises(SimulationError):
        sim.run()


# --------------------------------------------------------- accelerator tile
def make_tile(kernel, sim=None):
    sim = sim or Simulator()
    ring = DualRing(sim, 4)
    cin = HardwareFifoChannel(sim, ring, 0, 1, capacity=2, name="in")
    cout = HardwareFifoChannel(sim, ring, 1, 2, capacity=2, name="out")
    tile = AcceleratorTile(sim, "acc", kernel, cin, cout)
    return sim, cin, cout, tile


def test_tile_processes_stream():
    sim, cin, cout, tile = make_tile(MixerKernel(0.0))
    got = []

    def feed():
        for i in range(4):
            yield from cin.send(complex(i))

    def drain():
        for _ in range(4):
            w = yield from cout.recv()
            got.append(w)

    sim.process(feed())
    sim.process(drain())
    sim.run(until=200)
    assert [round(g.real, 6) for g in got] == [0, 1, 2, 3]
    assert tile.samples_in == 4


def test_tile_decimator_reduces_count():
    sim, cin, cout, tile = make_tile(FirDecimatorKernel(factor=4))
    got = []

    def feed():
        for i in range(8):
            yield from cin.send(1.0)

    def drain():
        for _ in range(2):
            w = yield from cout.recv()
            got.append(w)

    sim.process(feed())
    sim.process(drain())
    sim.run(until=500)
    assert len(got) == 2
    assert tile.samples_out == 2


def test_tile_state_save_restore_while_idle():
    sim, cin, cout, tile = make_tile(MixerKernel(0.25))
    sim.run(until=5)
    state = tile.save_state()
    assert state["freq_over_fs"] == 0.25
    tile.load_state({"freq_over_fs": 0.1, "phase": 0.5})
    assert tile.kernel.freq_over_fs == 0.1


def test_tile_state_words():
    _sim, _ci, _co, tile = make_tile(MixerKernel(0.1))
    assert tile.state_words == 2
