"""Unit tests for graph and system JSON serialisation."""

from fractions import Fraction

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    compute_block_sizes,
    dump_system,
    load_system,
    system_from_dict,
)
from repro.dataflow import (
    CSDFGraph,
    GraphError,
    SDFGraph,
    graph_dumps,
    graph_from_dict,
    graph_loads,
    graph_to_dict,
    repetition_vector,
    steady_state_throughput,
)


# ------------------------------------------------------------------ graphs
def sample_csdf():
    g = CSDFGraph("model")
    g.add_actor("gw", duration=[20, 5, 5], phases=3)
    g.add_actor("acc", duration=2)
    g.add_edge("gw", "acc", production=[1, 1, 0], consumption=1, tokens=1, name="ch")
    g.add_edge("acc", "gw", production=1, consumption=[1, 1, 0], tokens=2, name="cap:ch")
    return g


def test_graph_roundtrip_structure():
    g = sample_csdf()
    g2 = graph_loads(graph_dumps(g))
    assert g2.name == g.name
    assert set(g2.actors) == set(g.actors)
    assert set(g2.edges) == set(g.edges)
    assert g2.actor("gw").duration == g.actor("gw").duration
    assert g2.edge("ch").production == g.edge("ch").production
    assert g2.edge("cap:ch").tokens == 2


def test_graph_roundtrip_preserves_behaviour():
    g = sample_csdf()
    g2 = graph_loads(graph_dumps(g))
    assert repetition_vector(g2) == repetition_vector(g)
    r1 = steady_state_throughput(g, actor="acc").firing_rate
    r2 = steady_state_throughput(g2, actor="acc").firing_rate
    assert r1 == r2


def test_graph_roundtrip_sdf_kind():
    g = SDFGraph("s")
    g.add_actor("A", 1)
    g.add_actor("B", 2)
    g.add_edge("A", "B")
    g2 = graph_loads(graph_dumps(g))
    assert isinstance(g2, SDFGraph)


def test_graph_fraction_durations_exact():
    g = SDFGraph("f")
    g.add_actor("A", Fraction(10, 3))
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g2 = graph_loads(graph_dumps(g))
    assert g2.actor("A").duration[0] == Fraction(10, 3)
    assert isinstance(g2.actor("A").duration[0], Fraction)


def test_graph_bad_json_rejected():
    with pytest.raises(GraphError):
        graph_loads("{not json")


def test_graph_missing_keys_rejected():
    with pytest.raises(GraphError):
        graph_from_dict({"name": "x"})


def test_graph_dict_is_json_plain():
    import json

    json.dumps(graph_to_dict(sample_csdf()))  # must not raise


# ------------------------------------------------------------------ systems
def sample_system():
    return GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", 1), AcceleratorSpec("fir", 2)),
        streams=(
            StreamSpec("a", Fraction(1, 60), 4100, block_size=32),
            StreamSpec("b", Fraction(1, 240), 4100),
        ),
        entry_copy=15,
        exit_copy=1,
    )


def test_system_roundtrip():
    s = sample_system()
    s2 = load_system(dump_system(s))
    assert s2.entry_copy == 15
    assert [a.name for a in s2.accelerators] == ["cordic", "fir"]
    assert s2.stream("a").throughput == Fraction(1, 60)
    assert s2.stream("a").block_size == 32
    assert s2.stream("b").block_size is None


def test_system_roundtrip_preserves_analysis():
    s = sample_system()
    s2 = load_system(dump_system(s))
    assert compute_block_sizes(s).block_sizes == compute_block_sizes(s2).block_sizes


def test_system_from_rate_form():
    s = system_from_dict({
        "entry_copy": 10,
        "accelerators": [{"name": "a", "rho": 1}],
        "streams": [{"name": "s", "samples_per_second": 44100,
                     "clock_hz": 100_000_000, "reconfigure": 100}],
    })
    assert s.stream("s").throughput == Fraction(44100, 100_000_000)


def test_system_rate_without_clock_rejected():
    with pytest.raises(ParameterError, match="clock_hz"):
        system_from_dict({
            "accelerators": [{"name": "a", "rho": 1}],
            "streams": [{"name": "s", "samples_per_second": 44100,
                         "reconfigure": 1}],
        })


def test_system_no_throughput_rejected():
    with pytest.raises(ParameterError, match="throughput"):
        system_from_dict({
            "accelerators": [{"name": "a", "rho": 1}],
            "streams": [{"name": "s", "reconfigure": 1}],
        })


def test_system_bad_json_rejected():
    with pytest.raises(ParameterError):
        load_system("•not json•")


def test_system_missing_sections_rejected():
    with pytest.raises(ParameterError):
        system_from_dict({"streams": []})


def test_system_unknown_top_level_key_rejected_with_hint():
    with pytest.raises(ParameterError, match="did you mean 'entry_copy'"):
        system_from_dict({
            "entry_cpy": 15,
            "accelerators": [{"name": "a", "rho": 1}],
            "streams": [{"name": "s", "throughput": [1, 40],
                         "reconfigure": 1}],
        })


def test_system_unknown_key_without_close_match_lists_valid_keys():
    with pytest.raises(ParameterError, match="expected a subset of"):
        system_from_dict({
            "zzz": True,
            "accelerators": [{"name": "a", "rho": 1}],
            "streams": [{"name": "s", "throughput": [1, 40],
                         "reconfigure": 1}],
        })


def test_system_non_object_config_rejected():
    with pytest.raises(ParameterError, match="JSON object"):
        system_from_dict([1, 2, 3])
