"""The product-cipher kernels and application chain (second real app)."""

import pickle

import numpy as np
import pytest

from repro.accel import KernelError
from repro.accel.cipher import (
    KeyMixKernel,
    PermuteBlockKernel,
    SBoxKernel,
    block_permutation,
    invert_table,
    product_decrypt,
    product_encrypt,
    sbox_table,
)
from repro.app.product_cipher import (
    ProductCipherConfig,
    cipher_gateway_system,
    encrypt_functional,
    run_cipher_on_soc,
)
from repro.core import ParameterError


def bytes_for(n, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.int64)


# -- tables -------------------------------------------------------------------

def test_sbox_table_is_seeded_permutation():
    a, b = sbox_table(7), sbox_table(7)
    assert a == b and sorted(a) == list(range(256))
    assert sbox_table(8) != a


def test_invert_table_round_trips():
    table = sbox_table(5)
    inverse = invert_table(table)
    assert [inverse[v] for v in table] == list(range(256))
    with pytest.raises(KernelError, match="not a permutation"):
        invert_table((0, 0, 1))


def test_block_permutation_validates_width():
    assert sorted(block_permutation(8, 1)) == list(range(8))
    with pytest.raises(KernelError, match="width"):
        block_permutation(0, 1)


# -- kernels ------------------------------------------------------------------

def test_keymix_is_involution():
    data = bytes_for(32)
    enc = KeyMixKernel((0x11, 0x22))
    dec = KeyMixKernel((0x11, 0x22))
    once = [v for s in data for v in enc.process(s)]
    twice = [v for s in once for v in dec.process(s)]
    assert twice == [int(v) for v in data]


def test_keymix_state_round_trips_and_validates():
    k = KeyMixKernel((1, 2, 3))
    k.process(9)
    clone = KeyMixKernel()
    clone.set_state(pickle.loads(pickle.dumps(k.get_state())))
    assert clone.process(5) == k.process(5)
    with pytest.raises(KernelError, match="bad KeyMixKernel state"):
        KeyMixKernel().set_state({"key": [1], "pos": 4})


def test_sbox_rejects_non_permutation_state():
    with pytest.raises(KernelError, match="permutation of range"):
        SBoxKernel(seed=0).set_state({"table": [0] * 256})


def test_permute_block_buffers_then_bursts():
    p = PermuteBlockKernel((2, 0, 1))
    assert p.process(10) == [] and p.process(11) == []
    assert p.process(12) == [12, 10, 11]
    with pytest.raises(KernelError, match="residue"):
        PermuteBlockKernel((1, 0)).set_state({"perm": [1, 0],
                                              "buffer": [1, 2]})


def test_product_chain_round_trips():
    data = bytes_for(64)
    cipher = product_encrypt(data, sbox_seed=4)
    assert not np.array_equal(cipher, data)
    plain = product_decrypt(cipher, sbox_seed=4)
    assert np.array_equal(plain, data)


# -- application config -------------------------------------------------------

def test_config_validates_eta_width_and_load():
    with pytest.raises(ParameterError, match="multiple of the permutation"):
        ProductCipherConfig(eta=10, width=8)
    with pytest.raises(ParameterError, match="load_pct"):
        ProductCipherConfig(load_pct=99)
    with pytest.raises(ParameterError, match="at least one session"):
        ProductCipherConfig(sessions=0)


def test_gateway_system_shape_and_load():
    config = ProductCipherConfig(sessions=4, load_pct=40)
    system = cipher_gateway_system(config)
    assert [a.rho for a in system.accelerators] == [1, 1, 2]
    assert len(system.streams) == 4
    assert len({s.throughput for s in system.streams}) == 1
    # aggregate Eq. 5 load lands on the requested percentage
    c0 = max(system.entry_copy, system.exit_copy,
             *[a.rho for a in system.accelerators])
    load = c0 * sum(s.throughput for s in system.streams)
    assert float(load) == pytest.approx(0.40)


def test_session_states_differ_between_sessions():
    config = ProductCipherConfig()
    s0, s1 = config.session_states(0), config.session_states(1)
    assert s0[0]["key"] != s1[0]["key"]
    assert s0[1]["table"] != s1[1]["table"]


def test_soc_matches_functional_reference():
    config = ProductCipherConfig(sessions=2, eta=8, width=4,
                                 reconfigure_cycles=60)
    plaintexts = {
        "enc0": bytes_for(16, seed=1),
        "enc1": bytes_for(16, seed=2),
    }
    out, handles = run_cipher_on_soc(config, plaintexts)
    for i, name in enumerate(sorted(plaintexts)):
        expected = encrypt_functional(plaintexts[name], config, session=i)
        assert np.array_equal(out[name], expected), name
    metrics = handles.stream_metrics()
    assert all(m.blocks_done >= 2 for m in metrics.values())
