"""The repro.api facade: Scenario builder, RunResult views, report schema."""

import json
from dataclasses import replace
from fractions import Fraction

import pytest

from repro.api import RunResult, Scenario, load_scenario, simulate
from repro.core import AcceleratorSpec, GatewaySystem, ParameterError, StreamSpec
from repro.core.config_io import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    ReportError,
    dump_report,
    load_report,
    make_report,
    system_to_dict,
)
from repro.sim.faults import FaultPlan


@pytest.fixture
def small_system():
    return GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(
            StreamSpec("s0", Fraction(1, 100_000), 40, block_size=8),
            StreamSpec("s1", Fraction(1, 200_000), 40, block_size=4),
        ),
        entry_copy=6,
        exit_copy=1,
    )


@pytest.fixture
def unsolved_system(small_system):
    return replace(
        small_system,
        streams=tuple(
            replace(s, block_size=None) for s in small_system.streams
        ),
    )


# -- Scenario builder ---------------------------------------------------------

def test_builders_return_new_frozen_scenarios(small_system):
    base = Scenario(small_system)
    varied = base.with_blocks(7).with_backend("bnb").with_spares(2)
    assert base.blocks == 4 and base.spares == 0
    assert (varied.blocks, varied.backend, varied.spares) == (7, "bnb", 2)
    with pytest.raises(AttributeError):
        base.blocks = 9


def test_with_trace_sets_mode(small_system):
    s = Scenario(small_system).with_trace(True, mode="ring")
    assert (s.trace, s.trace_mode) == (True, "ring")


def test_solve_is_noop_when_sizes_assigned(small_system):
    s = Scenario(small_system)
    assert s.solve() is s


def test_solve_assigns_missing_sizes(unsolved_system):
    solved = Scenario(unsolved_system).solve()
    assert all(s.block_size is not None for s in solved.system.streams)


def test_with_block_sizes_pins_instead_of_solving(unsolved_system):
    s = Scenario(unsolved_system).with_block_sizes({"s0": 8, "s1": 4})
    assert [st.block_size for st in s.system.streams] == [8, 4]


# -- build / RunResult --------------------------------------------------------

def test_build_runs_simulation(small_system):
    result = Scenario(small_system).with_blocks(3).build()
    assert isinstance(result, RunResult)
    metrics = result.metrics()
    assert all(m.blocks_done == 3 for m in metrics.values())
    assert result.horizon > 0
    assert result.solver is None  # sizes were pinned, nothing solved


def test_build_solves_and_records_solver(unsolved_system):
    result = Scenario(unsolved_system).with_blocks(2).build()
    assert result.solver is not None
    assert result.solver.block_sizes.keys() == {"s0", "s1"}


def test_metrics_cached(small_system):
    result = Scenario(small_system).with_blocks(2).build()
    assert result.metrics() is result.metrics()


def test_conformance_ok_on_clean_run(small_system):
    result = Scenario(small_system).with_blocks(3).build()
    assert result.conformance().ok


def test_reconfig_view_requires_churn_or_spares(small_system):
    result = Scenario(small_system).with_blocks(2).build()
    assert result.reconfig is None
    with pytest.raises(ParameterError, match="churn run"):
        result.report("reconfig")


def test_spares_arm_the_reconfig_view(small_system):
    result = Scenario(small_system).with_blocks(2).with_spares(1).build()
    assert result.reconfig is not None
    report = result.report("reconfig")
    assert report["kind"] == "reconfig"
    assert report["transitions"] == []


# -- report envelopes ---------------------------------------------------------

def test_metrics_report_envelope_and_body(small_system):
    report = Scenario(small_system).with_blocks(2).build().report("metrics")
    assert report["schema"] == REPORT_SCHEMA
    assert report["version"] == REPORT_SCHEMA_VERSION
    assert report["kind"] == "metrics"
    # historical CLI keys survive at the top level
    assert {"horizon", "streams", "gateway"} <= set(report)
    assert report["gateway"]["copy"] >= 0
    json.dumps(report)  # JSON-serialisable end to end


def test_conformance_report_keeps_ok_key(small_system):
    report = Scenario(small_system).with_blocks(2).build().report("conformance")
    assert report["kind"] == "conformance"
    assert report["ok"] is True
    assert isinstance(report["streams"], list)


def test_faults_report_with_plan(small_system):
    result = (
        Scenario(small_system).with_blocks(2).with_faults(FaultPlan()).build()
    )
    report = result.report("faults")
    assert report["kind"] == "faults"
    assert report["injected"] == []


def test_run_report_merges_sections(unsolved_system):
    report = Scenario(unsolved_system).with_blocks(2).build().report()
    assert report["kind"] == "run"
    assert {"streams", "gateway", "conformance", "solver"} <= set(report)
    assert report["solver"]["objective"] >= 2


def test_unknown_report_kind_rejected(small_system):
    result = Scenario(small_system).with_blocks(2).build()
    with pytest.raises(ParameterError, match="unknown report kind"):
        result.report("nope")


# -- report schema round-trip -------------------------------------------------

def test_report_round_trip():
    report = make_report("metrics", {"horizon": 1, "streams": []})
    again = load_report(dump_report(report))
    assert again == report


def test_make_report_rejects_unknown_kind():
    with pytest.raises(ReportError, match="unknown report kind"):
        make_report("bogus", {})


def test_make_report_rejects_envelope_shadowing():
    with pytest.raises(ReportError, match="shadows envelope"):
        make_report("metrics", {"schema": "evil"})


def test_load_report_rejects_wrong_schema():
    blob = json.dumps({"schema": "other", "version": 1, "kind": "metrics"})
    with pytest.raises(ReportError, match="schema"):
        load_report(blob)


def test_load_report_rejects_future_version():
    blob = json.dumps(
        {"schema": REPORT_SCHEMA, "version": 99, "kind": "metrics"}
    )
    with pytest.raises(ReportError, match="version"):
        load_report(blob)


# -- load_scenario ------------------------------------------------------------

def test_load_scenario_from_json_text(small_system):
    text = json.dumps(system_to_dict(small_system))
    scenario = load_scenario(text)
    assert scenario.system == small_system


def test_load_scenario_from_path(tmp_path, small_system):
    path = tmp_path / "sys.json"
    path.write_text(json.dumps(system_to_dict(small_system)))
    assert load_scenario(path).system == small_system
    assert load_scenario(str(path)).system == small_system


def test_load_scenario_missing_file():
    with pytest.raises(ParameterError, match="cannot read scenario config"):
        load_scenario("/nonexistent/system.json")


# -- deprecation shims --------------------------------------------------------

def test_simulate_shim_warns_and_delegates(small_system):
    with pytest.warns(DeprecationWarning,
                      match=r"Scenario\(system\)\.build\(\)"):
        run = simulate(small_system, blocks=2, trace=False)
    assert all(m.blocks_done == 2 for m in run.metrics().values())


def test_simulate_shim_matches_facade(small_system):
    with pytest.warns(DeprecationWarning):
        run = simulate(small_system, blocks=3, trace=False)
    via_facade = (
        Scenario(small_system).with_blocks(3).with_trace(False).build().run
    )
    assert run.horizon == via_facade.horizon
    with pytest.warns(DeprecationWarning), pytest.raises(TypeError,
                                                         match="bogus"):
        simulate(small_system, bogus=1)


def test_simulate_shim_requires_block_sizes(unsolved_system):
    with pytest.warns(DeprecationWarning), pytest.raises(ParameterError):
        simulate(unsolved_system, blocks=2)


def test_cli_shim_warns(small_system):
    from types import SimpleNamespace

    from repro.__main__ import _simulated_run

    args = SimpleNamespace(
        config=json.dumps(system_to_dict(small_system)),
        blocks=2,
        backend="scipy",
    )
    with pytest.warns(DeprecationWarning):
        run = _simulated_run(args)
    assert run.horizon > 0
    with pytest.warns(DeprecationWarning), pytest.raises(TypeError):
        _simulated_run(args, bogus=1)


def test_implicit_pal_construction_warns_and_selects_decoder():
    with pytest.warns(DeprecationWarning, match="PAL decoder"):
        scenario = Scenario()
    assert {s.name for s in scenario.system.streams} == {
        "ch1.s1", "ch1.s2", "ch2.s1", "ch2.s2",
    }


# -- registry front door ------------------------------------------------------

def test_from_registry_builds_named_scenario():
    scenario = Scenario.from_registry("product_cipher", sessions=2)
    assert len(scenario.system.streams) == 2
    inline = Scenario.from_registry("product_cipher?sessions=2")
    assert inline.system == scenario.system


def test_report_churn_uses_modal_conformance():
    # after an online re-solve the static model's η is stale; the run and
    # conformance reports must carry the per-mode merged view instead of
    # crashing on the η mismatch
    result = Scenario.from_registry("multi_mode?modes=2&period=1200").build()
    assert result.reconfig is not None
    merged = result.mode_conformance().merged().to_dict()
    assert result.report("run")["conformance"] == merged
    conf = result.report("conformance")
    assert conf["ok"] == merged["ok"]
    assert conf["streams"] == merged["streams"]


def test_from_registry_rejects_unknown(small_system):
    from repro.app.scenarios import ScenarioError

    with pytest.raises(ScenarioError, match="unknown scenario"):
        Scenario.from_registry("no_such_thing")
    with pytest.raises(ScenarioError, match="no parameter"):
        Scenario.from_registry("generated", sede=1)


def test_load_scenario_routes_registry_uris():
    scenario = load_scenario("scenario://generated?seed=42")
    from repro.app.scenarios import generate

    assert scenario.system == generate(seed=42).system


def test_run_result_clean_property(small_system):
    result = Scenario(small_system).with_blocks(2).build()
    assert result.clean is result.attributed_conformance().fully_attributed
    assert result.clean


def test_with_trace_capacity_validated(small_system):
    s = Scenario(small_system).with_trace(True, mode="ring", capacity=128)
    assert s.trace_capacity == 128
    with pytest.raises(ParameterError, match="capacity"):
        Scenario(small_system).with_trace(True, mode="ring", capacity=0)


def test_with_no_fastpath_round_trips(small_system):
    s = Scenario(small_system).with_no_fastpath()
    assert s.no_fastpath is True
    result_slow = s.with_blocks(2).build()
    result_fast = Scenario(small_system).with_blocks(2).build()
    # functional equivalence: the fast path is an optimisation only
    assert {n: m.blocks_done for n, m in result_slow.metrics().items()} == \
        {n: m.blocks_done for n, m in result_fast.metrics().items()}


def test_facade_matches_direct_harness_call(small_system):
    from repro.arch import simulate_system

    direct = simulate_system(small_system, blocks=3, trace=False)
    via_api = Scenario(small_system).with_blocks(3).with_trace(False).build()
    assert via_api.horizon == direct.horizon
    assert {n: m.to_dict() for n, m in via_api.metrics().items()} == {
        n: m.to_dict() for n, m in direct.metrics().items()
    }


# ---------------------------------------------------------------------------
# builder error paths: every bad value fails at the call that introduced it
# ---------------------------------------------------------------------------

def _unsolved_system():
    return GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(StreamSpec("s0", Fraction(1, 6000), 100),),
        entry_copy=15,
        exit_copy=1,
    )


def test_with_backend_rejects_unknown_backend_eagerly(small_system):
    with pytest.raises(ParameterError, match="unknown ILP backend 'gurobi'"):
        Scenario(system=small_system).with_backend("gurobi")


def test_with_blocks_rejects_non_positive(small_system):
    with pytest.raises(ParameterError, match="blocks must be >= 1"):
        Scenario(system=small_system).with_blocks(0)


def test_with_spares_rejects_negative(small_system):
    with pytest.raises(ParameterError, match="spares must be >= 0"):
        Scenario(system=small_system).with_spares(-1)


def test_with_max_cycles_rejects_non_positive(small_system):
    with pytest.raises(ParameterError, match="max_cycles must be >= 1"):
        Scenario(system=small_system).with_max_cycles(0)
    # None stays the documented "no cap" spelling
    assert Scenario(system=small_system).with_max_cycles(None).max_cycles is None


def test_with_block_sizes_conflicts_with_solve():
    scenario = Scenario(system=_unsolved_system()).solve()
    solved = scenario.system.stream("s0").block_size
    with pytest.raises(ParameterError, match="conflicts with already-assigned"):
        scenario.with_block_sizes({"s0": solved + 1})
    # re-pinning the identical size is not a conflict
    again = scenario.with_block_sizes({"s0": solved})
    assert again.system.stream("s0").block_size == solved


def test_with_block_sizes_on_unsolved_system_still_pins():
    scenario = Scenario(system=_unsolved_system()).with_block_sizes({"s0": 9})
    assert scenario.system.stream("s0").block_size == 9
