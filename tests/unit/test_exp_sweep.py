"""Sweep specs: eager validation, grid expansion, deterministic seeding."""

import os

import pytest

from repro.exp import Sweep, SweepError, SweepPoint, point_seed, run_sweep
from repro.exp.tasks import fig8_min_buffer, get_task


def echo_task(params, ctx):
    """Module-level (hence picklable) task used across these tests."""
    return {"params": dict(params), "seed": ctx.seed}


# -- construction -------------------------------------------------------------

def test_grid_expands_cartesian_product_in_order():
    sweep = Sweep.grid("g", echo_task, axes={"a": [1, 2], "b": ["x", "y"]})
    assert [p.id for p in sweep.points] == [
        "a=1,b=x", "a=1,b=y", "a=2,b=x", "a=2,b=y",
    ]
    assert sweep.points[2].params == {"a": 2, "b": "x"}


def test_grid_merges_base_params():
    sweep = Sweep.grid("g", echo_task, axes={"a": [1]}, base={"k": 7})
    assert sweep.points[0].params == {"k": 7, "a": 1}


def test_grid_axis_overrides_base():
    sweep = Sweep.grid("g", echo_task, axes={"a": [5]}, base={"a": 1})
    assert sweep.points[0].params == {"a": 5}


def test_points_accept_id_params_mappings():
    sweep = Sweep("s", echo_task, [{"id": "first", "params": {"a": 1}}])
    assert sweep.points[0].id == "first"
    assert sweep.points[0].params == {"a": 1}


def test_plain_mappings_synthesise_ids():
    sweep = Sweep("s", echo_task, [{"a": 1}, {"a": 2}])
    assert [p.id for p in sweep.points] == ["a=1", "a=2"]


def test_sweep_point_seeds_are_rederived():
    point = SweepPoint(id="p", params={}, seed=999)
    sweep = Sweep("s", echo_task, [point], seed=3)
    assert sweep.points[0].seed == point_seed(3, "s", "p")
    assert sweep.points[0].seed != 999


# -- eager validation ---------------------------------------------------------

def test_empty_points_rejected():
    with pytest.raises(SweepError, match="no points"):
        Sweep("s", echo_task, [])


def test_empty_axes_rejected():
    with pytest.raises(SweepError, match="empty axes"):
        Sweep.grid("s", echo_task, axes={})


def test_empty_axis_rejected():
    with pytest.raises(SweepError, match="axis 'a' is empty"):
        Sweep.grid("s", echo_task, axes={"a": []})


def test_scalar_axis_rejected():
    with pytest.raises(SweepError, match="must be a sequence"):
        Sweep.grid("s", echo_task, axes={"a": 3})


def test_string_axis_rejected():
    with pytest.raises(SweepError, match="must be a sequence"):
        Sweep.grid("s", echo_task, axes={"a": "abc"})


def test_duplicate_ids_rejected():
    points = [
        {"id": "same", "params": {"a": 1}},
        {"id": "same", "params": {"a": 2}},
    ]
    with pytest.raises(SweepError, match="duplicate point ids: \\['same'\\]"):
        Sweep("s", echo_task, points)


def test_lambda_task_rejected_up_front():
    with pytest.raises(SweepError, match="lambda or closure"):
        Sweep("s", lambda params, ctx: {}, [{"a": 1}])


def test_closure_task_rejected_up_front():
    def outer():
        bound = 42

        def inner(params, ctx):
            return {"v": bound}

        return inner

    with pytest.raises(SweepError, match="picklable"):
        Sweep("s", outer(), [{"a": 1}])


def test_non_callable_task_rejected():
    with pytest.raises(SweepError, match="must be callable"):
        Sweep("s", 42, [{"a": 1}])


def test_unknown_task_name_rejected():
    # strings resolve through the built-in task registry
    with pytest.raises(SweepError, match="unknown sweep task"):
        Sweep("s", "not-a-task", [{"a": 1}])


def test_task_name_resolves_builtin():
    sweep = Sweep("s", "fig8-buffers", [{"eta": 2}])
    from repro.exp.tasks import fig8_min_buffer

    assert sweep.task is fig8_min_buffer


def test_scenario_ref_task_folds_params():
    sweep = Sweep("s", "scenario://generated?seed=7", [{"blocks": 2}])
    point = sweep.points[0]
    assert point.params["scenario"] == "generated"
    assert point.params["seed"] == 7
    # explicit point params win over the reference's values
    assert point.params["blocks"] == 2


def test_scenario_ref_task_validates_eagerly():
    with pytest.raises(SweepError, match="did you mean"):
        Sweep("s", "scenario://generated?sede=7", [{"a": 1}])


def test_non_json_params_rejected():
    with pytest.raises(SweepError, match="JSON-serialisable"):
        Sweep("s", echo_task, [{"a": {1, 2, 3}}])


def test_non_picklable_params_rejected():
    with pytest.raises(SweepError, match="not picklable"):
        Sweep("s", echo_task, [{"f": lambda: None}])


def test_bad_sweep_name_rejected():
    for bad in ("", "has space", "slash/y", 42):
        with pytest.raises(SweepError, match="sweep name"):
            Sweep(bad, echo_task, [{"a": 1}])


def test_bad_point_type_rejected():
    with pytest.raises(SweepError, match="SweepPoint or a params mapping"):
        Sweep("s", echo_task, [("a", 1)])


def test_explicit_point_bad_id_rejected():
    with pytest.raises(SweepError, match="non-empty string"):
        Sweep("s", echo_task, [{"id": "", "params": {}}])


def test_explicit_point_bad_params_rejected():
    with pytest.raises(SweepError, match="must be a mapping"):
        Sweep("s", echo_task, [{"id": "p", "params": [1, 2]}])


def test_unknown_task_name():
    with pytest.raises(SweepError, match="unknown sweep task"):
        get_task("definitely-not-registered")


# -- deterministic seeding ----------------------------------------------------

def test_point_seed_is_pure():
    assert point_seed(0, "s", "p") == point_seed(0, "s", "p")


def test_point_seed_varies_with_every_input():
    base = point_seed(0, "s", "p")
    assert point_seed(1, "s", "p") != base
    assert point_seed(0, "t", "p") != base
    assert point_seed(0, "s", "q") != base


def test_point_seed_fits_32_bits():
    for i in range(50):
        assert 0 <= point_seed(i, "sweep", f"point{i}") < 2**32


def test_seeds_independent_of_point_order():
    forward = Sweep("s", echo_task, [{"a": 1}, {"a": 2}])
    backward = Sweep("s", echo_task, [{"a": 2}, {"a": 1}])
    by_id_f = {p.id: p.seed for p in forward.points}
    by_id_b = {p.id: p.seed for p in backward.points}
    assert by_id_f == by_id_b


def test_task_sees_point_seed():
    sweep = Sweep("seeded", echo_task, [{"a": 1}], seed=11)
    result = run_sweep(sweep, workers=1)
    assert result.outcomes[0].value["seed"] == point_seed(11, "seeded", "a=1")


# -- chunking -----------------------------------------------------------------

def test_chunk_size_default_is_constant():
    from repro.exp.engine import DEFAULT_CHUNK_SIZE

    assert DEFAULT_CHUNK_SIZE == 4
    sweep = Sweep.grid("g", echo_task, axes={"a": list(range(9))})
    result = run_sweep(sweep, workers=1)
    assert result.chunk_size == DEFAULT_CHUNK_SIZE


def test_outcomes_keep_sweep_order_regardless_of_chunking():
    sweep = Sweep.grid("g", echo_task, axes={"a": list(range(10))})
    result = run_sweep(sweep, workers=1, chunk_size=3)
    assert [o.params["a"] for o in result.outcomes] == list(range(10))


def test_invalid_chunk_size_rejected():
    sweep = Sweep("s", echo_task, [{"a": 1}])
    with pytest.raises(SweepError, match="chunk_size"):
        run_sweep(sweep, workers=1, chunk_size=0)


def test_real_task_runs_serially():
    sweep = Sweep.grid("fig8", fig8_min_buffer, axes={"eta": [1, 5]})
    result = run_sweep(sweep, workers=1)
    assert result.ok
    assert [o.value["alpha"] for o in result.outcomes] == [5, 5]


# -- per-point timeout must not clobber an outer ITIMER_REAL budget --------


def _quick_task(params, ctx):
    return {"ok": True}


def _slow_task(params, ctx):
    import time
    time.sleep(5)
    return {"ok": True}


@pytest.mark.timeout(60, method="thread")
def test_point_timeout_restores_outer_itimer():
    """An outer SIGALRM budget survives a guarded point that finishes."""
    import signal

    from repro.exp.engine import PointContext, _call_with_timeout

    point = SweepPoint(id="p0", params={}, seed=1)
    signal.setitimer(signal.ITIMER_REAL, 30.0)
    try:
        _call_with_timeout(_quick_task, point, PointContext(seed=1), 5.0)
        remaining, interval = signal.getitimer(signal.ITIMER_REAL)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
    # the outer budget is re-armed with its remaining time, not wiped
    assert 25.0 < remaining <= 30.0
    assert interval == 0.0


@pytest.mark.timeout(60, method="thread")
def test_point_timeout_expiry_restores_outer_itimer():
    """The outer budget survives even when the point times out."""
    import signal

    from repro.exp.engine import (
        PointContext,
        _PointTimeout,
        _call_with_timeout,
    )

    point = SweepPoint(id="p0", params={}, seed=1)
    signal.setitimer(signal.ITIMER_REAL, 30.0)
    try:
        with pytest.raises(_PointTimeout):
            _call_with_timeout(_slow_task, point, PointContext(seed=1), 0.05)
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
    assert 25.0 < remaining <= 30.0


@pytest.mark.timeout(60, method="thread")
def test_point_timeout_without_outer_itimer_disarms():
    import signal

    from repro.exp.engine import PointContext, _call_with_timeout

    point = SweepPoint(id="p0", params={}, seed=1)
    _call_with_timeout(_quick_task, point, PointContext(seed=1), 5.0)
    remaining, _ = signal.getitimer(signal.ITIMER_REAL)
    assert remaining == 0.0


# -- execution attribution: serial runs can't masquerade as parallel -------


def test_report_records_worker_attribution():
    sweep = Sweep.grid("fig8", fig8_min_buffer, axes={"eta": [1, 5, 9]})
    result = run_sweep(sweep, workers=1, chunk_size=2)
    report = result.to_report()
    execution = report["execution"]
    assert execution["requested_workers"] == 1
    assert execution["workers"] == 1
    assert execution["effective_workers"] == 1
    assert execution["mode"] == "serial"
    assert execution["chunk_count"] == 2
    assert execution["cpu_count"] == os.cpu_count()


def test_engine_picked_workers_recorded_as_unrequested():
    sweep = Sweep.grid("fig8", fig8_min_buffer, axes={"eta": [1]})
    result = run_sweep(sweep)  # workers=None: engine picks
    execution = result.to_report()["execution"]
    assert execution["requested_workers"] is None
    assert execution["workers"] >= 1
    # effective workers never exceeds the work available
    assert execution["effective_workers"] <= max(1, execution["chunk_count"])


# -- portable timeout fallback + retry attribution -------------------------


def _flaky_task(params, ctx):
    """Fails its first ``fail_times`` attempts, then succeeds."""
    if ctx.attempt < params["fail_times"]:
        raise RuntimeError(f"transient failure #{ctx.attempt}")
    return {"ok": True, "seed": ctx.seed}


@pytest.mark.timeout(60, method="thread")
def test_wall_clock_fallback_off_main_thread():
    """Where SIGALRM is unavailable the watchdog thread enforces the budget."""
    import threading

    from repro.exp.runner import (
        TIMEOUT_WALL_CLOCK,
        PointContext,
        _PointTimeout,
        _call_with_timeout,
    )

    point = SweepPoint(id="p0", params={}, seed=1)
    box = {}

    def run_off_main():
        try:
            _, mechanism = _call_with_timeout(
                _quick_task, point, PointContext(seed=1), 5.0
            )
            box["mechanism"] = mechanism
            try:
                _call_with_timeout(
                    _slow_task, point, PointContext(seed=1), 0.05
                )
            except _PointTimeout as err:
                box["expired"] = err.mechanism
        except BaseException as exc:  # surfaced below, not swallowed
            box["error"] = exc

    thread = threading.Thread(target=run_off_main)
    thread.start()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert "error" not in box, box
    assert box["mechanism"] == TIMEOUT_WALL_CLOCK
    assert box["expired"] == TIMEOUT_WALL_CLOCK


def test_report_records_timeout_mechanism():
    sweep = Sweep("timed", _quick_task, [{"x": 0}, {"x": 1}])
    result = run_sweep(sweep, workers=1, timeout=5.0)
    timeout = result.to_report()["execution"]["timeout"]
    assert timeout["limit_s"] == 5.0
    assert timeout["mechanism"] in ("sigalrm", "wall-clock")
    # no budget armed -> no mechanism claimed
    bare = run_sweep(sweep, workers=1)
    assert bare.to_report()["execution"]["timeout"] == {
        "limit_s": None,
        "mechanism": None,
    }


def test_retry_records_decisive_seed_and_attempts():
    sweep = Sweep(
        "flaky",
        _flaky_task,
        [{"i": 0, "fail_times": 0}, {"i": 1, "fail_times": 2}],
        seed=6,
    )
    result = run_sweep(sweep, workers=1, retries=2)
    assert result.ok
    (retried,) = result.retried
    assert retried.attempts == 3
    assert retried.retry_seed == retried.seed + 2
    # the task really ran under the derived seed it reports
    assert retried.value["seed"] == retried.retry_seed
    clean = next(o for o in result.outcomes if o is not retried)
    assert clean.attempts == 1 and clean.retry_seed is None
    recorded = result.to_report()["execution"]["retried_points"]
    assert recorded == {
        retried.id: {"attempts": 3, "retry_seed": retried.retry_seed}
    }


def test_retry_seed_is_part_of_the_digest_deterministically():
    sweep = Sweep(
        "flaky_digest", _flaky_task, [{"i": 0, "fail_times": 1}], seed=2
    )
    first = run_sweep(sweep, workers=1, retries=1)
    second = run_sweep(sweep, workers=1, retries=1)
    assert first.digest() == second.digest()
    assert first.payload()[0]["retry_seed"] is not None


def test_retry_delay_is_seeded_exponential_backoff():
    from repro.exp import retry_delay

    assert retry_delay(0.0, seed=42, attempt=1) == 0.0
    first = retry_delay(0.1, seed=42, attempt=1)
    assert first == retry_delay(0.1, seed=42, attempt=1)
    assert 0.05 <= first < 0.1
    second = retry_delay(0.1, seed=42, attempt=2)
    assert 0.1 <= second < 0.2
    assert retry_delay(0.1, seed=43, attempt=1) != first
