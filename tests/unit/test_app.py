"""Unit tests for the PAL application layer and analysis bridge."""

from fractions import Fraction

import numpy as np
import pytest

from repro.accel import CordicKernel, KernelError, PalChannelPlan, make_test_tones, run_kernel
from repro.app import (
    PAPER_BLOCK_SIZES,
    PalDecoderConfig,
    decode_functional,
    pal_block_sizes,
    pal_gateway_system,
)
from repro.accel import synthesize_pal_baseband
from repro.core import gamma, sharing_load, throughput_satisfied


# ------------------------------------------------------------ CordicKernel
def test_cordic_kernel_modes():
    with pytest.raises(KernelError):
        CordicKernel("bogus")
    mix = CordicKernel("mix", 0.1)
    fm = CordicKernel("fm")
    assert mix.get_state()["mode"] == "mix"
    assert fm.get_state()["mode"] == "fm"


def test_cordic_kernel_mode_switch_via_state():
    """One physical kernel alternates between mixer and discriminator —
    the configurable-accelerator behaviour the gateways rely on."""
    k = CordicKernel("mix", 0.25)
    out_mix = run_kernel(k, np.ones(4, dtype=complex))
    k.set_state(CordicKernel("fm").get_state())
    s = np.exp(2j * np.pi * 0.05 * np.arange(8))
    out_fm = run_kernel(k, s)
    assert np.iscomplexobj(out_mix)
    assert np.allclose(out_fm[1:], 2 * np.pi * 0.05, atol=1e-3)


def test_cordic_kernel_matches_specialised_kernels():
    from repro.accel import FMDiscriminatorKernel, MixerKernel

    s = np.exp(2j * np.pi * 0.03 * np.arange(16)) * (1 + 0.5j)
    assert np.allclose(
        run_kernel(CordicKernel("mix", 0.03), s.copy()),
        run_kernel(MixerKernel(0.03), s.copy()),
    )
    assert np.allclose(
        run_kernel(CordicKernel("fm"), s.copy()),
        run_kernel(FMDiscriminatorKernel(), s.copy()),
    )


def test_cordic_kernel_state_validation():
    k = CordicKernel()
    with pytest.raises(KernelError):
        k.set_state({"mode": "bogus", "freq_over_fs": 0, "phase": 0, "prev_phase": 0})
    with pytest.raises(KernelError):
        k.set_state({"mode": "mix"})


# ------------------------------------------------------------------ config
def test_config_eta_must_match_decimation():
    with pytest.raises(ValueError):
        PalDecoderConfig(eta_stage1=60)  # not a multiple of 8
    with pytest.raises(ValueError):
        PalDecoderConfig(eta_stage2=9)


def test_config_stage_states_shapes():
    cfg = PalDecoderConfig()
    s1 = cfg.stage1_states(cfg.plan.carrier1)
    s2 = cfg.stage2_states()
    assert s1[0]["mode"] == "mix"
    assert s2[0]["mode"] == "fm"
    assert len(s1[1]["coefficients"]) == 33


# -------------------------------------------------------------- functional
def test_decode_functional_recovers_tones():
    plan = PalChannelPlan()
    cfg = PalDecoderConfig(plan=plan)
    left, right = make_test_tones(96, audio_rate=plan.audio_rate,
                                  f_left=440, f_right=1000)
    bb = synthesize_pal_baseband(left, right, plan)
    l_rec, r_rec = decode_functional(bb, cfg)
    assert len(l_rec) == 96
    from repro.accel import correlation

    skip = 8
    assert correlation(l_rec[skip:], left[skip : skip + len(l_rec) - skip]) > 0.9
    assert correlation(r_rec[skip:], right[skip : skip + len(r_rec) - skip]) > 0.9


def test_decode_functional_stereo_separation():
    """The L tone must not leak strongly into R and vice versa."""
    from repro.accel import tone_snr

    plan = PalChannelPlan()
    cfg = PalDecoderConfig(plan=plan)
    left, right = make_test_tones(192, audio_rate=plan.audio_rate,
                                  f_left=440, f_right=1000)
    bb = synthesize_pal_baseband(left, right, plan)
    l_rec, r_rec = decode_functional(bb, cfg)
    assert tone_snr(l_rec[16:], 440, plan.audio_rate) > 6
    assert tone_snr(r_rec[16:], 1000, plan.audio_rate) > 6


# ---------------------------------------------------------- analysis bridge
def test_pal_gateway_system_structure():
    sys_ = pal_gateway_system()
    assert len(sys_.streams) == 4
    assert len(sys_.accelerators) == 2
    assert sys_.c0 == 15
    # stage-1 streams demand 8x the stage-2 rate
    assert sys_.stream("ch1.s1").throughput == 8 * sys_.stream("ch1.s2").throughput


def test_pal_load_is_near_saturation():
    """The prototype runs its gateway at ~95% load (paper Section VI-A)."""
    load = sharing_load(pal_gateway_system())
    assert 0.94 < float(load) < 0.96


def test_pal_block_sizes_match_paper_shape():
    sizes = pal_block_sizes()
    s1, s2 = sizes["ch1.s1"], sizes["ch1.s2"]
    # symmetric channels
    assert sizes["ch2.s1"] == s1 and sizes["ch2.s2"] == s2
    # the 8:1 structure (paper: 10136 vs 1267, exactly 8:1)
    assert s1 == pytest.approx(8 * s2, rel=0.01)
    # magnitudes within a few percent of the published values
    assert s1 == pytest.approx(PAPER_BLOCK_SIZES["stage1"], rel=0.05)
    assert s2 == pytest.approx(PAPER_BLOCK_SIZES["stage2"], rel=0.05)


def test_pal_block_sizes_satisfy_eq5():
    sys_ = pal_gateway_system()
    sizes = pal_block_sizes()
    assigned = sys_.with_block_sizes(sizes)
    assert throughput_satisfied(assigned)


def test_pal_round_fits_realtime_budget():
    """γ must fit within the audio time the blocks carry (44.1 kS/s)."""
    sys_ = pal_gateway_system()
    assigned = sys_.with_block_sizes(pal_block_sizes())
    s2 = assigned.stream("ch1.s2")
    # one rotation delivers η_s2 stage-2 input samples = η_s2/8 audio samples
    budget_cycles = Fraction(s2.block_size or 0, 8 * 44_100) * 100_000_000
    assert gamma(assigned, "ch1.s2") <= budget_cycles


def test_pal_paper_exact_block_sizes_with_margin():
    """A 0.127% rate margin reproduces the paper's EXACT 10136/1267 —
    the unstated calibration constant of the prototype (see EXPERIMENTS.md)."""
    sizes = pal_block_sizes(rate_margin=Fraction(100127, 100000))
    assert sizes["ch1.s1"] == PAPER_BLOCK_SIZES["stage1"] == 10136
    assert sizes["ch1.s2"] == PAPER_BLOCK_SIZES["stage2"] == 1267
