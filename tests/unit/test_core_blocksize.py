"""Unit tests for Algorithm 1 (block-size ILP) and the buffer-optimal search."""

from fractions import Fraction

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    compute_block_sizes,
    guaranteed_throughput,
    optimal_block_sizes_for_buffers,
    sharing_load,
    stream_buffer_cost,
    throughput_satisfied,
)


def system_of(mus, R=20, eps=5, rho=(1,), delta=1):
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(f"a{i}", r) for i, r in enumerate(rho)),
        streams=tuple(StreamSpec(f"s{i}", mu, R) for i, mu in enumerate(mus)),
        entry_copy=eps,
        exit_copy=delta,
    )


def test_sharing_load():
    sys_ = system_of([Fraction(1, 100), Fraction(1, 50)], eps=5)
    assert sharing_load(sys_) == 5 * (Fraction(1, 100) + Fraction(1, 50))


def test_single_stream_block_size():
    mu = Fraction(1, 100)
    sys_ = system_of([mu], R=20, eps=5)
    res = compute_block_sizes(sys_)
    eta = res.block_sizes["s0"]
    assigned = sys_.with_block_sizes(res.block_sizes)
    assert throughput_satisfied(assigned)
    # minimality: eta - 1 violates Eq. 5
    if eta > 1:
        smaller = sys_.with_block_sizes({"s0": eta - 1})
        assert not throughput_satisfied(smaller)


def test_two_streams_satisfy_eq5():
    sys_ = system_of([Fraction(1, 60), Fraction(1, 90)], R=30, eps=4)
    res = compute_block_sizes(sys_)
    assigned = sys_.with_block_sizes(res.block_sizes)
    for s in assigned.streams:
        assert guaranteed_throughput(assigned, s.name) >= s.throughput


def test_total_minimality_two_streams():
    """No vector with a smaller Ση satisfies Eq. 5 (exhaustive cross-check)."""
    sys_ = system_of([Fraction(1, 30), Fraction(1, 45)], R=10, eps=3)
    res = compute_block_sizes(sys_)
    total = res.total
    for e0 in range(1, total):
        for e1 in range(1, total - e0):
            if e0 + e1 >= total:
                continue
            cand = sys_.with_block_sizes({"s0": e0, "s1": e1})
            assert not throughput_satisfied(cand), (e0, e1)


def test_backends_agree():
    sys_ = system_of([Fraction(1, 60), Fraction(1, 90), Fraction(1, 200)], R=30, eps=4)
    a = compute_block_sizes(sys_, backend="scipy")
    b = compute_block_sizes(sys_, backend="bnb")
    assert a.objective == b.objective


def test_infeasible_overload_diagnosed():
    # c0·Σμ = 5 * (1/5 + 1/5) = 2 ≥ 1
    sys_ = system_of([Fraction(1, 5), Fraction(1, 5)], eps=5)
    with pytest.raises(ParameterError, match="load"):
        compute_block_sizes(sys_)


def test_higher_rate_gets_larger_block():
    sys_ = system_of([Fraction(1, 50), Fraction(1, 400)], R=20, eps=5)
    res = compute_block_sizes(sys_)
    assert res.block_sizes["s0"] > res.block_sizes["s1"]


def test_paper_c1_mode_is_weaker():
    """The literal c1=R_s constraint admits smaller (unsafe) blocks."""
    sys_ = system_of([Fraction(1, 60), Fraction(1, 90)], R=30, eps=4)
    strict = compute_block_sizes(sys_, c1_mode="sum")
    loose = compute_block_sizes(sys_, c1_mode="paper")
    assert loose.total <= strict.total


def test_c1_mode_validation():
    sys_ = system_of([Fraction(1, 60)])
    with pytest.raises(ParameterError):
        compute_block_sizes(sys_, c1_mode="bogus")


def test_block_sizes_blow_up_near_saturation():
    """η grows like 1/(1-load) as the load approaches 1."""
    totals = []
    for denom in (40, 30, 24, 21):  # load = 5*2/denom: 0.25, 0.33, 0.42, 0.48 each
        sys_ = system_of([Fraction(1, denom)] * 2, R=100, eps=5)
        totals.append(compute_block_sizes(sys_).total)
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]


def test_reconfiguration_cost_inflates_blocks():
    small_r = compute_block_sizes(system_of([Fraction(1, 60)], R=10)).total
    big_r = compute_block_sizes(system_of([Fraction(1, 60)], R=1000)).total
    assert big_r > small_r


# ------------------------------------------------------- buffer-optimal B&B
def test_stream_buffer_cost_requires_block_size():
    sys_ = system_of([Fraction(1, 100)])
    with pytest.raises(ParameterError):
        stream_buffer_cost(sys_, "s0")


def test_stream_buffer_cost_sustains_rate():
    sys_ = system_of([Fraction(1, 100)], R=20, eps=5).with_block_sizes({"s0": 4})
    caps = stream_buffer_cost(sys_, "s0")
    assert set(caps) == {"p2s", "s2c"}
    assert all(c >= 4 for c in caps.values())  # must hold a block


def test_optimal_block_sizes_for_buffers_feasible_and_not_worse():
    sys_ = system_of([Fraction(1, 80)], R=20, eps=5)
    ilp = compute_block_sizes(sys_)
    eta0 = ilp.block_sizes["s0"]
    res = optimal_block_sizes_for_buffers(
        sys_, {"s0": range(max(1, eta0), eta0 + 4)}
    )
    assigned = sys_.with_block_sizes(res.block_sizes)
    assert throughput_satisfied(assigned)
    # the chosen vector's buffer total is minimal within the box
    for eta in range(max(1, eta0), eta0 + 4):
        cand = sys_.with_block_sizes({"s0": eta})
        if not throughput_satisfied(cand):
            continue
        caps = stream_buffer_cost(cand, "s0")
        assert sum(caps.values()) >= res.total_buffer


def test_optimal_block_sizes_missing_range_rejected():
    sys_ = system_of([Fraction(1, 80), Fraction(1, 80)])
    with pytest.raises(ParameterError):
        optimal_block_sizes_for_buffers(sys_, {"s0": range(1, 5)})


def test_optimal_block_sizes_infeasible_box():
    sys_ = system_of([Fraction(1, 80)], R=500, eps=5)
    with pytest.raises(ParameterError):
        optimal_block_sizes_for_buffers(sys_, {"s0": range(1, 3)})
