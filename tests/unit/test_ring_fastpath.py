"""Unit tests for the fused ring fast path (DESIGN.md §7).

Covers the `schedule_at` / `Callback` kernel primitive, the fast-path
eligibility predicate (every fallback reason pinned individually), the
validation-before-counters contract of `DualRing.post`, the dropped-flit
audit regression, chain fusion (`post_chain` and the fused C-FIFO put) and
the take-rate observability surface.
"""

import pytest

from repro.arch import CFifo, DualRing, RingError
from repro.sim import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulationError,
    Simulator,
    Tracer,
)
from repro.sim.faults import RING_DELAY, RING_DROP


@pytest.fixture(autouse=True)
def _fastpath_env_default(monkeypatch):
    """Pin the mechanism, not the environment: these tests must behave the
    same under the CI slow leg's ``REPRO_NO_FASTPATH=1`` (tests that need a
    specific mode set ``ring.fastpath`` explicitly)."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)


# ------------------------------------------------------- schedule_at/Callback
def test_schedule_at_fires_at_cycle():
    sim = Simulator()
    fired = []
    sim.schedule_at(7, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [7]


def test_schedule_at_same_cycle_runs_later_this_cycle():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(3)
        sim.schedule_at(sim.now, lambda: fired.append(sim.now))
        yield sim.timeout(2)

    sim.process(proc())
    sim.run()
    assert fired == [3]


def test_schedule_at_rejects_past_cycle():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)
        sim.schedule_at(2, lambda: None)

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_schedule_at_cancel_is_lazy_and_effective():
    sim = Simulator()
    fired = []
    cb = sim.schedule_at(4, lambda: fired.append("nope"))
    cb.cancel()
    sim.schedule_at(6, lambda: fired.append("yes"))
    sim.run()
    assert fired == ["yes"]
    assert cb.cancelled and not cb.processed


def test_callback_extra_watchers_run_after_fn():
    sim = Simulator()
    order = []
    cb = sim.schedule_at(3, lambda: order.append("fn"))
    cb.add_callback(lambda _ev: order.append("watcher"))
    sim.run()
    assert order == ["fn", "watcher"]


def test_callback_survives_run_until_clamping():
    """Checkpoint/restore: a pending callback outlives horizon clamping."""
    sim = Simulator()
    fired = []
    sim.schedule_at(100, lambda: fired.append(sim.now))
    sim.run(until=50)  # idle span: clock clamps to the horizon
    assert sim.now == 50 and fired == []
    sim.run(until=150)
    assert fired == [100]


def test_deferred_callback_runs_after_prescheduled_events():
    """defer=True lands behind events scheduled for the cycle beforehand,
    exactly where a generator resuming on its last hop timeout would sit."""
    sim = Simulator()
    order = []

    def poller():
        for _ in range(5):
            order.append(("poll", sim.now))
            yield sim.timeout(1)

    sim.process(poller())
    sim.schedule_at(3, lambda: order.append(("deferred", sim.now)), defer=True)
    sim.schedule_at(3, lambda: order.append(("plain", sim.now)))
    sim.run()
    at3 = [tag for tag, t in order if t == 3]
    # plain callback fires at its bucket position (before the poll scheduled
    # at cycle 2); the deferred one re-enters at the tail of cycle 3
    assert at3 == ["plain", "poll", "deferred"]


def test_fastpath_flit_in_flight_survives_horizon_clamp():
    """A fused flit's pending hop callbacks survive run(until=...)."""
    sim = Simulator()
    ring = DualRing(sim, 8)
    got = []
    ring.post(0, 5, "x", on_delivery=got.append)  # fused: delivered at 5
    assert ring.flits_fast[DualRing.DATA] == 1
    sim.run(until=3)
    assert got == [] and sim.now == 3
    # the in-flight compiled flit holds exactly its current link's grant
    assert sum(not link.free() for link in ring._links[DualRing.DATA]) == 1
    sim.run(until=20)
    assert got == ["x"]
    assert all(link.free() for link in ring._links[DualRing.DATA])


# ----------------------------------------------------- eligibility predicate
def test_fastpath_takes_uncongested_post():
    sim = Simulator()
    ring = DualRing(sim, 6)
    _acc, delivered = ring.post(0, 3, "x")
    sim.run(until=delivered)
    assert sim.now == 3
    assert ring.flits_fast[DualRing.DATA] == 1
    assert ring.flits_slow[DualRing.DATA] == 0


def test_fastpath_occupied_link_falls_back():
    """A flit posted while another flit holds a route link goes slow."""
    sim = Simulator()
    ring = DualRing(sim, 4)
    ring.post(0, 1, "a")  # compiled: acquires link 0 within cycle 0
    # by the time this runs, "a" holds link 0's grant -> generator path
    sim.schedule_at(0, lambda: ring.post(0, 1, "b"))
    sim.run()
    assert ring.flits_fast[DualRing.DATA] == 1
    assert ring.flits_slow[DualRing.DATA] == 1


def test_fastpath_fuses_disjoint_route_despite_slow_flit_in_flight():
    """A slow flit elsewhere on the ring does not stand the fast path down."""
    sim = Simulator()
    ring = DualRing(sim, 8)
    ring.post(0, 1, "a")
    sim.schedule_at(0, lambda: ring.post(0, 1, "b"))  # slow (link 0 held)
    sim.schedule_at(0, lambda: ring.post(4, 5, "c"))  # disjoint route: fuses
    sim.run()
    assert ring.flits_fast[DualRing.DATA] == 2
    assert ring.flits_slow[DualRing.DATA] == 1
    assert ring.flits_demoted[DualRing.DATA] == 0


def test_compiled_flit_parks_on_commit_cycle_grant_race():
    """Two flits posted in the same cycle can both look eligible — the route
    is free at both post instants — but only one wins the link grant when
    the bucket drains.  The loser's compiled chain parks in the grant's
    FIFO queue (counted in ``flits_demoted``) and continues compiled once
    granted, with timing identical to the slow mode."""
    def run(fastpath):
        sim = Simulator()
        ring = DualRing(sim, 4)
        ring.fastpath = fastpath
        out = {}

        def driver():
            yield sim.timeout(2)
            # at cycle 2 the in-flight 'S' flit has not yet acquired link 1
            # in this bucket, so this post sees the route free and compiles
            # — then S (already queued to run) takes the grant first
            acc, dlv = ring.post(1, 3, "F")
            yield acc
            out["F_accepted"] = sim.now
            yield dlv
            out["F_delivered"] = sim.now

        ring.post(0, 1, "A")  # compiled: takes link 0 within cycle 0
        _sa, s_dlv = ring.post(
            0, 2, "S",  # compiles too, then parks behind A on link 0
            on_delivery=lambda _w: out.__setitem__("S_delivered", sim.now))
        sim.process(driver(), name="drv")
        sim.run()
        return ring, out

    fast_ring, fast_out = run(True)
    slow_ring, slow_out = run(False)
    assert fast_out == slow_out
    assert fast_out == {"S_delivered": 3, "F_accepted": 4, "F_delivered": 5}
    assert fast_ring.flits_fast[DualRing.DATA] == 3
    assert fast_ring.flits_slow[DualRing.DATA] == 0
    assert fast_ring.flits_demoted[DualRing.DATA] == 2  # S and F both parked
    assert slow_ring.flits_demoted[DualRing.DATA] == 0


def test_compiled_flit_parks_mid_flight_after_acceptance():
    """Congestion that materialises after injection parks a compiled flit at
    a later hop: the acceptance already fired at its closed-form instant and
    stands; the remaining hops ride the link's FIFO grant queue.  Timing
    matches the slow mode exactly."""
    def run(fastpath):
        sim = Simulator()
        ring = DualRing(sim, 5)
        ring.fastpath = fastpath
        out = {}

        def watch(tag, acc, dlv):
            yield acc
            out[f"{tag}_accepted"] = sim.now
            yield dlv
            out[f"{tag}_delivered"] = sim.now

        # X compiles: link 1 @0, link 2 @1
        ring.post(1, 3, "X")
        # W compiles behind it: link 0 @0, then meets congestion on link 1
        w_acc, w_dlv = ring.post(0, 3, "W")
        # C compiles and immediately parks behind X on link 1
        c_acc, c_dlv = ring.post(1, 4, "C")
        sim.process(watch("W", w_acc, w_dlv), name="watchW")
        sim.process(watch("C", c_acc, c_dlv), name="watchC")
        sim.run()
        return ring, out

    fast_ring, fast_out = run(True)
    slow_ring, slow_out = run(False)
    assert fast_out == slow_out
    assert fast_out == {"W_accepted": 1, "C_accepted": 2,
                        "W_delivered": 4, "C_delivered": 4}
    assert fast_ring.flits_fast[DualRing.DATA] == 3
    assert fast_ring.flits_slow[DualRing.DATA] == 0
    assert fast_ring.flits_demoted[DualRing.DATA] == 2  # C at link 1, W behind
    assert slow_ring.flits_demoted[DualRing.DATA] == 0


def test_fastpath_armed_fault_falls_back():
    sim = Simulator()
    ring = DualRing(sim, 4)
    plan = FaultPlan(specs=(
        FaultSpec(kind=RING_DELAY, at=0, duration=100, extra=3, ring="data"),
    ))
    ring.fault_injector = FaultInjector(plan, sim)
    _acc, delivered = ring.post(0, 1, "x")
    sim.run(until=delivered)
    assert ring.flits_fast[DualRing.DATA] == 0
    assert ring.flits_slow[DualRing.DATA] == 1
    assert sim.now == 1 + 3  # hop + injected delay


def test_fastpath_hop_latency_arithmetic():
    """accepted at t+H, delivered at t+hops*H for hop_latency H > 1."""
    sim = Simulator()
    ring = DualRing(sim, 6, hop_latency=3)
    accepted, delivered = ring.post(0, 4, "x")
    sim.run(until=accepted)
    assert sim.now == 3
    sim.run(until=delivered)
    assert sim.now == 12
    assert ring.flits_fast[DualRing.DATA] == 1


def test_fastpath_wraparound_route():
    sim = Simulator()
    ring = DualRing(sim, 4)
    got = []
    _acc, delivered = ring.post(3, 1, "w", on_delivery=got.append)  # 3->0->1
    sim.run(until=delivered)
    assert sim.now == 2 and got == ["w"]
    assert ring.flits_fast[DualRing.DATA] == 1


def test_fastpath_credit_ring_direction():
    sim = Simulator()
    ring = DualRing(sim, 4)
    _acc, delivered = ring.post(1, 3, "c", ring=DualRing.CREDIT)  # 1->0->3
    sim.run(until=delivered)
    assert sim.now == 2
    assert ring.flits_fast[DualRing.CREDIT] == 1


def test_no_fastpath_flag_forces_slow_path():
    sim = Simulator()
    ring = DualRing(sim, 6)
    ring.fastpath = False  # what REPRO_NO_FASTPATH=1 sets at construction
    _acc, delivered = ring.post(0, 3, "x")
    sim.run(until=delivered)
    assert sim.now == 3  # identical timing
    assert ring.flits_fast[DualRing.DATA] == 0
    assert ring.flits_slow[DualRing.DATA] == 1


def test_fastpath_timing_matches_slow_path_under_contention_mix():
    """Same arrival cycles for a burst, fused or not."""

    def arrivals(fastpath):
        sim = Simulator()
        ring = DualRing(sim, 6, hop_latency=2)
        ring.fastpath = fastpath
        got = []
        for tag, (s, d) in enumerate([(0, 2), (0, 2), (1, 3), (4, 5)]):
            ring.post(s, d, tag, on_delivery=lambda _w, t=tag: got.append((sim.now, t)))
        sim.run()
        return got

    assert sorted(arrivals(True)) == sorted(arrivals(False))


# ------------------------------------- validation before counters (satellite)
def test_post_validates_before_counting_bad_station():
    sim = Simulator()
    ring = DualRing(sim, 4)
    with pytest.raises(RingError):
        ring.post(0, 9, "x")
    assert ring.flits_sent[DualRing.DATA] == 0


def test_post_validates_before_counting_bad_callback():
    sim = Simulator()
    ring = DualRing(sim, 4)
    with pytest.raises(RingError):
        ring.post(0, 1, "x", on_delivery="not-callable")
    assert ring.flits_sent[DualRing.DATA] == 0
    assert ring.flits_fast[DualRing.DATA] == 0
    assert ring.flits_slow[DualRing.DATA] == 0


# --------------------------------------------- dropped-flit audit regression
def drop_everything_plan():
    return FaultPlan(specs=(
        FaultSpec(kind=RING_DROP, at=0, duration=10_000, ring="data"),
    ))


def test_dropped_flit_releases_links_and_counters_match_slow_mode():
    """A drop in a fast-path-enabled run books identically to slow mode and
    leaves every link grantable (nothing leaks a grant or reservation)."""

    def run(fastpath):
        sim = Simulator()
        ring = DualRing(sim, 4)
        ring.fastpath = fastpath
        ring.fault_injector = FaultInjector(drop_everything_plan(), sim)
        accepted, delivered = ring.post(0, 2, "x")
        sim.run()
        assert accepted.processed  # posted write completed for the producer
        assert not delivered.triggered  # the loss is silent at ring level
        assert all(link.free() for link in ring._links[DualRing.DATA])
        return ring.flits_sent, ring.flits_dropped

    assert run(True) == run(False)


def test_fast_flit_after_drop_window_hits_fast_path_again():
    sim = Simulator()
    ring = DualRing(sim, 4)
    plan = FaultPlan(specs=(
        FaultSpec(kind=RING_DROP, at=0, duration=2, ring="data", count=1),
    ))
    ring.fault_injector = FaultInjector(plan, sim)

    def driver():
        ring.post(0, 2, "lost")
        yield sim.timeout(10)
        _acc, delivered = ring.post(0, 2, "kept")
        yield delivered

    sim.process(driver())
    sim.run()
    assert ring.flits_dropped[DualRing.DATA] == 1
    # eligibility is per flit: the dropped flit went slow, but once the spec
    # is exhausted the injector leaves flits untouched and fusion re-engages
    assert ring.flits_slow[DualRing.DATA] == 1
    assert ring.flits_fast[DualRing.DATA] == 1
    assert ring.flits_sent[DualRing.DATA] == 2


# ------------------------------------------------------------- chain fusion
def test_post_chain_commits_all_or_nothing():
    sim = Simulator()
    ring = DualRing(sim, 4)
    got = []
    chain = ring.post_chain(0, 1, (
        (0, "a", got.append),
        (1, "b", got.append),
    ))
    assert chain is not None and len(chain) == 2
    sim.run()
    assert got == ["a", "b"]
    assert ring.flits_fast[DualRing.DATA] == 2
    assert ring.flits_sent[DualRing.DATA] == 2


def test_post_chain_timing_matches_sequential_posts():
    sim = Simulator()
    ring = DualRing(sim, 6, hop_latency=2)
    times = []
    chain = ring.post_chain(0, 2, (
        (0, "a", lambda _w: times.append(sim.now)),
        (2, "b", lambda _w: times.append(sim.now)),
    ))
    assert chain is not None
    sim.run()
    # flit 0 injected at 0 over 2 hops of latency 2 -> 4; flit 1 at 2 -> 6
    assert times == [4, 6]


def test_post_chain_declines_with_injector_attached():
    sim = Simulator()
    ring = DualRing(sim, 4)
    ring.fault_injector = FaultInjector(FaultPlan(), sim)
    chain = ring.post_chain(0, 1, ((0, "a", None),))
    assert chain is None
    assert ring.flits_sent[DualRing.DATA] == 0  # no state mutated


def test_post_chain_declines_on_busy_route_without_mutation():
    """post_chain refuses while another flit holds a grant on the head route."""
    sim = Simulator()
    ring = DualRing(sim, 4)
    ring.post(0, 1, "blocker")  # compiled: acquires link 0 within cycle 0
    out = {}

    def try_chain():
        before = dict(ring.flits_sent)
        out["chain"] = ring.post_chain(0, 1, ((0, "a", None), (1, "b", None)))
        out["unchanged"] = ring.flits_sent == before

    sim.schedule_at(0, try_chain)
    sim.run()
    assert out["chain"] is None
    assert out["unchanged"]


def test_post_chain_validates_offsets():
    sim = Simulator()
    ring = DualRing(sim, 4)
    with pytest.raises(RingError):
        ring.post_chain(0, 1, ((1, "a", None),))  # must start at 0
    with pytest.raises(RingError):
        ring.post_chain(0, 1, ((0, "a", None), (0, "b", None)))  # not increasing
    with pytest.raises(RingError):
        ring.post_chain(0, 1, ((0, "a", "bad"),))  # non-callable hook
    assert ring.flits_sent[DualRing.DATA] == 0


# ------------------------------------------------------------ fused C-FIFO put
def test_cfifo_fused_put_roundtrip_and_counters():
    sim = Simulator()
    ring = DualRing(sim, 4)
    fifo = CFifo(sim, ring, 0, 2, capacity=4, name="f")
    got = []

    def producer():
        for w in range(6):
            yield from fifo.put(w)

    def consumer():
        for _ in range(6):
            got.append((yield from fifo.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(range(6))
    stats = fifo.fastpath_stats()
    assert stats["fused_puts"] + stats["slow_puts"] == 6
    assert stats["fused_puts"] >= 1  # at least the first put fuses
    assert stats["flits_fast"] + stats["flits_slow"] == ring.flits_sent[DualRing.DATA]
    assert fifo.level_debug()["memory"] == 0


def test_cfifo_put_timing_identical_fused_or_not():
    def final_clock(fastpath):
        sim = Simulator()
        ring = DualRing(sim, 4)
        ring.fastpath = fastpath
        fifo = CFifo(sim, ring, 0, 2, capacity=2, name="f")
        got = []

        def producer():
            for w in range(8):
                yield from fifo.put(w)

        def consumer():
            for _ in range(8):
                got.append((yield from fifo.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        return sim.now, got, fifo.level_debug()

    assert final_clock(True) == final_clock(False)


def test_ring_clients_registry_and_summary():
    from repro.sim import fastpath_summary

    sim = Simulator()
    ring = DualRing(sim, 4)
    fifo = CFifo(sim, ring, 0, 2, capacity=4, name="f")
    assert fifo in ring.clients

    def producer():
        yield from fifo.put("w")

    sim.process(producer())
    sim.run()
    summary = fastpath_summary(ring)
    assert summary["enabled"] is True
    assert 0.0 <= summary["take_rate"] <= 1.0
    assert "f" in summary["clients"]
    assert summary["rings"]["data"]["fast"] == ring.flits_fast[DualRing.DATA]


def test_tracer_records_identical_deliveries_fast_and_slow():
    def records(fastpath):
        sim = Simulator()
        tracer = Tracer(sim)
        ring = DualRing(sim, 6, tracer=tracer)
        ring.fastpath = fastpath
        ring.post(0, 3, "x")
        ring.post(2, 4, "y")
        sim.run()
        return sorted(
            (r.time, r.source, r.kind, tuple(sorted(r.data.items())))
            for r in tracer.records
        )

    assert records(True) == records(False)
