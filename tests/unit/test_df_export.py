"""Unit tests for DOT/CSV export."""

from repro.dataflow import (
    SDFGraph,
    admissible_schedule,
    bound_channel,
    schedule_to_csv,
    to_dot,
)


def sample_graph():
    g = SDFGraph("demo")
    g.add_actor("A", 2)
    g.add_actor("B", 3)
    g.add_edge("A", "B", production=4, consumption=1, tokens=2, name="ch")
    return bound_channel(g, "ch", 8)


def test_dot_contains_actors_and_durations():
    dot = to_dot(sample_graph())
    assert 'digraph "demo"' in dot
    assert '"A"' in dot and "ρ=2" in dot
    assert '"B"' in dot and "ρ=3" in dot


def test_dot_edge_quanta_and_tokens():
    dot = to_dot(sample_graph())
    assert 'taillabel="4"' in dot
    assert 'headlabel="1"' in dot
    assert "●2" in dot  # initial tokens on the forward edge


def test_dot_capacity_edges_dashed():
    dot = to_dot(sample_graph())
    assert "style=dashed" in dot


def test_dot_multiphase_quanta():
    from repro.dataflow import CSDFGraph

    g = CSDFGraph("c")
    g.add_actor("p", duration=[1, 2], phases=2)
    g.add_actor("s", duration=1)
    g.add_edge("p", "s", production=[3, 0], consumption=1)
    dot = to_dot(g)
    assert "[3,0]" in dot
    assert "ρ=[1,2]" in dot


def test_dot_is_valid_enough_for_graphviz():
    dot = to_dot(sample_graph())
    assert dot.count("{") == dot.count("}")
    assert dot.strip().endswith("}")


def test_schedule_csv_rows():
    sched = admissible_schedule(sample_graph(), iterations=1)
    csv = schedule_to_csv(sched)
    lines = csv.strip().split("\n")
    assert lines[0] == "actor,phase,start,end"
    assert len(lines) == 1 + len(sched.firings)
    # rows sorted by start time
    starts = [float(line.split(",")[2]) for line in lines[1:]]
    assert starts == sorted(starts)


def test_schedule_csv_round_trips_values():
    sched = admissible_schedule(sample_graph(), iterations=1)
    csv = schedule_to_csv(sched)
    first = csv.strip().split("\n")[1].split(",")
    actor, phase, start, end = first[0], int(first[1]), float(first[2]), float(first[3])
    assert actor in {"A", "B"}
    assert end >= start
