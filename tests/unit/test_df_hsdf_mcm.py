"""Unit tests for HSDF expansion and MCM analysis."""

from fractions import Fraction

import pytest

from repro.dataflow import (
    CSDFGraph,
    GraphError,
    SDFGraph,
    bound_channel,
    expand_to_hsdf,
    firing_repetition_vector,
    hsdf_node,
    max_cycle_ratio,
    mcm_throughput,
    steady_state_throughput,
)


def test_hsdf_node_naming():
    assert hsdf_node("A", 2) == "A#2"


def test_expansion_node_count_matches_repetitions():
    g = SDFGraph("m")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=3, consumption=2, name="ch")
    h = expand_to_hsdf(g)
    reps = firing_repetition_vector(g)
    assert len(h.actors) == sum(reps.values())  # 2 + 3


def test_expansion_all_unit_rates():
    g = SDFGraph("m")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=2, consumption=3, tokens=1)
    h = expand_to_hsdf(g)
    for e in h.edges.values():
        assert e.total_production == 1
        assert e.total_consumption == 1


def test_expansion_preserves_initial_token_total_on_self_edges():
    g = SDFGraph("m")
    g.add_actor("A", 1)
    h = expand_to_hsdf(g)
    # single firing -> self edge with one token
    assert h.edge("self:A").tokens == 1


def test_expansion_initial_tokens_shift_dependencies():
    g = SDFGraph("m")
    g.add_actor("A", 2)
    g.add_actor("B", 3)
    g.add_edge("A", "B", tokens=1, name="ch")
    h = expand_to_hsdf(g)
    # B#0 consumes the initial token: depends on A's firing of a previous
    # iteration => edge with 1 initial token
    dep_edges = [e for e in h.edges.values() if e.dst == "B#0" and e.src.startswith("A")]
    assert len(dep_edges) == 1
    assert dep_edges[0].tokens == 1


def test_expansion_rejects_future_dependency_never_happens_for_consistent():
    # any consistent graph must expand fine
    g = SDFGraph("m")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=6, consumption=4, tokens=2)
    h = expand_to_hsdf(g)
    assert len(h.actors) == 2 + 3


def test_csdf_expansion_phase_durations():
    g = CSDFGraph("c")
    g.add_actor("p", duration=[5, 7], phases=2)
    g.add_actor("s", duration=1)
    g.add_edge("p", "s", production=[1, 1], consumption=1)
    h = expand_to_hsdf(g)
    assert h.actor("p#0").duration == (5.0,)
    assert h.actor("p#1").duration == (7.0,)


def test_mcr_simple_ring():
    h = SDFGraph("h")
    h.add_actor("A", 2)
    h.add_actor("B", 3)
    h.add_edge("A", "B", tokens=0)
    h.add_edge("B", "A", tokens=1)
    res = max_cycle_ratio(h)
    assert res.ratio == Fraction(5, 1)
    assert set(res.cycle) == {"A", "B"}


def test_mcr_two_token_ring():
    h = SDFGraph("h")
    h.add_actor("A", 2)
    h.add_actor("B", 3)
    h.add_edge("A", "B", tokens=1)
    h.add_edge("B", "A", tokens=1)
    res = max_cycle_ratio(h)
    # ring has 2 tokens: ratio 5/2; but self-concurrency isn't modelled here
    # (plain graph, no self-edges), so the cycle ratio is exactly 5/2
    assert res.ratio == Fraction(5, 2)


def test_mcr_picks_critical_cycle():
    h = SDFGraph("h")
    for n, d in (("A", 1), ("B", 10), ("C", 1)):
        h.add_actor(n, d)
    h.add_edge("A", "A", tokens=1, name="sa")
    h.add_edge("B", "B", tokens=1, name="sb")
    h.add_edge("C", "C", tokens=1, name="sc")
    res = max_cycle_ratio(h)
    assert res.ratio == Fraction(10)
    assert res.cycle == ["B"]


def test_mcr_rejects_multirate():
    g = SDFGraph("g")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=2)
    with pytest.raises(GraphError):
        max_cycle_ratio(g)


def test_mcr_zero_token_cycle_rejected():
    h = SDFGraph("h")
    h.add_actor("A", 1)
    h.add_actor("B", 1)
    h.add_edge("A", "B", tokens=0)
    h.add_edge("B", "A", tokens=0)
    with pytest.raises(GraphError):
        max_cycle_ratio(h)


def test_mcr_empty_graph_zero():
    h = SDFGraph("h")
    h.add_actor("A", 1)
    res = max_cycle_ratio(h)
    assert res.ratio == 0


def test_mcm_throughput_matches_statespace_homogeneous():
    g = SDFGraph("g")
    g.add_actor("A", 4)
    g.add_actor("B", 6)
    g.add_edge("A", "B", name="ch")
    gb = bound_channel(g, "ch", 3)
    assert mcm_throughput(gb, "B") == steady_state_throughput(gb, actor="B").firing_rate


def test_mcm_throughput_matches_statespace_multirate():
    g = SDFGraph("g")
    g.add_actor("A", 3)
    g.add_actor("B", 2)
    g.add_edge("A", "B", production=2, consumption=1, name="ch")
    gb = bound_channel(g, "ch", 4)
    assert mcm_throughput(gb, "B") == steady_state_throughput(gb, actor="B").firing_rate


def test_mcm_throughput_matches_statespace_csdf():
    g = CSDFGraph("c")
    g.add_actor("p", duration=[1, 3], phases=2)
    g.add_actor("s", duration=2)
    g.add_edge("p", "s", production=[2, 1], consumption=1, name="ch")
    gb = bound_channel(g, "ch", 5)
    assert mcm_throughput(gb, "s") == steady_state_throughput(gb, actor="s").firing_rate
