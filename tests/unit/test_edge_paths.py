"""Edge-path tests: failure branches of the composite events and analyses."""


from repro.dataflow import SDFGraph, steady_state_throughput
from repro.sim import Simulator


def test_all_of_propagates_failure():
    sim = Simulator()
    good = sim.timeout(5)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield sim.all_of([good, bad])
        except ValueError as err:
            caught.append(str(err))

    sim.process(waiter())
    bad.fail(ValueError("child failed"))
    sim.run()
    assert caught == ["child failed"]


def test_all_of_with_already_processed_children():
    sim = Simulator()
    done = sim.timeout(0)
    sim.run()
    assert done.processed
    got = []

    def waiter():
        values = yield sim.all_of([done, sim.timeout(3, "late")])
        got.append(values)

    sim.process(waiter())
    sim.run()
    assert got == [[None, "late"]]


def test_any_of_propagates_first_failure():
    sim = Simulator()
    slow = sim.timeout(100)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield sim.any_of([slow, bad])
        except RuntimeError as err:
            caught.append(str(err))

    sim.process(waiter())
    bad.fail(RuntimeError("boom"))
    sim.run(until=200)
    assert caught == ["boom"]


def test_any_of_ignores_later_events():
    sim = Simulator()
    got = []

    def waiter():
        idx, val = yield sim.any_of([sim.timeout(1, "a"), sim.timeout(2, "b")])
        got.append((idx, val))

    sim.process(waiter())
    sim.run()
    assert got == [(0, "a")]


def test_interrupt_while_waiting_on_subprocess():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(50)
        log.append("child done")

    def parent():
        from repro.sim import Interrupt

        try:
            yield sim.process(child())
        except Interrupt:
            log.append(("interrupted", sim.now))

    def attacker(p):
        yield sim.timeout(7)
        p.interrupt()

    p = sim.process(parent())
    sim.process(attacker(p))
    sim.run()
    assert ("interrupted", 7) in log
    assert "child done" in log  # the child itself keeps running


def test_statespace_reference_actor_outside_live_part():
    """A reference actor that can never fire yields zero throughput (not a
    crash): the recurring state simply never advances it."""
    g = SDFGraph("partial")
    g.add_actor("live", 2)
    g.add_edge("live", "live", tokens=1, name="self")
    # a deadlocked pair alongside the live loop: they never fire, but the
    # graph as a whole keeps recurring
    g.add_actor("dead1", 1)
    g.add_actor("dead2", 1)
    g.add_edge("dead1", "dead2", name="d12")
    g.add_edge("dead2", "dead1", name="d21")
    r = steady_state_throughput(g, actor="dead1", max_steps=10_000)
    assert r.firing_rate == 0
    assert not r.deadlocked  # 'live' keeps spinning


def test_zero_reconfigure_stream_allowed():
    from fractions import Fraction

    from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec, compute_block_sizes

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(StreamSpec("s", Fraction(1, 100), reconfigure=0),),
        entry_copy=5,
        exit_copy=1,
    )
    res = compute_block_sizes(system)
    assert res.block_sizes["s"] >= 1
