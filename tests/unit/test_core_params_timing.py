"""Unit tests for the parameter objects and Equations 1-5."""

from fractions import Fraction

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    block_round_length,
    epsilon_hat,
    gamma,
    guaranteed_throughput,
    rho_g0_first_phase,
    tau_hat,
    throughput_satisfied,
)


def make_system(n_streams=2, eta=None, mu=Fraction(1, 100), R=50, eps=15, rho=(1,), delta=1):
    streams = tuple(
        StreamSpec(f"s{i}", mu, R, block_size=eta) for i in range(n_streams)
    )
    accs = tuple(AcceleratorSpec(f"a{i}", r) for i, r in enumerate(rho))
    return GatewaySystem(accelerators=accs, streams=streams, entry_copy=eps, exit_copy=delta)


# ------------------------------------------------------------------ params
def test_stream_requires_positive_throughput():
    with pytest.raises(ParameterError):
        StreamSpec("s", Fraction(0), 10)


def test_stream_rejects_negative_reconfigure():
    with pytest.raises(ParameterError):
        StreamSpec("s", Fraction(1, 2), -1)


def test_stream_rejects_zero_block_size():
    with pytest.raises(ParameterError):
        StreamSpec("s", Fraction(1, 2), 0, block_size=0)


def test_stream_from_rate():
    s = StreamSpec.from_rate("s", 44100, 100_000_000, 4100)
    assert s.throughput == Fraction(44100, 100_000_000)


def test_stream_with_block_size():
    s = StreamSpec("s", Fraction(1, 10), 5)
    s2 = s.with_block_size(8)
    assert s.block_size is None
    assert s2.block_size == 8


def test_system_requires_accelerators_and_streams():
    s = StreamSpec("s", Fraction(1, 10), 5)
    a = AcceleratorSpec("a", 1)
    with pytest.raises(ParameterError):
        GatewaySystem(accelerators=(), streams=(s,))
    with pytest.raises(ParameterError):
        GatewaySystem(accelerators=(a,), streams=())


def test_system_rejects_duplicate_streams():
    s = StreamSpec("s", Fraction(1, 10), 5)
    a = AcceleratorSpec("a", 1)
    with pytest.raises(ParameterError):
        GatewaySystem(accelerators=(a,), streams=(s, s))


def test_c0_is_the_stage_maximum():
    sys_ = make_system(eps=15, rho=(1, 3), delta=2)
    assert sys_.c0 == 15
    sys2 = make_system(eps=2, rho=(9,), delta=1)
    assert sys2.c0 == 9


def test_flush_stages_generalisation():
    assert make_system(rho=(1,)).flush_stages == 2  # paper's "+2"
    assert make_system(rho=(1, 1)).flush_stages == 3


def test_with_block_sizes():
    sys_ = make_system(n_streams=2)
    sys2 = sys_.with_block_sizes({"s0": 10, "s1": 20})
    assert sys2.stream("s0").block_size == 10
    assert sys2.stream("s1").block_size == 20
    with pytest.raises(ParameterError):
        sys_.with_block_sizes({"nope": 1})


def test_require_block_sizes():
    sys_ = make_system()
    with pytest.raises(ParameterError):
        sys_.require_block_sizes()
    sys_.with_block_sizes({"s0": 1, "s1": 1}).require_block_sizes()


def test_unknown_stream_lookup():
    with pytest.raises(ParameterError):
        make_system().stream("zz")


# ------------------------------------------------------------------ timing
def test_eq2_tau_hat_single_accelerator():
    # τ̂ = R + (η + 2)·max(ε, ρ, δ)
    sys_ = make_system(n_streams=1, eta=10, R=50, eps=15, rho=(1,), delta=1)
    assert tau_hat(sys_, "s0") == 50 + (10 + 2) * 15


def test_eq2_requires_block_size():
    sys_ = make_system()
    with pytest.raises(ParameterError):
        tau_hat(sys_, "s0")


def test_eq3_epsilon_hat_sums_other_streams():
    sys_ = make_system(n_streams=3, eta=4, R=10, eps=5, rho=(1,), delta=1)
    tau = 10 + 6 * 5  # each stream identical
    assert epsilon_hat(sys_, "s0") == 2 * tau


def test_eq3_single_stream_no_wait():
    sys_ = make_system(n_streams=1, eta=4)
    assert epsilon_hat(sys_, "s0") == 0


def test_eq4_gamma_is_total_rotation():
    sys_ = make_system(n_streams=3, eta=4, R=10, eps=5)
    assert gamma(sys_, "s0") == epsilon_hat(sys_, "s0") + tau_hat(sys_, "s0")
    assert gamma(sys_, "s0") == block_round_length(sys_)


def test_eq1_first_phase_duration():
    sys_ = make_system(n_streams=2, eta=4, R=10, eps=5)
    assert rho_g0_first_phase(sys_, "s0") == epsilon_hat(sys_, "s0") + 10 + 5


def test_eq5_guaranteed_throughput():
    sys_ = make_system(n_streams=2, eta=100, mu=Fraction(1, 100), R=50, eps=15)
    assert guaranteed_throughput(sys_, "s0") == Fraction(100, gamma(sys_, "s0"))


def test_eq5_satisfaction_boundary():
    # pick η so the guarantee exactly straddles the requirement
    mu = Fraction(1, 50)
    sys_small = make_system(n_streams=1, eta=10, mu=mu, R=50, eps=1, rho=(1,), delta=1)
    # γ = 50 + 12 = 62, guarantee 10/62 > 1/50? 10/62 = 0.161 > 0.02 yes
    assert throughput_satisfied(sys_small)
    sys_tight = make_system(n_streams=1, eta=1, mu=Fraction(1, 2), R=50, eps=1)
    # guarantee = 1/(50+3) << 1/2
    assert not throughput_satisfied(sys_tight)


def test_throughput_satisfied_all_streams():
    mu = Fraction(1, 1000)
    sys_ = make_system(n_streams=2, eta=50, mu=mu, R=50, eps=2)
    assert throughput_satisfied(sys_)
    assert throughput_satisfied(sys_, "s1")


def test_tau_hat_with_accelerator_chain():
    sys_ = make_system(n_streams=1, eta=10, R=0, eps=1, rho=(1, 1), delta=1)
    # flush = 3 for two accelerators
    assert tau_hat(sys_, "s0") == (10 + 3) * 1


def test_throughput_satisfied_unknown_stream_raises():
    sys_ = make_system(n_streams=2, eta=50, mu=Fraction(1, 1000), R=50, eps=2)
    with pytest.raises(ParameterError):
        throughput_satisfied(sys_, "nope")


def test_throughput_satisfied_empty_name_checks_that_stream_only():
    # a stream literally named "" must be looked up individually, not be
    # mistaken for "check all streams" (the falsy-name bug)
    streams = (
        StreamSpec("", Fraction(1, 10**6), 50, block_size=50),
        StreamSpec("greedy", Fraction(1, 2), 50, block_size=1),
    )
    sys_ = GatewaySystem(
        accelerators=(AcceleratorSpec("a0", 1),),
        streams=streams,
        entry_copy=2,
        exit_copy=1,
    )
    # the whole system fails Eq. 5 because of "greedy" ...
    assert not throughput_satisfied(sys_)
    # ... but the "" stream on its own satisfies its (tiny) requirement
    assert throughput_satisfied(sys_, "")
