"""Unit tests for per-stream runtime metrics (repro.sim.metrics)."""

from fractions import Fraction

import pytest

from repro.sim import (
    GatewayUtilization,
    StreamMetrics,
    Tracer,
    gateway_utilization,
    metrics_table,
    observed_sample_latency,
    stream_metrics,
)
from repro.sim.trace import Kind


class FakeFifo:
    def __init__(self, name, high_water):
        self.name = name
        self.high_water = high_water


class FakeBinding:
    """Duck-typed stand-in for arch.gateway.StreamBinding."""

    def __init__(self, name="s", eta=4, admissions=(), completions=()):
        self.name = name
        self.eta = eta
        self.admissions = list(admissions)
        self.completions = list(completions)
        self.blocks_done = len(self.completions)
        self.samples_in = eta * len(self.admissions)
        self.samples_out = eta * len(self.completions)
        self.first_output_at = self.completions[0] if self.completions else None
        self.last_output_at = self.completions[-1] if self.completions else None
        self.in_fifo = FakeFifo(f"{name}.in", 7)
        self.out_fifo = FakeFifo(f"{name}.out", 3)


def test_stream_metrics_derivations():
    b = FakeBinding(eta=4, admissions=[10, 100, 210], completions=[50, 160, 260])
    m = stream_metrics(b)
    assert m.block_times == (40, 60, 50)
    assert m.waits == (50, 50)          # completion -> next admission
    assert m.turnarounds == (110, 100)  # completion -> completion
    assert m.worst_block_time == 60
    assert m.worst_wait == 50
    assert m.worst_turnaround == 110
    assert m.mean_block_time == pytest.approx(50.0)
    # 2 steady-state blocks of 4 samples over completions span 210
    assert m.throughput == Fraction(8, 210)
    assert m.in_high_water == 7 and m.out_high_water == 3


def test_stream_metrics_single_block_no_throughput():
    m = stream_metrics(FakeBinding(admissions=[5], completions=[30]))
    assert m.throughput is None
    assert m.waits == () and m.turnarounds == ()
    assert m.worst_wait is None and m.mean_block_time == pytest.approx(25.0)


def test_stream_metrics_to_dict_json_friendly():
    import json

    b = FakeBinding(admissions=[0, 50], completions=[20, 80])
    d = stream_metrics(b).to_dict()
    json.dumps(d)  # must not raise (no Fractions/tuples of oddities)
    assert d["worst_block_time"] == 30
    assert d["throughput"] == pytest.approx(4 * 1 / 60)


def test_observed_sample_latency_from_trace():
    t = Tracer()
    b = FakeBinding(eta=2, admissions=[10, 40], completions=[30, 60])
    # words 0,1 -> block 0 (done @30); words 2,3 -> block 1 (done @60)
    for time in (1, 5, 12, 44):
        t.log(time, "s.in", Kind.PUT, word=0)
    # worst case is word 2: put @12, its block completes @60
    assert observed_sample_latency(t, b) == 60 - 12


def test_observed_sample_latency_unusable_after_ring_eviction():
    t = Tracer(mode="ring", capacity=2)
    b = FakeBinding(eta=2, admissions=[10], completions=[30])
    for time in (1, 5, 12):
        t.log(time, "s.in", Kind.PUT, word=0)
    assert t.dropped == 1
    assert observed_sample_latency(t, b) is None


class FakeEntry:
    copy_cycles = 300
    reconfig_cycles = 500
    wait_cycles = 100
    blocks_admitted = 6


def test_gateway_utilization_fractions():
    u = gateway_utilization(FakeEntry(), horizon=1000)
    assert isinstance(u, GatewayUtilization)
    assert u.copy == pytest.approx(0.3)
    assert u.reconfig == pytest.approx(0.5)
    assert u.poll == pytest.approx(0.1)
    assert u.other == pytest.approx(0.1)
    with pytest.raises(ValueError):
        gateway_utilization(FakeEntry(), horizon=0)


def test_metrics_table_renders_all_streams():
    ms = [
        stream_metrics(FakeBinding(name="a", admissions=[0, 50], completions=[20, 80])),
        stream_metrics(FakeBinding(name="b", admissions=[5], completions=[9])),
    ]
    table = metrics_table(ms)
    assert "a" in table and "b" in table
    lines = table.splitlines()
    assert len(lines) >= 4  # header, rule, one row per stream


def test_stream_metrics_is_frozen():
    m = stream_metrics(FakeBinding(admissions=[0], completions=[1]))
    with pytest.raises(AttributeError):
        m.eta = 99
    assert isinstance(m, StreamMetrics)
