"""Unit tests for the tracing utilities."""

import pytest

from repro.sim import GanttRow, IntervalAccumulator, Tracer


def test_tracer_records_in_order():
    t = Tracer()
    t.log(0, "gw", "admit", stream="s0")
    t.log(5, "acc", "sample")
    assert [r.kind for r in t.records] == ["admit", "sample"]
    assert t.records[0].data == {"stream": "s0"}


def test_tracer_disabled_drops_everything():
    t = Tracer(enabled=False)
    t.log(0, "gw", "admit")
    assert t.records == []


def test_tracer_kind_filter():
    t = Tracer(kinds={"admit"})
    t.log(0, "gw", "admit")
    t.log(1, "gw", "sample")
    assert t.count("admit") == 1
    assert t.count("sample") == 0


def test_tracer_by_kind_and_source():
    t = Tracer()
    t.log(0, "a", "x")
    t.log(1, "b", "x")
    t.log(2, "a", "y")
    assert len(t.by_kind("x")) == 2
    assert len(t.by_source("a")) == 2


def test_tracer_clear():
    t = Tracer()
    t.log(0, "a", "x")
    t.clear()
    assert t.records == []


def test_interval_accumulator_basic():
    acc = IntervalAccumulator()
    acc.begin("busy", 10)
    acc.end("busy", 25)
    assert acc.busy("busy") == 15
    assert acc.utilization("busy", 100) == pytest.approx(0.15)


def test_interval_accumulator_nested_counts_outer_only():
    acc = IntervalAccumulator()
    acc.begin("busy", 0)
    acc.begin("busy", 5)
    acc.end("busy", 10)
    acc.end("busy", 20)
    assert acc.busy("busy") == 20


def test_interval_accumulator_unmatched_end_raises():
    acc = IntervalAccumulator()
    with pytest.raises(ValueError):
        acc.end("busy", 5)


def test_interval_accumulator_backwards_interval_raises():
    acc = IntervalAccumulator()
    acc.begin("busy", 10)
    with pytest.raises(ValueError):
        acc.end("busy", 5)


def test_interval_accumulator_zero_horizon_raises():
    acc = IntervalAccumulator()
    with pytest.raises(ValueError):
        acc.utilization("busy", 0)


def test_gantt_row_renders_segments():
    row = GanttRow("acc0", ((0, 10, "s0"), (10, 20, "t1")))
    text = row.render(scale=1, width=20)
    assert "acc0" in text
    assert "s" in text and "t" in text


def test_gantt_row_idle():
    row = GanttRow("acc0", ())
    assert "idle" in row.render()


# ------------------------------------------------------- structured tracer
def test_tracer_ring_mode_bounded_memory():
    t = Tracer(mode="ring", capacity=3)
    for i in range(10):
        t.log(i, "gw", "put", word=i)
    assert [r.time for r in t.records] == [7, 8, 9]
    assert t.total_logged == 10
    assert t.dropped == 7
    # lifetime counters survive eviction
    assert t.count("put") == 10


def test_tracer_aggregate_mode_counts_only():
    t = Tracer(mode="aggregate")
    for i in range(5):
        t.log(i, "gw", "admit", stream="s0")
    t.log(5, "fifo", "get")
    assert t.records == []
    assert t.count("admit") == 5
    assert t.count("get", source="fifo") == 1
    assert t.counts() == {("gw", "admit"): 5, ("fifo", "get"): 1}
    assert t.dropped == 6


def test_tracer_mode_validation():
    with pytest.raises(ValueError):
        Tracer(mode="bogus")
    with pytest.raises(ValueError):
        Tracer(mode="ring")  # no capacity
    with pytest.raises(ValueError):
        Tracer(mode="full", capacity=8)  # capacity is ring-only


def test_tracer_query_filters():
    t = Tracer()
    t.log(0, "gw", "admit", stream="a", block=0)
    t.log(4, "gw", "admit", stream="b", block=0)
    t.log(9, "gw", "admit", stream="a", block=1)
    t.log(9, "fifo", "put", word=1)
    assert [r.time for r in t.query(kind="admit", stream="a")] == [0, 9]
    assert [r.time for r in t.query(since=4, until=9)] == [4, 9, 9]
    assert [r.time for r in t.query(source="gw", since=5)] == [9]
    assert t.last("admit", stream="a").data["block"] == 1
    assert t.last("admit", stream="zzz") is None


def test_tracer_count_by_source():
    t = Tracer()
    t.log(0, "a", "x")
    t.log(1, "b", "x")
    assert t.count("x") == 2
    assert t.count("x", source="a") == 1
    t.clear()
    assert t.count("x") == 0 and t.total_logged == 0
