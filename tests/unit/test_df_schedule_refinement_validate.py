"""Unit tests for schedules, refinement checks and graph validation."""

import pytest

from repro.dataflow import (
    DeadlockError,
    RefinementChain,
    SDFGraph,
    admissible_schedule,
    check_liveness,
    execute,
    is_deadlock_free,
    refines_execution,
    refines_times,
    validate_graph,
)


def ring(da=2, db=3, tokens=1):
    g = SDFGraph("ring")
    g.add_actor("A", da)
    g.add_actor("B", db)
    g.add_edge("A", "B", name="fwd")
    g.add_edge("B", "A", tokens=tokens, name="bwd")
    return g


# ------------------------------------------------------------------ schedule
def test_schedule_makespan():
    s = admissible_schedule(ring(), iterations=2)
    assert s.makespan == 10  # period 5, two iterations


def test_schedule_start_end_accessors():
    s = admissible_schedule(ring(), iterations=2)
    assert s.start_of("A", 0) == 0
    assert s.end_of("A", 0) == 2
    assert s.start_of("B", 0) == 2
    assert s.completion_time("B") == 10


def test_schedule_rows_and_render():
    s = admissible_schedule(ring(), iterations=1)
    rows = s.actor_rows()
    assert {r.resource for r in rows} == {"A", "B"}
    out = s.render(width=30)
    assert "makespan" in out
    assert "A" in out


def test_schedule_deadlock_raises():
    g = SDFGraph("dead")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g.add_edge("B", "A")
    with pytest.raises(DeadlockError):
        admissible_schedule(g)


# ---------------------------------------------------------------- refinement
def test_refines_times_holds():
    assert refines_times([1, 2, 3], [1, 2, 4])
    assert refines_times([1, 2, 3], [1, 2, 3])


def test_refines_times_violation_located():
    rep = refines_times([1, 5, 3], [1, 2, 4])
    assert not rep
    assert rep.first_violation == 1
    assert rep.refined_time == 5
    assert rep.abstract_time == 2


def test_refines_times_refinement_may_produce_more():
    assert refines_times([1, 2, 3, 4], [2, 3])


def test_refines_times_missing_production_fails():
    rep = refines_times([1], [1, 2])
    assert not rep
    assert rep.first_violation == 1


def test_refines_execution_between_fast_and_slow_graphs():
    fast = execute(ring(da=1, db=2), iterations=3)
    slow = execute(ring(da=2, db=3), iterations=3)
    assert refines_execution(fast, slow, ["A", "B"])
    assert not refines_execution(slow, fast, ["A", "B"])


def test_refinement_chain_transitivity():
    chain = RefinementChain()
    ok = refines_times([1], [2])
    chain.add("hw", "csdf", ok)
    chain.add("csdf", "sdf", ok)
    assert chain.holds("hw", "sdf")
    assert chain.holds("hw", "csdf")
    assert not chain.holds("sdf", "hw")


def test_refinement_chain_broken_link():
    chain = RefinementChain()
    chain.add("hw", "csdf", refines_times([1], [2]))
    chain.add("csdf", "sdf", refines_times([3], [2]))  # fails
    assert not chain.holds("hw", "sdf")


# ------------------------------------------------------------------ validate
def test_validate_ok_graph():
    rep = validate_graph(ring())
    assert rep.ok
    assert rep.errors == []


def test_validate_inconsistent():
    g = SDFGraph("bad")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B", production=2, consumption=1)
    g.add_edge("B", "A", production=2, consumption=1)
    rep = validate_graph(g)
    assert not rep.ok
    assert "inconsistent" in rep.errors[0]


def test_validate_deadlock():
    g = SDFGraph("dead")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g.add_edge("B", "A")
    rep = validate_graph(g)
    assert not rep.ok
    assert any("deadlock" in e for e in rep.errors)


def test_validate_warns_disconnected():
    g = ring()
    g.add_actor("lonely", 1)
    rep = validate_graph(g)
    assert rep.ok
    assert any("disconnected" in w for w in rep.warnings)


def test_validate_warns_zero_duration():
    g = ring(da=0)
    rep = validate_graph(g)
    assert any("zero total firing duration" in w for w in rep.warnings)


def test_validate_empty():
    rep = validate_graph(SDFGraph())
    assert not rep.ok


def test_liveness_helpers():
    assert check_liveness(ring())
    assert is_deadlock_free(ring())
    g = SDFGraph("dead")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g.add_edge("B", "A")
    assert not is_deadlock_free(g)
