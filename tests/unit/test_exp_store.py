"""ResultStore: journaling, resume semantics, crash tolerance, identity."""

import json

import pytest

from repro.core.config_io import (
    JournalError,
    dump_journal_entry,
    make_journal_entry,
    parse_journal_entry,
)
from repro.exp import (
    ResultStore,
    StoreMismatch,
    Sweep,
    SweepInterrupted,
    point_key,
    run_sweep,
    sweep_fingerprint,
)
from repro.exp.runner import PointOutcome


def echo_task(params, ctx):
    return {"params": dict(params), "seed": ctx.seed}


def other_task(params, ctx):
    return {"v": 0}


def make_sweep(name="stored", n=6, seed=3):
    return Sweep(name, echo_task, [{"a": i} for i in range(n)], seed=seed)


def outcome(i):
    return PointOutcome(id=f"p{i}", params={"a": i}, seed=i, value={"a": i})


# -- journal envelope ---------------------------------------------------------

def test_journal_entry_round_trips():
    entry = make_journal_entry("chunk", {"chunk": 3, "points": 4, "stats": {}})
    line = dump_journal_entry(entry)
    assert "\n" not in line
    assert parse_journal_entry(line) == entry


def test_journal_entry_rejects_unknown_kind():
    with pytest.raises(JournalError, match="unknown journal kind"):
        make_journal_entry("nope", {})


def test_journal_entry_rejects_envelope_shadowing():
    with pytest.raises(JournalError, match="shadows envelope"):
        make_journal_entry("meta", {"schema": "x"})


def test_parse_rejects_garbage_line():
    with pytest.raises(JournalError, match="invalid journal line"):
        parse_journal_entry("{not json")


def test_parse_rejects_wrong_version():
    entry = make_journal_entry("meta", {"name": "s"})
    entry["version"] = 99
    with pytest.raises(JournalError, match="unsupported journal version"):
        parse_journal_entry(json.dumps(entry))


# -- identity -----------------------------------------------------------------

def test_fingerprint_pins_every_outcome_affecting_knob():
    sweep = make_sweep()
    base = sweep_fingerprint(sweep, 4, 0, None, True)
    assert base == sweep_fingerprint(make_sweep(), 4, 0, None, True)
    assert base != sweep_fingerprint(sweep, 2, 0, None, True)      # chunking
    assert base != sweep_fingerprint(sweep, 4, 1, None, True)      # retries
    assert base != sweep_fingerprint(sweep, 4, 0, 5.0, True)       # timeout
    assert base != sweep_fingerprint(sweep, 4, 0, None, False)     # cache
    assert base != sweep_fingerprint(make_sweep(seed=4), 4, 0, None, True)
    assert base != sweep_fingerprint(make_sweep(n=5), 4, 0, None, True)
    assert base != sweep_fingerprint(
        Sweep("stored", other_task, [{"a": 0}]), 4, 0, None, True
    )


def test_point_key_is_content_addressed():
    a = point_key("spec", 0, 1, "p1", 42)
    assert a == point_key("spec", 0, 1, "p1", 42)
    assert a != point_key("spec2", 0, 1, "p1", 42)
    assert a != point_key("spec", 1, 1, "p1", 42)
    assert a != point_key("spec", 0, 1, "p1", 43)


# -- begin / record / replay --------------------------------------------------

def test_fresh_store_then_full_replay(tmp_path):
    store = ResultStore(tmp_path)
    session = store.begin("s", "spec1", chunk_count=2)
    assert session.completed == {}
    session.record_chunk(0, [outcome(0), outcome(1)], {"lookups": 2})
    session.record_chunk(1, [outcome(2)], {"lookups": 1})
    session.close()

    again = store.begin("s", "spec1", chunk_count=2, resume=True)
    assert sorted(again.completed) == [0, 1]
    outs, stats = again.completed[0]
    assert [o.id for o in outs] == ["p0", "p1"]
    assert outs[0].payload() == outcome(0).payload()
    assert stats == {"lookups": 2}
    assert again.hits == 3
    again.close()


def test_record_chunk_is_idempotent(tmp_path):
    store = ResultStore(tmp_path)
    session = store.begin("s", "spec1", chunk_count=1)
    session.record_chunk(0, [outcome(0)], {})
    session.close()
    session = store.begin("s", "spec1", chunk_count=1)
    # a re-dispatched twin landing again must not duplicate journal entries
    session.record_chunk(0, [outcome(0)], {})
    session.close()
    lines = store.journal_path("s").read_text().splitlines()
    assert sum(1 for ln in lines if '"kind":"chunk"' in ln) == 1


def test_resume_without_journal_is_an_error(tmp_path):
    with pytest.raises(StoreMismatch, match="cannot resume"):
        ResultStore(tmp_path).begin("s", "spec1", chunk_count=1, resume=True)


def test_resume_against_mismatched_spec_is_an_error(tmp_path):
    store = ResultStore(tmp_path)
    store.begin("s", "spec1", chunk_count=1).close()
    with pytest.raises(StoreMismatch, match="different sweep spec"):
        store.begin("s", "spec2", chunk_count=1, resume=True)


def test_mismatched_journal_is_rotated_not_destroyed(tmp_path):
    store = ResultStore(tmp_path)
    session = store.begin("s", "spec1", chunk_count=1)
    session.record_chunk(0, [outcome(0)], {})
    session.close()
    fresh = store.begin("s", "spec2", chunk_count=1)
    assert fresh.completed == {}
    fresh.close()
    backups = list(tmp_path.glob("s.journal.jsonl.bak*"))
    assert len(backups) == 1
    assert '"kind":"point"' in backups[0].read_text()


def test_truncated_tail_line_is_tolerated(tmp_path):
    store = ResultStore(tmp_path)
    session = store.begin("s", "spec1", chunk_count=2)
    session.record_chunk(0, [outcome(0)], {})
    session.close()
    path = store.journal_path("s")
    # simulate a crash mid-append: a ragged, half-written final line
    with path.open("a") as fh:
        fh.write('{"schema":"repro.journal","version":1,"kind":"poi')
    session = store.begin("s", "spec1", chunk_count=2, resume=True)
    assert sorted(session.completed) == [0]
    session.close()


def test_points_without_chunk_marker_are_not_resumed(tmp_path):
    """The chunk marker is the commit record — points alone don't count."""
    store = ResultStore(tmp_path)
    session = store.begin("s", "spec1", chunk_count=1)
    # journal a point line but crash before the marker
    from repro.core.config_io import make_journal_entry as mk
    session._write(mk("point", {
        "chunk": 0, "pos": 0, "key": "k",
        "outcome": outcome(0).payload(), "wall_ms": 0.0,
    }))
    session.close()
    session = store.begin("s", "spec1", chunk_count=1, resume=True)
    assert session.completed == {}
    session.close()


# -- engine integration -------------------------------------------------------

def test_identical_rerun_is_a_pure_cache_hit(tmp_path):
    sweep = make_sweep()
    first = run_sweep(sweep, workers=1, store=tmp_path)
    assert first.resumed_chunks == 0
    again = run_sweep(sweep, workers=1, store=tmp_path)
    assert again.resumed_chunks == again.chunk_count == 2
    assert again.store_hits == 6
    assert again.digest() == first.digest()
    assert again.payload() == first.payload()


def test_interrupted_run_resumes_bit_identically(tmp_path):
    sweep = make_sweep(n=10)
    baseline = run_sweep(sweep, workers=1)
    with pytest.raises(SweepInterrupted) as err:
        run_sweep(sweep, workers=1, store=tmp_path, interrupt_after=1)
    assert err.value.completed_chunks == 1
    assert err.value.chunk_count == 3
    resumed = run_sweep(sweep, workers=1, store=tmp_path, resume=True)
    assert resumed.resumed_chunks == 1
    assert resumed.digest() == baseline.digest()
    assert [o.id for o in resumed.outcomes] == [p.id for p in sweep.points]


def test_changed_engine_knobs_invalidate_the_journal(tmp_path):
    sweep = make_sweep()
    run_sweep(sweep, workers=1, store=tmp_path)
    with pytest.raises(StoreMismatch):
        run_sweep(sweep, workers=1, store=tmp_path, resume=True, retries=1)
    # without --resume the stale journal rotates and the run starts fresh
    redo = run_sweep(sweep, workers=1, store=tmp_path, retries=1)
    assert redo.resumed_chunks == 0
    assert redo.ok


def test_resume_requires_store():
    from repro.exp import SweepError

    with pytest.raises(SweepError, match="needs a store"):
        run_sweep(make_sweep(), workers=1, resume=True)
