"""Error-path coverage: every GatewayError / RingError raising condition.

The recovery subsystem leans on these errors to distinguish "a fault was
injected" from "the protocol itself is being misused"; each raise site
gets a dedicated test so a refactor cannot silently drop one.
"""

import pytest

from repro.accel import MixerKernel
from repro.arch import (
    DualRing,
    EntryGateway,
    ExitGateway,
    GatewayError,
    HardwareFifoChannel,
    MPSoC,
    RingError,
    StreamBinding,
)
from repro.sim import Signal, SimulationError, Simulator


# ------------------------------------------------------------------ ring
def test_ring_rejects_single_station():
    with pytest.raises(RingError, match="at least two stations"):
        DualRing(Simulator(), 1)


def test_ring_rejects_zero_hop_latency():
    with pytest.raises(RingError, match="hop latency"):
        DualRing(Simulator(), 4, hop_latency=0)


def test_ring_rejects_station_out_of_range():
    ring = DualRing(Simulator(), 4)
    with pytest.raises(RingError, match="outside ring"):
        ring.hops(0, 4, DualRing.DATA)
    with pytest.raises(RingError, match="outside ring"):
        ring.post(5, 1, None)


def test_ring_rejects_self_loop():
    ring = DualRing(Simulator(), 4)
    with pytest.raises(RingError, match="must differ"):
        ring.post(2, 2, None)


def test_ring_rejects_unknown_ring_name():
    ring = DualRing(Simulator(), 4)
    with pytest.raises(RingError, match="unknown ring"):
        ring.hops(0, 1, "sideband")


# ---------------------------------------------------------------- bindings
def fifo_pair(soc):
    return soc.software_fifo(0, 1, 8, "in"), soc.software_fifo(1, 0, 8, "out")


def test_binding_rejects_zero_eta():
    soc = MPSoC(n_stations=4)
    fin, fout = fifo_pair(soc)
    with pytest.raises(GatewayError, match="block size"):
        StreamBinding("s", 0, fin, fout, [])


def test_binding_rejects_fractional_output_block():
    from fractions import Fraction

    soc = MPSoC(n_stations=4)
    fin, fout = fifo_pair(soc)
    with pytest.raises(GatewayError, match="whole output block"):
        StreamBinding("s", 3, fin, fout, [], output_ratio=Fraction(1, 2))


# ---------------------------------------------------------------- gateways
def gateway_parts():
    """Minimal real parts for exercising EntryGateway constructor errors."""
    soc = MPSoC(n_stations=6)
    chain = soc.shared_chain("c", [MixerKernel(0.0)], [{
        "name": "s0", "eta": 2,
        "in_fifo": soc.software_fifo(0, 2, 8, "in"),
        "out_fifo": soc.software_fifo(4, 1, 8, "out"),
        "states": [MixerKernel(0.0).get_state()],
        "reconfigure_cycles": 10,
    }])
    return soc, chain


def entry_kwargs(soc, chain, **overrides):
    kwargs = dict(
        sim=soc.sim,
        name="e2",
        tiles=chain.tiles,
        chain_input=chain.tiles[0].input,
        exit_gateway=chain.exit,
        bindings=list(chain.bindings.values()),
        config_bus=soc.config_bus,
    )
    kwargs.update(overrides)
    return kwargs


def test_entry_needs_bindings():
    soc, chain = gateway_parts()
    with pytest.raises(GatewayError, match="at least one stream"):
        EntryGateway(**entry_kwargs(soc, chain, bindings=[]))


def test_entry_rejects_unknown_context_mode():
    soc, chain = gateway_parts()
    with pytest.raises(GatewayError, match="context_mode"):
        EntryGateway(**entry_kwargs(soc, chain, context_mode="telepathy"))


def test_entry_rejects_zero_shadow_switch():
    soc, chain = gateway_parts()
    with pytest.raises(GatewayError, match="shadow switch"):
        EntryGateway(**entry_kwargs(soc, chain, shadow_switch_cycles=0))


def test_entry_rejects_context_count_mismatch():
    soc, chain = gateway_parts()
    binding = next(iter(chain.bindings.values()))
    bad = StreamBinding("bad", 2, binding.in_fifo, binding.out_fifo,
                        states=[])  # 0 contexts for 1 tile
    with pytest.raises(GatewayError, match="contexts for"):
        EntryGateway(**entry_kwargs(soc, chain, bindings=[bad]))


def test_exit_rejects_block_flood():
    sim = Simulator()
    ring = DualRing(sim, 4)
    channel = HardwareFifoChannel(sim, ring, 2, 3, capacity=2)
    idle = Signal(sim, initial=1)
    gw = ExitGateway(sim, "x", channel, idle)
    binding = StreamBinding(
        "s", 1,
        in_fifo=_DummyFifo(), out_fifo=_DummyFifo(), states=[],
    )
    for _ in range(4):  # queue capacity
        gw.begin_block(binding)
    with pytest.raises(GatewayError, match="too many blocks in flight"):
        gw.begin_block(binding)


class _DummyFifo:
    name = "dummy"
    high_water = 0


# ------------------------------------------------------------- tile guards
def test_tile_rejects_context_ops_while_busy():
    soc, chain = gateway_parts()
    tile = chain.tiles[0]
    tile.busy = True
    with pytest.raises(SimulationError, match="corrupt"):
        tile.save_state()
    with pytest.raises(SimulationError, match="corrupt"):
        tile.load_state({})
    with pytest.raises(SimulationError, match="corrupt"):
        tile.activate_shadow(None, "s0")


def test_tile_shadow_needs_installed_context():
    soc, chain = gateway_parts()
    tile = chain.tiles[0]
    with pytest.raises(SimulationError, match="no shadow context"):
        tile.activate_shadow(None, "never-installed")
