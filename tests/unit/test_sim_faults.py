"""Unit tests for the fault-injection subsystem (`repro.sim.faults`)."""

from fractions import Fraction

import pytest

from repro.sim import Simulator
from repro.sim.faults import (
    ACCEL_STALL,
    CFIFO_PTR_LOSS,
    RECONFIG_FAIL,
    RING_DELAY,
    RING_DROP,
    AdmissionController,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    StreamRequirement,
    WatchdogConfig,
)


# -- FaultSpec validation ---------------------------------------------------

def test_spec_rejects_unknown_kind():
    with pytest.raises(FaultError, match="unknown fault kind"):
        FaultSpec(kind="meltdown", at=0)


def test_spec_rejects_bad_window():
    with pytest.raises(FaultError, match="arming cycle"):
        FaultSpec(kind=ACCEL_STALL, at=-1, extra=1)
    with pytest.raises(FaultError, match="duration"):
        FaultSpec(kind=ACCEL_STALL, at=0, duration=0, extra=1)


def test_stall_kinds_need_extra():
    with pytest.raises(FaultError, match="extra"):
        FaultSpec(kind=ACCEL_STALL, at=0)
    with pytest.raises(FaultError, match="extra"):
        FaultSpec(kind=RING_DELAY, at=0)


def test_probability_only_for_ring_drop():
    with pytest.raises(FaultError, match="probability"):
        FaultSpec(kind=ACCEL_STALL, at=0, extra=1, probability=0.5)
    with pytest.raises(FaultError, match="probability"):
        FaultSpec(kind=RING_DROP, at=0, probability=0.0)
    FaultSpec(kind=RING_DROP, at=0, probability=1.0)  # boundary is legal


def test_spec_window_property():
    spec = FaultSpec(kind=RING_DROP, at=10, duration=5)
    assert spec.until == 15


# -- plan serialisation -----------------------------------------------------

def test_plan_json_round_trip():
    plan = FaultPlan(specs=(
        FaultSpec(kind=ACCEL_STALL, at=100, target="acc0", duration=10,
                  extra=50, count=2),
        FaultSpec(kind=RING_DROP, at=200, ring="credit", src=1, dst=3,
                  probability=0.25),
        FaultSpec(kind=CFIFO_PTR_LOSS, at=5, target="s.in", side="read"),
    ), seed=99)
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert len(again) == 3 and bool(again)


def test_plan_to_dict_omits_defaults():
    d = FaultSpec(kind=RECONFIG_FAIL, at=7, target="pal").to_dict()
    assert d == {"kind": RECONFIG_FAIL, "at": 7, "target": "pal"}


def test_plan_rejects_unknown_fields():
    with pytest.raises(FaultError, match="unknown fault-spec fields"):
        FaultSpec.from_dict({"kind": ACCEL_STALL, "at": 0, "extra": 1,
                             "severity": "bad"})
    with pytest.raises(FaultError, match="unknown fault-plan fields"):
        FaultPlan.from_dict({"faults": [], "rng": 1})


def test_plan_rejects_bad_json():
    with pytest.raises(FaultError, match="invalid fault-plan JSON"):
        FaultPlan.from_json("{nope")


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert len(FaultPlan()) == 0


# -- injector hook behaviour ------------------------------------------------

def injector_at(now, *specs, seed=0):
    sim = Simulator()
    sim.now = now
    return FaultInjector(FaultPlan(specs=tuple(specs), seed=seed), sim)


def test_accel_stall_fires_only_in_window():
    spec = FaultSpec(kind=ACCEL_STALL, at=100, duration=10, target="acc0",
                     extra=7)
    assert injector_at(99, spec).accel_extra("acc0") == 0
    assert injector_at(100, spec).accel_extra("acc0") == 7
    assert injector_at(109, spec).accel_extra("acc0") == 7
    assert injector_at(110, spec).accel_extra("acc0") == 0


def test_accel_stall_respects_target_and_count():
    spec = FaultSpec(kind=ACCEL_STALL, at=0, duration=100, target="acc0",
                     extra=5, count=1)
    inj = injector_at(10, spec)
    assert inj.accel_extra("acc1") == 0       # wrong target
    assert inj.accel_extra("acc0") == 5       # fires once
    assert inj.accel_extra("acc0") == 0       # count exhausted
    assert len(inj.events) == 1


def test_ring_drop_records_loss_for_repair():
    spec = FaultSpec(kind=RING_DROP, at=0, duration=10, src=2, dst=3)
    inj = injector_at(5, spec)
    delay, dropped = inj.ring_fault("data", 2, 3)
    assert (delay, dropped) == (0, True)
    assert inj.pending_losses == 1
    assert inj.claim_drops(2, 3) == (1, 0)
    assert inj.pending_losses == 0
    # a credit-ring drop in the opposite direction books against the
    # same data-direction channel
    spec2 = FaultSpec(kind=RING_DROP, at=0, duration=10, ring="credit",
                      src=3, dst=2)
    inj2 = injector_at(5, spec2)
    inj2.ring_fault("credit", 3, 2)
    assert inj2.claim_drops(2, 3) == (0, 1)


def test_ring_drop_probability_is_seed_deterministic():
    spec = FaultSpec(kind=RING_DROP, at=0, duration=10_000, probability=0.5)

    def outcomes(seed):
        inj = injector_at(0, spec, seed=seed)
        return [inj.ring_fault("data", 0, 1)[1] for _ in range(64)]

    assert outcomes(7) == outcomes(7)
    assert outcomes(7) != outcomes(8)  # astronomically unlikely to collide


def test_ring_delay_accumulates():
    s1 = FaultSpec(kind=RING_DELAY, at=0, duration=10, extra=3)
    s2 = FaultSpec(kind=RING_DELAY, at=0, duration=10, extra=4, src=0)
    inj = injector_at(0, s1, s2)
    assert inj.ring_fault("data", 0, 1) == (7, False)
    assert inj.ring_fault("data", 2, 1) == (3, False)   # s2 src mismatch
    assert inj.max_ring_delay() == 4


def test_cfifo_ptr_loss_matches_side():
    spec = FaultSpec(kind=CFIFO_PTR_LOSS, at=0, duration=10, target="s.in",
                     side="read", count=1)
    inj = injector_at(0, spec)
    assert not inj.cfifo_ptr_loss("s.in", "write")
    assert inj.cfifo_ptr_loss("s.in", "read")
    assert not inj.cfifo_ptr_loss("s.in", "read")  # count cap


def test_reconfig_fail_targets_stream():
    spec = FaultSpec(kind=RECONFIG_FAIL, at=0, duration=10, target="pal")
    inj = injector_at(0, spec)
    assert not inj.reconfig_fails("ntsc")
    assert inj.reconfig_fails("pal")


# -- WatchdogConfig ---------------------------------------------------------

def test_watchdog_budget_and_backoff():
    wd = WatchdogConfig(budgets={"pal": 1000}, default_budget=500, slack=64,
                        backoff_base=32, backoff_cap=100)
    assert wd.budget_for("pal") == 1064
    assert wd.budget_for("unknown") == 564
    assert wd.backoff(1) == 32
    assert wd.backoff(2) == 64
    assert wd.backoff(3) == 100  # capped
    with pytest.raises(FaultError):
        wd.backoff(0)


def test_watchdog_validation():
    with pytest.raises(FaultError):
        WatchdogConfig(slack=-1)
    with pytest.raises(FaultError):
        WatchdogConfig(backoff_base=64, backoff_cap=32)
    with pytest.raises(FaultError):
        WatchdogConfig(settle_rounds=0)


# -- AdmissionController ----------------------------------------------------

def reqs():
    # a round of the two of them takes 200 cycles; each needs eta/round >= mu
    return [
        StreamRequirement("hi", mu=Fraction(1, 30), tau=100, eta=8),
        StreamRequirement("lo", mu=Fraction(1, 50), tau=100, eta=8),
    ]


def test_admission_pauses_lowest_priority_under_overhead():
    adm = AdmissionController(reqs(), healthy_window=1000)
    # small recovery: 8/(200+10) still >= 1/30 for "hi"
    assert adm.note_recovery(10, "hi", 10) == []
    # huge recovery breaks the check; "lo" (lowest priority) is paused
    assert adm.note_recovery(20, "hi", 500) == ["lo"]
    assert adm.is_paused("lo") and not adm.is_paused("hi")
    assert adm.paused == ["lo"]


def test_admission_readmits_after_healthy_window():
    adm = AdmissionController(reqs(), healthy_window=1000)
    adm.note_recovery(20, "hi", 500)
    assert adm.tick(500) == []          # window not elapsed
    assert adm.tick(1020) == ["lo"]     # healthy again
    assert not adm.is_paused("lo")


def test_admission_never_pauses_last_active_stream():
    adm = AdmissionController(reqs(), healthy_window=1000)
    adm.mark_failed("lo")
    # even an absurd overhead cannot pause the only remaining stream
    assert adm.note_recovery(10, "hi", 10**9) == []
    assert adm.paused == []


def test_admission_failed_streams_leave_the_active_set():
    adm = AdmissionController(reqs(), healthy_window=1000)
    adm.note_recovery(20, "hi", 500)
    adm.mark_failed("lo")
    assert adm.paused == []             # failed trumps paused
    assert adm.tick(10_000) == []       # and is never readmitted
