"""Unit tests for the symbolic block-size-parameterized schedule."""

from fractions import Fraction


from repro.core import (
    AcceleratorSpec,
    Affine,
    GatewaySystem,
    StreamSpec,
    build_stream_csdf,
    measure_block_time,
    parametric_schedule,
    tau_hat,
)


def make(eps=9, rho=(1,), delta=1, R=10, n_streams=1, eta=4):
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(f"a{i}", r) for i, r in enumerate(rho)),
        streams=tuple(
            StreamSpec(f"s{i}", Fraction(1, 1000), R, block_size=eta)
            for i in range(n_streams)
        ),
        entry_copy=eps,
        exit_copy=delta,
    )


# ---------------------------------------------------------------- Affine
def test_affine_arithmetic():
    a = Affine.eta(3) + Affine.const(5)
    b = Affine.eta(1) + 2
    assert (a + b)(10) == 40 + 7
    assert (a - b)(10) == 20 + 3
    assert a(0) == 5


def test_affine_domination():
    big = Affine.eta(3) + Affine.const(0)
    small = Affine.eta(2) + Affine.const(1)
    assert big.dominates(small, eta_min=1)
    assert not small.dominates(big, eta_min=1)
    # equal slopes: offset decides
    assert (Affine.eta(2) + 5).dominates(Affine.eta(2) + 3)


def test_affine_str():
    assert str(Affine.const(7)) == "7"
    assert str(Affine.eta(2)) == "2·η"
    assert "η" in str(Affine.eta(1) + 3)


# -------------------------------------------------------------- schedules
def test_entry_bound_tau():
    # ε dominates: τ(η) = ε·η + R + ρ + δ
    sched = parametric_schedule(make(eps=9, rho=(1,), delta=1, R=10), "s0")
    assert sched.tau.slope == 9
    assert sched.tau.offset == 10 + 1 + 1
    assert "ε" in sched.bottleneck


def test_accelerator_bound_tau():
    sched = parametric_schedule(make(eps=1, rho=(4,), delta=2, R=10), "s0")
    assert sched.tau.slope == 4
    assert sched.tau.offset == 10 + 1 + 2
    assert "acc" in sched.bottleneck


def test_exit_bound_tau():
    sched = parametric_schedule(make(eps=2, rho=(1,), delta=3, R=10), "s0")
    assert sched.tau.slope == 3
    assert sched.tau.offset == 10 + 2 + 1
    assert "δ" in sched.bottleneck


def test_chain_tau():
    sched = parametric_schedule(make(eps=5, rho=(2, 3), delta=1, R=7), "s0")
    assert sched.tau.slope == 5
    assert sched.tau.offset == 7 + 2 + 3 + 1
    assert len(sched.stage_ends) == 2


def test_eq1_first_phase_with_interference():
    system = make(n_streams=2, eps=5, R=10, eta=4)
    sched = parametric_schedule(system, "s0")
    from repro.core import rho_g0_first_phase

    assert sched.g0_first_phase(4) == rho_g0_first_phase(system, "s0")


def test_symbolic_tau_matches_measured_csdf():
    """τ(η) evaluated must equal the measured CSDF block time exactly."""
    for eps, rho, delta in ((9, 1, 1), (1, 4, 2), (2, 1, 3), (3, 3, 3)):
        for eta in (2, 5, 9):
            system = make(eps=eps, rho=(rho,), delta=delta, R=13, eta=eta)
            sched = parametric_schedule(system, "s0")
            graph, info = build_stream_csdf(
                system, "s0", producer_period=Fraction(1, 100),
                consumer_period=Fraction(1, 100),
                alpha0=2 * eta, alpha3=2 * eta, prequeued=2 * eta,
            )
            measured = measure_block_time(graph, info)[0]
            assert sched.tau_at(eta) == measured, (eps, rho, delta, eta)


def test_eq2_dominates_symbolically():
    """Eq. 2 = c0·η + R + flush·c0 must dominate τ(η) for every mix."""
    for eps, rho, delta in ((9, 1, 1), (1, 4, 2), (2, 1, 3), (7, 7, 7)):
        system = make(eps=eps, rho=(rho,), delta=delta, R=13)
        sched = parametric_schedule(system, "s0")  # raises if not dominated
        c0 = system.c0
        for eta in (1, 10, 1000):
            assert sched.tau_at(eta) <= tau_hat(
                system.with_block_sizes({"s0": eta}), "s0"
            )


def test_describe_output():
    sched = parametric_schedule(make(), "s0")
    text = sched.describe()
    assert "τ(η)" in text
    assert "bottleneck" in text
