"""SolverCache: memoization, warm starts, invalidation, counters."""

from fractions import Fraction

import pytest

from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec
from repro.core.blocksize_ilp import resolve_block_sizes
from repro.exp import SolverCache


def make_system(rate_den_a=60, rate_den_b=120, reconfigure=100, entry=15):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=(
            StreamSpec("s0", Fraction(1, rate_den_a), reconfigure),
            StreamSpec("s1", Fraction(1, rate_den_b), reconfigure),
        ),
        entry_copy=entry,
        exit_copy=1,
    )


def test_repeated_system_is_a_memo_hit():
    cache = SolverCache()
    system = make_system()
    first = cache.resolve(system)
    second = cache.resolve(system)
    assert second is first  # verbatim, no re-solve
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5
    assert len(cache) == 1


def test_equal_systems_share_a_fingerprint():
    cache = SolverCache()
    cache.resolve(make_system())
    cache.resolve(make_system())  # fresh but identical object
    assert cache.hits == 1


def test_distinct_systems_miss_and_warm_start():
    cache = SolverCache()
    cache.resolve(make_system(rate_den_a=60))
    result = cache.resolve(make_system(rate_den_a=70))
    assert cache.misses == 2
    # the second solve had an incumbent available; whether it was usable
    # is the solver's call, but the counter must agree with the result
    assert cache.warm_starts == (1 if result.warm_start else 0)


def test_warm_started_objective_equals_cold():
    """Warm starts accelerate the search; they must not change the optimum."""
    cache = SolverCache()
    variants = [make_system(rate_den_a=d) for d in (60, 64, 68, 72)]
    for system in variants:
        warm = cache.resolve(system)
        cold = resolve_block_sizes(system)
        assert warm.objective == cold.objective
        assert warm.block_sizes == cold.block_sizes


def test_warm_start_disabled_never_seeds():
    cache = SolverCache(warm_start=False)
    for d in (60, 64, 68):
        result = cache.resolve(make_system(rate_den_a=d))
        assert not result.warm_start
    assert cache.warm_starts == 0


def test_invalidate_drops_memo_keeps_counters():
    cache = SolverCache()
    system = make_system()
    cache.resolve(system)
    cache.resolve(system)
    cache.invalidate()
    assert len(cache) == 0
    assert (cache.hits, cache.misses) == (1, 1)  # history preserved
    cache.resolve(system)  # must re-solve now
    assert cache.misses == 2


def test_backend_flows_through():
    cache = SolverCache()
    scipy_result = cache.resolve(make_system(), backend="scipy")
    bnb_result = SolverCache().resolve(make_system(), backend="bnb")
    assert scipy_result.objective == bnb_result.objective


def test_stats_shape():
    cache = SolverCache()
    cache.resolve(make_system())
    cache.resolve(make_system())
    stats = cache.stats()
    assert stats == {
        "lookups": 2,
        "hits": 1,
        "misses": 1,
        "warm_starts": 0,
        "hit_rate": 0.5,
        "entries": 1,
        "capacity": None,
        "evictions": 0,
    }


def test_empty_cache_hit_rate_is_zero():
    assert SolverCache().hit_rate == 0.0


def test_cache_plugs_into_scenario_solve():
    from repro.api import Scenario

    cache = SolverCache()
    system = make_system()
    a = Scenario(system).solve(cache=cache)
    b = Scenario(system).solve(cache=cache)
    assert cache.hits == 1
    assert [s.block_size for s in a.system.streams] == [
        s.block_size for s in b.system.streams
    ]
    assert all(s.block_size is not None for s in a.system.streams)


@pytest.mark.parametrize("eta_max", [None, 4096])
def test_eta_max_flows_through(eta_max):
    result = SolverCache().resolve(make_system(), eta_max=eta_max)
    assert all(v >= 1 for v in result.block_sizes.values())


# ---------------------------------------------------------------------------
# bounded (LRU) cache and the sharded variant behind the admission service
# ---------------------------------------------------------------------------

def test_lru_capacity_evicts_oldest_entry():
    cache = SolverCache(capacity=2)
    a, b, c = make_system(60), make_system(61), make_system(62)
    cache.resolve(a)
    cache.resolve(b)
    cache.resolve(a)  # refresh a: b is now the eviction candidate
    cache.resolve(c)  # evicts b
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    misses = cache.misses
    cache.resolve(a)
    assert cache.misses == misses  # a survived
    cache.resolve(b)
    assert cache.misses == misses + 1  # b was evicted, must re-solve


def test_sharded_cache_memoizes_and_aggregates_stats():
    from repro.exp import ShardedSolverCache

    cache = ShardedSolverCache(shards=4, capacity=8)
    system = make_system()
    first = cache.resolve(system)
    second = cache.resolve(system)
    assert second is first
    stats = cache.stats()
    assert stats["lookups"] == 2 and stats["hits"] == 1
    assert len(stats["shards"]) == 4
    assert sum(s["entries"] for s in stats["shards"]) == len(cache) == 1


def test_sharded_cache_same_shape_shares_a_shard():
    from repro.exp import ShardedSolverCache
    from repro.exp.cache import _shard_skeleton
    from repro.core.blocksize_ilp import system_fingerprint

    cache = ShardedSolverCache(shards=8)
    # same stream names/costs, different throughputs: same shard, so the
    # warm-start incumbent carries across an admission service's re-solves
    fp_a = system_fingerprint(make_system(60), "sum")
    fp_b = system_fingerprint(make_system(61), "sum")
    assert _shard_skeleton(fp_a) == _shard_skeleton(fp_b)
    assert cache.shard_index(fp_a) == cache.shard_index(fp_b)


def test_sharded_cache_shard_index_is_process_stable():
    from repro.exp import ShardedSolverCache
    from repro.core.blocksize_ilp import system_fingerprint

    fp = system_fingerprint(make_system(), "sum")
    idx = [ShardedSolverCache(shards=8).shard_index(fp) for _ in range(3)]
    assert len(set(idx)) == 1  # crc32-based, not salted hash()


def test_sharded_cache_invalidate_clears_all_shards():
    from repro.exp import ShardedSolverCache

    cache = ShardedSolverCache(shards=2)
    cache.resolve(make_system(60))
    cache.resolve(make_system(61))
    assert len(cache) == 2
    cache.invalidate()
    assert len(cache) == 0
