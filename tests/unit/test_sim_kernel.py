"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(5)
        done.append(sim.now)
        yield sim.timeout(3)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [5, 8]


def test_timeout_value_passthrough():
    sim = Simulator()
    seen = []

    def proc():
        v = yield sim.timeout(2, value="hello")
        seen.append(v)

    sim.process(proc())
    sim.run()
    assert seen == ["hello"]


def test_zero_delay_timeout_fires_same_cycle():
    sim = Simulator()
    times = []

    def proc():
        yield sim.timeout(0)
        times.append(sim.now)

    sim.process(proc())
    sim.run()
    assert times == [0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    def trigger():
        yield sim.timeout(7)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == [(7, 42)]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as err:
            caught.append(str(err))

    sim.process(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_return_value_via_run_until():
    sim = Simulator()

    def proc():
        yield sim.timeout(3)
        return "result"

    p = sim.process(proc())
    assert sim.run(until=p) == "result"
    assert sim.now == 3


def test_process_waits_on_subprocess():
    sim = Simulator()
    order = []

    def child():
        yield sim.timeout(4)
        order.append("child")
        return 99

    def parent():
        v = yield sim.process(child())
        order.append(("parent", v, sim.now))

    sim.process(parent())
    sim.run()
    assert order == ["child", ("parent", 99, 4)]


def test_same_cycle_fifo_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_absolute_time():
    sim = Simulator()
    ticks = []

    def clock():
        while True:
            yield sim.timeout(10)
            ticks.append(sim.now)

    sim.process(clock())
    sim.run(until=35)
    assert ticks == [10, 20, 30]
    assert sim.now == 35


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_run_until_event_that_never_fires():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def attacker(p):
        yield sim.timeout(6)
        p.interrupt("stop")

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert log == [(6, "stop")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_stale_wakeup_after_interrupt_ignored():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(500)
        log.append(sim.now)

    def attacker(p):
        yield sim.timeout(10)
        p.interrupt()

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    # victim resumed at t=10, then slept 500 more; the stale t=100 wakeup
    # must not resume it early.
    assert log == [510]


def test_all_of_collects_values():
    sim = Simulator()
    got = []

    def proc():
        values = yield sim.all_of([sim.timeout(3, "a"), sim.timeout(7, "b")])
        got.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert got == [(7, ["a", "b"])]


def test_any_of_returns_first():
    sim = Simulator()
    got = []

    def proc():
        idx, val = yield sim.any_of([sim.timeout(9, "slow"), sim.timeout(2, "fast")])
        got.append((sim.now, idx, val))

    sim.process(proc())
    sim.run()
    assert got == [(2, 1, "fast")]


def test_yield_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_exception_propagates_when_unwatched():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("oops")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="oops"):
        sim.run()


def test_process_exception_delivered_to_watcher():
    sim = Simulator()
    caught = []

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("oops")

    def watcher():
        try:
            yield sim.process(bad())
        except RuntimeError as err:
            caught.append(str(err))

    sim.process(watcher())
    sim.run()
    assert caught == ["oops"]


def test_step_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(12)
    assert sim.peek() == 12


def test_interrupt_same_cycle_as_wakeup_no_double_resume():
    """An interrupt landing in the same cycle the waited event fires.

    The attacker is registered first, so at cycle 5 its wakeup precedes
    the victim's: the interrupt detaches the victim from a timeout that is
    already queued to fire later in the same cycle.  That stale wakeup
    must be swallowed — previously it resumed the generator as if the
    wait had completed, and the Interrupt then landed at the wrong yield.
    """
    sim = Simulator()
    log = []
    cell = {}

    def attacker():
        yield sim.timeout(5)
        cell["victim"].interrupt("preempt")

    def victim():
        try:
            yield sim.timeout(5, value="wait-done")
            log.append(("completed", sim.now))
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))
        yield sim.timeout(3)
        log.append(("after", sim.now))

    sim.process(attacker())
    cell["victim"] = sim.process(victim())
    sim.run()
    assert log == [("interrupted", 5, "preempt"), ("after", 8)]


def test_all_of_propagates_already_processed_failure():
    """AllOf over an event that already failed *and* was processed.

    Such events were silently skipped, so the AllOf succeeded as if the
    failure never happened; it must fail with the original exception.
    """
    sim = Simulator()
    failed = sim.event()
    failed.fail(RuntimeError("early failure"))
    swallow = sim.event()
    failed.add_callback(lambda _e: swallow.succeed())
    sim.run(until=swallow)  # drive `failed` to processed
    assert failed.processed and not failed.ok

    caught = []

    def proc():
        try:
            yield sim.all_of([failed, sim.timeout(3)])
        except RuntimeError as err:
            caught.append((sim.now, str(err)))

    sim.process(proc())
    sim.run()
    assert caught == [(0, "early failure")]


def test_all_of_already_processed_successes_fire_immediately():
    sim = Simulator()
    a = sim.timeout(1, "a")
    b = sim.timeout(2, "b")
    sim.run()
    assert a.processed and b.processed

    got = []

    def proc():
        values = yield sim.all_of([a, b])
        got.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert got == [(2, ["a", "b"])]


def test_any_of_cancels_losing_timeout():
    """The losing timer of an any_of must not keep the simulation alive."""
    sim = Simulator()
    got = []

    def proc():
        idx, val = yield sim.any_of([sim.timeout(2, "fast"),
                                     sim.timeout(10_000, "slow")])
        got.append((sim.now, idx, val))

    sim.process(proc())
    sim.run()
    assert got == [(2, 0, "fast")]
    # the 10_000-cycle loser was cancelled, not left to run the clock out
    assert sim.now == 2
    assert sim.peek() is None


def test_any_of_does_not_cancel_watched_timeout():
    """A loser someone else also waits on must still fire."""
    sim = Simulator()
    slow = sim.timeout(50, "slow")
    got = []

    def racer():
        idx, val = yield sim.any_of([sim.timeout(2, "fast"), slow])
        got.append(("race", sim.now, val))

    def watcher():
        val = yield slow
        got.append(("watch", sim.now, val))

    sim.process(racer())
    sim.process(watcher())
    sim.run()
    assert ("race", 2, "fast") in got
    assert ("watch", 50, "slow") in got


def test_any_of_with_already_processed_winner_reaps_fresh_timer():
    """A timer registered after a constituent already resolved is cancelled."""
    sim = Simulator()
    done = sim.timeout(1, "done")
    sim.run()
    assert done.processed
    got = []

    def proc():
        idx, val = yield sim.any_of([done, sim.timeout(9_999, "loser")])
        got.append((sim.now, idx, val))

    sim.process(proc())
    sim.run()
    assert got == [(1, 0, "done")]
    assert sim.peek() is None  # the 9_999 timer is gone from the queue


def test_cancelled_event_cannot_fire_or_recancel():
    sim = Simulator()
    t = sim.timeout(5)
    t.cancel()
    assert t.cancelled
    sim.run()
    assert sim.now == 0 and not t.processed
    winner = sim.timeout(1)
    sim.run()
    with pytest.raises(SimulationError):
        winner.cancel()  # already processed


def test_interrupt_cancels_sole_watched_timer():
    """Interrupting a process waiting on its own timer reclaims the timer."""
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(10_000)
        except Interrupt:
            yield sim.timeout(1)

    p = sim.process(sleeper())

    def killer():
        yield sim.timeout(3)
        p.interrupt("wake")

    sim.process(killer())
    sim.run()
    assert sim.now == 4  # not 10_000: the orphaned timer was cancelled


# -- clock-semantics contract & temporal decoupling (calendar queue) -------


def test_run_to_cycle_clamps_clock_when_queue_drains_early():
    """``run(until=cycle)`` always ends with ``now == until``.

    The idle tail between the last event and the horizon is *skipped*,
    never simulated: it shows up in ``skipped_cycles``, not in wall time.
    """
    sim = Simulator()

    def one_shot():
        yield sim.timeout(10)

    sim.process(one_shot())
    sim.run(until=1_000)
    assert sim.now == 1_000
    # 0->10 skips cycles 1..9 (9), 10->1000 skips the whole idle tail (990)
    assert sim.skipped_cycles == 9 + 990


def test_run_until_leaves_clock_on_last_dispatched_event():
    """Bounded drivers do NOT clamp: the clock rests where work stopped."""
    sim = Simulator()

    def one_shot():
        yield sim.timeout(10)

    done = sim.process(one_shot())
    assert sim.run_until(done, limit=1_000)
    assert sim.now == 10  # not 1_000


def test_run_while_leaves_clock_on_last_dispatched_event():
    sim = Simulator()
    done = []

    def one_shot():
        yield sim.timeout(10)
        done.append(True)

    sim.process(one_shot())
    assert sim.run_while(lambda: not done, limit=1_000)
    assert sim.now == 10


def test_run_until_cancelled_target_raises_clear_error():
    """A cancelled target event is reported as such, not as 'ran dry'."""
    sim = Simulator()
    target = sim.timeout(50)
    target.cancel()
    with pytest.raises(SimulationError, match="cancelled"):
        sim.run(until=target)


def test_run_until_target_cancelled_mid_run_raises_clear_error():
    sim = Simulator()
    target = sim.timeout(50)

    def saboteur():
        yield sim.timeout(10)
        target.cancel()

    sim.process(saboteur())
    with pytest.raises(SimulationError, match="cancelled"):
        sim.run(until=target)


def test_temporal_decoupling_skips_idle_cycles():
    """The cycle-skip path engages on sparse timelines (acceptance gate)."""
    sim = Simulator()

    def sparse():
        yield sim.timeout(1_000)
        yield sim.timeout(1_000)

    sim.process(sparse())
    sim.run()
    assert sim.now == 2_000
    assert sim.skipped_cycles == 2 * 999


def test_dense_timeline_skips_nothing():
    sim = Simulator()

    def dense():
        for _ in range(5):
            yield sim.timeout(1)

    sim.process(dense())
    sim.run()
    assert sim.now == 5
    assert sim.skipped_cycles == 0


def test_same_cycle_schedule_during_drain_stays_fifo():
    """Zero-delay events scheduled *while draining* a cycle run this cycle,
    after everything already queued for it (the active-bucket fast path)."""
    sim = Simulator()
    order = []

    def first():
        yield sim.timeout(1)
        order.append("first")
        yield sim.timeout(0)
        order.append("first-again")

    def second():
        yield sim.timeout(1)
        order.append("second")

    sim.process(first())
    sim.process(second())
    sim.run()
    assert sim.now == 1
    assert order == ["first", "second", "first-again"]
