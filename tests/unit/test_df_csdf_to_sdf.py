"""Unit tests for the per-actor CSDF → SDF collapse."""



from repro.dataflow import (
    CSDFGraph,
    SDFGraph,
    bound_channel,
    csdf_to_sdf,
    execute,
    repetition_vector,
    steady_state_throughput,
)


def sample():
    g = CSDFGraph("c")
    g.add_actor("p", duration=[2, 3, 1], phases=3)
    g.add_actor("q", duration=4)
    g.add_edge("p", "q", production=[1, 0, 2], consumption=1, tokens=1, name="ch")
    return g


def test_collapse_durations_summed():
    sdf = csdf_to_sdf(sample())
    assert isinstance(sdf, SDFGraph)
    assert sdf.actor("p").duration == (6.0,)
    assert sdf.actor("q").duration == (4.0,)


def test_collapse_quanta_totalled():
    sdf = csdf_to_sdf(sample())
    assert sdf.edge("ch").production == (3,)
    assert sdf.edge("ch").consumption == (1,)
    assert sdf.edge("ch").tokens == 1


def test_collapse_repetition_vector_in_cycles():
    g = sample()
    sdf = csdf_to_sdf(g)
    # CSDF q counts cycles; the SDF vector must equal it
    assert repetition_vector(sdf) == repetition_vector(g)


def test_collapse_throughput_is_conservative():
    """The SDF abstraction never promises MORE throughput than the CSDF."""
    g = bound_channel(sample(), "ch", 6)
    sdf = csdf_to_sdf(sample())
    sdf_b = bound_channel(sdf, "ch", 6)
    fine = steady_state_throughput(g, actor="q").firing_rate
    coarse = steady_state_throughput(sdf_b, actor="q").firing_rate
    assert coarse <= fine


def test_collapse_identity_on_plain_sdf():
    g = CSDFGraph("plain")
    g.add_actor("a", 2)
    g.add_actor("b", 3)
    g.add_edge("a", "b", production=2, consumption=1, tokens=1, name="e")
    sdf = csdf_to_sdf(g)
    assert sdf.actor("a").duration == (2.0,)
    assert sdf.edge("e").production == (2,)


def test_collapse_can_introduce_deadlock_risk_is_conservative():
    """A CSDF graph live with few tokens may deadlock after the collapse
    (all-or-nothing consumption needs more) — that is the conservative
    direction: the abstraction fails safe."""
    g = CSDFGraph("tight")
    g.add_actor("p", duration=[1, 1], phases=2)
    g.add_actor("q", duration=1)
    g.add_edge("p", "q", production=[1, 1], consumption=2, name="f")
    g.add_edge("q", "p", production=2, consumption=[1, 1], tokens=2, name="b")
    fine = execute(g, iterations=1)
    assert not fine.deadlocked
    sdf = csdf_to_sdf(g)
    coarse = execute(sdf, iterations=1)
    # the collapsed version also works here (tokens suffice), but never
    # finishes EARLIER
    if not coarse.deadlocked:
        assert coarse.end_time >= fine.end_time
