"""Unit tests for the hardware cost model (Table I / Fig. 11)."""

import pytest

from repro.hwcost import (
    BillOfMaterials,
    CostError,
    compare_sharing,
    component,
    paper_table1,
)


def test_table1_component_costs_exact():
    assert component("entry_exit_pair").slices == 3788
    assert component("entry_exit_pair").luts == 4445
    assert component("fir_downsampler").slices == 6512
    assert component("fir_downsampler").luts == 10837
    assert component("cordic").slices == 1714
    assert component("cordic").luts == 1882


def test_unknown_component_rejected():
    with pytest.raises(CostError):
        component("flux_capacitor")


def test_fig11_split_sums_to_pair():
    parts = ["microblaze", "entry_gateway_logic", "exit_gateway"]
    assert sum(component(p).slices for p in parts) == component("entry_exit_pair").slices
    assert sum(component(p).luts for p in parts) == component("entry_exit_pair").luts


def test_microblaze_dominates_pair_cost():
    """'the hardware costs can be mostly attributed to the MicroBlaze'."""
    pair = component("entry_exit_pair")
    mb = component("microblaze")
    assert mb.slices > pair.slices / 2
    assert mb.luts > pair.luts / 2


def test_component_arithmetic():
    c = component("cordic")
    doubled = 2 * c
    assert doubled.slices == 2 * 1714
    summed = c + component("fir_downsampler")
    assert summed.luts == 1882 + 10837


def test_bom_totals():
    bom = BillOfMaterials("x").add(4, "cordic").add(1, "entry_exit_pair")
    assert bom.slices == 4 * 1714 + 3788
    assert len(bom.rows()) == 2


def test_bom_negative_count_rejected():
    with pytest.raises(ValueError):
        BillOfMaterials("x").add(-1, "cordic")


def test_paper_table1_totals_exact():
    cmp = paper_table1()
    assert cmp.non_shared.slices == 32904
    assert cmp.non_shared.luts == 50876
    assert cmp.shared.slices == 12014
    assert cmp.shared.luts == 17164


def test_paper_table1_savings_exact():
    cmp = paper_table1()
    assert cmp.slice_savings == 20890
    assert cmp.lut_savings == 33712
    assert cmp.slice_savings_pct == pytest.approx(63.5, abs=0.05)
    assert cmp.lut_savings_pct == pytest.approx(66.3, abs=0.05)


def test_paper_accelerator_reduction_75pct():
    assert paper_table1().accelerator_reduction_pct == pytest.approx(75.0)


def test_table_rendering():
    out = paper_table1().table()
    assert "Savings" in out
    assert "63.5%" in out and "66.3%" in out


def test_compare_sharing_custom_counts():
    cmp = compare_sharing({"cordic": 6}, shared_counts={"cordic": 2},
                          gateway_pairs=2)
    assert cmp.non_shared.slices == 6 * 1714
    assert cmp.shared.slices == 2 * 3788 + 2 * 1714
    # with this much gateway overhead, savings shrink
    assert cmp.slice_savings < 6 * 1714 - 1714


def test_sharing_not_always_cheaper():
    """For a single cheap accelerator the gateway pair costs more than it
    saves — the trade-off the paper's Section VI-B implies."""
    cmp = compare_sharing({"cordic": 2})
    assert cmp.slice_savings < 0  # 2 CORDICs are cheaper than gw + 1 CORDIC
