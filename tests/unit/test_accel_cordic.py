"""Unit tests for the CORDIC core and the two CORDIC-based kernels."""

import math

import numpy as np
import pytest

from repro.accel import (
    FMDiscriminatorKernel,
    KernelError,
    MixerKernel,
    cordic_gain,
    cordic_rotate,
    cordic_vector,
    fm_demod_batch,
    mix_batch,
    run_kernel,
)

TOL = 1e-3  # 16 CORDIC iterations give ~2^-16 angular resolution


def test_cordic_gain_value():
    # the classical K ≈ 1.6468
    assert cordic_gain() == pytest.approx(1.6468, abs=1e-3)


@pytest.mark.parametrize(
    "angle", [0.0, 0.5, -0.5, math.pi / 2, -math.pi / 2, 2.5, -2.5, 3.1, -3.1]
)
def test_rotate_matches_trig(angle):
    x, y = cordic_rotate(1.0, 0.0, angle)
    assert x == pytest.approx(math.cos(angle), abs=TOL)
    assert y == pytest.approx(math.sin(angle), abs=TOL)


def test_rotate_preserves_magnitude():
    x, y = cordic_rotate(3.0, 4.0, 1.234)
    assert math.hypot(x, y) == pytest.approx(5.0, abs=TOL)


@pytest.mark.parametrize(
    "x,y",
    [(3.0, 4.0), (1.0, 0.0), (0.0, 1.0), (-3.0, 4.0), (-3.0, -4.0), (3.0, -4.0), (0.0, -1.0)],
)
def test_vector_matches_atan2(x, y):
    mag, phase = cordic_vector(x, y)
    assert mag == pytest.approx(math.hypot(x, y), abs=TOL)
    assert phase == pytest.approx(math.atan2(y, x), abs=TOL)


def test_rotate_then_vector_roundtrip():
    for angle in np.linspace(-3.0, 3.0, 13):
        x, y = cordic_rotate(2.0, 0.0, float(angle))
        _, phase = cordic_vector(x, y)
        assert phase == pytest.approx(float(angle), abs=2 * TOL)


# ---------------------------------------------------------------- MixerKernel
def test_mixer_matches_batch_reference():
    mix = MixerKernel(0.07)
    s = np.exp(2j * np.pi * 0.07 * np.arange(64)) * (1 + 0.3j)
    stream = run_kernel(mix, s)
    batch = mix_batch(s, 0.07)
    assert np.max(np.abs(stream - batch)) < 1e-3


def test_mixer_shifts_tone_to_dc():
    f = 0.125
    mix = MixerKernel(f)
    s = np.exp(2j * np.pi * f * np.arange(128))
    out = run_kernel(mix, s)
    # after mixing the tone sits at DC: nearly constant
    assert np.std(np.angle(out[1:] / out[:-1])) < 1e-3


def test_mixer_rejects_out_of_range_frequency():
    with pytest.raises(KernelError):
        MixerKernel(0.75)


def test_mixer_state_roundtrip():
    m1 = MixerKernel(0.1)
    s = np.exp(2j * np.pi * 0.1 * np.arange(10))
    run_kernel(m1, s[:5])
    state = m1.get_state()
    m2 = MixerKernel(0.0)
    m2.set_state(state)
    out1 = run_kernel(m1, s[5:])
    out2 = run_kernel(m2, s[5:])
    assert np.allclose(out1, out2)


def test_mixer_state_missing_key_rejected():
    with pytest.raises(KernelError):
        MixerKernel(0.1).set_state({"phase": 0.0})


def test_mixer_rho_is_one_cycle_per_sample():
    assert MixerKernel(0.1).rho == 1


# ------------------------------------------------------ FMDiscriminatorKernel
def test_fm_demod_constant_offset_frequency():
    # pure tone at frequency f: phase step 2*pi*f per sample
    f = 0.05
    s = np.exp(2j * np.pi * f * np.arange(64))
    out = run_kernel(FMDiscriminatorKernel(), s)
    assert np.allclose(out[1:], 2 * np.pi * f, atol=1e-3)


def test_fm_demod_matches_batch_reference():
    rng = np.random.default_rng(3)
    phase = np.cumsum(rng.uniform(-0.5, 0.5, 100))
    s = np.exp(1j * phase)
    stream = run_kernel(FMDiscriminatorKernel(), s)
    batch = fm_demod_batch(s)
    assert np.max(np.abs(stream - batch)) < 1e-3


def test_fm_demod_recovers_modulating_tone():
    fs, dev = 32000.0, 1000.0
    t = np.arange(2048) / fs
    audio = 0.7 * np.sin(2 * np.pi * 400 * t)
    sig = np.exp(1j * 2 * np.pi * np.cumsum(dev * audio) / fs)
    out = run_kernel(FMDiscriminatorKernel(), sig)
    rec = out / (2 * np.pi * dev / fs)
    # ignore the first transient sample
    assert np.corrcoef(rec[1:], audio[1:])[0, 1] > 0.999


def test_fm_demod_state_roundtrip():
    s = np.exp(1j * np.linspace(0, 6, 20))
    k1 = FMDiscriminatorKernel()
    run_kernel(k1, s[:10])
    k2 = FMDiscriminatorKernel()
    k2.set_state(k1.get_state())
    assert np.allclose(run_kernel(k1, s[10:]), run_kernel(k2, s[10:]))


def test_fm_demod_output_wrapped():
    # a phase jump of ~2π-ε must not appear as a huge frequency
    s = [1.0, np.exp(1j * 3.0), np.exp(-1j * 3.0)]
    out = run_kernel(FMDiscriminatorKernel(), np.array(s))
    assert all(-np.pi <= v <= np.pi for v in out)


def test_state_words_reported():
    assert MixerKernel(0.1).state_words == 2
    assert FMDiscriminatorKernel().state_words == 1
