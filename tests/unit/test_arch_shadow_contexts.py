"""Unit tests for shadow contexts (the paper's future-work extension).

Section VI-A: "we are working on techniques to improve the speed at which
state can be saved and restored".  Shadow contexts make the context switch
a constant-time bank swap; functionally the system must behave exactly as
with software save/restore.
"""

import pytest

from repro.accel import MixerKernel
from repro.arch import Get, GatewayError, MPSoC, Put, TaskSpec
from repro.sim import SimulationError


def build(context_mode, reconfigure=500, etas=(2, 2)):
    soc = MPSoC(n_stations=8)
    prod = soc.add_processor("p")
    cons = soc.add_processor("c")
    in_fifos = [prod.fifo_to(2, capacity=64, name=f"in{i}") for i in range(2)]
    out_fifos = [soc.software_fifo(4, cons, capacity=64, name=f"out{i}")
                 for i in range(2)]
    states = [
        [{"freq_over_fs": 0.25, "phase": 0.0}],
        [{"freq_over_fs": 0.0, "phase": 0.0}],
    ]
    chain = soc.shared_chain(
        "g", [MixerKernel(0.0)],
        [{"name": f"s{i}", "eta": etas[i], "in_fifo": in_fifos[i],
          "out_fifo": out_fifos[i], "states": states[i],
          "reconfigure_cycles": reconfigure} for i in range(2)],
        entry_copy=3, exit_copy=1,
        context_mode=context_mode, shadow_switch_cycles=4,
    )
    return soc, prod, cons, in_fifos, out_fifos, chain


def drive(soc, prod, cons, in_fifos, out_fifos, n=8):
    got = [[], []]

    def producer():
        for i in range(n):
            yield Put(in_fifos[0], 1.0)
            yield Put(in_fifos[1], 1.0)

    def consumer():
        for _ in range(n):
            got[0].append((yield Get(out_fifos[0])))
            got[1].append((yield Get(out_fifos[1])))

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start()
    cons.start()
    soc.run(until=100_000)
    return got


def test_shadow_mode_functionally_identical():
    got_sw = drive(*build("software")[:5])
    got_sh = drive(*build("shadow")[:5])
    assert got_sw[0] == got_sh[0]
    assert got_sw[1] == got_sh[1]


def test_shadow_mode_slashes_reconfiguration_time():
    *rest_sw, chain_sw = build("software", reconfigure=500)
    drive(*rest_sw)
    *rest_sh, chain_sh = build("shadow", reconfigure=500)
    drive(*rest_sh)
    switches = chain_sw.entry.blocks_admitted  # alternating streams
    assert chain_sw.entry.reconfig_cycles >= 500 * (switches - 1)
    assert chain_sh.entry.reconfig_cycles <= 4 * switches + switches


def test_shadow_contexts_isolated_between_streams():
    *rest, chain = build("shadow")
    got = drive(*rest)
    # stream 1: identity mixer -> all ones
    assert all(abs(g - 1.0) < 1e-3 for g in got[1])
    # stream 0: rotation by 0.25 turns/sample, phase continuous across blocks
    expected = [1, -1j, -1, 1j] * 2
    assert all(abs(g - e) < 1e-3 for g, e in zip(got[0], expected))


def test_shadow_switch_requires_installed_context():
    soc = MPSoC(n_stations=6)
    from repro.arch import AcceleratorTile, HardwareFifoChannel

    ring = soc.ring
    cin = HardwareFifoChannel(soc.sim, ring, 0, 1, capacity=2)
    cout = HardwareFifoChannel(soc.sim, ring, 1, 2, capacity=2)
    tile = AcceleratorTile(soc.sim, "t", MixerKernel(0.0), cin, cout)
    with pytest.raises(SimulationError):
        tile.activate_shadow(None, "ghost")


def test_shadow_bank_parks_outgoing_state():
    soc = MPSoC(n_stations=6)
    from repro.arch import AcceleratorTile, HardwareFifoChannel

    cin = HardwareFifoChannel(soc.sim, soc.ring, 0, 1, capacity=2)
    cout = HardwareFifoChannel(soc.sim, soc.ring, 1, 2, capacity=2)
    tile = AcceleratorTile(soc.sim, "t", MixerKernel(0.1), cin, cout)
    tile.install_shadow("a", {"freq_over_fs": 0.2, "phase": 0.5})
    tile.kernel.phase = 0.75
    tile.activate_shadow("b", "a")  # parks the 0.75 phase under "b"
    assert tile.kernel.freq_over_fs == 0.2
    assert tile.shadow_state("b")["phase"] == 0.75


def test_invalid_context_mode_rejected():
    with pytest.raises(GatewayError):
        build("quantum")


def test_invalid_shadow_cycles_rejected():
    soc = MPSoC(n_stations=8)
    f = soc.software_fifo(0, 1, 8, "f")
    with pytest.raises(GatewayError):
        soc.shared_chain(
            "g", [MixerKernel(0.0)],
            [{"name": "s", "eta": 2, "in_fifo": f, "out_fifo": f,
              "states": [MixerKernel(0.0).get_state()]}],
            context_mode="shadow", shadow_switch_cycles=0,
        )
