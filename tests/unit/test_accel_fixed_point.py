"""Unit tests for fixed-point CORDIC arithmetic (hardware datapath model)."""

import math

import numpy as np
import pytest

from repro.accel import (
    CordicKernel,
    KernelError,
    cordic_rotate,
    cordic_vector,
    run_kernel,
)


def test_quantized_rotate_on_grid():
    bits = 8
    x, y = cordic_rotate(1.0, 0.0, 0.7, fractional_bits=bits)
    scale = 1 << bits
    assert x * scale == round(x * scale)
    assert y * scale == round(y * scale)


def test_quantized_rotate_close_to_exact():
    for bits, tol in ((8, 0.05), (12, 0.004), (16, 3e-4)):
        x, y = cordic_rotate(1.0, 0.0, 1.1, fractional_bits=bits)
        assert abs(x - math.cos(1.1)) < tol
        assert abs(y - math.sin(1.1)) < tol


def test_quantization_error_shrinks_with_bits():
    angle = 0.913
    errors = []
    for bits in (6, 10, 14):
        x, _y = cordic_rotate(1.0, 0.0, angle, fractional_bits=bits)
        errors.append(abs(x - math.cos(angle)))
    assert errors[0] > errors[2]


def test_quantized_vector_accuracy():
    mag, phase = cordic_vector(3.0, 4.0, fractional_bits=12)
    assert mag == pytest.approx(5.0, abs=0.01)
    assert phase == pytest.approx(math.atan2(4, 3), abs=0.01)


def test_none_bits_is_double_precision():
    a = cordic_rotate(1.0, 0.5, 0.3)
    b = cordic_rotate(1.0, 0.5, 0.3, fractional_bits=None)
    assert a == b


def test_kernel_fractional_bits_validated():
    with pytest.raises(KernelError):
        CordicKernel(fractional_bits=0)
    with pytest.raises(KernelError):
        CordicKernel(fractional_bits=64)


def test_kernel_bits_part_of_context():
    k = CordicKernel("mix", 0.1, fractional_bits=10)
    state = k.get_state()
    assert state["fractional_bits"] == 10
    k2 = CordicKernel()
    k2.set_state(state)
    assert k2.fractional_bits == 10


def test_fixed_point_kernel_still_decodes_fm():
    fs, dev = 32000.0, 1000.0
    t = np.arange(1024) / fs
    audio = 0.7 * np.sin(2 * np.pi * 400 * t)
    sig = np.exp(1j * 2 * np.pi * np.cumsum(dev * audio) / fs)
    out = run_kernel(CordicKernel("fm", fractional_bits=14), sig)
    rec = out / (2 * np.pi * dev / fs)
    assert np.corrcoef(rec[1:], audio[1:])[0, 1] > 0.99


def test_fixed_point_snr_monotone_in_bits():
    """More datapath bits, cleaner mixer output — the ablation's core."""
    n = 256
    s = np.exp(2j * np.pi * 0.11 * np.arange(n))
    exact = run_kernel(CordicKernel("mix", 0.11), s.copy())
    snrs = []
    for bits in (6, 10, 14):
        q = run_kernel(CordicKernel("mix", 0.11, fractional_bits=bits), s.copy())
        noise = np.mean(np.abs(q - exact) ** 2)
        snrs.append(10 * np.log10(np.mean(np.abs(exact) ** 2) / max(noise, 1e-30)))
    assert snrs[0] < snrs[1] < snrs[2]
    assert snrs[2] > 40  # 14 bits: better than 40 dB
