"""Unit tests for exact state-space throughput analysis."""

from fractions import Fraction

import pytest

from repro.dataflow import (
    CSDFGraph,
    GraphError,
    SDFGraph,
    bound_channel,
    steady_state_throughput,
)


def bounded_pair(da, db, cap, prod=1, cons=1, tokens=0):
    g = SDFGraph("pair")
    g.add_actor("A", da)
    g.add_actor("B", db)
    g.add_edge("A", "B", production=prod, consumption=cons, tokens=tokens, name="ch")
    return bound_channel(g, "ch", cap)


def test_throughput_limited_by_slowest_actor():
    g = bounded_pair(2, 5, cap=4)
    r = steady_state_throughput(g, actor="B")
    assert r.firing_rate == Fraction(1, 5)
    assert not r.deadlocked


def test_throughput_limited_by_buffer():
    # capacity 1 serialises: period = da + db
    g = bounded_pair(2, 3, cap=1)
    r = steady_state_throughput(g, actor="B")
    assert r.firing_rate == Fraction(1, 5)


def test_throughput_multirate():
    g = bounded_pair(1, 1, cap=8, prod=4, cons=1)
    r = steady_state_throughput(g, actor="B")
    # B must fire 4x per A firing; both have duration 1; B is bottleneck
    assert r.firing_rate == Fraction(1, 1)
    rA = steady_state_throughput(g, actor="A")
    assert rA.firing_rate == Fraction(1, 4)


def test_iteration_rate_normalised():
    g = bounded_pair(1, 1, cap=8, prod=4, cons=1)
    rB = steady_state_throughput(g, actor="B")
    rA = steady_state_throughput(g, actor="A")
    assert rB.iteration_rate == rA.iteration_rate


def test_deadlocked_graph_reports_zero():
    g = SDFGraph("dead")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g.add_edge("B", "A")
    r = steady_state_throughput(g)
    assert r.deadlocked
    assert r.firing_rate == 0
    with pytest.raises(ZeroDivisionError):
        r.period_per_iteration


def test_unknown_actor_rejected():
    g = bounded_pair(1, 1, cap=2)
    with pytest.raises(GraphError):
        steady_state_throughput(g, actor="nope")


def test_unbounded_graph_aborts():
    g = SDFGraph("unbounded")
    g.add_actor("A", 1)
    g.add_actor("B", 5)
    g.add_edge("A", "B")  # tokens pile up forever
    with pytest.raises(GraphError):
        steady_state_throughput(g, actor="A", max_steps=500)


def test_period_and_count_consistent():
    g = bounded_pair(3, 4, cap=3)
    r = steady_state_throughput(g, actor="B")
    assert r.firing_rate == Fraction(r.firings_per_period) / r.period


def test_csdf_gateway_like_throughput():
    """A CSDF 'gateway' that forwards eta samples then pauses (reconfig)."""
    eta, reconf, copy = 4, 10, 2
    g = CSDFGraph("gwlike")
    g.add_actor("gw", duration=[reconf + copy] + [copy] * (eta - 1), phases=eta)
    g.add_actor("sink", duration=1)
    g.add_edge("gw", "sink", production=1, consumption=1, name="out")
    gb = bound_channel(g, "out", 2 * eta)
    r = steady_state_throughput(gb, actor="sink")
    # gw produces eta tokens per (reconf + eta*copy) time
    assert r.firing_rate == Fraction(eta, reconf + eta * copy)


def test_transient_then_periodic():
    # initial tokens create a transient before the periodic regime
    g = SDFGraph("tr")
    g.add_actor("A", 2)
    g.add_actor("B", 3)
    g.add_edge("A", "B", tokens=5, name="ch")
    gb = bound_channel(g, "ch", 7)
    r = steady_state_throughput(gb, actor="B")
    assert r.firing_rate == Fraction(1, 3)


def test_period_per_iteration():
    g = bounded_pair(2, 2, cap=4)
    r = steady_state_throughput(g, actor="A")
    assert r.period_per_iteration == 2
