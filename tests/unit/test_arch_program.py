"""Unit tests for the StreamProgram support library."""

import numpy as np
import pytest

from repro.accel import CordicKernel, run_kernel
from repro.arch import Get, ProgramError, Put, StreamProgram


def feeder_factory(samples):
    def factory(io):
        def gen():
            for s in samples:
                yield Put(io["out"], s)
        return gen
    return factory


def sink_factory(collected, count):
    def factory(io):
        def gen():
            for _ in range(count):
                collected.append((yield Get(io["in"])))
        return gen
    return factory


def simple_program(n=8, eta=4, freq=0.1):
    samples = [complex(k + 1, 0) for k in range(n)]
    collected: list = []
    prog = StreamProgram("simple")
    prog.add_task("fe", feeder_factory(samples), ports=["out"])
    prog.add_task("sink", sink_factory(collected, n), ports=["in"])
    prog.add_chain("gw", [CordicKernel()], entry_copy=3)
    prog.add_stream(
        "s0", chain="gw", eta=eta,
        states=[CordicKernel("mix", freq).get_state()],
        src=("fe", "out"), dst=("sink", "in"), reconfigure=50,
    )
    return prog, samples, collected


def test_program_builds_and_runs():
    prog, samples, collected = simple_program()
    built = prog.build()
    built.run(until=50_000)
    assert len(collected) == len(samples)
    ref = run_kernel(CordicKernel("mix", 0.1), np.array(samples))
    assert np.allclose(collected, ref)


def test_program_handles_exposed():
    prog, _s, _c = simple_program()
    built = prog.build()
    assert set(built.tiles) == {"fe", "sink"}
    assert set(built.chains) == {"gw"}
    assert "s0.in" in built.fifos and "s0.out" in built.fifos


def test_duplicate_declarations_rejected():
    prog, _s, _c = simple_program()
    with pytest.raises(ProgramError):
        prog.add_task("fe", feeder_factory([]), ports=["x"])
    with pytest.raises(ProgramError):
        prog.add_chain("gw", [CordicKernel()])
    with pytest.raises(ProgramError):
        prog.add_stream("s0", chain="gw", eta=1, states=[{}],
                        src=("fe", "out"), dst=("sink", "in"))


def test_unknown_chain_rejected():
    prog = StreamProgram()
    prog.add_task("a", feeder_factory([]), ports=["out"])
    prog.add_task("b", sink_factory([], 0), ports=["in"])
    prog.add_stream("s", chain="nope", eta=1, states=[{}],
                    src=("a", "out"), dst=("b", "in"))
    with pytest.raises(ProgramError, match="unknown chain"):
        prog.build()


def test_unknown_port_rejected():
    prog = StreamProgram()
    prog.add_task("a", feeder_factory([]), ports=["out"])
    prog.add_task("b", sink_factory([], 0), ports=["in"])
    prog.add_chain("gw", [CordicKernel()])
    prog.add_stream("s", chain="gw", eta=1,
                    states=[CordicKernel().get_state()],
                    src=("a", "bogus"), dst=("b", "in"))
    with pytest.raises(ProgramError, match="no port"):
        prog.build()


def test_port_double_use_rejected():
    prog = StreamProgram()
    prog.add_task("a", feeder_factory([]), ports=["out"])
    prog.add_task("b", sink_factory([], 0), ports=["in"])
    prog.add_channel("c1", src=("a", "out"), dst=("b", "in"), capacity=4)
    prog.add_channel("c2", src=("a", "out"), dst=("b", "in"), capacity=4)
    with pytest.raises(ProgramError, match="already used"):
        prog.build()


def test_unconnected_port_rejected():
    prog = StreamProgram()
    prog.add_task("a", feeder_factory([]), ports=["out", "lonely"])
    prog.add_task("b", sink_factory([], 0), ports=["in"])
    prog.add_channel("c", src=("a", "out"), dst=("b", "in"), capacity=4)
    with pytest.raises(ProgramError, match="unconnected"):
        prog.build()


def test_wrong_state_count_rejected():
    prog = StreamProgram()
    prog.add_task("a", feeder_factory([]), ports=["out"])
    prog.add_task("b", sink_factory([], 0), ports=["in"])
    prog.add_chain("gw", [CordicKernel(), CordicKernel()])
    prog.add_stream("s", chain="gw", eta=1, states=[{}],
                    src=("a", "out"), dst=("b", "in"))
    with pytest.raises(ProgramError, match="contexts"):
        prog.build()


def test_chain_without_streams_rejected():
    prog = StreamProgram()
    prog.add_task("a", feeder_factory([1.0]), ports=["out"])
    prog.add_task("b", sink_factory([], 1), ports=["in"])
    prog.add_channel("c", src=("a", "out"), dst=("b", "in"), capacity=4)
    prog.add_chain("gw", [CordicKernel()])
    with pytest.raises(ProgramError, match="no streams"):
        prog.build()


def test_plain_channel_program():
    collected: list = []
    prog = StreamProgram()
    prog.add_task("a", feeder_factory([1.0, 2.0, 3.0]), ports=["out"])
    prog.add_task("b", sink_factory(collected, 3), ports=["in"])
    prog.add_channel("c", src=("a", "out"), dst=("b", "in"), capacity=4)
    built = prog.build()
    built.run(until=10_000)
    assert collected == [1.0, 2.0, 3.0]


def test_two_chains_two_gateway_pairs():
    """Fig. 1 shows TWO gateway pairs (G0/G1 and G2/G3) on one ring; the
    support library must build and run them concurrently."""
    n = 8
    samples = [complex(k + 1, 0) for k in range(n)]
    got_a: list = []
    got_b: list = []
    prog = StreamProgram("fig1")
    prog.add_task("fe", feeder_factory(samples), ports=["out"])
    prog.add_task("fe2", feeder_factory(samples), ports=["out"])
    prog.add_task("sa", sink_factory(got_a, n), ports=["in"])
    prog.add_task("sb", sink_factory(got_b, n), ports=["in"])
    prog.add_chain("g01", [CordicKernel()], entry_copy=3)
    prog.add_chain("g23", [CordicKernel()], entry_copy=3)
    prog.add_stream("sA", chain="g01", eta=4,
                    states=[CordicKernel("mix", 0.1).get_state()],
                    src=("fe", "out"), dst=("sa", "in"), reconfigure=20)
    prog.add_stream("sB", chain="g23", eta=2,
                    states=[CordicKernel("mix", 0.2).get_state()],
                    src=("fe2", "out"), dst=("sb", "in"), reconfigure=20)
    built = prog.build()
    built.run(until=100_000)
    assert len(got_a) == n and len(got_b) == n
    ref_a = run_kernel(CordicKernel("mix", 0.1), np.array(samples))
    ref_b = run_kernel(CordicKernel("mix", 0.2), np.array(samples))
    assert np.allclose(got_a, ref_a)
    assert np.allclose(got_b, ref_b)
    # the two pairs really are independent instances
    assert built.chains["g01"].entry is not built.chains["g23"].entry
