"""Unit tests for the one-call design flow."""

from fractions import Fraction

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    run_design_flow,
    throughput_satisfied,
)


def system_of(mus, R=100, eps=10):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=tuple(StreamSpec(f"s{i}", mu, R) for i, mu in enumerate(mus)),
        entry_copy=eps,
        exit_copy=1,
    )


def test_flow_produces_feasible_verified_design():
    report = run_design_flow(system_of([Fraction(1, 60), Fraction(1, 200)]))
    assert report.ok
    assert throughput_satisfied(report.system)
    assert set(report.block_sizes) == {"s0", "s1"}


def test_flow_bounds_present_per_stream():
    report = run_design_flow(system_of([Fraction(1, 80)]))
    b = report.bounds["s0"]
    assert b["gamma"] >= b["tau"]
    assert b["latency"] > b["gamma"]


def test_flow_buffers_sized_and_summed():
    report = run_design_flow(system_of([Fraction(1, 80)]))
    assert "s0" in report.buffer_capacities
    caps = report.buffer_capacities["s0"]
    assert set(caps) == {"p2s", "s2c"}
    assert report.total_buffer == sum(caps.values())


def test_flow_skip_buffer_sizing():
    report = run_design_flow(system_of([Fraction(1, 80)]), size_buffers=False)
    assert report.buffer_capacities == {}
    assert report.total_buffer == 0


def test_flow_overload_raises():
    with pytest.raises(ParameterError, match="load"):
        run_design_flow(system_of([Fraction(1, 5), Fraction(1, 5)]))


def test_flow_bnb_never_worse():
    report = run_design_flow(system_of([Fraction(1, 70)]), buffer_bnb_radius=3)
    assert report.buffer_optimal is not None
    assert report.buffer_optimal_total <= report.total_buffer


def test_flow_backend_choice():
    a = run_design_flow(system_of([Fraction(1, 90)]), backend="scipy")
    b = run_design_flow(system_of([Fraction(1, 90)]), backend="bnb")
    assert a.block_sizes == b.block_sizes


def test_flow_summary_renders():
    report = run_design_flow(system_of([Fraction(1, 90)]))
    text = report.summary()
    assert "design flow report" in text
    assert "PASS" in text
    assert "η=" in text
