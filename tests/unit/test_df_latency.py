"""Unit tests for token latency analysis."""

import pytest

from repro.dataflow import (
    GraphError,
    SDFGraph,
    execute,
    measure_latency,
    token_latencies,
)


def chain(da=2, db=3, cap=4):
    from repro.dataflow import bound_channel

    g = SDFGraph("lat")
    g.add_actor("A", da)
    g.add_actor("B", db)
    g.add_edge("A", "B", name="ch")
    return bound_channel(g, "ch", cap)


def test_latency_simple_pipeline():
    g = chain(da=2, db=3)
    rep = measure_latency(g, "A", "B", iterations=4)
    # B's k-th production happens db cycles after it starts, which is at or
    # after A's k-th production: latency >= db
    assert rep.best >= 3
    assert rep.worst >= rep.mean >= rep.best


def test_latency_grows_with_backlog():
    """With a deep buffer and a slow consumer, later tokens wait longer."""
    g = chain(da=1, db=5, cap=8)
    rep = measure_latency(g, "A", "B", iterations=3)
    assert rep.latencies[-1] > rep.latencies[0]


def test_latency_serialised_is_constant():
    """Capacity 1 fully serialises: every token has identical latency."""
    g = chain(da=2, db=3, cap=1)
    rep = measure_latency(g, "A", "B", iterations=4)
    assert len(set(rep.latencies[1:])) == 1


def test_latency_multirate_ratio():
    from repro.dataflow import bound_channel

    g = SDFGraph("mr")
    g.add_actor("A", 1)
    g.add_actor("B", 2)
    g.add_edge("A", "B", production=2, consumption=1, name="ch")
    gb = bound_channel(g, "ch", 4)
    rep = measure_latency(gb, "A", "B", iterations=3)
    assert len(rep.latencies) >= 4
    assert all(lat >= 0 for lat in rep.latencies)


def test_latency_unknown_actor():
    g = chain()
    res = execute(g, iterations=2, record=True)
    with pytest.raises(GraphError):
        token_latencies(res, g, "A", "nope")


def test_latency_empty_window():
    g = chain()
    res = execute(g, horizon=0, record=True)
    with pytest.raises(GraphError):
        token_latencies(res, g, "A", "B")


def test_latency_report_statistics():
    g = chain(da=2, db=2, cap=2)
    rep = measure_latency(g, "A", "B", iterations=5)
    assert rep.src == "A" and rep.dst == "B"
    assert rep.best <= rep.mean <= rep.worst


def test_gateway_sample_latency_bound():
    """The closed-form L̂ = η/μ + γ̂ dominates the CSDF model's measured
    producer-to-consumer token latency."""
    from fractions import Fraction

    from repro.core import (
        AcceleratorSpec,
        GatewaySystem,
        StreamSpec,
        build_stream_csdf,
        sample_latency_bound,
    )

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(StreamSpec("s", Fraction(1, 50), 100, block_size=6),),
        entry_copy=5,
        exit_copy=1,
    )
    graph, info = build_stream_csdf(system, "s")
    rep = measure_latency(graph, info.producer, info.exit, iterations=4)
    assert rep.worst <= float(sample_latency_bound(system, "s"))
