"""Unit tests for self-timed (C)SDF execution."""

import pytest

from repro.dataflow import (
    CSDFGraph,
    DeadlockError,
    GraphError,
    SDFGraph,
    execute,
)


def two_actor(prod=1, cons=1, tokens=0, da=1, db=1, back=None):
    g = SDFGraph("two")
    g.add_actor("A", da)
    g.add_actor("B", db)
    g.add_edge("A", "B", production=prod, consumption=cons, tokens=tokens, name="ch")
    if back is not None:
        g.add_edge("B", "A", production=cons, consumption=prod, tokens=back, name="back")
    return g


def test_execute_requires_stop_condition():
    with pytest.raises(GraphError):
        execute(two_actor())


def test_tokens_consumed_at_start_produced_at_end():
    g = two_actor(da=4, db=1)
    res = execute(g, iterations=1)
    a = res.firings_of("A")[0]
    b = res.firings_of("B")[0]
    assert (a.start, a.end) == (0, 4)
    # B can only start once A's token is produced at t=4
    assert b.start == 4
    assert b.end == 5


def test_source_actor_fires_back_to_back():
    g = two_actor(da=2, db=1, back=4)
    res = execute(g, iterations=3)
    starts = [f.start for f in res.firings_of("A")][:3]
    assert starts == [0, 2, 4]


def test_implicit_self_edge_prevents_overlap():
    g = two_actor(da=5, db=1, back=10)
    res = execute(g, iterations=2)
    firings = res.firings_of("A")
    assert firings[1].start >= firings[0].end


def test_iteration_counting_multirate():
    g = two_actor(prod=3, cons=1, back=6)
    res = execute(g, iterations=2)
    # q = {A:1, B:3} -> 2 iterations need >= 2 A firings, >= 6 B firings.
    # Self-timed execution may overshoot within the final event instant.
    assert res.completions["A"] >= 2
    assert res.completions["B"] >= 6
    assert res.iterations_completed >= 2


def test_deadlock_detected():
    g = SDFGraph("dead")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g.add_edge("B", "A")  # no initial tokens anywhere: nothing can fire
    res = execute(g, iterations=1)
    assert res.deadlocked
    assert res.completions == {"A": 0, "B": 0}


def test_deadlock_raises_when_forbidden():
    g = SDFGraph("dead")
    g.add_actor("A", 1)
    g.add_actor("B", 1)
    g.add_edge("A", "B")
    g.add_edge("B", "A")
    with pytest.raises(DeadlockError):
        execute(g, iterations=1, allow_deadlock=False)


def test_cycle_with_token_rotates():
    g = SDFGraph("ring")
    g.add_actor("A", 2)
    g.add_actor("B", 3)
    g.add_edge("A", "B")
    g.add_edge("B", "A", tokens=1)
    res = execute(g, iterations=4)
    # strictly alternating: period 5
    a_starts = [f.start for f in res.firings_of("A")]
    assert a_starts == [0, 5, 10, 15]


def test_horizon_stops_execution():
    g = two_actor(da=2, db=2, back=2)
    res = execute(g, horizon=11)
    assert res.end_time >= 11
    assert res.completions["A"] >= 5


def test_token_state_deterministic_in_serialised_ring():
    # fully serialised ring: exact token state at the stopping instant
    g = SDFGraph("ring")
    g.add_actor("A", 2)
    g.add_actor("B", 3)
    g.add_edge("A", "B", name="ch")
    g.add_edge("B", "A", tokens=1, name="bwd")
    res = execute(g, iterations=1)
    # at t=5 B completed (bwd +1) and A immediately started (bwd -1, in flight)
    assert res.end_time == 5
    assert res.tokens == {"ch": 0, "bwd": 0}


def test_zero_duration_actor_fires_instantly():
    g = SDFGraph("z")
    g.add_actor("src", 3)
    g.add_actor("zero", 0)
    g.add_actor("sink", 1)
    g.add_edge("src", "zero", name="e1")
    g.add_edge("zero", "sink", name="e2")
    g.add_edge("sink", "src", tokens=2, name="e3")
    res = execute(g, iterations=2)
    z = res.firings_of("zero")[0]
    assert z.start == z.end == 3


def test_zero_delay_livelock_guard():
    g = SDFGraph("live")
    g.add_actor("A", 0)
    g.add_actor("B", 0)
    g.add_edge("A", "B", tokens=1)
    g.add_edge("B", "A", tokens=1)
    with pytest.raises(GraphError):
        execute(g, iterations=10)


def test_csdf_phases_cycle():
    g = CSDFGraph("c")
    g.add_actor("p", duration=[2, 1], phases=2)
    g.add_actor("s", duration=1)
    g.add_edge("p", "s", production=[1, 0], consumption=1, name="e")
    g.add_edge("s", "p", production=[1], consumption=[1, 0], tokens=2, name="b")
    res = execute(g, iterations=2)
    fp = res.firings_of("p")
    assert [f.phase for f in fp[:4]] == [0, 1, 0, 1]
    # phase durations alternate 2, 1
    assert fp[0].end - fp[0].start == 2
    assert fp[1].end - fp[1].start == 1


def test_csdf_zero_quantum_phase_consumes_nothing():
    g = CSDFGraph("c")
    g.add_actor("gate", duration=[1, 1], phases=2)
    g.add_actor("src", duration=5)
    # gate consumes only in phase 0
    g.add_edge("src", "gate", production=1, consumption=[1, 0], name="in")
    res = execute(g, horizon=12)
    fg = res.firings_of("gate")
    # phase 0 waits for src's token at t=5, phase 1 follows immediately
    assert fg[0].start == 5
    assert fg[1].start == 6


def test_production_times_reported():
    g = two_actor(da=2, db=3, back=2)
    res = execute(g, iterations=2)
    assert res.production_times("A")[0] == 2


def test_records_disabled():
    g = two_actor(back=2)
    res = execute(g, iterations=2, record=False)
    assert res.firings == []
    assert res.completions["A"] >= 2
