"""Circuit-breaker state machine, driven by a fake clock."""

import pytest

from repro.serve import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_breaker(**kw):
    clock = FakeClock()
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("cooldown", 10.0)
    kw.setdefault("jitter", 0.0)
    return CircuitBreaker(clock=clock, **kw), clock


def test_starts_closed_and_allows_solves():
    b, _ = make_breaker()
    assert b.state == CLOSED
    assert not b.is_open
    assert b.begin_probe()


def test_trips_after_consecutive_failures_only():
    b, _ = make_breaker(failure_threshold=3)
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED
    b.record_success()  # success resets the run
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED
    b.record_failure()
    assert b.state == OPEN
    assert b.is_open
    assert b.trips == 1


def test_half_open_after_cooldown_single_probe_slot():
    b, clock = make_breaker()
    for _ in range(3):
        b.record_failure()
    assert b.state == OPEN
    assert not b.begin_probe()
    clock.advance(10.0)
    assert b.state == HALF_OPEN
    assert b.begin_probe()        # first caller wins the slot
    assert not b.begin_probe()    # second caller must stay conservative
    assert b.probes == 1


def test_probe_success_closes():
    b, clock = make_breaker()
    for _ in range(3):
        b.record_failure()
    clock.advance(10.0)
    assert b.begin_probe()
    b.record_success()
    assert b.state == CLOSED
    assert b.begin_probe()


def test_probe_failure_reopens_immediately():
    b, clock = make_breaker()
    for _ in range(3):
        b.record_failure()
    clock.advance(10.0)
    assert b.begin_probe()
    b.record_failure()  # one half-open failure re-trips, no threshold needed
    assert b.state == OPEN
    assert b.trips == 2


def test_jitter_is_seeded_and_deterministic():
    opens = []
    for _ in range(2):
        b, clock = make_breaker(jitter=5.0, seed=42)
        for _ in range(3):
            b.record_failure()
        clock.advance(10.0)  # base cooldown alone must not re-arm with jitter
        state_at_base = b.state
        clock.advance(5.0)
        opens.append((state_at_base, b.state, b._retry_at))
    assert opens[0] == opens[1]
    assert opens[0][1] == HALF_OPEN


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=-1.0)
    with pytest.raises(ValueError):
        CircuitBreaker(jitter=-0.1)


def test_stats_snapshot():
    b, _ = make_breaker()
    b.record_failure()
    b.record_success()
    s = b.stats()
    assert s["state"] == CLOSED
    assert s["failures"] == 1
    assert s["successes"] == 1
    assert s["consecutive_failures"] == 0
