"""Unit tests for bound-conformance checking (repro.core.conformance)."""

from fractions import Fraction

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    bounds_for,
    calibrated_system,
    check_conformance,
    check_stream,
    epsilon_hat,
    gamma,
    guaranteed_throughput,
    tau_hat,
)
from repro.sim import StreamMetrics


def make_system(etas=(4, 8), eps=5, delta=1, rho=(1,), R=50, mu=Fraction(1, 10**6)):
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(f"a{i}", r) for i, r in enumerate(rho)),
        streams=tuple(
            StreamSpec(f"s{i}", mu, R, block_size=e) for i, e in enumerate(etas)
        ),
        entry_copy=eps,
        exit_copy=delta,
    )


def fake_metrics(name="s0", eta=4, block_times=(), waits=(), turnarounds=(),
                 throughput=None):
    n = len(block_times)
    return StreamMetrics(
        name=name, eta=eta, blocks_done=n,
        samples_in=eta * n, samples_out=eta * n,
        block_times=tuple(block_times), waits=tuple(waits),
        turnarounds=tuple(turnarounds), throughput=throughput,
        first_output_at=None, last_output_at=None,
        in_high_water=None, out_high_water=None,
    )


def test_bounds_for_matches_timing_closures():
    sys_ = make_system()
    b = bounds_for(sys_, "s0")
    assert b.tau_hat == tau_hat(sys_, "s0")
    assert b.epsilon_hat == epsilon_hat(sys_, "s0")
    assert b.gamma == gamma(sys_, "s0")
    assert b.guaranteed_throughput == guaranteed_throughput(sys_, "s0")
    assert b.gamma == b.tau_hat + b.epsilon_hat  # Eq. 4 identity


def test_calibrated_system_offsets():
    sys_ = make_system(eps=5, delta=1, rho=(2, 3))
    cal = calibrated_system(sys_, entry_overhead=2, ni_overhead=1, cfifo_overhead=4)
    assert cal.entry_copy == 7
    assert cal.exit_copy == 5
    assert tuple(a.rho for a in cal.accelerators) == (3, 4)
    # streams untouched
    assert cal.streams == sys_.streams


def test_conforming_metrics_report_ok_with_margins():
    sys_ = make_system()
    b = bounds_for(sys_, "s0")
    m = fake_metrics(
        block_times=(b.tau_hat - 10, b.tau_hat - 3),
        waits=(b.epsilon_hat,),
        turnarounds=(b.gamma - 7,),
        throughput=b.guaranteed_throughput + Fraction(1, 1000),
    )
    sc = check_stream(sys_, m)
    assert sc.ok and sc.violations == ()
    assert sc.block_time_margin == 3
    assert sc.wait_margin == 0
    assert sc.turnaround_margin == 7
    assert sc.throughput_margin == Fraction(1, 1000)


def test_block_time_violation_detected():
    sys_ = make_system()
    b = bounds_for(sys_, "s0")
    m = fake_metrics(block_times=(b.tau_hat - 1, b.tau_hat + 5))
    sc = check_stream(sys_, m)
    assert not sc.ok
    [v] = sc.violations
    assert v.quantity == "block_time"
    assert v.observed == b.tau_hat + 5
    assert v.bound == b.tau_hat
    assert v.block_index == 1
    assert "VIOLATION" in str(v)


def test_wait_slack_applies_to_wait_check_only():
    sys_ = make_system()
    b = bounds_for(sys_, "s0")
    m = fake_metrics(
        waits=(b.epsilon_hat + 2,),
        block_times=(b.tau_hat + 2,),
    )
    strict = check_stream(sys_, m)
    assert {v.quantity for v in strict.violations} == {"wait", "block_time"}
    slacked = check_stream(sys_, m, wait_slack=2)
    # the wait violation is forgiven, the block-time one is not
    assert {v.quantity for v in slacked.violations} == {"block_time"}


def test_throughput_shortfall_is_a_violation():
    sys_ = make_system()
    b = bounds_for(sys_, "s0")
    m = fake_metrics(throughput=b.guaranteed_throughput / 2)
    sc = check_stream(sys_, m)
    assert [v.quantity for v in sc.violations] == ["throughput"]


def test_block_size_mismatch_is_a_configuration_error():
    sys_ = make_system(etas=(4,))
    with pytest.raises(ParameterError):
        check_stream(sys_, fake_metrics(eta=5))


def test_unknown_stream_raises():
    sys_ = make_system()
    with pytest.raises(ParameterError):
        check_stream(sys_, fake_metrics(name="ghost"))


def test_report_aggregates_streams_and_renders_violations_loudly():
    sys_ = make_system()
    b0 = bounds_for(sys_, "s0")
    good = fake_metrics(name="s0", eta=4, block_times=(b0.tau_hat,))
    b1 = bounds_for(sys_, "s1")
    bad = fake_metrics(name="s1", eta=8, block_times=(b1.tau_hat + 1,))
    report = check_conformance(sys_, [good, bad])
    assert not report.ok
    assert len(report.streams) == 2
    assert len(report.violations) == 1
    text = report.summary()
    assert "VIOLATION" in text
    assert "refinement" in text

    clean = check_conformance(sys_, [good])
    assert clean.ok
    assert "refinement holds" in clean.summary()


def test_report_to_dict_round_trips_to_json():
    import json

    sys_ = make_system()
    b = bounds_for(sys_, "s0")
    report = check_conformance(sys_, [fake_metrics(block_times=(b.tau_hat + 9,))])
    blob = json.dumps(report.to_dict())
    assert "block_time" in blob
