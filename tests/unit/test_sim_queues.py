"""Unit tests for FifoQueue and Signal primitives."""

import pytest

from repro.sim import FifoQueue, Signal, SimulationError, Simulator


# ---------------------------------------------------------------- FifoQueue
def test_fifo_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        FifoQueue(sim, 0)


def test_fifo_put_get_order():
    sim = Simulator()
    q = FifoQueue(sim, 4)
    got = []

    def producer():
        for i in range(3):
            yield q.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            v = yield q.get()
            got.append(v)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_fifo_put_blocks_when_full():
    sim = Simulator()
    q = FifoQueue(sim, 2)
    times = []

    def producer():
        for i in range(3):
            yield q.put(i)
            times.append(sim.now)

    def consumer():
        yield sim.timeout(10)
        yield q.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # first two puts accepted immediately, third waits for the get at t=10
    assert times == [0, 0, 10]


def test_fifo_get_blocks_when_empty():
    sim = Simulator()
    q = FifoQueue(sim, 2)
    arrival = []

    def consumer():
        v = yield q.get()
        arrival.append((sim.now, v))

    def producer():
        yield sim.timeout(5)
        yield q.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert arrival == [(5, "x")]


def test_fifo_level_and_space():
    sim = Simulator()
    q = FifoQueue(sim, 3)
    assert q.try_put("a") and q.try_put("b")
    assert q.level == 2
    assert q.space == 1
    ok, item = q.try_get()
    assert ok and item == "a"
    assert q.level == 1


def test_fifo_try_put_full_returns_false():
    sim = Simulator()
    q = FifoQueue(sim, 1)
    assert q.try_put(1)
    assert not q.try_put(2)


def test_fifo_try_get_empty_returns_false():
    sim = Simulator()
    q = FifoQueue(sim, 1)
    ok, item = q.try_get()
    assert not ok and item is None


def test_fifo_direct_handover_to_waiting_getter():
    sim = Simulator()
    q = FifoQueue(sim, 1)
    got = []

    def consumer():
        v = yield q.get()
        got.append(v)

    sim.process(consumer())
    sim.run()  # consumer now parked
    assert q.try_put("direct")
    sim.run()
    assert got == ["direct"]
    assert q.level == 0


def test_fifo_counters():
    sim = Simulator()
    q = FifoQueue(sim, 8)
    for i in range(5):
        q.try_put(i)
    for _ in range(3):
        q.try_get()
    assert q.total_put == 5
    assert q.total_got == 3


def test_fifo_multiple_getters_fifo_order():
    sim = Simulator()
    q = FifoQueue(sim, 4)
    got = []

    def consumer(tag):
        v = yield q.get()
        got.append((tag, v))

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.run()
    q.try_put("a")
    q.try_put("b")
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


# ------------------------------------------------------------------- Signal
def test_signal_initial_count():
    sim = Simulator()
    s = Signal(sim, initial=3)
    assert s.count == 3
    assert s.try_acquire(2)
    assert s.count == 1


def test_signal_negative_initial_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Signal(sim, initial=-1)


def test_signal_acquire_blocks_until_release():
    sim = Simulator()
    s = Signal(sim)
    when = []

    def waiter():
        yield s.acquire(2)
        when.append(sim.now)

    def releaser():
        yield sim.timeout(4)
        s.release(1)
        yield sim.timeout(4)
        s.release(1)

    sim.process(waiter())
    sim.process(releaser())
    sim.run()
    assert when == [8]


def test_signal_fifo_service_no_overtaking():
    """A small request queued behind a big one must not overtake it."""
    sim = Simulator()
    s = Signal(sim)
    order = []

    def big():
        yield s.acquire(5)
        order.append("big")

    def small():
        yield sim.timeout(1)
        yield s.acquire(1)
        order.append("small")

    sim.process(big())
    sim.process(small())
    s_units = [2, 2, 2]

    def feeder():
        for u in s_units:
            yield sim.timeout(10)
            s.release(u)

    sim.process(feeder())
    sim.run()
    assert order == ["big", "small"]


def test_signal_try_acquire_respects_queue():
    sim = Simulator()
    s = Signal(sim, initial=1)

    def waiter():
        yield s.acquire(5)

    sim.process(waiter())
    sim.run()
    # 1 unit is available but the queued waiter has priority
    assert not s.try_acquire(1)


def test_signal_release_zero_rejected():
    sim = Simulator()
    s = Signal(sim)
    with pytest.raises(SimulationError):
        s.release(0)


def test_signal_acquire_zero_rejected():
    sim = Simulator()
    s = Signal(sim)
    with pytest.raises(SimulationError):
        s.acquire(0)
    with pytest.raises(SimulationError):
        s.try_acquire(0)
