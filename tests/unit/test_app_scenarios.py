"""The scenario registry: registration, lookup, refs, schemas, builders."""

import pytest

from repro.api import Scenario
from repro.app import scenarios
from repro.app.scenarios import (
    Param,
    ScenarioError,
    build_scenario,
    format_ref,
    generate,
    parse_ref,
    register,
)
from repro.sim.faults import STREAM_JOIN, STREAM_LEAVE


# -- registry surface ---------------------------------------------------------

def test_builtin_entries_registered():
    assert scenarios.names() == [
        "generated", "multi_mode", "pal_decoder", "product_cipher",
    ]


def test_get_unknown_has_did_you_mean():
    with pytest.raises(ScenarioError, match="did you mean 'pal_decoder'"):
        scenarios.get("pal_decodr")


def test_describe_lists_parameters():
    text = scenarios.describe("product_cipher")
    assert "product_cipher" in text
    assert "sessions" in text and "default 3" in text


def test_register_rejects_bad_name():
    with pytest.raises(ScenarioError, match="alphanumeric"):
        register("bad name!", description="x")


def test_register_rejects_duplicate_name():
    with pytest.raises(ScenarioError, match="already registered"):
        register("pal_decoder", description="again")(lambda: None)


def test_register_rejects_duplicate_param():
    with pytest.raises(ScenarioError, match="duplicate parameter"):
        register(
            "fresh_entry",
            description="x",
            params=(Param("a"), Param("a")),
        )


# -- parameter schema ---------------------------------------------------------

def test_validate_merges_defaults_and_coerces_strings():
    values = scenarios.get("generated").validate({"seed": "9", "blocks": 2})
    assert values["seed"] == 9 and values["blocks"] == 2
    assert values["chain_max"] == 3  # default survives


def test_validate_unknown_param_did_you_mean():
    with pytest.raises(ScenarioError, match="did you mean 'sessions'"):
        scenarios.get("product_cipher").validate({"session": 4})


def test_param_range_and_choices_enforced():
    with pytest.raises(ScenarioError, match="below the minimum"):
        scenarios.get("product_cipher").validate({"sessions": 0})
    with pytest.raises(ScenarioError, match="above the maximum"):
        scenarios.get("product_cipher").validate({"load_pct": 99})
    p = Param("mode", str, "a", choices=("a", "b"))
    with pytest.raises(ScenarioError, match="not one of"):
        p.coerce("c")


def test_param_bool_coercion():
    p = Param("flag", bool, False)
    assert p.coerce("yes") is True and p.coerce("0") is False
    with pytest.raises(ScenarioError, match="not a boolean"):
        p.coerce("maybe")
    with pytest.raises(ScenarioError, match="expected bool"):
        p.coerce(3)


def test_param_rejects_unparsable_string():
    with pytest.raises(ScenarioError, match="cannot parse"):
        Param("n", int).coerce("twelve")


# -- references ---------------------------------------------------------------

def test_parse_ref_forms():
    assert parse_ref("generated") == ("generated", {})
    assert parse_ref("generated?seed=3&blocks=2") == (
        "generated", {"seed": "3", "blocks": "2"}
    )
    assert parse_ref("scenario://generated?seed=3") == (
        "generated", {"seed": "3"}
    )


def test_parse_ref_rejects_wrong_scheme_path_and_repeats():
    with pytest.raises(ScenarioError, match="scheme"):
        parse_ref("http://generated")
    with pytest.raises(ScenarioError, match="unexpected path"):
        parse_ref("scenario://generated/extra")
    with pytest.raises(ScenarioError, match="repeats parameter"):
        parse_ref("generated?seed=1&seed=2")
    with pytest.raises(ScenarioError, match="names no scenario"):
        parse_ref("scenario://?seed=1")


def test_format_ref_round_trips():
    ref = format_ref("generated", {"seed": 5})
    assert ref == "scenario://generated?seed=5"
    assert parse_ref(ref) == ("generated", {"seed": "5"})


def test_build_scenario_rejects_param_in_both_spellings():
    with pytest.raises(ScenarioError, match="pick one spelling"):
        build_scenario("generated?seed=1", seed=2)


# -- built-in builders --------------------------------------------------------

def test_pal_decoder_matches_analysis_bridge():
    from repro.app.analysis_bridge import pal_gateway_system

    scenario = build_scenario("pal_decoder")
    reference = pal_gateway_system().with_block_sizes({
        "ch1.s1": 64, "ch2.s1": 64, "ch1.s2": 8, "ch2.s2": 8,
    })
    assert scenario.system == reference


def test_pal_decoder_eta_zero_defers_to_solver():
    scenario = build_scenario("pal_decoder?eta_stage1=0&eta_stage2=0")
    assert all(s.block_size is None for s in scenario.system.streams)
    with pytest.raises(ScenarioError, match="both"):
        build_scenario("pal_decoder?eta_stage1=0")


def test_product_cipher_builds_three_tile_chain():
    scenario = build_scenario("product_cipher", sessions=2)
    assert [a.name for a in scenario.system.accelerators] == [
        "keymix", "sbox", "permute",
    ]
    assert len(scenario.system.streams) == 2
    unsolved = build_scenario("product_cipher?eta=0")
    assert all(s.block_size is None for s in unsolved.system.streams)


def test_multi_mode_schedule_shape():
    scenario = build_scenario("multi_mode", modes=2, streams=1, period=1000)
    assert isinstance(scenario, Scenario)
    plan = scenario.faults
    kinds = [s.kind for s in plan.specs]
    assert kinds == [STREAM_JOIN, STREAM_LEAVE] * 2
    joins = [s for s in plan.specs if s.kind == STREAM_JOIN]
    assert [s.at for s in joins] == [1000, 2000]
    # mode-dependent transition delay grows with the mode index
    assert joins[1].params["reconfigure"] > joins[0].params["reconfigure"]


def test_generate_is_deterministic_and_seed_sensitive():
    a, b = generate(seed=11), generate(seed=11)
    assert a.system == b.system
    assert a.faults == b.faults and a.blocks == b.blocks
    assert any(
        generate(seed=s).system != a.system for s in (12, 13, 14)
    )


def test_generate_rejects_degenerate_knobs():
    with pytest.raises(ScenarioError, match=">= 1"):
        generate(seed=0, chain_max=0)
