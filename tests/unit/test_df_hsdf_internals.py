"""Unit tests for HSDF-expansion internals and MCM corner cases."""

from fractions import Fraction


from repro.dataflow import (
    CSDFGraph,
    SDFGraph,
    bound_channel,
    execute,
    expand_to_hsdf,
    max_cycle_ratio,
    mcm_throughput,
    steady_state_throughput,
)
from repro.dataflow.hsdf import _cumulative, _producer_of


# ------------------------------------------------------------ cumulative
def test_cumulative_uniform():
    assert _cumulative((2,), 0) == 0
    assert _cumulative((2,), 3) == 6


def test_cumulative_cyclic_pattern():
    q = (3, 0, 1)
    assert [_cumulative(q, k) for k in range(7)] == [0, 3, 3, 4, 7, 7, 8]


def test_cumulative_negative_firings():
    q = (2, 1)
    # firing -1 is the last phase of the previous cycle
    assert _cumulative(q, -1) == -1
    assert _cumulative(q, -2) == -3
    assert _cumulative(q, -4) == -6


def test_producer_of_uniform():
    assert _producer_of((2,), 0) == 0
    assert _producer_of((2,), 1) == 0
    assert _producer_of((2,), 2) == 1


def test_producer_of_with_zero_phases():
    q = (3, 0, 1)
    # tokens 0,1,2 from firing 0; token 3 from firing 2 (phase 1 makes none)
    assert _producer_of(q, 0) == 0
    assert _producer_of(q, 2) == 0
    assert _producer_of(q, 3) == 2
    assert _producer_of(q, 4) == 3


def test_producer_of_negative_tokens():
    q = (2,)
    assert _producer_of(q, -1) == -1
    assert _producer_of(q, -2) == -1
    assert _producer_of(q, -3) == -2


# ---------------------------------------------------- expansion semantics
def test_expanded_execution_matches_original_sdf():
    """The HSDF expansion's self-timed throughput equals the original's."""
    g = SDFGraph("orig")
    g.add_actor("A", 2)
    g.add_actor("B", 3)
    g.add_edge("A", "B", production=3, consumption=2, tokens=1, name="ch")
    gb = bound_channel(g, "ch", 7)
    h = expand_to_hsdf(gb)
    orig = steady_state_throughput(gb, actor="A").firing_rate
    # in the expansion, actor A appears as q[A] nodes each firing once per
    # iteration: sum their rates
    from repro.dataflow import firing_repetition_vector

    reps = firing_repetition_vector(gb)
    h_rate = sum(
        steady_state_throughput(h, actor=f"A#{k}").firing_rate
        for k in range(reps["A"])
    )
    assert h_rate == orig


def test_expanded_csdf_phase_structure():
    g = CSDFGraph("c")
    g.add_actor("p", duration=[1, 4, 2], phases=3)
    g.add_actor("s", duration=1)
    g.add_edge("p", "s", production=[1, 0, 2], consumption=1, name="ch")
    gb = bound_channel(g, "ch", 4)
    h = expand_to_hsdf(gb)
    # p has 3 firings (one cycle) per iteration; s has 3
    assert "p#0" in h.actors and "p#2" in h.actors
    assert h.actor("p#1").duration == (4.0,)
    # token 0 consumed by s#0 comes from p#0; tokens 1,2 from p#2
    deps_s2 = [e for e in h.edges.values() if e.dst == "s#2" and e.src.startswith("p")]
    assert {e.src for e in deps_s2} == {"p#2"}


def test_mcm_matches_execution_period_exactly():
    g = SDFGraph("p")
    g.add_actor("A", 7)
    g.add_actor("B", 5)
    g.add_edge("A", "B", name="f")
    g.add_edge("B", "A", tokens=2, name="b")
    res = execute(g, iterations=8, record=True)
    starts = [f.start for f in res.firings_of("A")]
    steady_period = starts[-1] - starts[-2]
    assert mcm_throughput(g, "A") == Fraction(1, int(steady_period))


def test_mcm_parallel_cycles_picks_worst():
    h = SDFGraph("two-rings")
    for n, d in (("A", 1), ("B", 1), ("C", 6), ("D", 6)):
        h.add_actor(n, d)
    # ring1: A<->B with 2 tokens (ratio 2/2=1); ring2: C<->D 2 tokens (12/2=6)
    h.add_edge("A", "B", tokens=1)
    h.add_edge("B", "A", tokens=1)
    h.add_edge("C", "D", tokens=1)
    h.add_edge("D", "C", tokens=1)
    res = max_cycle_ratio(h)
    assert res.ratio == Fraction(6)
    assert set(res.cycle) <= {"C", "D"}


def test_mcm_fractional_result():
    h = SDFGraph("f")
    h.add_actor("A", 3)
    h.add_actor("B", 4)
    h.add_edge("A", "B", tokens=2)
    h.add_edge("B", "A", tokens=1)
    # cycle: 7 duration / 3 tokens
    assert max_cycle_ratio(h).ratio == Fraction(7, 3)


def test_mcm_self_loop_dominates():
    h = SDFGraph("s")
    h.add_actor("A", 9)
    h.add_actor("B", 1)
    h.add_edge("A", "A", tokens=1, name="self")
    h.add_edge("A", "B", tokens=0)
    h.add_edge("B", "A", tokens=5)
    res = max_cycle_ratio(h)
    assert res.ratio == Fraction(9)
