"""Unit tests for the ILP modelling layer and both solver backends."""

from fractions import Fraction

import pytest

from repro.ilp import (
    LinExpr,
    Model,
    ModelError,
    SolverError,
    Status,
    as_expr,
    solve,
    solve_branch_bound,
    solve_scipy,
    sum_expr,
)

BACKENDS = [solve_scipy, solve_branch_bound]


# ------------------------------------------------------------- expressions
def test_expr_arithmetic():
    m = Model()
    x = m.int_var("x")
    y = m.int_var("y")
    e = 2 * x + 3 * y - 4
    assert e.coeffs == {"x": Fraction(2), "y": Fraction(3)}
    assert e.constant == -4


def test_expr_sub_and_neg():
    m = Model()
    x = m.int_var("x")
    e = 5 - x
    assert e.coeffs == {"x": Fraction(-1)}
    assert e.constant == 5


def test_expr_div():
    m = Model()
    x = m.int_var("x")
    e = x / 4
    assert e.coeffs["x"] == Fraction(1, 4)


def test_expr_mul_by_expr_rejected():
    m = Model()
    x = m.int_var("x")
    y = m.int_var("y")
    with pytest.raises(ModelError):
        _ = x * y


def test_expr_cancellation_drops_zero_coeffs():
    m = Model()
    x = m.int_var("x")
    e = x - x
    assert e.coeffs == {}


def test_expr_value_evaluation():
    m = Model()
    x = m.int_var("x")
    y = m.int_var("y")
    e = 2 * x + y + 1
    assert e.value({"x": 3, "y": 4}) == 11


def test_expr_value_missing_var():
    m = Model()
    x = m.int_var("x")
    with pytest.raises(ModelError):
        (x + 1).value({})


def test_sum_expr():
    m = Model()
    xs = [m.int_var(f"x{i}") for i in range(3)]
    e = sum_expr(xs)
    assert set(e.coeffs) == {"x0", "x1", "x2"}


def test_as_expr_constant():
    e = as_expr(7)
    assert e.constant == 7
    with pytest.raises(ModelError):
        as_expr("nope")


# ------------------------------------------------------------------ model
def test_duplicate_variable_rejected():
    m = Model()
    m.int_var("x")
    with pytest.raises(ModelError):
        m.int_var("x")


def test_empty_domain_rejected():
    m = Model()
    with pytest.raises(ModelError):
        m.int_var("x", lo=5, hi=2)


def test_constraint_with_undeclared_variable_rejected():
    m1, m2 = Model(), Model()
    x = m1.int_var("x")
    with pytest.raises(ModelError):
        m2.add(x >= 1)


def test_add_requires_constraint():
    m = Model()
    x = m.int_var("x")
    with pytest.raises(ModelError):
        m.add(x)  # type: ignore[arg-type]


def test_objective_undeclared_variable_rejected():
    m1, m2 = Model(), Model()
    x = m1.int_var("x")
    with pytest.raises(ModelError):
        m2.minimize(x)


def test_check_reports_violations():
    m = Model()
    x = m.int_var("x", lo=0, hi=10)
    m.add(x >= 5, name="big")
    assert m.check({"x": 3}) == ["big"]
    assert m.check({"x": 7}) == []
    assert "int:x" in m.check({"x": 5.5})
    assert "ub:x" in m.check({"x": 11})
    assert "missing:x" in m.check({})


# --------------------------------------------------------------- solving
@pytest.mark.parametrize("backend", BACKENDS)
def test_simple_minimize(backend):
    m = Model()
    x = m.int_var("x", lo=0)
    y = m.int_var("y", lo=0)
    m.add(x + y >= 5)
    m.add(x - y <= 1)
    m.minimize(3 * x + 2 * y)
    sol = backend(m)
    assert sol.optimal
    assert m.check(sol.values) == []
    assert sol.objective == pytest.approx(10)  # x=0,y=5


@pytest.mark.parametrize("backend", BACKENDS)
def test_maximize(backend):
    m = Model()
    x = m.int_var("x", lo=0, hi=7)
    m.maximize(2 * x)
    sol = backend(m)
    assert sol.optimal
    assert sol["x"] == 7
    assert sol.objective == pytest.approx(14)


@pytest.mark.parametrize("backend", BACKENDS)
def test_integrality_matters(backend):
    # LP optimum x=2.5; ILP optimum x=3
    m = Model()
    x = m.int_var("x", lo=0)
    m.add(2 * x >= 5)
    m.minimize(x)
    sol = backend(m)
    assert sol.optimal
    assert sol["x"] == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_equality_constraint(backend):
    m = Model()
    x = m.int_var("x", lo=0)
    y = m.int_var("y", lo=0)
    m.add(x + y == 6)
    m.minimize(x - y)
    sol = backend(m)
    assert sol.optimal
    assert sol["x"] + sol["y"] == pytest.approx(6)
    assert sol["y"] == 6


@pytest.mark.parametrize("backend", BACKENDS)
def test_infeasible(backend):
    m = Model()
    x = m.int_var("x", lo=0, hi=2)
    m.add(x >= 5)
    m.minimize(x)
    assert backend(m).status == Status.INFEASIBLE


@pytest.mark.parametrize("backend", BACKENDS)
def test_unbounded(backend):
    m = Model()
    x = m.int_var("x", lo=None, hi=None)
    m.minimize(x)
    assert backend(m).status in (Status.UNBOUNDED, Status.INFEASIBLE)


@pytest.mark.parametrize("backend", BACKENDS)
def test_continuous_variables(backend):
    m = Model()
    x = m.real_var("x", lo=0)
    m.add(3 * x >= 2)
    m.minimize(x)
    sol = backend(m)
    assert sol.optimal
    assert sol["x"] == pytest.approx(2 / 3)


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_integer(backend):
    m = Model()
    x = m.int_var("x", lo=0)
    y = m.real_var("y", lo=0)
    m.add(x + y >= 3.5)
    m.minimize(2 * x + y)
    sol = backend(m)
    assert sol.optimal
    # all-continuous-y solution is best: x=0, y=3.5
    assert sol.objective == pytest.approx(3.5)


def test_model_without_objective_rejected():
    m = Model()
    m.int_var("x")
    with pytest.raises(ModelError):
        solve_scipy(m)
    with pytest.raises(ModelError):
        solve_branch_bound(m)


def test_model_without_variables_rejected():
    m = Model()
    m.objective = LinExpr({}, 1)
    with pytest.raises(ModelError):
        solve_scipy(m)


def test_solve_dispatch():
    m = Model()
    x = m.int_var("x", lo=1, hi=3)
    m.minimize(x)
    assert solve(m, backend="scipy")["x"] == 1
    assert solve(m, backend="bnb")["x"] == 1
    with pytest.raises(SolverError):
        solve(m, backend="nope")


def test_backends_agree_on_random_models():
    import random

    rng = random.Random(42)
    for trial in range(10):
        m = Model(f"r{trial}")
        xs = [m.int_var(f"x{i}", lo=0, hi=20) for i in range(4)]
        for _ in range(5):
            coefs = [rng.randint(-3, 3) for _ in xs]
            rhs = rng.randint(-10, 30)
            expr = sum_expr(c * x for c, x in zip(coefs, xs))
            m.add(expr <= rhs)
        m.minimize(sum_expr((rng.randint(1, 4)) * x for x in xs))
        s1, s2 = solve_scipy(m), solve_branch_bound(m)
        assert s1.status == s2.status
        if s1.optimal:
            assert s1.objective == pytest.approx(s2.objective, abs=1e-6)


def test_solution_as_ints():
    m = Model()
    x = m.int_var("x", lo=2, hi=2)
    m.minimize(x)
    sol = solve_scipy(m)
    assert sol.as_ints() == {"x": 2}
