"""AdmissionService unit tests: protocol, failure envelope, journal replay.

Everything runs in-process against the service object — no sockets — with
injected clocks, solvers and chaos so each failure path is deterministic.
"""

import asyncio
from fractions import Fraction

import pytest

from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec
from repro.core.blocksize_ilp import resolve_block_sizes
from repro.ilp import SolverError
from repro.serve import (
    AdmissionService,
    CircuitBreaker,
    ProtocolError,
    ReplayError,
    ServeChaos,
    error_response,
    journal_to_fault_plan,
    parse_request,
    replay_journal,
    state_fingerprint,
)
from repro.sim.faults import STREAM_JOIN, STREAM_LEAVE


def make_system(dens=(6000, 8000), entry=15, reconfigure=100):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", 1),),
        streams=tuple(
            StreamSpec(f"s{i}", Fraction(1, den), reconfigure)
            for i, den in enumerate(dens)
        ),
        entry_copy=entry,
        exit_copy=1,
    )


def run(coro):
    return asyncio.run(coro)


JOIN = {"op": "join", "tenant": "t", "stream": "x",
        "throughput": [1, 4096], "reconfigure": 16}


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------

def test_parse_rejects_unknown_op_with_hint():
    with pytest.raises(ProtocolError, match="did you mean 'join'"):
        parse_request({"op": "jion"})


def test_parse_rejects_unknown_field_with_hint():
    with pytest.raises(ProtocolError, match="did you mean 'throughput'"):
        parse_request({**JOIN, "troughput": [1, 2]})


def test_parse_rejects_bad_throughput_and_deadline():
    with pytest.raises(ProtocolError, match="throughput"):
        parse_request({**JOIN, "throughput": [0, 5]})
    with pytest.raises(ProtocolError, match="throughput"):
        parse_request({**JOIN, "throughput": "fast"})
    with pytest.raises(ProtocolError, match="deadline"):
        parse_request({**JOIN, "deadline": -1})
    with pytest.raises(ProtocolError, match="deadline"):
        parse_request({**JOIN, "deadline": True})


def test_parse_rejects_non_object_and_missing_op():
    with pytest.raises(ProtocolError, match="JSON object"):
        parse_request([1, 2])
    with pytest.raises(ProtocolError, match="'op'"):
        parse_request({})


def test_error_response_refuses_unknown_code():
    with pytest.raises(ValueError, match="unknown reject code"):
        error_response("join", "nope", "message")


# ---------------------------------------------------------------------------
# admission basics
# ---------------------------------------------------------------------------

def test_join_quote_leave_roundtrip():
    async def main():
        async with AdmissionService(make_system()) as svc:
            before = svc.fingerprint()
            q = await svc.submit({**JOIN, "op": "quote"})
            assert q["ok"] and q["admit"] is True
            assert svc.fingerprint() == before  # quotes never mutate
            j = await svc.submit(dict(JOIN))
            assert j["ok"] and j["admitted"] and j["eta"] >= 1
            assert j["budget"] > 0 and j["transition"] == 0
            num, den = j["guaranteed"]
            assert Fraction(num, den) >= Fraction(1, 4096)  # Eq. 5 honoured
            lv = await svc.submit({"op": "leave", "tenant": "t", "stream": "x"})
            assert lv["ok"]
            assert svc.fingerprint() == before
    run(main())


def test_definitive_reject_codes():
    async def main():
        async with AdmissionService(make_system()) as svc:
            await svc.submit(dict(JOIN))
            dup = await svc.submit({**JOIN, "tenant": "other"})
            assert dup["error"]["code"] == "already_joined"
            greedy = await svc.submit({**JOIN, "stream": "g",
                                       "throughput": [9, 1]})
            assert greedy["error"]["code"] == "bound_exceeded"
            ghost = await svc.submit({"op": "leave", "tenant": "t",
                                      "stream": "ghost"})
            assert ghost["error"]["code"] == "unknown_stream"
            imposter = await svc.submit({"op": "leave", "tenant": "other",
                                         "stream": "x"})
            assert imposter["error"]["code"] == "not_owner"
            malformed = await svc.submit({"op": "jion"})
            assert malformed["error"]["code"] == "malformed"
    run(main())


def test_last_stream_is_protected():
    async def main():
        system = make_system(dens=(6000,))
        async with AdmissionService(system) as svc:
            r = await svc.submit({"op": "leave", "tenant": "__baseline__",
                                  "stream": "s0"})
            assert r["error"]["code"] == "last_stream"
    run(main())


def test_status_snapshot_shape():
    async def main():
        async with AdmissionService(make_system()) as svc:
            await svc.submit(dict(JOIN))
            st = await svc.submit({"op": "status"})
            assert st["ok"]
            assert set(st["streams"]) == {"s0", "s1", "x"}
            assert st["streams"]["x"]["tenant"] == "t"
            assert 0 < st["load"] < 1
            assert st["breaker"]["state"] == "closed"
            assert st["counters"]["admitted"] == 1
            assert len(st["cache"]["shards"]) >= 1
    run(main())


# ---------------------------------------------------------------------------
# backpressure & deadlines
# ---------------------------------------------------------------------------

def test_overloaded_when_queue_full():
    async def main():
        started = asyncio.Event()
        release = asyncio.Event()

        async def slow_solver(candidate, previous):
            started.set()
            await release.wait()
            return resolve_block_sizes(candidate, previous=previous)

        svc = AdmissionService(make_system(), queue_depth=1,
                               solver=slow_solver, solver_timeout=30.0)
        async with svc:
            a = asyncio.create_task(svc.submit({**JOIN, "stream": "a"}))
            await started.wait()  # worker is mid-solve, queue is empty
            b = asyncio.create_task(svc.submit({**JOIN, "stream": "b"}))
            await asyncio.sleep(0)  # let b occupy the only queue slot
            c = await svc.submit({**JOIN, "stream": "c"})
            assert c["error"]["code"] == "overloaded"
            assert c["error"]["queue_depth"] == 1
            release.set()
            ra, rb = await asyncio.gather(a, b)
            assert ra["ok"] and rb["ok"]
    run(main())


def test_deadline_expiring_during_solve_never_half_applies():
    async def main():
        clock = FakeClock()

        async def slow_solver(candidate, previous):
            clock.t += 100.0  # the solve "takes" 100 s
            return resolve_block_sizes(candidate, previous=previous)

        svc = AdmissionService(make_system(), solver=slow_solver, clock=clock)
        async with svc:
            a = asyncio.create_task(svc.submit({**JOIN, "stream": "a"}))
            b = asyncio.create_task(
                svc.submit({**JOIN, "stream": "b", "deadline": 10}))
            ra, rb = await asyncio.gather(a, b)
            # b's deadline lapsed inside the shared batch solve: it must be
            # rejected, while a commits in a re-solved smaller transition
            assert rb["error"]["code"] == "deadline"
            assert ra["ok"] is True
            assert "b" not in {s.name for s in svc.system.streams}
            assert "a" in {s.name for s in svc.system.streams}
            # journal agrees: exactly one transition, mentioning only a
            assert len(svc.transitions) == 1
            assert [op["stream"] for op in svc.transitions[0]["applied"]] == ["a"]
    run(main())


# ---------------------------------------------------------------------------
# circuit breaker & conservative path
# ---------------------------------------------------------------------------

def _failing_solver(candidate, previous):
    raise SolverError("injected solver failure")


def test_breaker_degrades_to_closed_form_then_opens():
    async def main():
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3600.0)
        svc = AdmissionService(make_system(), solver=_failing_solver,
                               breaker=breaker)
        async with svc:
            # failures degrade to the conservative answer but still admit
            r1 = await svc.submit({**JOIN, "stream": "a"})
            assert r1["ok"] and r1["solver"] == "closed-form"
            r2 = await svc.submit({**JOIN, "stream": "b"})
            assert r2["ok"] and r2["solver"] == "closed-form"
            assert breaker.state == "open"
            # breaker now open: the solver is not even tried
            r3 = await svc.submit({**JOIN, "stream": "c"})
            assert r3["ok"] and r3["solver"] == "closed-form"
            assert svc.counters["solver_timeouts"] == 2  # no third attempt
    run(main())


def test_breaker_open_reject_when_conservative_cannot_certify():
    async def main():
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3600.0)
        svc = AdmissionService(make_system(), solver=_failing_solver,
                               breaker=breaker,
                               breaker_load_limit=Fraction(1, 100))
        async with svc:
            await svc.submit({**JOIN, "stream": "a"})  # trips the breaker
            assert breaker.state == "open"
            # load beyond the conservative certification limit, solver down
            r = await svc.submit({**JOIN, "stream": "big",
                                  "throughput": [1, 64]})
            assert r["error"]["code"] == "breaker_open"
            # an infeasible-at-any-size request is still answered precisely
            r2 = await svc.submit({**JOIN, "stream": "huge",
                                   "throughput": [9, 1]})
            assert r2["error"]["code"] == "bound_exceeded"
    run(main())


def test_infeasibility_is_not_a_breaker_failure():
    async def main():
        breaker = CircuitBreaker(failure_threshold=1)
        svc = AdmissionService(make_system(), breaker=breaker)
        async with svc:
            r = await svc.submit({**JOIN, "stream": "g", "throughput": [9, 1]})
            assert r["error"]["code"] == "bound_exceeded"
            assert breaker.state == "closed"
            assert breaker.trips == 0
    run(main())


# ---------------------------------------------------------------------------
# solve coalescing & cache
# ---------------------------------------------------------------------------

def test_identical_inflight_quotes_share_one_solve():
    async def main():
        calls = []
        release = asyncio.Event()

        async def counting_solver(candidate, previous):
            calls.append(1)
            await release.wait()
            return resolve_block_sizes(candidate, previous=previous)

        svc = AdmissionService(make_system(), solver=counting_solver,
                               solver_timeout=30.0)
        async with svc:
            quote = {**JOIN, "op": "quote"}
            tasks = [asyncio.create_task(svc.submit(dict(quote)))
                     for _ in range(5)]
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(*tasks)
            assert all(r["ok"] and r["admit"] for r in results)
            assert len(calls) == 1  # the herd cost exactly one solve
            assert svc.counters["coalesced_solves"] == 4
            # a later identical quote is a pure cache hit
            again = await svc.submit(dict(quote))
            assert again["solver"] == "memo"
            assert len(calls) == 1
    run(main())


# ---------------------------------------------------------------------------
# idempotency & chaos
# ---------------------------------------------------------------------------

def test_crash_before_commit_leaves_state_unchanged():
    async def main():
        chaos = ServeChaos(crash_before=1.0)
        svc = AdmissionService(make_system(), chaos=chaos)
        async with svc:
            before = svc.fingerprint()
            r = await svc.submit({**JOIN, "idempotency_key": "k"})
            assert r["error"]["code"] == "internal"
            assert svc.fingerprint() == before
            assert svc.transitions == []
            assert chaos.crashes == 1
    run(main())


def test_crash_after_commit_retry_is_exactly_once():
    async def main():
        chaos = ServeChaos(crash_after=1.0)
        svc = AdmissionService(make_system(), chaos=chaos)
        async with svc:
            r = await svc.submit({**JOIN, "idempotency_key": "k"})
            # the client saw a crash ...
            assert r["error"]["code"] == "internal"
            # ... but the transition committed before the crash point
            assert len(svc.transitions) == 1
            assert "x" in {s.name for s in svc.system.streams}
            # the retry replays the recorded answer — no second transition
            retry = await svc.submit({**JOIN, "idempotency_key": "k"})
            assert retry["ok"] and retry["replayed"] is True
            assert retry["transition"] == 0
            assert len(svc.transitions) == 1
    run(main())


def test_transient_rejects_are_never_latched():
    async def main():
        chaos = ServeChaos(crash_before=1.0)
        svc = AdmissionService(make_system(), chaos=chaos)
        async with svc:
            r = await svc.submit({**JOIN, "idempotency_key": "k"})
            assert r["error"]["code"] == "internal"
            svc.chaos = None  # chaos subsides; the retry must go through
            retry = await svc.submit({**JOIN, "idempotency_key": "k"})
            assert retry["ok"] and "replayed" not in retry
    run(main())


def test_definitive_reject_is_latched():
    async def main():
        async with AdmissionService(make_system()) as svc:
            bad = {**JOIN, "stream": "g", "throughput": [9, 1],
                   "idempotency_key": "k"}
            r = await svc.submit(dict(bad))
            assert r["error"]["code"] == "bound_exceeded"
            again = await svc.submit(dict(bad))
            assert again["error"]["code"] == "bound_exceeded"
            assert again["replayed"] is True
    run(main())


# ---------------------------------------------------------------------------
# shedding
# ---------------------------------------------------------------------------

def test_shed_assisted_join_evicts_strictly_lower_priority():
    async def main():
        system = make_system(dens=(6000,))
        async with AdmissionService(system) as svc:
            cheap = await svc.submit({
                "op": "join", "tenant": "lo", "stream": "cheap",
                "throughput": [1, 32], "reconfigure": 16, "priority": 0})
            assert cheap["ok"]
            # big + cheap together exceed the bound; big alone fits
            big = await svc.submit({
                "op": "join", "tenant": "hi", "stream": "big",
                "throughput": [1, 24], "reconfigure": 16, "priority": 5})
            assert big["ok"] is True
            names = {s.name for s in svc.system.streams}
            assert "big" in names and "cheap" not in names
            assert [e["stream"] for e in svc.shed_log] == ["cheap"]
            assert svc.transitions[-1]["shed"] == ["cheap"]
    run(main())


def test_equal_priority_join_is_rejected_not_shed():
    async def main():
        system = make_system(dens=(6000,))
        async with AdmissionService(system) as svc:
            await svc.submit({
                "op": "join", "tenant": "lo", "stream": "cheap",
                "throughput": [1, 32], "reconfigure": 16, "priority": 5})
            big = await svc.submit({
                "op": "join", "tenant": "hi", "stream": "big",
                "throughput": [1, 24], "reconfigure": 16, "priority": 5})
            assert big["error"]["code"] == "bound_exceeded"
            assert svc.shed_log == []
    run(main())


def test_proactive_watermark_shed():
    async def main():
        system = make_system(dens=(40, 600))  # load 0.375 + 0.025
        svc = AdmissionService(system, shed_watermark=Fraction(1, 2))
        async with svc:
            r = await svc.submit({
                "op": "join", "tenant": "t", "stream": "c",
                "throughput": [1, 60], "reconfigure": 16})
            assert r["ok"]
            # committed load 0.65 crossed the 0.5 watermark: the lowest-
            # priority stream is shed in its own via="shed" transition
            assert svc.counters["sheds"] >= 1
            assert svc.load <= Fraction(1, 2)
            assert any(t["via"] == "shed" for t in svc.transitions)
            # the stream that just paid for admission is exempt
            assert "c" in {s.name for s in svc.system.streams}
    run(main())


# ---------------------------------------------------------------------------
# journal replay & simulator projection
# ---------------------------------------------------------------------------

def test_journal_replays_to_identical_fingerprint():
    async def main():
        async with AdmissionService(make_system()) as svc:
            await svc.submit({**JOIN, "stream": "a"})
            await svc.submit({**JOIN, "stream": "b", "throughput": [1, 9000]})
            await svc.submit({"op": "leave", "tenant": "t", "stream": "a"})
            final = replay_journal(svc.initial_system, svc.journal())
            assert state_fingerprint(final) == svc.fingerprint()
    run(main())


def test_tampered_journal_is_detected():
    async def main():
        async with AdmissionService(make_system()) as svc:
            await svc.submit(dict(JOIN))
            journal = svc.journal()
            journal[0]["block_sizes"]["x"] += 1
            with pytest.raises(ReplayError, match="transition 0"):
                replay_journal(svc.initial_system, journal)
    run(main())


def test_journal_projects_onto_churn_fault_plan():
    async def main():
        async with AdmissionService(make_system()) as svc:
            await svc.submit({**JOIN, "stream": "a"})
            await svc.submit({"op": "leave", "tenant": "t", "stream": "a"})
            plan = journal_to_fault_plan(svc.journal(), start_at=512,
                                         spacing=256)
            kinds = [s.kind for s in plan.specs]
            assert kinds == [STREAM_JOIN, STREAM_LEAVE]
            join_spec = plan.specs[0]
            assert join_spec.target == "a"
            assert join_spec.params["throughput"] == [1, 4096]
            assert join_spec.at == 512 and plan.specs[1].at == 768
            # the plan round-trips through its own JSON validation
            from repro.sim.faults import FaultPlan
            assert len(FaultPlan.from_json(plan.to_json())) == 2
    run(main())


def test_shutdown_drains_with_structured_rejects():
    async def main():
        async with AdmissionService(make_system()) as svc:
            down = await svc.submit({"op": "shutdown"})
            assert down["ok"] and down["draining"]
            late = await svc.submit(dict(JOIN))
            assert late["error"]["code"] == "shutting_down"
            # read-only ops still answer while draining
            st = await svc.submit({"op": "status"})
            assert st["ok"]
    run(main())
