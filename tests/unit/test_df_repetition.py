"""Unit tests for repetition vectors and consistency."""

import pytest

from repro.dataflow import (
    CSDFGraph,
    GraphError,
    SDFGraph,
    firing_repetition_vector,
    is_consistent,
    iteration_tokens,
    repetition_vector,
)


def chain(rates):
    """Build a chain a0 -> a1 -> ... with (prod, cons) rate pairs."""
    g = SDFGraph("chain")
    n = len(rates) + 1
    for i in range(n):
        g.add_actor(f"a{i}", 1)
    for i, (p, c) in enumerate(rates):
        g.add_edge(f"a{i}", f"a{i+1}", production=p, consumption=c, name=f"e{i}")
    return g


def test_homogeneous_chain():
    g = chain([(1, 1), (1, 1)])
    assert repetition_vector(g) == {"a0": 1, "a1": 1, "a2": 1}


def test_multirate_chain():
    g = chain([(2, 3)])
    assert repetition_vector(g) == {"a0": 3, "a1": 2}


def test_downsampler_chain_ratio_8_to_1():
    # the paper's LPF+down-sampler: 8 in, 1 out
    g = chain([(1, 8), (1, 1)])
    q = repetition_vector(g)
    assert q["a0"] == 8 * q["a1"]
    assert q["a1"] == q["a2"]


def test_smallest_solution_is_coprime():
    g = chain([(4, 6)])
    assert repetition_vector(g) == {"a0": 3, "a1": 2}


def test_inconsistent_cycle_detected():
    g = SDFGraph()
    g.add_actor("a", 1)
    g.add_actor("b", 1)
    g.add_edge("a", "b", production=2, consumption=1)
    g.add_edge("b", "a", production=2, consumption=1)  # demands q_a = 4 q_a
    with pytest.raises(GraphError):
        repetition_vector(g)
    assert not is_consistent(g)


def test_parallel_edges_must_agree():
    g = SDFGraph()
    g.add_actor("a", 1)
    g.add_actor("b", 1)
    g.add_edge("a", "b", production=1, consumption=1, name="e1")
    g.add_edge("a", "b", production=2, consumption=1, name="e2")
    with pytest.raises(GraphError):
        repetition_vector(g)


def test_disconnected_components_each_normalised():
    g = SDFGraph()
    for n in ("a", "b", "c", "d"):
        g.add_actor(n, 1)
    g.add_edge("a", "b", production=2, consumption=1)
    g.add_edge("c", "d", production=1, consumption=3)
    q = repetition_vector(g)
    assert q["b"] == 2 * q["a"]
    assert q["c"] == 3 * q["d"]


def test_empty_graph_rejected():
    with pytest.raises(GraphError):
        repetition_vector(SDFGraph())


def test_csdf_repetition_counts_cycles():
    g = CSDFGraph()
    g.add_actor("p", duration=[1, 1], phases=2)
    g.add_actor("c", duration=1)
    # per cycle: p produces 3, c consumes 1 -> q = {p:1, c:3}
    g.add_edge("p", "c", production=[2, 1], consumption=1)
    assert repetition_vector(g) == {"p": 1, "c": 3}
    # firings: p has 2 phases
    assert firing_repetition_vector(g) == {"p": 2, "c": 3}


def test_iteration_tokens():
    g = chain([(2, 3)])
    assert iteration_tokens(g, "e0") == 6


def test_self_edge_consistency():
    g = SDFGraph()
    g.add_actor("a", 1)
    g.add_edge("a", "a", tokens=1)
    assert repetition_vector(g) == {"a": 1}


def test_isolated_actor_gets_repetition_one():
    g = SDFGraph()
    g.add_actor("a", 1)
    g.add_actor("b", 1)
    g.add_edge("a", "b", production=5, consumption=1)
    g.add_actor("lonely", 1)
    q = repetition_vector(g)
    assert q["lonely"] >= 1
