"""Intro claim: accelerators shared BETWEEN simultaneously running radios.

"Accelerators can be shared by different streams within one application or
by data streams from different radios that are executed simultaneously on
the multiprocessor system."  Two unrelated applications — a two-channel
stereo decoder and an independent FM receiver — run concurrently with all
their streams multiplexed over ONE CORDIC tile.  Each application must see
exactly what private hardware would give it, and round-robin must keep
both applications progressing.
"""

import numpy as np
import pytest

from repro.accel import CordicKernel, run_kernel
from repro.arch import Get, Put, StreamProgram


@pytest.fixture(scope="module")
def system_run():
    n = 24
    stereo_in = [complex(1 + 0.1 * k, 0.05 * k) for k in range(n)]
    radio_in = [np.exp(1j * 0.3 * k) for k in range(n)]

    got = {"ch1": [], "ch2": [], "radio": []}

    def feeder(samples, port):
        def factory(io):
            def gen():
                for s in samples:
                    yield Put(io[port], complex(s))
            return gen
        return factory

    def dual_feeder(samples):
        def factory(io):
            def gen():
                for s in samples:
                    yield Put(io["out1"], complex(s))
                    yield Put(io["out2"], complex(s))
            return gen
        return factory

    def sink(key, count, port):
        def factory(io):
            def gen():
                for _ in range(count):
                    got[key].append((yield Get(io[port])))
            return gen
        return factory

    prog = StreamProgram("two-apps")
    # application 1: stereo decoder (2 streams, mixers at 2 carriers)
    prog.add_task("tv_fe", dual_feeder(stereo_in), ports=["out1", "out2"])
    prog.add_task("tv_out1", sink("ch1", n, "in"), ports=["in"])
    prog.add_task("tv_out2", sink("ch2", n, "in"), ports=["in"])
    # application 2: an independent FM radio (1 stream, discriminator)
    prog.add_task("radio_fe", feeder(radio_in, "out"), ports=["out"])
    prog.add_task("radio_out", sink("radio", n, "in"), ports=["in"])

    prog.add_chain("shared", [CordicKernel()], entry_copy=4)
    prog.add_stream("tv.ch1", chain="shared", eta=4,
                    states=[CordicKernel("mix", 0.10).get_state()],
                    src=("tv_fe", "out1"), dst=("tv_out1", "in"), reconfigure=30)
    prog.add_stream("tv.ch2", chain="shared", eta=4,
                    states=[CordicKernel("mix", 0.25).get_state()],
                    src=("tv_fe", "out2"), dst=("tv_out2", "in"), reconfigure=30)
    prog.add_stream("radio.fm", chain="shared", eta=6,
                    states=[CordicKernel("fm").get_state()],
                    src=("radio_fe", "out"), dst=("radio_out", "in"),
                    reconfigure=30)
    built = prog.build()
    built.run(until=100_000)
    return built, stereo_in, radio_in, got


def test_both_applications_complete(system_run):
    built, stereo_in, radio_in, got = system_run
    assert len(got["ch1"]) == len(stereo_in)
    assert len(got["ch2"]) == len(stereo_in)
    assert len(got["radio"]) == len(radio_in)


def test_each_application_gets_private_accelerator_semantics(system_run):
    built, stereo_in, radio_in, got = system_run
    ref1 = run_kernel(CordicKernel("mix", 0.10), np.array(stereo_in))
    ref2 = run_kernel(CordicKernel("mix", 0.25), np.array(stereo_in))
    ref3 = run_kernel(CordicKernel("fm"), np.array(radio_in))
    assert np.allclose(got["ch1"], ref1)
    assert np.allclose(got["ch2"], ref2)
    assert np.allclose(got["radio"], ref3)


def test_one_tile_serves_all_applications(system_run):
    built, stereo_in, radio_in, got = system_run
    chain = built.chains["shared"]
    assert len(chain.tiles) == 1
    total = sum(b.samples_in for b in chain.bindings.values())
    assert chain.tiles[0].samples_in == total == 3 * 24


def test_round_robin_interleaves_applications(system_run):
    """Neither application runs to completion before the other starts."""
    built, *_ = system_run
    chain = built.chains["shared"]
    events = sorted(
        (t, name) for name, b in chain.bindings.items() for t in b.admissions
    )
    order = [name for _t, name in events]
    radio_first = order.index("radio.fm")
    tv_last = max(i for i, n in enumerate(order) if n.startswith("tv."))
    assert radio_first < tv_last  # interleaved, not serialised per app


def test_unrelated_streams_mode_switch_correct(system_run):
    """The shared CORDIC alternates mixer/discriminator configurations —
    the cross-application context switches never leak state."""
    built, *_ = system_run
    chain = built.chains["shared"]
    # at least one mixer->fm switch and one fm->mixer switch happened
    assert chain.binding("radio.fm").blocks_done >= 2
    assert chain.binding("tv.ch1").blocks_done >= 2
