"""FIG9: why streams must not share a FIFO without mutual exclusivity.

Section V-G argues that a FIFO shared between two streams breaks the
dataflow abstraction: "tokens from another stream can influence when
produced tokens arrive at the consumer because of head-of-line blocking.
This is not allowed in SDF and causes that the-earlier-the-better
refinement is not applicable."  The gateways fix it by mutual exclusion:
a stream waits until the FIFO has been emptied by the previous stream.

These tests exhibit both behaviours on the simulated hardware:

1. with a naively shared FIFO, the *arrival* time of stream 1's token at
   its consumer depends on how fast stream 0's consumer drains — with
   identical production times (refinement broken);
2. with the gateway discipline (admit only into an empty FIFO), arrival
   is independent of the other stream's consumer (refinement restored).
"""

from repro.arch import CFifo, DualRing
from repro.sim import Simulator


def shared_fifo_arrival_time(s0_consumer_delay: int) -> int:
    """Producer emits [s0, s0, s1] into ONE shared FIFO of capacity 2.

    Returns the time stream 1's consumer receives its token.  Stream 0's
    consumer starts draining after ``s0_consumer_delay`` cycles.
    """
    sim = Simulator()
    ring = DualRing(sim, 4)
    fifo = CFifo(sim, ring, 0, 2, capacity=2)
    t1_arrival = []

    def producer():
        yield from fifo.put(("s0", 1))
        yield from fifo.put(("s0", 2))
        yield from fifo.put(("s1", 1))  # head-of-line blocked behind s0

    def consumer():
        # stream 0's task is busy elsewhere for a while
        yield sim.timeout(s0_consumer_delay)
        for _ in range(2):
            yield from fifo.get()
        tag, _ = yield from fifo.get()
        assert tag == "s1"
        t1_arrival.append(sim.now)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    return t1_arrival[0]


def gateway_style_arrival_time(s0_consumer_delay: int) -> int:
    """Same scenario under the gateway discipline: stream 1 only uses the
    FIFO after stream 0's block has been fully drained (mutual exclusion),
    and its consumer then reads immediately."""
    sim = Simulator()
    ring = DualRing(sim, 4)
    fifo = CFifo(sim, ring, 0, 2, capacity=2)
    t1_arrival = []
    s0_drained = sim.event()

    def producer_s0():
        yield from fifo.put(("s0", 1))
        yield from fifo.put(("s0", 2))

    def consumer_s0():
        yield sim.timeout(s0_consumer_delay)
        for _ in range(2):
            yield from fifo.get()
        s0_drained.succeed()

    def producer_s1():
        yield s0_drained  # the entry-gateway's pipeline-idle condition
        yield from fifo.put(("s1", 1))

    def consumer_s1():
        yield s0_drained
        tag, _ = yield from fifo.get()
        assert tag == "s1"
        t1_arrival.append(sim.now - s0_drained_time[0])

    s0_drained_time = []
    s0_drained.add_callback(lambda _e: s0_drained_time.append(sim.now))

    sim.process(producer_s0())
    sim.process(consumer_s0())
    sim.process(producer_s1())
    sim.process(consumer_s1())
    sim.run()
    return t1_arrival[0]


def test_shared_fifo_exhibits_head_of_line_blocking():
    """Stream 1's arrival time tracks the OTHER stream's consumer speed."""
    fast = shared_fifo_arrival_time(s0_consumer_delay=10)
    slow = shared_fifo_arrival_time(s0_consumer_delay=500)
    assert slow > fast + 400  # s1's token is held hostage by s0's consumer


def test_gateway_discipline_restores_timing_independence():
    """Relative to the hand-over instant, stream 1's latency is constant."""
    fast = gateway_style_arrival_time(s0_consumer_delay=10)
    slow = gateway_style_arrival_time(s0_consumer_delay=500)
    assert fast == slow  # latency after hand-over independent of stream 0


def test_gateway_latency_is_the_isolated_stream_latency():
    """After mutual exclusion, s1 sees exactly its own FIFO latency."""
    latency = gateway_style_arrival_time(s0_consumer_delay=50)
    # put: data flit (2 hops) + wptr flit; get immediately after
    assert latency <= 10
