"""UTIL (measured): simulated gateway utilization vs the analytical split.

The analysis (repro.core.utilization) predicts how one round-robin rotation
divides between per-sample copying and reconfiguration; here the simulated
architecture under a fully backlogged workload must land near those
fractions — the measured counterpart of the paper's Section VI-A numbers.
"""

from fractions import Fraction

import pytest

from repro.accel import MixerKernel
from repro.arch import Get, MPSoC, Put, TaskSpec
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    analyze_utilization,
)


def run_saturated(etas, eps, R, blocks=6):
    soc = MPSoC(n_stations=8)
    prod = soc.add_processor("p")
    cons = soc.add_processor("c")
    counts = [e * blocks for e in etas]
    ins = [prod.fifo_to(2, capacity=c + 8, name=f"in{i}") for i, c in enumerate(counts)]
    outs = [soc.software_fifo(4, cons, capacity=c + 8, name=f"out{i}")
            for i, c in enumerate(counts)]
    chain = soc.shared_chain(
        "g", [MixerKernel(0.0)],
        [{"name": f"s{i}", "eta": etas[i], "in_fifo": ins[i], "out_fifo": outs[i],
          "states": [MixerKernel(0.0).get_state()], "reconfigure_cycles": R}
         for i in range(len(etas))],
        entry_copy=eps, exit_copy=1,
    )

    def producer(fifo, n):
        def gen():
            for k in range(n):
                yield Put(fifo, 1.0)
        return gen

    def consumer(fifo, n):
        def gen():
            for _ in range(n):
                yield Get(fifo)
        return gen

    for i, c in enumerate(counts):
        prod.add_task(TaskSpec(f"p{i}", producer(ins[i], c)))
        cons.add_task(TaskSpec(f"c{i}", consumer(outs[i], c)))
    prod.start()
    cons.start()
    # run until the last stream completion, then measure over that span
    soc.run(until=(R + max(etas) * (eps + 10)) * blocks * (len(etas) + 2) + 20000)
    end = max(b.completions[-1] for b in chain.bindings.values())
    return chain, end


def test_measured_split_matches_analysis():
    etas, eps, R = (32, 16), 15, 500
    chain, end = run_saturated(etas, eps, R)
    measured = chain.utilization(end)

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=tuple(
            StreamSpec(f"s{i}", Fraction(1, 10**9), R, block_size=etas[i])
            for i in range(len(etas))
        ),
        entry_copy=eps,
        exit_copy=1,
    )
    predicted = analyze_utilization(system)

    # copy fraction within 15% relative of the analytical round split
    assert measured["copy"] == pytest.approx(
        float(predicted.gateway_copy_fraction), rel=0.15
    )
    # reconfiguration: the simulation only pays R on actual switches, the
    # analysis charges it per block — measured must not exceed predicted
    assert measured["reconfig"] <= float(predicted.reconfig_fraction) * 1.05


def test_measured_counters_consistent():
    etas, eps, R = (16, 16), 10, 200
    chain, end = run_saturated(etas, eps, R)
    # counters are cumulative since t=0: measure over the full sim span
    now = int(chain.entry.sim.now)
    m = chain.utilization(now)
    assert m["samples"] == sum(e * 6 for e in etas)
    assert m["blocks"] == 12
    assert 0 <= m["wait"] <= 1
    assert m["data_transfer"] < m["copy"]  # ε > 1 cycle/sample


def test_utilization_requires_positive_horizon():
    etas, eps, R = (8,), 5, 50
    chain, _end = run_saturated(etas, eps, R, blocks=2)
    with pytest.raises(ValueError):
        chain.utilization(0)


def test_wait_dominates_when_underloaded():
    """A gateway with nothing to do polls: wait fraction ≈ 1 over a long
    horizon after the work drains."""
    etas, eps, R = (8,), 5, 50
    chain, end = run_saturated(etas, eps, R, blocks=2)
    sim = chain.entry.sim
    long_horizon = max(10 * end, int(sim.now) * 10)
    # run further with no new work: the gateway just polls
    sim.run(until=long_horizon)
    m = chain.utilization(long_horizon)
    assert m["wait"] > 0.7
