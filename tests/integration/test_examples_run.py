"""Every example script must run clean — they are part of the deliverable."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert "pal_stereo_decoder.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable's minimum
