"""FIG5: the simulated hardware is a temporal refinement of the CSDF model.

The paper's correctness argument (Section III) is the refinement chain
``hardware ⊑ CSDF ⊑ SDF``.  The ``CSDF ⊑ SDF`` link is exercised in
``repro.core.verification``; here we close the bottom link: every output
token of the *architecture simulation* is produced no later than the
calibrated CSDF model (Fig. 5) predicts, token by token, across multiple
blocks.

Times are aligned at the first block admission on both sides (the absolute
offset before the first admission is producer-side and identical by
construction: both models see a fully backlogged producer).
"""

from fractions import Fraction

import pytest

from repro.accel import MixerKernel
from repro.arch import Get, MPSoC, Put, TaskSpec
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    build_stream_csdf,
)
from repro.dataflow import execute, refines_times


def run_arch_traced(eta, eps, delta, R, blocks):
    soc = MPSoC(n_stations=8, trace=True)
    prod = soc.add_processor("p")
    cons = soc.add_processor("c")
    total = eta * blocks
    in_f = prod.fifo_to(2, capacity=total + 8, name="in")
    out_f = soc.software_fifo(4, cons, capacity=total + 8, name="out")
    chain = soc.shared_chain(
        "g", [MixerKernel(0.0)],
        [{"name": "s", "eta": eta, "in_fifo": in_f, "out_fifo": out_f,
          "states": [MixerKernel(0.0).get_state()], "reconfigure_cycles": R}],
        entry_copy=eps, exit_copy=delta,
    )

    def producer():
        for i in range(total):
            yield Put(in_f, float(i))

    def consumer():
        for _ in range(total):
            yield Get(out_f)

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start()
    cons.start()
    soc.run(until=(R + eta * (eps + 10)) * (blocks + 2) + 5000)
    out_times = [r.time for r in soc.tracer.records
                 if r.source == "out" and r.kind == "put"]
    b = chain.binding("s")
    assert b.blocks_done >= blocks
    return out_times, b.admissions[0]


def csdf_production_times(eta, eps, delta, R, blocks):
    """Calibrated Fig. 5 model, fully pre-queued producer."""
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1 + 2),),
        streams=(StreamSpec("s", Fraction(1, 10**9), R, block_size=eta),),
        # token-level calibration is tighter than the block-level one in
        # test_bounds_vs_sim: the entry path costs ε + inject + a credit
        # round-trip stall every other sample on the 2-deep NI (≈ ε + 2
        # worst-case per token); the exit path costs δ + NI receive + two
        # posted C-FIFO writes + a ring hop = δ + 4 per token.
        entry_copy=eps + 2,
        exit_copy=delta + 4,
    )
    graph, info = build_stream_csdf(
        system, "s",
        producer_period=Fraction(1, 100), consumer_period=Fraction(1, 100),
        alpha0=(blocks + 1) * eta, alpha3=(blocks + 1) * eta,
        prequeued=(blocks + 1) * eta,
    )
    res = execute(graph, iterations=blocks, record=True)
    times = res.production_times(info.exit)
    g0 = [f for f in res.firings_of(info.entry) if f.phase == 0]
    return times, g0[0].start


@pytest.mark.parametrize(
    "eta,eps,delta,R",
    [(4, 15, 1, 100), (8, 15, 1, 4100), (8, 5, 1, 50), (6, 2, 3, 40)],
)
def test_hardware_refines_csdf_model(eta, eps, delta, R):
    blocks = 3
    arch_times, arch_t0 = run_arch_traced(eta, eps, delta, R, blocks)
    model_times, model_t0 = csdf_production_times(eta, eps, delta, R, blocks)
    n = min(len(arch_times), len(model_times))
    assert n >= blocks * eta
    arch_rel = [t - arch_t0 for t in arch_times[:n]]
    model_rel = [t - model_t0 for t in model_times[:n]]
    report = refines_times(arch_rel, model_rel)
    assert report, (
        f"token {report.first_violation}: hardware at {report.refined_time} "
        f"later than model at {report.abstract_time}"
    )


def test_model_is_tight_not_vacuous():
    """The calibrated model should over-estimate by a bounded factor, not
    by orders of magnitude — otherwise the refinement check proves nothing."""
    eta, eps, delta, R, blocks = 8, 15, 1, 100, 3
    arch_times, arch_t0 = run_arch_traced(eta, eps, delta, R, blocks)
    model_times, model_t0 = csdf_production_times(eta, eps, delta, R, blocks)
    arch_last = arch_times[blocks * eta - 1] - arch_t0
    model_last = model_times[blocks * eta - 1] - model_t0
    assert arch_last <= model_last <= 2.0 * arch_last
