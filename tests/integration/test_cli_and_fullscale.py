"""The CLI entry points and full-scale (tight-margin) verification.

The full-scale PAL deployment runs the gateway at 95.3% load, so the SDF
dataflow check operates with razor-thin slack (η/γ exceeds μ by 2 parts in
10⁴) — a regression guard for exact-arithmetic execution (a float engine
mis-reports the guarantee at this scale).
"""


from repro import __main__ as cli


def run_cli(argv, capsys):
    code = cli.main(argv)
    out = capsys.readouterr().out
    return code, out


def test_cli_blocksizes_nominal(capsys):
    code, out = run_cli(["blocksizes"], capsys)
    assert code == 0
    assert "η[ch1.s1] = 9870" in out
    assert "η[ch1.s2] = 1234" in out


def test_cli_blocksizes_paper_margin(capsys):
    code, out = run_cli(["blocksizes", "--margin", "0.127"], capsys)
    assert code == 0
    assert "η[ch1.s1] = 10136" in out
    assert "η[ch1.s2] = 1267" in out


def test_cli_table1(capsys):
    code, out = run_cli(["table1"], capsys)
    assert code == 0
    assert "63.5%" in out and "66.3%" in out
    assert "75%" in out


def test_cli_fig8(capsys):
    code, out = run_cli(["fig8"], capsys)
    assert code == 0
    for eta, alpha in [(1, 5), (2, 6), (3, 7), (4, 8), (5, 5)]:
        assert f"η={eta}: α={alpha}" in out


def test_cli_utilization(capsys):
    code, out = run_cli(["utilization"], capsys)
    assert code == 0
    assert "95.3%" in out
    assert "6.4%" in out


def test_cli_schedule(capsys):
    code, out = run_cli(["schedule", "--eta", "4"], capsys)
    assert code == 0
    assert "τ(η)" in out
    assert "makespan" in out


def test_cli_verify_full_scale(capsys):
    """End-to-end verification at the paper's full scale must PASS.

    This exercises the exact-arithmetic path: with float durations the
    stage-2 streams' dataflow check flips to NO at this load."""
    code, out = run_cli(["verify"], capsys)
    assert code == 0
    assert "PASS" in out
    assert "NO" not in out


def test_fullscale_sdf_check_has_thin_slack():
    """Document WHY the exactness matters: the guarantee exceeds the
    requirement by only ~2e-4 relative at full scale."""
    from repro.app import pal_block_sizes, pal_gateway_system
    from repro.core import guaranteed_throughput

    system = pal_gateway_system().with_block_sizes(pal_block_sizes())
    s = system.stream("ch1.s2")
    slack = guaranteed_throughput(system, "ch1.s2") / s.throughput - 1
    assert 0 < float(slack) < 1e-3


def test_cli_analyze_config(tmp_path, capsys):
    from repro.core import dump_system
    from repro.app import pal_gateway_system

    cfg = tmp_path / "system.json"
    cfg.write_text(dump_system(pal_gateway_system()))
    code, out = run_cli(["analyze", str(cfg)], capsys)
    assert code == 0
    assert "PASS" in out
    assert "η[ch1.s1] = 9870" in out


def test_cli_analyze_infeasible_config(tmp_path, capsys):
    cfg = tmp_path / "overload.json"
    cfg.write_text(
        '{"entry_copy": 10, "accelerators": [{"name": "a", "rho": 1}],'
        ' "streams": [{"name": "s", "throughput": [1, 5], "reconfigure": 1}]}'
    )
    code, out = run_cli(["analyze", str(cfg)], capsys)
    assert code == 1
    assert "INFEASIBLE" in out


def test_cli_analyze_bnb_backend(tmp_path, capsys):
    cfg = tmp_path / "small.json"
    cfg.write_text(
        '{"entry_copy": 5, "accelerators": [{"name": "a", "rho": 1}],'
        ' "streams": [{"name": "s", "throughput": [1, 100], "reconfigure": 50}]}'
    )
    code, out = run_cli(["analyze", str(cfg), "--backend", "bnb"], capsys)
    assert code == 0
    assert "PASS" in out


SMALL_CFG = (
    '{"entry_copy": 6, "exit_copy": 1,'
    ' "accelerators": [{"name": "a", "rho": 1}],'
    ' "streams": ['
    '{"name": "s0", "throughput": [1, 100000], "reconfigure": 40, "block_size": 6},'
    '{"name": "s1", "throughput": [1, 200000], "reconfigure": 40, "block_size": 3}]}'
)


def test_cli_metrics_table(tmp_path, capsys):
    cfg = tmp_path / "small.json"
    cfg.write_text(SMALL_CFG)
    code, out = run_cli(["metrics", str(cfg), "--blocks", "3"], capsys)
    assert code == 0
    assert "s0" in out and "s1" in out
    assert "entry gateway: copy" in out


def test_cli_metrics_json(tmp_path, capsys):
    import json

    cfg = tmp_path / "small.json"
    cfg.write_text(SMALL_CFG)
    code, out = run_cli(["metrics", str(cfg), "--blocks", "2", "--json"], capsys)
    assert code == 0
    blob = json.loads(out)
    assert {s["name"] for s in blob["streams"]} == {"s0", "s1"}
    assert all(s["blocks_done"] == 2 for s in blob["streams"])
    assert 0.0 < blob["gateway"]["copy"] < 1.0


def test_cli_conformance_ok(tmp_path, capsys):
    cfg = tmp_path / "small.json"
    cfg.write_text(SMALL_CFG)
    code, out = run_cli(["conformance", str(cfg), "--blocks", "3"], capsys)
    assert code == 0
    assert "refinement holds" in out
    assert "VIOLATION" not in out


def test_cli_conformance_json(tmp_path, capsys):
    import json

    cfg = tmp_path / "small.json"
    cfg.write_text(SMALL_CFG)
    code, out = run_cli(["conformance", str(cfg), "--json"], capsys)
    assert code == 0
    blob = json.loads(out)
    assert blob["ok"] is True
    assert blob["violations"] == []


def test_cli_conformance_assigns_block_sizes_when_missing(tmp_path, capsys):
    cfg = tmp_path / "nosizes.json"
    cfg.write_text(
        '{"entry_copy": 5, "accelerators": [{"name": "a", "rho": 1}],'
        ' "streams": [{"name": "s", "throughput": [1, 100], "reconfigure": 50}]}'
    )
    code, out = run_cli(["conformance", str(cfg), "--blocks", "2"], capsys)
    assert code == 0
    assert "refinement holds" in out
