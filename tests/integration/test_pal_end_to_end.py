"""FIG10: the PAL stereo decoder on the shared-accelerator MPSoC.

Asserts the three claims of the evaluation:

* the gateway-multiplexed system is functionally identical to running the
  four streams on private accelerators (sharing is transparent),
* the decoded audio contains the transmitted L/R tones (the app works),
* the throughput constraint is met: the audio tasks never starve given
  blocks sized by Algorithm 1 (scaled).
"""

import numpy as np
import pytest

from repro.accel import (
    PalChannelPlan,
    correlation,
    make_test_tones,
    synthesize_pal_baseband,
    tone_frequency,
)
from repro.app import PalDecoderConfig, decode_functional, run_pal_on_soc


@pytest.fixture(scope="module")
def decoded():
    plan = PalChannelPlan()
    config = PalDecoderConfig(plan=plan, eta_stage1=64, eta_stage2=8,
                              reconfigure_cycles=100)
    n_audio = 48
    left, right = make_test_tones(n_audio, audio_rate=plan.audio_rate,
                                  f_left=440, f_right=1000)
    l_rec, r_rec, handles = run_pal_on_soc(config, left, right)
    baseband = synthesize_pal_baseband(left, right, plan)
    l_ref, r_ref = decode_functional(baseband, config)
    return {
        "plan": plan, "config": config, "left": left, "right": right,
        "l_rec": l_rec, "r_rec": r_rec, "l_ref": l_ref, "r_ref": r_ref,
        "handles": handles,
    }


def test_all_audio_samples_delivered(decoded):
    n_expected = 48
    assert len(decoded["l_rec"]) == n_expected
    assert len(decoded["r_rec"]) == n_expected


def test_architecture_matches_functional_reference_exactly(decoded):
    l_ref = decoded["l_ref"] - np.mean(decoded["l_ref"])
    r_ref = decoded["r_ref"] - np.mean(decoded["r_ref"])
    assert np.allclose(decoded["l_rec"], l_ref, atol=1e-9)
    assert np.allclose(decoded["r_rec"], r_ref, atol=1e-9)


def test_every_stream_processed_blocks(decoded):
    bindings = decoded["handles"].chain.bindings
    assert set(bindings) == {"ch1.s1", "ch2.s1", "ch1.s2", "ch2.s2"}
    for name, b in bindings.items():
        assert b.blocks_done >= 1, name
    # stage-1 streams move 8x the data of stage-2 streams
    assert bindings["ch1.s1"].samples_in == 8 * bindings["ch1.s2"].samples_in


def test_stereo_channels_separated(decoded):
    """Left carries the 440 Hz tone, right the 1000 Hz tone.

    The first output samples are FIR/FM warm-up transient and are skipped
    before comparing against the transmitted tones.
    """
    plan = decoded["plan"]
    skip = 8
    l_rec, r_rec = decoded["l_rec"][skip:], decoded["r_rec"][skip:]
    assert tone_frequency(l_rec, plan.audio_rate) == pytest.approx(440, abs=300)
    assert tone_frequency(r_rec, plan.audio_rate) == pytest.approx(1000, abs=300)
    assert correlation(l_rec, decoded["left"][skip : skip + len(l_rec)]) > 0.85
    assert correlation(r_rec, decoded["right"][skip : skip + len(r_rec)]) > 0.85


def test_accelerators_shared_not_duplicated(decoded):
    """One CORDIC tile and one FIR tile serve all four streams."""
    chain = decoded["handles"].chain
    assert len(chain.tiles) == 2
    total_in = sum(b.samples_in for b in chain.bindings.values())
    assert chain.tiles[0].samples_in == total_in


def test_round_robin_interleaves_streams(decoded):
    """No stream monopolises the chain: admissions of different streams
    interleave rather than running one stream to completion first."""
    bindings = decoded["handles"].chain.bindings
    events = sorted(
        (t, name) for name, b in bindings.items() for t in b.admissions
    )
    first_eight = [name for _t, name in events[:8]]
    assert len(set(first_eight)) >= 3


def test_context_switches_counted(decoded):
    entry = decoded["handles"].chain.entry
    assert entry.reconfig_cycles > 0
    assert entry.blocks_admitted == sum(
        b.blocks_done for b in decoded["handles"].chain.bindings.values()
    )
