"""End-to-end fault injection, watchdog recovery and graceful degradation.

Each test drives `simulate_system` with a seeded `FaultPlan` and asserts
the recovery contract: every injected fault is attributed, every stream
either recovers (exactly-once delivery — no lost or duplicated samples)
or is explicitly failed/degraded, and a fault-free (empty) plan leaves
the run bit-identical to one without any fault machinery.
"""

from fractions import Fraction

import pytest

from repro.arch import SimulationStalled, simulate_system
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    compute_block_sizes,
)
from repro.sim.faults import (
    ACCEL_STALL,
    CFIFO_PTR_LOSS,
    RECONFIG_FAIL,
    RING_DROP,
    FaultPlan,
    FaultSpec,
)


def two_stream_system():
    sys_ = GatewaySystem(
        accelerators=(AcceleratorSpec("acc0", 1), AcceleratorSpec("acc1", 1)),
        streams=(StreamSpec("pal", Fraction(1, 120), 410),
                 StreamSpec("ntsc", Fraction(1, 150), 410)),
    )
    return sys_.with_block_sizes(compute_block_sizes(sys_).block_sizes)


def assert_exactly_once(run, blocks):
    """Every non-failed stream delivered each output sample exactly once."""
    for name, b in run.chain.bindings.items():
        if b.failed:
            continue
        assert b.blocks_done == blocks, f"{name}: {b.blocks_done}/{blocks}"
        assert b.samples_out == b.expected_out * blocks, name
        assert b.samples_in == b.eta * blocks, name


# -- empty plan: bit-identical to the fault-free run ------------------------

def test_empty_plan_is_bit_identical():
    sys_ = two_stream_system()
    plain = simulate_system(sys_, blocks=3)
    empty = simulate_system(sys_, blocks=3, faults=FaultPlan())
    assert empty.injector is None and empty.watchdog is None
    assert plain.horizon == empty.horizon
    assert ({n: m.to_dict() for n, m in plain.metrics().items()}
            == {n: m.to_dict() for n, m in empty.metrics().items()})
    assert (plain.conformance().to_dict() == empty.conformance().to_dict())
    report = empty.fault_report()
    assert report["injected"] == [] and report["fully_attributed"]


# -- recoverable faults -----------------------------------------------------

def test_accel_stall_recovers_with_exactly_once_delivery():
    sys_ = two_stream_system()
    plan = FaultPlan(specs=(
        FaultSpec(kind=ACCEL_STALL, at=1000, target="sys.acc0",
                  duration=2000, extra=1500, count=1),
    ), seed=7)
    run = simulate_system(sys_, blocks=4, faults=plan)
    report = run.fault_report()
    assert len(report["injected"]) == 1
    pal = report["streams"]["pal"]
    assert pal["watchdog_timeouts"] >= 1 and pal["recovered"]
    assert not pal["failed"]
    assert_exactly_once(run, blocks=4)
    assert report["fully_attributed"], report["unattributed"]
    # the retransmission reproduced the identical output prefix: the
    # consumer-facing sample count has no duplicates (checked above) and
    # the exit gateway discarded the replayed prefix
    assert run.chain.exit.discarded > 0


def test_accel_stall_recovery_is_deterministic():
    sys_ = two_stream_system()
    plan = FaultPlan(specs=(
        FaultSpec(kind=ACCEL_STALL, at=1000, target="sys.acc0",
                  duration=2000, extra=1500, count=1),
    ), seed=7)
    a = simulate_system(sys_, blocks=4, faults=plan)
    b = simulate_system(sys_, blocks=4, faults=plan)
    assert a.horizon == b.horizon
    assert ({n: m.to_dict() for n, m in a.metrics().items()}
            == {n: m.to_dict() for n, m in b.metrics().items()})
    assert a.injector.events == b.injector.events


def test_ring_drop_on_chain_channel_recovers():
    sys_ = two_stream_system()
    # stations: prod=0 cons=1 entry=2 acc0=3 acc1=4 exit=5; drop a data
    # flit on the acc1 -> exit hardware channel
    plan = FaultPlan(specs=(
        FaultSpec(kind=RING_DROP, at=400, duration=2000, ring="data",
                  src=4, dst=5, count=1),
    ), seed=3)
    run = simulate_system(sys_, blocks=4, faults=plan)
    report = run.fault_report()
    assert len(report["injected"]) == 1
    assert_exactly_once(run, blocks=4)
    assert report["fully_attributed"]
    # the lost word forced a watchdog flush + credit repair somewhere
    assert any(s["watchdog_timeouts"] for s in report["streams"].values())


def test_cfifo_pointer_loss_is_resynced():
    sys_ = two_stream_system()
    plan = FaultPlan(specs=(
        FaultSpec(kind=CFIFO_PTR_LOSS, at=0, duration=5000,
                  target="pal.in", side="read", count=2),
    ), seed=1)
    run = simulate_system(sys_, blocks=4, faults=plan)
    report = run.fault_report()
    assert len(report["injected"]) == 2
    assert_exactly_once(run, blocks=4)
    # lost read-pointer updates leak producer space until a resync repays it;
    # with ample FIFO headroom the streams themselves never even time out
    fifo = run.chain.bindings["pal"].in_fifo
    assert fifo.words_got == fifo.words_put
    assert report["fully_attributed"]


def test_reconfig_failure_retries_transparently():
    sys_ = two_stream_system()
    plan = FaultPlan(specs=(
        FaultSpec(kind=RECONFIG_FAIL, at=0, duration=100_000,
                  target="ntsc", count=3),
    ), seed=2)
    run = simulate_system(sys_, blocks=4, faults=plan)
    report = run.fault_report()
    assert len(report["injected"]) == 3
    assert_exactly_once(run, blocks=4)
    # retried reconfigurations cost extra bus cycles, visible in the split
    assert run.chain.entry.reconfig_cycles > 0
    assert report["fully_attributed"]


# -- unrecoverable faults: explicit degradation -----------------------------

def test_unrecoverable_stall_fails_stream_but_spares_the_rest():
    sys_ = two_stream_system()
    plan = FaultPlan(specs=(
        FaultSpec(kind=ACCEL_STALL, at=1000, target="sys.acc0",
                  duration=2000, extra=20_000, count=1),
    ), seed=7)
    run = simulate_system(sys_, blocks=4, faults=plan)
    report = run.fault_report()
    streams = report["streams"]
    failed = [n for n, s in streams.items() if s["failed"]]
    assert len(failed) == 1
    survivor = next(n for n in streams if n not in failed)
    assert streams[survivor]["blocks_done"] == 4
    assert not streams[survivor]["failed"]
    assert_exactly_once(run, blocks=4)  # skips the failed stream
    kinds = [r["kind"] for r in report["recovery_log"]]
    assert "watchdog_timeout" in kinds and "stream_failed" in kinds


def test_degradation_pauses_and_readmits_low_priority_stream():
    sys_ = two_stream_system()
    plan = FaultPlan(specs=(
        FaultSpec(kind=ACCEL_STALL, at=1000, target="sys.acc0",
                  duration=2000, extra=1500, count=1),
    ), seed=7)
    run = simulate_system(sys_, blocks=4, faults=plan)
    report = run.fault_report()
    kinds = [r["kind"] for r in report["recovery_log"]]
    # the recovery overhead broke Eq. 5 for the round: the lowest-priority
    # stream was paused and later re-admitted after a healthy window
    assert "degrade" in kinds and "readmit" in kinds
    degraded = [s for s in report["streams"].values() if s["degraded_cycles"]]
    assert degraded and all(not s["failed"] for s in degraded)
    assert_exactly_once(run, blocks=4)


# -- deadlock guard ---------------------------------------------------------

def test_max_cycles_raises_with_diagnostic():
    sys_ = two_stream_system()
    with pytest.raises(SimulationStalled) as err:
        simulate_system(sys_, blocks=4, max_cycles=500)
    msg = str(err.value)
    assert "stalled at cycle" in msg
    assert "entry gateway" in msg and "exit gateway" in msg
    assert "pal" in msg and "ntsc" in msg


def test_max_cycles_generous_cap_is_silent():
    sys_ = two_stream_system()
    run = simulate_system(sys_, blocks=2, max_cycles=10_000_000)
    assert_exactly_once(run, blocks=2)
