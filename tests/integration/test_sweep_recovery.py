"""Crash recovery end-to-end: killed workers, chaos sweeps, interrupt/resume.

These tests actually kill processes.  The invariants under test:

* a SIGKILLed worker never loses or duplicates a point — the chunk is
  re-dispatched and the merged digest matches an undisturbed serial run;
* a chaos-disturbed work-queue sweep (seeded kills and stalls mid-chunk)
  converges to the bit-identical serial result;
* a sweep interrupted mid-run resumes from its journal and finishes
  bit-identical to a never-interrupted run;
* a point that deterministically kills every worker that touches it is
  quarantined — recorded in the result, never silently dropped, and never
  allowed to sink the rest of the sweep.
"""

import os
import signal

import pytest

from repro.exp import (
    ChaosEvent,
    ChaosPlan,
    Sweep,
    SweepInterrupted,
    run_chaos_sweep,
    run_sweep,
)

KILL_POINT = 2  # the "x" value whose task misbehaves in crashy sweeps


def plain_task(params, ctx):
    return {"y": params["x"] * 10 + 1, "seed": ctx.seed}


def suicide_once_task(params, ctx):
    """Kill the evaluating process the first time the hot point runs.

    The sentinel file marks "the crash already happened", so the
    re-dispatched twin (and the serial baseline, which pre-creates it)
    completes normally.  SIGKILL is deliberate: no atexit, no cleanup —
    the worst-case worker death.
    """
    if params["x"] == KILL_POINT and params["sentinel"]:
        try:
            with open(params["sentinel"], "x"):
                pass
        except FileExistsError:
            pass
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    return {"y": params["x"] * 10 + 1, "seed": ctx.seed}


def poison_task(params, ctx):
    """Kill *every* process that evaluates the hot point — unrecoverable."""
    if params["x"] == KILL_POINT:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"y": params["x"], "seed": ctx.seed}


def crashy_sweep(sentinel, n=6, name="recovery"):
    points = [{"x": i, "sentinel": str(sentinel)} for i in range(n)]
    return Sweep(name, suicide_once_task, points, seed=5)


def assert_no_lost_or_duplicated(result, sweep):
    ids = [o.id for o in result.outcomes]
    assert ids == [p.id for p in sweep.points]
    assert len(set(ids)) == len(ids)


def test_pool_survives_sigkilled_worker_mid_chunk(tmp_path):
    sentinel = tmp_path / "crashed"
    sweep = crashy_sweep(sentinel)

    # serial baseline with the crash "already spent"
    sentinel.touch()
    baseline = run_sweep(sweep, workers=1)
    sentinel.unlink()

    result = run_sweep(sweep, workers=2, executor="pool")
    assert sentinel.exists(), "the crash never fired"
    assert result.mode == "process-pool"
    assert_no_lost_or_duplicated(result, sweep)
    assert result.digest() == baseline.digest()
    assert result.payload() == baseline.payload()
    assert result.quarantined == []


def test_queue_survives_sigkilled_worker_mid_chunk(tmp_path):
    sentinel = tmp_path / "crashed"
    sweep = crashy_sweep(sentinel)

    sentinel.touch()
    baseline = run_sweep(sweep, workers=1)
    sentinel.unlink()

    result = run_sweep(sweep, workers=2, executor="queue")
    assert sentinel.exists(), "the crash never fired"
    assert result.mode == "work-queue"
    assert result.worker_restarts >= 1
    assert_no_lost_or_duplicated(result, sweep)
    assert result.digest() == baseline.digest()


def test_chaos_sweep_matches_undisturbed_serial_run():
    sweep = Sweep(
        "chaos_eq", plain_task, [{"x": i} for i in range(10)], seed=9
    )
    baseline = run_sweep(sweep, workers=1, chunk_size=2)
    plan = ChaosPlan(
        seed=7,
        events=(
            ChaosEvent(chunk=1, action="kill"),
            ChaosEvent(chunk=3, action="stall", stall_s=0.3),
        ),
    )
    result, monkey = run_chaos_sweep(sweep, plan, workers=2, chunk_size=2)
    assert monkey.log, "chaos plan never struck"
    assert {entry["action"] for entry in monkey.log} == {"kill", "stall"}
    assert_no_lost_or_duplicated(result, sweep)
    assert result.digest() == baseline.digest()
    assert result.payload() == baseline.payload()
    assert result.quarantined == []


def test_chaos_kill_with_store_then_resume(tmp_path):
    """Chaos + durability: kill workers, then resume from the journal."""
    sweep = Sweep(
        "chaos_store", plain_task, [{"x": i} for i in range(8)], seed=2
    )
    baseline = run_sweep(sweep, workers=1, chunk_size=2)
    plan = ChaosPlan(seed=3, events=(ChaosEvent(chunk=0, action="kill"),))
    disturbed, monkey = run_chaos_sweep(
        sweep, plan, workers=2, chunk_size=2, store=tmp_path
    )
    assert monkey.log
    assert disturbed.digest() == baseline.digest()
    # everything is journaled: a rerun is a pure replay, still bit-identical
    replay = run_sweep(
        sweep, workers=1, chunk_size=2, store=tmp_path, resume=True
    )
    assert replay.resumed_chunks == replay.chunk_count == 4
    assert replay.digest() == baseline.digest()


def test_interrupted_pool_run_resumes_bit_identically(tmp_path):
    sweep = Sweep(
        "resume_pool", plain_task, [{"x": i} for i in range(12)], seed=4
    )
    baseline = run_sweep(sweep, workers=1, chunk_size=3)
    with pytest.raises(SweepInterrupted) as err:
        run_sweep(
            sweep,
            workers=2,
            executor="pool",
            chunk_size=3,
            store=tmp_path,
            interrupt_after=2,
        )
    assert err.value.completed_chunks >= 2
    resumed = run_sweep(
        sweep,
        workers=2,
        executor="pool",
        chunk_size=3,
        store=tmp_path,
        resume=True,
    )
    assert resumed.resumed_chunks >= 2
    assert_no_lost_or_duplicated(resumed, sweep)
    assert resumed.digest() == baseline.digest()
    assert resumed.payload() == baseline.payload()


def test_poison_point_is_quarantined_not_dropped():
    sweep = Sweep(
        "poison", poison_task, [{"x": i} for i in range(6)], seed=8
    )
    result = run_sweep(sweep, workers=2, executor="pool", chunk_size=2)
    assert_no_lost_or_duplicated(result, sweep)
    quarantined = [o for o in result.outcomes if o.quarantined]
    assert [o.id for o in quarantined] == [f"x={KILL_POINT}"]
    assert quarantined[0].error
    healthy = [o for o in result.outcomes if not o.quarantined]
    assert all(o.ok for o in healthy) and len(healthy) == 5
    # quarantine is surfaced in the report, not buried
    report = result.to_report()
    (entry,) = report["execution"]["quarantined"]
    assert entry["id"] == f"x={KILL_POINT}"
    assert entry["failures"] >= 2
    assert "quarantined" in entry["error"]
    assert result.failed == quarantined


@pytest.mark.skipif(
    os.environ.get("SWEEP_CHAOS_SMOKE") != "1",
    reason="long randomized chaos smoke; set SWEEP_CHAOS_SMOKE=1 to run",
)
def test_chaos_smoke_randomized_plans():
    """Heavier randomized chaos battery for CI's opt-in smoke job."""
    sweep = Sweep(
        "chaos_smoke", plain_task, [{"x": i} for i in range(16)], seed=21
    )
    baseline = run_sweep(sweep, workers=1, chunk_size=2)
    for seed in range(3):
        plan = ChaosPlan.random(
            seed=seed, chunk_count=8, kill_rate=0.4, stall_rate=0.25
        )
        result, monkey = run_chaos_sweep(
            sweep, plan, workers=2, chunk_size=2
        )
        assert_no_lost_or_duplicated(result, sweep)
        assert result.digest() == baseline.digest(), (
            f"chaos seed {seed} diverged (struck: {monkey.log})"
        )
