"""EQ2-4: the closed-form bounds are conservative for the simulated hardware.

The paper instantiates its analysis with *measured* per-sample costs (the
prototype's ε = 15 cycles/sample includes all software and NI overheads).
We do the same for the simulated architecture: the calibrated model uses

* ``ε_cal = entry_copy + 1``  (DMA ring-inject cycle),
* ``ρ_cal = ρ + 2``           (NI receive + send per accelerator),
* ``δ_cal = exit_copy + 3``   (C-FIFO data + pointer posted writes),

and the tests assert that every measured block time τ and turnaround γ in
the architecture simulation stays within the calibrated Eq. 2/Eq. 4 bounds —
the executable form of "the hardware is a temporal refinement of the model".
"""

from fractions import Fraction

import pytest

from repro.accel import MixerKernel
from repro.arch import Get, MPSoC, Put, TaskSpec
from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec, gamma, tau_hat


def run_arch(etas, eps, delta, rho, R, blocks=4, n_kernels=1):
    """Drive the architecture with continuously fed streams; return bindings."""
    kernels = [MixerKernel(0.0) for _ in range(n_kernels)]
    soc = MPSoC(n_stations=8 + n_kernels)
    prod = soc.add_processor("p")
    cons = soc.add_processor("c")
    entry_station = 2
    exit_station = entry_station + n_kernels + 1
    total = [eta * blocks for eta in etas]
    in_fifos = [prod.fifo_to(entry_station, capacity=t + 8, name=f"in{i}")
                for i, t in enumerate(total)]
    out_fifos = [soc.software_fifo(exit_station, cons, capacity=t + 8, name=f"out{i}")
                 for i, t in enumerate(total)]
    configs = [
        {"name": f"s{i}", "eta": etas[i], "in_fifo": in_fifos[i],
         "out_fifo": out_fifos[i],
         "states": [MixerKernel(0.0).get_state() for _ in kernels],
         "reconfigure_cycles": R}
        for i in range(len(etas))
    ]
    chain = soc.shared_chain("g", kernels, configs, entry_copy=eps, exit_copy=delta)

    def producer(fifo, count):
        def gen():
            for i in range(count):
                yield Put(fifo, float(i))
        return gen

    def consumer(fifo, count):
        def gen():
            for _ in range(count):
                yield Get(fifo)
        return gen

    for i, t in enumerate(total):
        prod.add_task(TaskSpec(f"p{i}", producer(in_fifos[i], t)))
        cons.add_task(TaskSpec(f"c{i}", consumer(out_fifos[i], t)))
    prod.start()
    cons.start()
    soc.run(until=(R + max(etas) * (eps + 10)) * blocks * (len(etas) + 2) + 10000)
    return chain


def calibrated_system(etas, eps, delta, rho, R, n_kernels=1):
    mu = Fraction(1, 10**9)  # rate requirement irrelevant for the bounds
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(f"a{k}", rho + 2) for k in range(n_kernels)),
        streams=tuple(
            StreamSpec(f"s{i}", mu, R, block_size=etas[i]) for i in range(len(etas))
        ),
        entry_copy=eps + 1,
        exit_copy=delta + 3,
    )


@pytest.mark.parametrize(
    "etas,eps,delta,R",
    [
        ((8,), 15, 1, 100),
        ((16,), 15, 1, 4100),
        ((8, 8), 15, 1, 100),
        ((16, 4), 15, 1, 200),
        ((8, 8), 5, 1, 50),
        ((8,), 2, 3, 50),  # exit-gateway-bound configuration
    ],
)
def test_block_times_within_tau_hat(etas, eps, delta, R):
    chain = run_arch(etas, eps, delta, rho=1, R=R)
    system = calibrated_system(etas, eps, delta, rho=1, R=R)
    for i in range(len(etas)):
        b = chain.binding(f"s{i}")
        assert b.blocks_done >= 3, f"s{i} made too little progress"
        bound = tau_hat(system, f"s{i}")
        for adm, comp in zip(b.admissions, b.completions):
            assert comp - adm <= bound, (
                f"s{i}: block took {comp - adm} > τ̂ = {bound}"
            )


@pytest.mark.parametrize("etas,R", [((8, 8), 100), ((16, 8), 150), ((8, 8, 8), 60)])
def test_turnaround_within_gamma(etas, R):
    """Gaps between consecutive completions of a stream stay within γ̂."""
    eps, delta = 15, 1
    chain = run_arch(etas, eps, delta, rho=1, R=R, blocks=5)
    system = calibrated_system(etas, eps, delta, rho=1, R=R)
    for i in range(len(etas)):
        b = chain.binding(f"s{i}")
        bound = gamma(system, f"s{i}")
        comps = b.completions
        assert len(comps) >= 4
        for c1, c2 in zip(comps, comps[1:]):
            assert c2 - c1 <= bound, f"s{i}: turnaround {c2 - c1} > γ̂ = {bound}"


def test_guaranteed_throughput_met_in_simulation():
    """Streams continuously backlogged achieve ≥ η/γ̂ samples per cycle."""
    etas, eps, delta, R = (8, 8), 15, 1, 100
    chain = run_arch(etas, eps, delta, rho=1, R=R, blocks=6)
    system = calibrated_system(etas, eps, delta, rho=1, R=R)
    for i in range(len(etas)):
        b = chain.binding(f"s{i}")
        # measure over completed blocks in steady state
        span = b.completions[-1] - b.completions[0]
        samples = etas[i] * (len(b.completions) - 1)
        measured = Fraction(samples, span)
        guaranteed = Fraction(etas[i], gamma(system, f"s{i}"))
        assert measured >= guaranteed


def test_chain_of_two_accelerators_within_bounds():
    etas, eps, delta, R = (8,), 15, 1, 100
    chain = run_arch(etas, eps, delta, rho=1, R=R, n_kernels=2)
    system = calibrated_system(etas, eps, delta, rho=1, R=R, n_kernels=2)
    b = chain.binding("s0")
    bound = tau_hat(system, "s0")  # uses the generalised flush term A+1
    for adm, comp in zip(b.admissions, b.completions):
        assert comp - adm <= bound
