"""Integration tests for runtime reconfiguration (stream churn + failover).

The acceptance scenario of the reconfiguration subsystem: against a live
two-stream system, a third stream joins mid-run, the only accelerator tile
fails permanently and is remapped onto a dormant spare, and one of the
original streams leaves — all without stopping the simulation.  Every
transition must finish within its bounded budget (the Jung-style mode
change argument), every surviving stream must meet its Eq. 5 guarantee in
every steady mode, and every bound violation must be attributable to an
injected event.
"""

from fractions import Fraction

import pytest

from repro.arch import simulate_system
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    compute_block_sizes,
)
from repro.sim.faults import FaultPlan, FaultSpec

BLOCKS = 12


def _system() -> GatewaySystem:
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("acc0", 1),),
        streams=(
            StreamSpec("pal", Fraction(1, 120), 410),
            StreamSpec("ntsc", Fraction(1, 150), 410),
        ),
    )
    return system.with_block_sizes(compute_block_sizes(system).block_sizes)


def _churn_plan() -> FaultPlan:
    return FaultPlan(specs=(
        FaultSpec(kind="stream_join", at=30_000, target="web",
                  params={"throughput": [1, 200], "reconfigure": 410}),
        FaultSpec(kind="permanent_tile_failure", at=45_000, target="sys.acc0"),
        FaultSpec(kind="stream_leave", at=70_000, target="ntsc"),
    ), seed=3)


def _run_churn():
    return simulate_system(_system(), blocks=BLOCKS, faults=_churn_plan(),
                           admission=False, spares=1)


class TestChurnAcceptance:
    @pytest.fixture(scope="class")
    def run(self):
        return _run_churn()

    def test_all_transitions_accepted_within_budget(self, run):
        transitions = run.reconfig.transitions
        assert [t.trigger for t in transitions] == [
            "stream_join", "tile_failure", "stream_leave"]
        assert all(t.accepted for t in transitions)
        assert all(t.within_budget for t in transitions), [
            (t.trigger, t.latency, t.budget) for t in transitions]

    def test_resolver_warm_starts_online(self, run):
        churn = [t for t in run.reconfig.transitions
                 if t.trigger in ("stream_join", "stream_leave")]
        assert all(t.warm_start for t in churn)

    def test_spare_failover_remaps_the_dead_tile(self, run):
        assert run.chain.remaps == [("sys.acc0", "sys.spare0")]
        [failure] = [t for t in run.reconfig.transitions
                     if t.trigger == "tile_failure"]
        assert failure.detail == "sys.acc0->sys.spare0"
        assert failure.via == "watchdog"
        # the spare is live in the chain, the dead tile is gone
        names = [t.name for t in run.chain.tiles]
        assert "sys.spare0" in names and "sys.acc0" not in names

    def test_surviving_streams_complete(self, run):
        bindings = run.chain.bindings
        assert bindings["pal"].blocks_done >= BLOCKS
        assert bindings["web"].blocks_done >= BLOCKS
        assert not bindings["pal"].failed
        assert not bindings["web"].failed

    def test_eq5_met_in_every_mode_after_each_transition(self, run):
        """Post-transition steady modes conform to the per-mode bounds.

        The only tolerated violations sit in the mode window the tile
        failure struck (the replayed block straddles the failure); every
        other mode — in particular the modes entered *after* each
        transition completed — must be clean, throughput included.
        """
        modal = run.mode_conformance()
        [failure] = [t for t in run.reconfig.transitions
                     if t.trigger == "tile_failure"]
        for mc in modal.modes:
            window = mc.window
            # the replayed block is charged to the mode it *started* in —
            # the window cut at the failure's request time
            struck = window.end == failure.requested_at
            if not struck:
                assert mc.report.ok, (
                    f"mode {window.index} [{window.start}, {window.end}): "
                    + "; ".join(str(v) for v in mc.report.violations))

    def test_zero_unattributed_violations(self, run):
        report = run.attributed_conformance()
        assert report.fully_attributed, [str(v) for v in report.unattributed]

    def test_left_stream_is_released(self, run):
        assert "ntsc" not in run.chain.bindings or \
            run.chain.bindings["ntsc"].name == "ntsc"
        [leave] = [t for t in run.reconfig.transitions
                   if t.trigger == "stream_leave"]
        assert leave.detail == "ntsc"
        # post-leave mode no longer budgets for ntsc
        assert "ntsc" not in leave.block_sizes
        assert set(leave.block_sizes) == {"pal", "web"}

    def test_fault_report_includes_transitions(self, run):
        report = run.fault_report()
        assert len(report["transitions"]) == 3
        assert [tuple(r) for r in report["remaps"]] == [
            ("sys.acc0", "sys.spare0")]


def test_churn_run_is_deterministic():
    """Two identical runs produce bit-identical schedules and records."""
    a, b = _run_churn(), _run_churn()
    assert a.horizon == b.horizon
    assert [t.to_dict() for t in a.reconfig.transitions] == \
        [t.to_dict() for t in b.reconfig.transitions]
    assert a.injector.events == b.injector.events
    assert {n: x.blocks_done for n, x in a.chain.bindings.items()} == \
        {n: x.blocks_done for n, x in b.chain.bindings.items()}


def test_tile_failure_without_spare_degrades_gracefully():
    """No spare in the pool: the remap is refused, the streams fail-stop
    (the single-tile chain is unrecoverable), and the run still terminates
    with the refusal on record."""
    plan = FaultPlan(specs=(
        FaultSpec(kind="stream_join", at=30_000, target="web",
                  params={"throughput": [1, 200], "reconfigure": 410}),
        FaultSpec(kind="permanent_tile_failure", at=45_000, target="sys.acc0"),
    ), seed=3)
    run = simulate_system(_system(), blocks=BLOCKS, faults=plan,
                          admission=False, spares=0)
    refused = [t for t in run.reconfig.transitions if not t.accepted]
    assert refused and refused[0].trigger == "tile_failure"
    assert refused[0].reason == "no-spare"
    assert run.chain.remaps == []
    assert any(b.failed for b in run.chain.bindings.values())


def test_join_of_existing_stream_is_refused():
    plan = FaultPlan(specs=(
        FaultSpec(kind="stream_join", at=30_000, target="pal",
                  params={"throughput": [1, 200], "reconfigure": 410}),
    ))
    run = simulate_system(_system(), blocks=8, faults=plan,
                          admission=False, spares=1)
    [t] = [t for t in run.reconfig.transitions if t.trigger == "stream_join"]
    assert not t.accepted and t.reason == "already-bound"
    assert run.mode_conformance().ok  # refused transition opens no window


def test_leave_of_last_stream_is_refused():
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("acc0", 1),),
        streams=(StreamSpec("pal", Fraction(1, 120), 410),),
    )
    system = system.with_block_sizes(compute_block_sizes(system).block_sizes)
    plan = FaultPlan(specs=(
        FaultSpec(kind="stream_leave", at=20_000, target="pal"),
    ))
    run = simulate_system(system, blocks=10, faults=plan,
                          admission=False, spares=1)
    leaves = [t for t in run.reconfig.transitions
              if t.trigger == "stream_leave"]
    if leaves:  # the stream may already have drained before the event fired
        assert not leaves[0].accepted
        assert leaves[0].reason in ("last-stream", "not-bound")
    assert run.chain.bindings["pal"].blocks_done >= 10


def test_infeasible_join_is_refused_and_system_unchanged():
    """A join whose rate overloads the chain is rejected by the online
    Algorithm-1 re-run; the running mode keeps its block sizes."""
    plan = FaultPlan(specs=(
        FaultSpec(kind="stream_join", at=30_000, target="hog",
                  params={"throughput": [9, 10], "reconfigure": 410}),
    ))
    run = simulate_system(_system(), blocks=BLOCKS, faults=plan,
                          admission=False, spares=1)
    [t] = [t for t in run.reconfig.transitions if t.trigger == "stream_join"]
    assert not t.accepted and t.reason.startswith("infeasible")
    assert "hog" not in run.chain.bindings
    assert {s.name for s in run.reconfig.system.streams} == {"pal", "ntsc"}
    assert run.attributed_conformance().fully_attributed
