"""Admission-service integration: sockets, CLI exit codes, soak/chaos.

Three layers of proof:

* transport — a live ``asyncio.start_server`` front end survives malformed
  JSON, oversized lines and mid-request disconnects while answering
  structured errors;
* CLI — ``repro serve`` honours the sweep exit-code convention
  (0 clean, 2 bad config, 3 interrupted) and its ``--smoke`` gate passes
  end to end;
* soak — a seeded churn battery (concurrent tenants, injected handler
  crashes, solver stalls, malformed payloads) after which the service must
  show zero lost or double-applied transitions, machine-readable rejects
  only, a journal that replays bit-identically, and a conformance-clean
  final mode.  The mini battery always runs; the full ≥1000-tenant one is
  opt-in (``SERVE_SOAK=1``, ``-m soak``) like the sweep chaos smoke.
"""

import asyncio
import json
import os
import random
import signal
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    verify_system,
)
from repro.serve import (
    REJECT_CODES,
    AdmissionService,
    ServeChaos,
    journal_to_fault_plan,
    replay_journal,
    serve_forever,
    state_fingerprint,
)

REPO = Path(__file__).resolve().parents[2]
CONFIG = REPO / "examples" / "configs" / "two_radios.json"
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def make_system(dens=(6000, 8000)):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", 1),),
        streams=tuple(
            StreamSpec(f"s{i}", Fraction(1, den), 100)
            for i, den in enumerate(dens)
        ),
        entry_copy=15,
        exit_copy=1,
    )


async def _start_server(svc):
    ready = asyncio.Event()
    bound = []
    task = asyncio.create_task(serve_forever(svc, port=0, ready=ready,
                                             bound=bound))
    await ready.wait()
    return task, bound[0]


async def _rpc(host, port, payloads):
    """Send raw lines over one connection; return decoded responses."""
    reader, writer = await asyncio.open_connection(host, port)
    out = []
    try:
        for p in payloads:
            line = p if isinstance(p, bytes) else json.dumps(p).encode()
            writer.write(line + b"\n")
            await writer.drain()
            out.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return out


# ---------------------------------------------------------------------------
# transport
# ---------------------------------------------------------------------------

def test_socket_roundtrip_and_malformed_lines():
    async def main():
        svc = AdmissionService(make_system())
        task, (host, port) = await _start_server(svc)
        join = {"op": "join", "tenant": "t", "stream": "x",
                "throughput": [1, 4096], "reconfigure": 16}
        r = await _rpc(host, port, [
            b"this is not json",
            {"op": "jion"},
            join,
            {"op": "leave", "tenant": "t", "stream": "x"},
        ])
        assert r[0]["error"]["code"] == "malformed"
        assert "invalid JSON" in r[0]["error"]["message"]
        assert r[1]["error"]["code"] == "malformed"
        assert r[2]["ok"] and r[2]["admitted"]
        assert r[3]["ok"]
        # the connection that fuzzed stayed usable, and the server still
        # accepts new connections afterwards
        (st,) = await _rpc(host, port, [{"op": "status"}])
        assert st["ok"]
        (down,) = await _rpc(host, port, [{"op": "shutdown"}])
        assert down["ok"]
        await asyncio.wait_for(task, 10)
    asyncio.run(main())


def test_oversized_line_kills_only_that_connection():
    async def main():
        svc = AdmissionService(make_system())
        task, (host, port) = await _start_server(svc)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"x" * (2 << 20) + b"\n")
        with pytest.raises((ConnectionError, asyncio.IncompleteReadError)):
            await writer.drain()
            # server drops the connection; reading hits EOF
            data = await reader.readline()
            if data == b"":
                raise ConnectionResetError("EOF")
        writer.close()
        # the accept loop survived
        (st,) = await _rpc(host, port, [{"op": "status"}])
        assert st["ok"]
        (down,) = await _rpc(host, port, [{"op": "shutdown"}])
        assert down["ok"]
        await asyncio.wait_for(task, 10)
    asyncio.run(main())


# ---------------------------------------------------------------------------
# CLI exit codes (0 / 2 / 3, matching the sweep convention)
# ---------------------------------------------------------------------------

def test_cli_smoke_exits_zero():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", str(CONFIG), "--smoke"],
        env=ENV, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    summary = json.loads(proc.stdout)
    assert summary["ok"] is True
    assert all(c["ok"] for c in summary["checks"])


def test_cli_unreadable_config_exits_two(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve",
         str(tmp_path / "missing.json")],
        env=ENV, capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 2
    assert "cannot read" in proc.stderr


def test_cli_invalid_config_exits_two(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"entry_cpy": 15, "accelerators": [], "streams": []}')
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", str(bad)],
        env=ENV, capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 2
    assert "did you mean 'entry_copy'" in proc.stderr


def test_cli_infeasible_baseline_exits_two(tmp_path):
    cfg = tmp_path / "hot.json"
    cfg.write_text(json.dumps({
        "entry_copy": 15, "exit_copy": 1,
        "accelerators": [{"name": "a", "rho": 1}],
        "streams": [{"name": "s", "throughput": [1, 2], "reconfigure": 10}],
    }))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", str(cfg)],
        env=ENV, capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 2
    assert "invalid system config" in proc.stderr


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_cli_sigint_exits_three():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(CONFIG)],
        env=ENV, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on" in line
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == 3


# ---------------------------------------------------------------------------
# determinism: identical request logs → bit-identical fingerprints
# ---------------------------------------------------------------------------

SCRIPTED_LOG = [
    {"op": "join", "tenant": "t0", "stream": "a",
     "throughput": [1, 4096], "reconfigure": 16},
    {"op": "join", "tenant": "t1", "stream": "b",
     "throughput": [1, 9000], "reconfigure": 40},
    {"op": "quote", "tenant": "t2", "stream": "c",
     "throughput": [1, 2048], "reconfigure": 8},
    {"op": "leave", "tenant": "t0", "stream": "a"},
    {"op": "join", "tenant": "t2", "stream": "c",
     "throughput": [1, 2048], "reconfigure": 8},
]


def _run_log(log):
    async def main():
        fingerprints = []
        async with AdmissionService(make_system()) as svc:
            for req in log:
                r = await svc.submit(dict(req))
                assert r["ok"], r
                fingerprints.append(svc.fingerprint())
            return fingerprints, svc.fingerprint(), svc.journal(), \
                svc.initial_system
    return asyncio.run(main())


def test_identical_request_log_replays_bit_identically():
    fps_a, final_a, journal_a, initial_a = _run_log(SCRIPTED_LOG)
    fps_b, final_b, journal_b, _ = _run_log(SCRIPTED_LOG)
    # a fresh server fed the identical log lands on the identical state,
    # transition by transition
    assert fps_a == fps_b
    assert final_a == final_b
    assert journal_a == journal_b
    # and the journal alone reconstructs it without re-solving anything
    assert state_fingerprint(replay_journal(initial_a, journal_a)) == final_a


# ---------------------------------------------------------------------------
# journal → cycle-level simulator projection
# ---------------------------------------------------------------------------

def test_journal_drives_reconfiguration_manager():
    async def main():
        async with AdmissionService(make_system(dens=(120, 150))) as svc:
            r = await svc.submit({"op": "join", "tenant": "t", "stream": "web",
                                  "throughput": [1, 200],
                                  "reconfigure": 410})
            assert r["ok"]
            return svc.initial_system, svc.journal()
    initial, journal = asyncio.run(main())

    from repro.api import Scenario

    plan = journal_to_fault_plan(journal, start_at=30_000, spacing=4096)
    result = Scenario(system=initial).with_blocks(6).with_admission(False) \
        .with_faults(plan).build()
    rm = result.run.reconfig
    assert rm is not None
    accepted = [t for t in rm.transitions if t.accepted]
    assert [(t.trigger, t.detail) for t in accepted] == [("stream_join", "web")]
    assert all(t.within_budget for t in accepted)
    report = result.run.attributed_conformance()
    assert report.fully_attributed


# ---------------------------------------------------------------------------
# soak / chaos battery
# ---------------------------------------------------------------------------

async def _definitive(svc, payload, rng):
    """Retry ``payload`` until a definitive outcome, the client protocol:
    ``internal`` means unknown (must retry the idempotency key); transient
    rejects may be retried or abandoned (they guarantee nothing applied)."""
    last = None
    for _ in range(200):
        r = await svc.submit(dict(payload))
        if r.get("ok"):
            return r
        code = r["error"]["code"]
        assert code in REJECT_CODES, r
        last = r
        if code == "internal":
            await asyncio.sleep(rng.random() * 0.004)
            continue
        if code in ("overloaded", "deadline", "breaker_open") \
                and rng.random() < 0.95:
            await asyncio.sleep(rng.random() * 0.02)
            continue
        return r
    raise AssertionError(f"no definitive outcome after 200 tries: {last}")


def _soak(n_tenants, seed, chaos):
    system = make_system()
    baseline = {"s0", "s1"}
    svc = AdmissionService(
        system,
        queue_depth=64,
        batch_max=16,
        max_streams=48,  # keeps every online ILP tractable under churn
        solver_timeout=0.25,
        chaos=chaos,
    )
    stayed = {}

    async def tenant(i):
        rng = random.Random(seed * 100_003 + i)
        stream = f"t{i}"
        join = {
            "op": "join", "tenant": f"tenant{i}", "stream": stream,
            "throughput": [1, 1 << 20], "reconfigure": 8,
            "idempotency_key": f"join-{i}",
        }
        if rng.random() < 0.5:
            join["deadline"] = 20.0
        if rng.random() < 0.25:  # malformed payloads ride along
            bad = await svc.submit({"op": "join", "tenant": "x",
                                    "stream": "y", "troughput": [1, 2]})
            assert bad["error"]["code"] == "malformed"
        r = await _definitive(svc, join, rng)
        joined = bool(r.get("ok"))
        if joined:
            assert r["eta"] >= 1 and r["budget"] > 0
        if rng.random() < 0.2:
            q = await svc.submit({"op": "quote", "tenant": "q",
                                  "stream": f"q{i}",
                                  "throughput": [1, 1 << 20],
                                  "reconfigure": 8})
            assert q["ok"], q
        left = False
        if joined and rng.random() < 0.6:
            lv = await _definitive(svc, {
                "op": "leave", "tenant": f"tenant{i}", "stream": stream,
                "idempotency_key": f"leave-{i}",
            }, rng)
            left = bool(lv.get("ok"))
        stayed[stream] = joined and not left

    async def main():
        async with svc:
            await asyncio.gather(*(tenant(i) for i in range(n_tenants)))
            # drain any maintenance, then check every invariant
            final = {s.name for s in svc.system.streams} - baseline
            expected = {s for s, present in stayed.items() if present}
            shed = {e["stream"] for e in svc.shed_log}
            # zero lost, zero double-applied: the committed stream set is
            # exactly what the definitive client outcomes promise (minus
            # anything the shedding policy explicitly logged)
            assert final == expected - shed, (
                f"lost={sorted(expected - shed - final)} "
                f"ghost={sorted(final - (expected - shed))}"
            )
            # the journal replays to the identical final mode
            replayed = replay_journal(svc.initial_system, svc.journal())
            assert state_fingerprint(replayed) == svc.fingerprint()
            # the final mode is conformance-clean under Eq. 2–5
            assert verify_system(svc.system).ok
            return svc

    service = asyncio.run(main())
    return service


def test_mini_soak_with_chaos():
    """Always-on battery: 64 churning tenants, crashes + stalls armed."""
    chaos = ServeChaos(seed=7, crash_before=0.05, crash_after=0.05,
                       solve_delay=0.4, solve_delay_rate=0.02)
    svc = _soak(64, seed=11, chaos=chaos)
    assert svc.counters["transitions"] >= 1
    assert svc.counters["handler_crashes"] >= 1 or chaos.crashes == 0


@pytest.mark.soak
@pytest.mark.skipif(os.environ.get("SERVE_SOAK") != "1",
                    reason="long soak battery; set SERVE_SOAK=1 to run")
def test_full_soak_thousand_tenants():
    """Acceptance battery: ≥1000 concurrent tenants under injected chaos."""
    chaos = ServeChaos(seed=23, crash_before=0.03, crash_after=0.03,
                       solve_delay=0.4, solve_delay_rate=0.01)
    svc = _soak(1000, seed=29, chaos=chaos)
    assert svc.counters["transitions"] >= 20
    # chaos genuinely fired: the envelope was exercised, not dodged
    assert chaos.crashes >= 1
    rejected = svc.counters["rejected"]
    assert set(rejected) <= REJECT_CODES
