"""The scenario registry through the CLI: scenarios, --scenario, sweep refs."""

import json
import os

import pytest

from repro import __main__ as cli


def run_cli(argv, capsys):
    code = cli.main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# -- repro scenarios ----------------------------------------------------------

def test_scenarios_list(capsys):
    code, out, _ = run_cli(["scenarios", "list"], capsys)
    assert code == 0
    for name in ("pal_decoder", "product_cipher", "multi_mode", "generated"):
        assert name in out


def test_scenarios_describe(capsys):
    code, out, _ = run_cli(["scenarios", "describe", "multi_mode"], capsys)
    assert code == 0
    assert "multi_mode" in out and "period" in out


def test_scenarios_describe_unknown(capsys):
    code, _, err = run_cli(["scenarios", "describe", "nope"], capsys)
    assert code == 2
    assert "unknown scenario" in err


def test_scenarios_run_product_cipher_clean(capsys):
    code, out, _ = run_cli(
        ["scenarios", "run", "product_cipher?sessions=2", "--blocks", "2"],
        capsys,
    )
    assert code == 0
    assert "scenario product_cipher" in out
    assert "verdict: clean" in out


def test_scenarios_run_multi_mode_reports_transitions(capsys):
    code, out, _ = run_cli(
        ["scenarios", "run", "multi_mode?modes=2&period=1200", "--blocks", "3"],
        capsys,
    )
    assert code == 0
    assert "mode transition(s)" in out
    assert "verdict: clean" in out


def test_scenarios_run_json_envelope(capsys):
    code, out, _ = run_cli(
        ["scenarios", "run", "generated?seed=5", "--json"], capsys
    )
    assert code == 0
    body = json.loads(out)
    assert body["schema"] == "repro.report"
    assert body["kind"] == "run"


def test_scenarios_run_json_churn(capsys):
    # the run report must survive a churn scenario whose online re-solves
    # changed block sizes: the conformance section is the per-mode merged
    # view, not the (stale) static-model check
    code, out, _ = run_cli(
        ["scenarios", "run", "multi_mode?modes=2&period=1200", "--blocks", "3",
         "--json"],
        capsys,
    )
    assert code == 0
    body = json.loads(out)
    assert body["kind"] == "run"
    assert body["conformance"]["ok"] is True
    assert body["transitions"], "churn run must report its transitions"


def test_conformance_json_churn_scenario(capsys):
    code, out, _ = run_cli(
        ["conformance", "--scenario", "multi_mode?modes=2&period=1200",
         "--blocks", "3", "--json"],
        capsys,
    )
    assert code == 0
    body = json.loads(out)
    assert body["kind"] == "conformance"
    assert body["ok"] is True


def test_scenarios_run_bad_param(capsys):
    code, _, err = run_cli(
        ["scenarios", "run", "generated?sede=5"], capsys
    )
    assert code == 2
    assert "did you mean" in err


# -- --scenario on the simulation subcommands --------------------------------

def test_metrics_accepts_scenario_flag(capsys):
    code, out, _ = run_cli(
        ["metrics", "--scenario", "product_cipher?sessions=2",
         "--blocks", "2", "--json"],
        capsys,
    )
    assert code == 0
    body = json.loads(out)
    assert body["kind"] == "metrics"
    assert {s["name"] for s in body["streams"]} == {"enc0", "enc1"}


def test_conformance_accepts_scenario_flag(capsys):
    code, out, _ = run_cli(
        ["conformance", "--scenario", "pal_decoder", "--blocks", "2",
         "--json"],
        capsys,
    )
    assert code == 0
    assert json.loads(out)["ok"] is True


def test_faults_uses_scenario_embedded_plan(capsys):
    code, out, _ = run_cli(
        ["faults", "--scenario", "multi_mode?modes=1&period=1500", "--json"],
        capsys,
    )
    assert code == 0
    assert json.loads(out)["kind"] == "faults"


def test_faults_without_any_plan_errors(capsys):
    code, _, err = run_cli(
        ["faults", "--scenario", "pal_decoder", "--blocks", "2"], capsys
    )
    assert code == 2
    assert "--plan" in err


def test_reconfig_runs_scenario_churn(capsys):
    code, out, _ = run_cli(
        ["reconfig", "--scenario", "multi_mode?modes=1&period=1500",
         "--json"],
        capsys,
    )
    assert code == 0
    assert json.loads(out)["kind"] == "reconfig"


def test_config_and_scenario_are_mutually_exclusive(tmp_path, capsys):
    path = tmp_path / "sys.json"
    path.write_text("{}")
    with pytest.raises(SystemExit) as exc:
        cli.main(["metrics", str(path), "--scenario", "pal_decoder"])
    assert exc.value.code == 2
    assert "not both" in capsys.readouterr().err


def test_scenario_flag_rejects_unknown_name(capsys):
    code, _, err = run_cli(
        ["metrics", "--scenario", "pal_decodr"], capsys
    )
    assert code == 2
    assert "did you mean" in err


# -- sweep over scenario references ------------------------------------------

def test_sweep_scenario_corpus(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, out, _ = run_cli(
        ["sweep", "scenario://generated?seed=3", "--points", "4",
         "--serial", "--name", "cli_corpus"],
        capsys,
    )
    assert code == 0
    artifact = tmp_path / "BENCH_cli_corpus.json"
    assert artifact.exists()
    body = json.loads(artifact.read_text())
    assert len(body["points"]) == 4
    assert all(p["value"]["fully_attributed"] for p in body["points"])


def test_sweep_rejects_malformed_scenario_spec(capsys):
    code, _, err = run_cli(["sweep", "scenario:generated"], capsys)
    assert code == 2
    assert "scenario://" in err


def test_sweep_rejects_multi_point_corpus_without_seed(capsys):
    code, _, err = run_cli(
        ["sweep", "scenario://pal_decoder", "--points", "3", "--serial"],
        capsys,
    )
    assert code == 2
    assert "no 'seed' parameter" in err


@pytest.mark.skipif(
    not os.environ.get("SCENARIO_FUZZ_SMOKE"),
    reason="set SCENARIO_FUZZ_SMOKE=1 to sweep the seeded fuzz corpus",
)
def test_scenario_fuzz_smoke(tmp_path, capsys, monkeypatch):
    """CI gate: a seeded corpus must be conformance-clean end to end."""
    monkeypatch.chdir(tmp_path)
    code, out, _ = run_cli(
        ["sweep", "scenario://generated?seed=0", "--points", "40",
         "--serial", "--name", "fuzz_smoke"],
        capsys,
    )
    assert code == 0, out
    body = json.loads((tmp_path / "BENCH_fuzz_smoke.json").read_text())
    assert len(body["points"]) == 40
    assert all(p["value"]["unattributed"] == 0 for p in body["points"])
