"""Failure injection: the protocol violations the gateways exist to prevent.

The paper warns that "reconfiguring or replacing state within the
accelerators while data is still being processed in those accelerators
would result in corrupt data".  These tests inject exactly such faults —
context switches into a busy pipeline, overflowing the exit gateway,
corrupt contexts, broken admission — and assert the simulated hardware
*detects* them rather than silently corrupting streams.
"""

import pytest

from repro.accel import FirDecimatorKernel, KernelError, MixerKernel, design_lowpass
from repro.arch import (
    AcceleratorTile,
    DualRing,
    ExitGateway,
    GatewayError,
    HardwareFifoChannel,
    MPSoC,
    StreamBinding,
)
from repro.sim import Signal, SimulationError, Simulator


def busy_tile():
    """A tile caught mid-kernel (its ρ is long and a word just arrived)."""
    sim = Simulator()
    ring = DualRing(sim, 4)
    cin = HardwareFifoChannel(sim, ring, 0, 1, capacity=2)
    cout = HardwareFifoChannel(sim, ring, 1, 2, capacity=2)
    kernel = MixerKernel(0.1)
    kernel.rho = 50  # type: ignore[misc]
    tile = AcceleratorTile(sim, "t", kernel, cin, cout)

    def feed():
        yield from cin.send(1.0)

    sim.process(feed())
    sim.run(until=10)  # word delivered, kernel mid-ρ
    assert tile.busy
    return sim, tile


def test_save_while_processing_detected():
    _sim, tile = busy_tile()
    with pytest.raises(SimulationError, match="corrupt"):
        tile.save_state()


def test_load_while_processing_detected():
    _sim, tile = busy_tile()
    with pytest.raises(SimulationError, match="corrupt"):
        tile.load_state({"freq_over_fs": 0.0, "phase": 0.0})


def test_shadow_swap_while_processing_detected():
    _sim, tile = busy_tile()
    tile.install_shadow("x", {"freq_over_fs": 0.0, "phase": 0.0})
    with pytest.raises(SimulationError, match="corrupt"):
        tile.activate_shadow(None, "x")


def test_corrupt_context_rejected_by_kernel():
    """A truncated context (e.g. a partial bus transfer) must not load."""
    kernel = FirDecimatorKernel(design_lowpass(9, 0.2), 4)
    good = kernel.get_state()
    bad = dict(good)
    del bad["delay"]
    with pytest.raises(KernelError):
        kernel.set_state(bad)
    # and a shape-inconsistent one
    bad2 = dict(good)
    bad2["delay"] = bad2["delay"][:3]
    with pytest.raises(KernelError):
        kernel.set_state(bad2)


def test_exit_gateway_block_queue_overflow_detected():
    """Admitting more blocks than the exit gateway tracks is a protocol
    violation (the idle token normally makes this impossible)."""
    sim = Simulator()
    ring = DualRing(sim, 4)
    ch = HardwareFifoChannel(sim, ring, 0, 1, capacity=2)
    idle = Signal(sim, initial=1)
    exit_gw = ExitGateway(sim, "x", ch, idle, exit_copy=1)
    soc_fifo = None  # bindings need a fifo; reuse a dummy CFifo
    from repro.arch import CFifo

    soc_fifo = CFifo(sim, ring, 2, 3, capacity=4)
    binding = StreamBinding("s", 1, soc_fifo, soc_fifo, [])
    for _ in range(4):  # fill the in-flight queue
        exit_gw.begin_block(binding)
    with pytest.raises(GatewayError, match="in flight"):
        exit_gw.begin_block(binding)


def test_forged_credit_overflow_detected():
    """If flow control is bypassed (credits forged), the NI buffer overflow
    is caught instead of silently dropping data."""
    sim = Simulator()
    ring = DualRing(sim, 4)
    ch = HardwareFifoChannel(sim, ring, 0, 1, capacity=1)
    ch._credits.release(5)  # fault: forge credits beyond buffer capacity

    def producer():
        for i in range(4):
            yield from ch.send(i)

    sim.process(producer())
    with pytest.raises(SimulationError, match="overflow"):
        sim.run()


def test_gateway_admission_never_overflows_small_output(monkeypatch):
    """Sabotage the space check: the system must fail loudly, not lose data.

    With the check intact the same scenario runs clean (asserted first)."""
    from repro.arch import Put, TaskSpec

    def build(sabotage):
        soc = MPSoC(n_stations=8)
        prod = soc.add_processor("p")
        cons = soc.add_processor("c")
        in_f = prod.fifo_to(2, capacity=32, name="in")
        out_f = soc.software_fifo(4, cons, capacity=2, name="out")  # tiny
        chain = soc.shared_chain(
            "g", [MixerKernel(0.0)],
            [{"name": "s", "eta": 4, "in_fifo": in_f, "out_fifo": out_f,
              "states": [MixerKernel(0.0).get_state()],
              "reconfigure_cycles": 10}],
            entry_copy=2, exit_copy=1,
        )
        if sabotage:
            monkeypatch.setattr(
                type(chain.entry), "_ready",
                lambda self, b: self.idle.count >= 1
                and b.in_fifo.consumer_available >= b.eta,
            )

        def producer():
            for i in range(8):
                yield Put(in_f, float(i))

        prod.add_task(TaskSpec("p", producer))
        prod.start()
        return soc, chain

    # sane system: the block is simply never admitted (2 < η=4 spaces)
    soc, chain = build(sabotage=False)
    soc.run(until=20_000)
    assert chain.binding("s").blocks_done == 0

    # sabotaged: the exit gateway wedges on the full output FIFO — the
    # pipeline never drains, the idle token never returns, and the second
    # block can never be admitted: no data is ever silently dropped.
    soc2, chain2 = build(sabotage=True)
    soc2.run(until=20_000)
    b = chain2.binding("s")
    assert b.blocks_done == 0          # the wedged block never completes
    assert b.samples_out <= 2          # at most the 2 spaces that existed
    assert chain2.entry.blocks_admitted == 1
