"""Property-based tests: fault-plan serialisation and online ILP re-solve.

Invariants the reconfiguration subsystem leans on:

* ``FaultSpec``/``FaultPlan`` survive ``to_dict``/``from_dict`` and the
  JSON round-trip unchanged — the CLI, the benchmark configs and the
  churn plans all travel through that path,
* ``resolve_block_sizes`` is idempotent under warm-starting: re-solving
  the same system with its own previous result short-circuits on the
  fingerprint (``warm_start=True``) with bit-equal block sizes, which is
  what makes an unchanged mode transition a no-op.
"""

from fractions import Fraction

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    resolve_block_sizes,
    sharing_load,
    system_fingerprint,
)
from repro.sim.faults import (
    ACCEL_STALL,
    CFIFO_PTR_LOSS,
    FAULT_KINDS,
    RING_DELAY,
    RING_DROP,
    STREAM_JOIN,
    STREAM_LEAVE,
    TASK_STALL,
    TILE_FAILURE,
    FaultPlan,
    FaultSpec,
)

_NAMES = st.text(alphabet="abcdefgh0123._", min_size=1, max_size=12)


@st.composite
def fault_specs(draw) -> FaultSpec:
    kind = draw(st.sampled_from(sorted(FAULT_KINDS)))
    kwargs = {"kind": kind, "at": draw(st.integers(0, 1_000_000))}
    if draw(st.booleans()):
        kwargs["duration"] = draw(st.integers(1, 100_000))
    if draw(st.booleans()):
        kwargs["count"] = draw(st.integers(1, 8))
    if kind in (ACCEL_STALL, RING_DELAY, TASK_STALL):
        kwargs["extra"] = draw(st.integers(1, 10_000))
    if kind in (TILE_FAILURE, STREAM_JOIN, STREAM_LEAVE):
        kwargs["target"] = draw(_NAMES)
    elif kind in (ACCEL_STALL, CFIFO_PTR_LOSS, TASK_STALL) and draw(st.booleans()):
        kwargs["target"] = draw(_NAMES)
    if kind == STREAM_JOIN:
        params = {
            "throughput": [draw(st.integers(1, 16)),
                           draw(st.integers(1, 100_000))],
            "reconfigure": draw(st.integers(1, 10_000)),
        }
        if draw(st.booleans()):
            params["block_size"] = draw(st.integers(1, 256))
        kwargs["params"] = params
    if kind == RING_DROP:
        if draw(st.booleans()):
            kwargs["probability"] = draw(
                st.floats(0.01, 1.0, allow_nan=False, allow_infinity=False))
        kwargs["src"] = draw(st.none() | st.integers(0, 15))
        kwargs["dst"] = draw(st.none() | st.integers(0, 15))
        kwargs["ring"] = draw(st.sampled_from(["data", "credit"]))
    if kind == CFIFO_PTR_LOSS:
        kwargs["side"] = draw(st.sampled_from(["write", "read"]))
    return FaultSpec(**kwargs)


@given(fault_specs())
def test_fault_spec_dict_roundtrip(spec):
    assert FaultSpec.from_dict(spec.to_dict()) == spec


@given(fault_specs())
def test_fault_spec_to_dict_omits_defaults(spec):
    data = spec.to_dict()
    assert {"kind", "at"} <= set(data)
    for name, value in data.items():
        if name not in ("kind", "at"):
            assert value != FaultSpec.__dataclass_fields__[name].default


@given(st.lists(fault_specs(), max_size=6), st.integers(0, 2**31 - 1))
def test_fault_plan_json_roundtrip(specs, seed):
    plan = FaultPlan(specs=tuple(specs), seed=seed)
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    assert again.churn == plan.churn
    assert again.tile_failures == plan.tile_failures


# --------------------------------------------------------------- online ILP
@st.composite
def feasible_systems(draw) -> GatewaySystem:
    n = draw(st.integers(1, 3))
    dens = draw(st.lists(st.integers(120, 600), min_size=n, max_size=n,
                         unique=True))
    streams = tuple(
        StreamSpec(f"s{i}", Fraction(1, den), draw(st.integers(40, 600)))
        for i, den in enumerate(dens)
    )
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("acc0", draw(st.integers(1, 2))),),
        streams=streams,
    )
    assume(sharing_load(system) < 1)
    return system


@given(feasible_systems())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_resolve_is_idempotent_under_warm_start(system):
    first = resolve_block_sizes(system)
    again = resolve_block_sizes(system, previous=first)
    assert again.warm_start
    assert again.block_sizes == first.block_sizes
    assert again.fingerprint == first.fingerprint == system_fingerprint(system)


@given(feasible_systems())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fingerprint_tracks_stream_set(system):
    fp = system_fingerprint(system)
    assert fp == system_fingerprint(system)  # deterministic
    grown = GatewaySystem(
        accelerators=system.accelerators,
        streams=system.streams + (StreamSpec("extra", Fraction(1, 997), 99),),
    )
    assert system_fingerprint(grown) != fp
