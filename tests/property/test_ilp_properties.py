"""Property-based tests for the ILP layer.

Invariants:

* expression arithmetic is exact (Fractions) and linear,
* both backends return feasible solutions that satisfy every constraint,
* both backends agree on the optimum of random bounded ILPs,
* rounding LP solutions is never accepted when infeasible (integrality is
  genuinely enforced).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import Model, Status, solve_branch_bound, solve_scipy, sum_expr

coef = st.integers(min_value=-4, max_value=4)
rhs_v = st.integers(min_value=-20, max_value=40)


@st.composite
def bounded_ilp(draw):
    n_vars = draw(st.integers(min_value=1, max_value=4))
    n_cons = draw(st.integers(min_value=0, max_value=5))
    m = Model("prop")
    xs = [m.int_var(f"x{i}", lo=0, hi=15) for i in range(n_vars)]
    for _ in range(n_cons):
        coeffs = [draw(coef) for _ in xs]
        expr = sum_expr(c * x for c, x in zip(coeffs, xs))
        m.add(expr <= draw(rhs_v))
    weights = [draw(st.integers(min_value=1, max_value=5)) for _ in xs]
    m.minimize(sum_expr(w * x for w, x in zip(weights, xs)))
    return m


@given(bounded_ilp())
@settings(max_examples=40, deadline=None)
def test_backends_agree_and_solutions_valid(model):
    a = solve_scipy(model)
    b = solve_branch_bound(model)
    assert a.status == b.status
    if a.status == Status.OPTIMAL:
        assert abs(a.objective - b.objective) < 1e-6
        assert model.check(a.values) == []
        assert model.check(b.values) == []


@given(bounded_ilp())
@settings(max_examples=40, deadline=None)
def test_integer_solutions_are_integral(model):
    sol = solve_scipy(model)
    if sol.optimal:
        for name, v in sol.values.items():
            assert v == int(v)


@given(st.lists(coef, min_size=2, max_size=5), st.lists(coef, min_size=2, max_size=5))
@settings(max_examples=60, deadline=None)
def test_expression_arithmetic_linear(cs1, cs2):
    n = min(len(cs1), len(cs2))
    m = Model()
    xs = [m.int_var(f"x{i}") for i in range(n)]
    e1 = sum_expr(c * x for c, x in zip(cs1, xs))
    e2 = sum_expr(c * x for c, x in zip(cs2, xs))
    combined = e1 + e2
    point = {f"x{i}": i + 1 for i in range(n)}
    assert combined.value(point) == e1.value(point) + e2.value(point)
    assert (2 * e1).value(point) == 2 * e1.value(point)
    assert (e1 - e2).value(point) == e1.value(point) - e2.value(point)


@given(st.integers(min_value=1, max_value=50), st.integers(min_value=2, max_value=9))
@settings(max_examples=40, deadline=None)
def test_integrality_ceiling(target, div):
    """min x s.t. div·x ≥ target is exactly ceil(target/div)."""
    m = Model()
    x = m.int_var("x", lo=0)
    m.add(div * x >= target)
    m.minimize(x)
    for backend in (solve_scipy, solve_branch_bound):
        sol = backend(m)
        assert sol["x"] == -(-target // div)


@given(st.integers(min_value=1, max_value=10))
@settings(max_examples=20, deadline=None)
def test_fraction_coefficients_exact(k):
    """Fraction coefficients (as produced by Algorithm 1's μ_s) survive the
    modelling layer without float drift."""
    m = Model()
    x = m.int_var("x", lo=0)
    mu = Fraction(1, 3)
    expr = x - mu * x  # (2/3)·x
    assert expr.coeffs["x"] == Fraction(2, 3)
    m.add(expr >= k)
    m.minimize(x)
    sol = solve_scipy(m)
    # (2/3)x >= k -> x >= 1.5k
    assert sol["x"] == -(-3 * k // 2)
