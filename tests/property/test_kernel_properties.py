"""Property-based tests for the accelerator kernels.

Invariants the gateway protocol depends on:

* **state round-trip**: splitting a stream at ANY point and moving the
  state through get_state/set_state (what a context switch does) yields
  bit-identical output to an uninterrupted run — this is what makes
  multiplexing transparent,
* **determinism**: same input, same state ⇒ same output (required by the
  refinement theory, Section III),
* batch references match streaming kernels,
* CORDIC accuracy bounds.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (
    CordicKernel,
    FirDecimatorKernel,
    FMDiscriminatorKernel,
    MixerKernel,
    cordic_rotate,
    cordic_vector,
    design_lowpass,
    fir_decimate_batch,
    run_kernel,
)

finite = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)
angle = st.floats(min_value=-math.pi + 1e-6, max_value=math.pi, allow_nan=False)
freq = st.floats(min_value=-0.5, max_value=0.5, allow_nan=False)


@st.composite
def complex_signal(draw, max_len=48):
    n = draw(st.integers(min_value=2, max_value=max_len))
    reals = draw(st.lists(finite, min_size=n, max_size=n))
    imags = draw(st.lists(finite, min_size=n, max_size=n))
    return np.array([complex(a, b) for a, b in zip(reals, imags)])


@st.composite
def kernel_instance(draw):
    kind = draw(st.sampled_from(["mixer", "fm", "cordic-mix", "cordic-fm", "fir"]))
    if kind == "mixer":
        return MixerKernel(draw(freq))
    if kind == "fm":
        return FMDiscriminatorKernel()
    if kind == "cordic-mix":
        return CordicKernel("mix", draw(freq))
    if kind == "cordic-fm":
        return CordicKernel("fm")
    taps = draw(st.integers(min_value=3, max_value=17))
    factor = draw(st.integers(min_value=1, max_value=4))
    return FirDecimatorKernel(design_lowpass(taps, 0.2), factor)


@given(kernel_instance(), complex_signal(), st.data())
@settings(max_examples=60, deadline=None)
def test_state_roundtrip_at_any_split(kernel, signal, data):
    """Context switch anywhere mid-stream is invisible in the output."""
    split = data.draw(st.integers(min_value=0, max_value=len(signal)))
    k2 = type(kernel)(**getattr(kernel, "_init_kwargs", {}))

    ref = run_kernel(kernel, signal)

    head = run_kernel(k2, signal[:split])
    parked = k2.get_state()
    k3 = type(kernel)(**getattr(kernel, "_init_kwargs", {}))
    k3.set_state(parked)
    tail = run_kernel(k3, signal[split:])
    resumed = np.concatenate([head, tail]) if len(head) or len(tail) else np.array([])
    assert len(resumed) == len(ref)
    if len(ref):
        assert np.allclose(resumed, ref)


@given(kernel_instance(), complex_signal())
@settings(max_examples=40, deadline=None)
def test_determinism(kernel, signal):
    k2 = type(kernel)(**getattr(kernel, "_init_kwargs", {}))
    k2.set_state(kernel.get_state())
    out1 = run_kernel(kernel, signal)
    out2 = run_kernel(k2, signal)
    assert np.array_equal(out1, out2)


@given(angle, finite, finite)
@settings(max_examples=80, deadline=None)
def test_cordic_rotate_accuracy(theta, x, y):
    rx, ry = cordic_rotate(x, y, theta)
    ex = x * math.cos(theta) - y * math.sin(theta)
    ey = x * math.sin(theta) + y * math.cos(theta)
    scale = max(1.0, math.hypot(x, y))
    assert abs(rx - ex) < 2e-3 * scale
    assert abs(ry - ey) < 2e-3 * scale


@given(finite, finite)
@settings(max_examples=80, deadline=None)
def test_cordic_vector_accuracy(x, y):
    if math.hypot(x, y) < 1e-3:
        return  # phase undefined near the origin
    mag, phase = cordic_vector(x, y)
    assert abs(mag - math.hypot(x, y)) < 2e-3 * max(1.0, math.hypot(x, y))
    err = abs(phase - math.atan2(y, x))
    err = min(err, 2 * math.pi - err)
    assert err < 2e-3


@given(complex_signal(), st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_fir_stream_equals_batch(signal, factor):
    h = design_lowpass(9, 0.2)
    stream = run_kernel(FirDecimatorKernel(h, factor), signal)
    batch = fir_decimate_batch(signal, h, factor)
    assert len(stream) == len(batch)
    if len(batch):
        assert np.allclose(stream, batch)


@given(complex_signal(), st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_decimator_output_count_exact(signal, factor):
    out = run_kernel(FirDecimatorKernel(design_lowpass(5, 0.2), factor), signal)
    assert len(out) == len(signal) // factor


@given(st.lists(angle, min_size=2, max_size=32))
@settings(max_examples=40, deadline=None)
def test_fm_output_always_wrapped(phases):
    s = np.exp(1j * np.cumsum(phases))
    out = run_kernel(FMDiscriminatorKernel(), s)
    assert np.all(out <= math.pi + 1e-9)
    assert np.all(out >= -math.pi - 1e-9)


@given(freq, complex_signal())
@settings(max_examples=40, deadline=None)
def test_mixer_preserves_magnitude(f, signal):
    out = run_kernel(MixerKernel(f), signal)
    assert np.allclose(np.abs(out), np.abs(signal), atol=2e-3 * (1 + np.abs(signal)))
