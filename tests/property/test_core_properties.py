"""Property-based tests for the paper's equations and Algorithm 1.

Invariants:

* τ̂/ε̂/γ structural identities and monotonicity in η, R, rates,
* Algorithm 1 always returns an Eq.5-feasible, component-minimal solution,
* feasibility is exactly characterised by the load bound c0·Σμ < 1
  (for feasible instances; overload is always diagnosed),
* the SDF-model dataflow check agrees with the closed-form Eq. 5.
"""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    ParameterError,
    StreamSpec,
    compute_block_sizes,
    epsilon_hat,
    gamma,
    sharing_load,
    tau_hat,
    throughput_satisfied,
    verify_with_sdf_model,
)

eps_s = st.integers(min_value=1, max_value=20)
delta_s = st.integers(min_value=1, max_value=5)
rho_s = st.integers(min_value=1, max_value=8)
r_s = st.integers(min_value=0, max_value=500)
eta_s = st.integers(min_value=1, max_value=64)


@st.composite
def system_with_etas(draw, n_max=3):
    n = draw(st.integers(min_value=1, max_value=n_max))
    eps = draw(eps_s)
    streams = tuple(
        StreamSpec(
            f"s{i}",
            Fraction(1, draw(st.integers(min_value=200, max_value=5000))),
            draw(r_s),
            block_size=draw(eta_s),
        )
        for i in range(n)
    )
    return GatewaySystem(
        accelerators=(AcceleratorSpec("a", draw(rho_s)),),
        streams=streams,
        entry_copy=eps,
        exit_copy=draw(delta_s),
    )


@given(system_with_etas())
@settings(max_examples=60, deadline=None)
def test_gamma_decomposition(system):
    """γ_s = ε̂_s + τ̂_s and is the same for every stream (one rotation)."""
    gammas = set()
    for s in system.streams:
        assert gamma(system, s.name) == epsilon_hat(system, s.name) + tau_hat(
            system, s.name
        )
        gammas.add(gamma(system, s.name))
    assert len(gammas) == 1


@given(system_with_etas())
@settings(max_examples=60, deadline=None)
def test_tau_hat_formula(system):
    for s in system.streams:
        assert tau_hat(system, s.name) == s.reconfigure + (
            (s.block_size or 0) + system.flush_stages
        ) * system.c0


@given(system_with_etas(), st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_tau_monotone_in_eta(system, extra):
    s0 = system.streams[0]
    bigger = system.with_block_sizes({s0.name: (s0.block_size or 1) + extra})
    assert tau_hat(bigger, s0.name) > tau_hat(system, s0.name)
    # and every OTHER stream's waiting time grows too
    for s in system.streams[1:]:
        assert epsilon_hat(bigger, s.name) > epsilon_hat(system, s.name)


@st.composite
def feasible_system(draw, n_max=3):
    """A system whose load is safely below 1 (Algorithm 1 must solve it)."""
    n = draw(st.integers(min_value=1, max_value=n_max))
    eps = draw(st.integers(min_value=1, max_value=15))
    rho = draw(st.integers(min_value=1, max_value=4))
    delta = draw(st.integers(min_value=1, max_value=3))
    c0 = max(eps, rho, delta)
    # allocate at most 80% of capacity across the streams
    denoms = [draw(st.integers(min_value=2, max_value=10)) for _ in range(n)]
    total_weight = sum(Fraction(1, d) for d in denoms)
    scale = Fraction(4, 5) / (c0 * total_weight)
    streams = tuple(
        StreamSpec(f"s{i}", Fraction(1, d) * scale, draw(st.integers(0, 300)))
        for i, d in enumerate(denoms)
    )
    return GatewaySystem(
        accelerators=(AcceleratorSpec("a", rho),),
        streams=streams,
        entry_copy=eps,
        exit_copy=delta,
    )


@given(feasible_system())
@settings(max_examples=40, deadline=None)
def test_alg1_solution_feasible_and_minimal(system):
    assume(float(sharing_load(system)) < 0.9)
    result = compute_block_sizes(system)
    assigned = system.with_block_sizes(result.block_sizes)
    assert throughput_satisfied(assigned)
    # per-stream minimality: decrementing any η breaks Eq. 5
    for name, eta in result.block_sizes.items():
        if eta == 1:
            continue
        smaller = dict(result.block_sizes)
        smaller[name] = eta - 1
        assert not throughput_satisfied(system.with_block_sizes(smaller))


@given(feasible_system())
@settings(max_examples=20, deadline=None)
def test_alg1_backends_agree(system):
    assume(float(sharing_load(system)) < 0.9)
    a = compute_block_sizes(system, backend="scipy")
    b = compute_block_sizes(system, backend="bnb")
    assert a.objective == b.objective


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=10))
@settings(max_examples=30, deadline=None)
def test_overload_always_diagnosed(n, k):
    """c0·Σμ ≥ 1 must raise with the load diagnosis, never 'solve'."""
    mu = Fraction(1, n)  # n streams at 1/n each with c0 ≥ k ≥ 1: load ≥ 1
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", k),),
        streams=tuple(StreamSpec(f"s{i}", mu, 10) for i in range(n)),
        entry_copy=k,
        exit_copy=1,
    )
    assert sharing_load(system) >= 1
    try:
        compute_block_sizes(system)
        raise AssertionError("overloaded system must not solve")
    except ParameterError as err:
        assert "load" in str(err)


@given(system_with_etas(n_max=2))
@settings(max_examples=25, deadline=None)
def test_sdf_model_check_matches_closed_form(system):
    for s in system.streams:
        ok_model, _rate = verify_with_sdf_model(system, s.name)
        assert ok_model == throughput_satisfied(system, s.name)
