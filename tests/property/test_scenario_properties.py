"""Property-based tests for the scenario generator and registry refs.

The registry's load-bearing invariants:

* :func:`repro.app.scenarios.generate` is a pure function of its seed —
  identical seeds give identical systems, fault plans and run lengths
  (the sweep engine's serial ≡ parallel digest identity depends on it),
* every generated system survives the ``config_io`` dict/JSON round trip
  (generated scenarios are valid inputs to everything a hand-written
  config is),
* every generated scenario simulates to an attributed conformance report
  with **zero unattributed Eq. 2–5 violations** — violations may occur,
  but each one is explained by an injected churn event or transition,
* ``parse_ref``/``format_ref`` round-trip any (name, params) pair.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.scenarios import format_ref, generate, parse_ref
from repro.core.config_io import system_from_dict, system_to_dict

seeds = st.integers(min_value=0, max_value=10_000)


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_generate_deterministic_per_seed(seed):
    a, b = generate(seed=seed), generate(seed=seed)
    assert a.system == b.system
    assert a.faults == b.faults
    assert (a.blocks, a.max_cycles) == (b.blocks, b.max_cycles)


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_generated_system_round_trips_config_io(seed):
    system = generate(seed=seed).system
    blob = json.dumps(system_to_dict(system), sort_keys=True)
    assert system_from_dict(json.loads(blob)) == system


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=12, deadline=None)
def test_generated_scenario_conformance_fully_attributed(seed):
    result = generate(seed=seed).build()
    attributed = result.attributed_conformance()
    assert attributed.fully_attributed, (
        f"seed {seed}: unattributed {attributed.unattributed}"
    )


@given(
    st.sampled_from(["generated", "multi_mode", "pal_decoder"]),
    st.dictionaries(
        st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
        st.integers(min_value=0, max_value=10_000).map(str),
        max_size=4,
    ),
)
@settings(max_examples=40, deadline=None)
def test_ref_round_trip(name, params):
    assert parse_ref(format_ref(name, params)) == (name, params)
