"""Engine determinism properties: serial ≡ parallel, order, seeding.

The sweep engine's contract is that results are a pure function of the
sweep spec — independent of worker count, scheduling, and which process
evaluated which chunk.  These properties drive randomly shaped grids
through serial and pooled execution and require byte-equal payloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exp import Sweep, point_seed, run_sweep
from repro.exp.tasks import fig8_min_buffer


def arith_task(params, ctx):
    """Cheap deterministic module-level task (pool-picklable)."""
    return {
        "sum": params["a"] + params["b"],
        "product": params["a"] * params["b"],
        "seed": ctx.seed,
    }


grids = st.fixed_dictionaries({
    "a": st.lists(st.integers(0, 50), min_size=1, max_size=4, unique=True),
    "b": st.lists(st.integers(0, 50), min_size=1, max_size=3, unique=True),
})


@settings(max_examples=10, deadline=None)
@given(axes=grids, seed=st.integers(0, 2**16))
def test_serial_payload_is_pure(axes, seed):
    """Two serial runs of the same spec are byte-identical."""
    sweep = Sweep.grid("prop_pure", arith_task, axes=axes, seed=seed)
    first = run_sweep(sweep, workers=1)
    second = run_sweep(sweep, workers=1)
    assert first.digest() == second.digest()
    assert first.payload() == second.payload()


@settings(max_examples=4, deadline=None)
@given(
    axes=grids,
    seed=st.integers(0, 2**16),
    workers=st.integers(2, 3),
    chunk_size=st.integers(1, 5),
)
def test_parallel_equals_serial_bit_identical(axes, seed, workers, chunk_size):
    """Any worker count, any chunk size: payloads match the serial run."""
    sweep = Sweep.grid("prop_par", arith_task, axes=axes, seed=seed)
    serial = run_sweep(sweep, workers=1, chunk_size=chunk_size)
    parallel = run_sweep(sweep, workers=workers, chunk_size=chunk_size)
    assert parallel.digest() == serial.digest()
    assert parallel.payload() == serial.payload()
    assert [o.id for o in parallel.outcomes] == [p.id for p in sweep.points]


@settings(max_examples=3, deadline=None)
@given(etas=st.lists(st.integers(1, 8), min_size=1, max_size=4, unique=True))
def test_real_task_parallel_equals_serial(etas):
    """The property holds for a real analysis task, not just arithmetic."""
    sweep = Sweep.grid("prop_fig8", fig8_min_buffer, axes={"eta": etas})
    serial = run_sweep(sweep, workers=1, chunk_size=2)
    parallel = run_sweep(sweep, workers=2, chunk_size=2)
    assert parallel.digest() == serial.digest()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32),
    name=st.text(min_size=1, max_size=20),
    pid=st.text(min_size=1, max_size=30),
)
def test_point_seed_deterministic_and_bounded(seed, name, pid):
    first = point_seed(seed, name, pid)
    assert first == point_seed(seed, name, pid)
    assert 0 <= first < 2**32


@settings(max_examples=10, deadline=None)
@given(axes=grids, seed=st.integers(0, 2**16))
def test_task_receives_derived_seed(axes, seed):
    """Every outcome carries exactly the seed derived from (seed, name, id)."""
    sweep = Sweep.grid("prop_seeds", arith_task, axes=axes, seed=seed)
    result = run_sweep(sweep, workers=1)
    for outcome in result.outcomes:
        assert outcome.value["seed"] == point_seed(seed, "prop_seeds", outcome.id)


@settings(max_examples=3, deadline=None)
@given(
    axes=grids,
    seed=st.integers(0, 2**16),
    chunk_size=st.integers(1, 4),
    stop_after=st.integers(1, 3),
)
def test_serial_pool_and_resumed_runs_coincide(
    axes, seed, chunk_size, stop_after
):
    """serial ≡ pool ≡ interrupted-then-resumed, for arbitrary grids.

    The crash/resume history is part of the quantifier: we interrupt a
    stored run after ``stop_after`` chunks and resume it, and the result
    must still be byte-identical to both the serial and the pooled run.
    """
    import tempfile

    from repro.exp import SweepInterrupted

    sweep = Sweep.grid("prop_resume", arith_task, axes=axes, seed=seed)
    serial = run_sweep(sweep, workers=1, chunk_size=chunk_size)
    pooled = run_sweep(sweep, workers=2, chunk_size=chunk_size)
    assert pooled.digest() == serial.digest()
    assert pooled.payload() == serial.payload()

    with tempfile.TemporaryDirectory() as store:
        try:
            run_sweep(
                sweep,
                workers=1,
                chunk_size=chunk_size,
                store=store,
                interrupt_after=stop_after,
            )
            interrupted = False  # fewer chunks than stop_after: ran through
        except SweepInterrupted:
            interrupted = True
        resumed = run_sweep(
            sweep,
            workers=1,
            chunk_size=chunk_size,
            store=store,
            resume=interrupted,
        )
        if interrupted:
            assert resumed.resumed_chunks >= stop_after
        assert resumed.digest() == serial.digest()
        assert resumed.payload() == serial.payload()
