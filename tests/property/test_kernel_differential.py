"""Differential testing: calendar-queue kernel vs the frozen heap kernel.

:mod:`repro.sim.refkernel` is a verbatim copy of the pre-calendar-queue
kernel, kept as an executable specification.  These properties run
randomly generated programs — interleavings of timeouts, shared-event
waits, ``succeed``/``cancel``, ``interrupt`` and ``AnyOf``/``AllOf``
loser-reaping — through both kernels and require the *entire observable
behaviour* to match: every dispatch (cycle, process, op, outcome) in
order, the final clock, the next pending cycle, and whether/what the run
raised.  Any divergence is a bug in the calendar queue, because the
reference defines the semantics.

A second property drives the same programs through randomly chosen
``run(until=cycle)`` checkpoints to pin the horizon-clamping clock
semantics across both kernels.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import kernel, refkernel

N_EVENTS = 4

_op = st.one_of(
    st.tuples(st.just("sleep"), st.integers(1, 25)),
    st.tuples(st.just("wait"), st.integers(0, N_EVENTS - 1)),
    st.tuples(st.just("trigger"), st.integers(0, N_EVENTS - 1), st.integers(0, 8)),
    st.tuples(st.just("cancel"), st.integers(0, N_EVENTS - 1)),
    st.tuples(st.just("race"), st.integers(0, N_EVENTS - 1), st.integers(1, 12)),
    st.tuples(st.just("join"), st.integers(1, 6), st.integers(1, 6)),
    st.tuples(st.just("interrupt"), st.integers(0, 7)),
)

_program = st.lists(
    st.lists(_op, min_size=1, max_size=6), min_size=2, max_size=8
)


def _execute(mod, program, checkpoints=()):
    """Run ``program`` on kernel module ``mod``; return its full behaviour.

    Each process interprets its op list; every resumption appends a tuple
    to ``trace``, so two kernels agree iff their dispatch interleavings
    are identical.  Uncaught exceptions (e.g. an :class:`Interrupt`
    delivered to a plain ``sleep``) propagate out of ``run`` exactly like
    production code would see them; they are part of the behaviour.
    """
    sim = mod.Simulator()
    events = [sim.event() for _ in range(N_EVENTS)]
    trace = []
    record = trace.append
    procs = []

    def body(pid, ops):
        for i, op in enumerate(ops):
            kind = op[0]
            if kind == "sleep":
                yield sim.timeout(op[1])
                record((sim.now, pid, i, "woke"))
            elif kind == "wait":
                val = yield events[op[1]]
                record((sim.now, pid, i, "wait", val))
            elif kind == "trigger":
                yield sim.timeout(op[2])
                ev = events[op[1]]
                if not ev.triggered and not ev.cancelled:
                    ev.succeed((pid, i))
                    record((sim.now, pid, i, "trig"))
                else:
                    record((sim.now, pid, i, "trig-skip"))
            elif kind == "cancel":
                ev = events[op[1]]
                try:
                    ev.cancel()
                    record((sim.now, pid, i, "cancel"))
                except mod.SimulationError:
                    record((sim.now, pid, i, "cancel-refused"))
                yield sim.timeout(1)
            elif kind == "race":
                idx, val = yield sim.any_of(
                    [events[op[1]], sim.timeout(op[2], "tick")]
                )
                record((sim.now, pid, i, "race", idx, val))
            elif kind == "join":
                vals = yield sim.all_of(
                    [sim.timeout(op[1], "a"), sim.timeout(op[2], "b")]
                )
                record((sim.now, pid, i, "join", tuple(vals)))
            elif kind == "interrupt":
                target = procs[op[1] % len(procs)]
                try:
                    target.interrupt((pid, i))
                    record((sim.now, pid, i, "sent"))
                except mod.SimulationError:
                    record((sim.now, pid, i, "sent-refused"))
                yield sim.timeout(1)
        record((sim.now, pid, "done"))

    for pid, ops in enumerate(program):
        procs.append(sim.process(body(pid, ops), name=f"p{pid}"))

    outcome = None
    try:
        for horizon in checkpoints:
            sim.run(until=horizon)
            record(("checkpoint", horizon, sim.now))
        sim.run()
        outcome = ("dry", sim.now)
    except mod.Interrupt as err:
        outcome = ("Interrupt", str(err), sim.now)
    except mod.SimulationError as err:
        outcome = ("SimulationError", str(err), sim.now)
    return trace, outcome, sim.now, sim.peek()


@given(_program)
@settings(max_examples=120, deadline=None)
def test_random_interleavings_match_reference_kernel(program):
    got = _execute(kernel, program)
    want = _execute(refkernel, program)
    assert got == want


@given(
    _program,
    st.lists(st.integers(0, 80), min_size=1, max_size=4).map(sorted),
)
@settings(max_examples=80, deadline=None)
def test_checkpointed_runs_match_reference_kernel(program, checkpoints):
    got = _execute(kernel, program, checkpoints)
    want = _execute(refkernel, program, checkpoints)
    assert got == want
    # run(until=cycle) always lands the clock on the horizon, both kernels
    final_trace = got[0]
    for entry in final_trace:
        if entry[0] == "checkpoint":
            assert entry[2] >= 0  # (clock recorded; equality checked above)
