"""Property-based test of the temporal-refinement claim (Eq. 2–5).

For randomised small gateway systems, the cycle-level architecture model
must conform to the calibrated analysis bounds on every observed block:

* block processing time never exceeds τ̂ (Eq. 2),
* round-robin wait never exceeds ε̂ plus the polling quantum (Eq. 3),
* block turnaround never exceeds γ (Eq. 4),
* achieved throughput is at least the η/γ guarantee behind Eq. 5.

This is the randomised counterpart of the fixed sweep in
benchmarks/bench_conformance_margins.py and of the calibration study in
tests/integration/test_bounds_vs_sim.py.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import simulate_system
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    calibrated_system,
    gamma,
    guaranteed_throughput,
)

SLOW = Fraction(1, 10**9)  # requirements far below capacity


@st.composite
def systems(draw):
    n_streams = draw(st.integers(min_value=1, max_value=2))
    n_accels = draw(st.integers(min_value=1, max_value=2))
    eps = draw(st.integers(min_value=1, max_value=10))
    delta = draw(st.integers(min_value=1, max_value=3))
    rhos = [draw(st.integers(min_value=0, max_value=4)) for _ in range(n_accels)]
    R = draw(st.sampled_from([0, 10, 120]))
    etas = [draw(st.integers(min_value=2, max_value=10)) for _ in range(n_streams)]
    return GatewaySystem(
        accelerators=tuple(AcceleratorSpec(f"a{k}", r) for k, r in enumerate(rhos)),
        streams=tuple(
            StreamSpec(f"s{i}", SLOW, R, block_size=e) for i, e in enumerate(etas)
        ),
        entry_copy=eps,
        exit_copy=delta,
    )


@settings(max_examples=20, deadline=None)
@given(system=systems(), blocks=st.integers(min_value=2, max_value=3))
def test_simulated_blocks_conform_to_calibrated_bounds(system, blocks):
    run = simulate_system(system, blocks=blocks)
    report = run.conformance()
    assert report.ok, "\n".join(str(v) for v in report.violations)

    cal = calibrated_system(system)
    for name, m in run.metrics().items():
        g = gamma(cal, name)
        # Eq. 4: every completion-to-completion gap within one rotation
        for turnaround in m.turnarounds:
            assert turnaround <= g
        # Eq. 5: achieved throughput at least the η/γ guarantee
        if m.throughput is not None:
            assert m.throughput >= guaranteed_throughput(cal, name)
        assert m.blocks_done == blocks


@settings(max_examples=10, deadline=None)
@given(system=systems())
def test_metrics_structural_invariants(system):
    """Sample conservation and time-ordering of the derived metrics."""
    run = simulate_system(system, blocks=2)
    for spec, (name, m) in zip(system.streams, run.metrics().items()):
        assert name == spec.name and m.eta == spec.block_size
        assert m.samples_in == m.eta * m.blocks_done
        assert m.samples_out == m.samples_in  # unit-rate kernels
        assert all(t > 0 for t in m.block_times)
        assert all(w >= 0 for w in m.waits)
        # a turnaround covers the next block's wait plus its processing
        for w, t, g in zip(m.waits, m.block_times[1:], m.turnarounds):
            assert g == w + t
        assert m.first_output_at is not None
        assert m.first_output_at <= m.last_output_at
        if m.in_high_water is not None:
            assert m.in_high_water >= m.eta  # a whole block passed through
