"""Property-based tests for the dataflow substrate.

The invariants checked here are the load-bearing ones for the paper's
analysis chain:

* balance equations hold for computed repetition vectors,
* the two independent throughput engines (state-space execution and
  MCM-on-HSDF) agree exactly,
* throughput is monotone in buffer capacity (the property that makes the
  buffer-minimisation scans correct),
* self-timed execution respects enabling (no actor fires early) and the
  implicit self-edge (no overlapping firings),
* the CSDF → SDF collapse is a conservative abstraction (productions never
  get earlier).
"""

from fractions import Fraction
from math import gcd

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    SDFGraph,
    CSDFGraph,
    bound_channel,
    csdf_to_sdf,
    execute,
    firing_repetition_vector,
    mcm_throughput,
    refines_execution,
    repetition_vector,
    steady_state_throughput,
)

rate = st.integers(min_value=1, max_value=4)
duration = st.integers(min_value=1, max_value=6)
capacity_extra = st.integers(min_value=0, max_value=4)


@st.composite
def bounded_chain(draw, max_len=3):
    """A chain of actors with bounded channels (always consistent & live)."""
    n = draw(st.integers(min_value=2, max_value=max_len))
    g = SDFGraph("chain")
    for i in range(n):
        g.add_actor(f"a{i}", draw(duration))
    chans = []
    for i in range(n - 1):
        p, c = draw(rate), draw(rate)
        g.add_edge(f"a{i}", f"a{i+1}", production=p, consumption=c, name=f"e{i}")
        chans.append((f"e{i}", p, c))
    for name, p, c in chans:
        # p + c - gcd(p, c) is the classical deadlock-free minimum capacity
        lower = p + c - gcd(p, c)
        g = bound_channel(g, name, lower + draw(capacity_extra))
    return g


@given(bounded_chain())
@settings(max_examples=40, deadline=None)
def test_balance_equations_hold(g):
    q = repetition_vector(g)
    for e in g.edges.values():
        assert q[e.src] * e.total_production == q[e.dst] * e.total_consumption


@given(bounded_chain())
@settings(max_examples=25, deadline=None)
def test_statespace_equals_mcm(g):
    ref = sorted(g.actors)[0]
    ss = steady_state_throughput(g, actor=ref)
    assert not ss.deadlocked
    assert ss.firing_rate == mcm_throughput(g, ref)


@given(bounded_chain(max_len=2), st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_throughput_monotone_in_extra_capacity(g, extra):
    ref = sorted(g.actors)[0]
    base = steady_state_throughput(g, actor=ref).firing_rate
    # widen every capacity back-edge
    overrides = {
        name: e.tokens + extra for name, e in g.edges.items() if name.startswith("cap:")
    }
    wider = g.with_edge_tokens(overrides)
    assert steady_state_throughput(wider, actor=ref).firing_rate >= base


@given(bounded_chain())
@settings(max_examples=25, deadline=None)
def test_no_overlapping_firings_per_actor(g):
    res = execute(g, iterations=2)
    for actor in g.actors:
        firings = res.firings_of(actor)
        for f1, f2 in zip(firings, firings[1:]):
            assert f2.start >= f1.end


@given(bounded_chain())
@settings(max_examples=25, deadline=None)
def test_firing_counts_scale_with_repetition_vector(g):
    reps = firing_repetition_vector(g)
    res = execute(g, iterations=3)
    for actor in g.actors:
        assert res.completions[actor] >= 3 * reps[actor]


@st.composite
def csdf_pair(draw):
    """A bounded CSDF producer/consumer pair with random phases."""
    phases = draw(st.integers(min_value=1, max_value=3))
    durs = [draw(duration) for _ in range(phases)]
    prods = [draw(st.integers(min_value=0, max_value=3)) for _ in range(phases)]
    if sum(prods) == 0:
        prods[0] = 1
    g = CSDFGraph("cp")
    g.add_actor("p", duration=durs, phases=phases)
    g.add_actor("c", duration=draw(duration))
    g.add_edge("p", "c", production=prods, consumption=1, name="ch")
    cap = max(prods) + draw(capacity_extra) + 1
    return bound_channel(g, "ch", cap)


@given(csdf_pair())
@settings(max_examples=25, deadline=None)
def test_csdf_statespace_equals_mcm(g):
    ss = steady_state_throughput(g, actor="c")
    assert ss.firing_rate == mcm_throughput(g, "c")


@given(csdf_pair())
@settings(max_examples=25, deadline=None)
def test_sdf_collapse_is_conservative(g):
    """CSDF production times refine (are no later than) the SDF abstraction.

    The collapse may change the graph's iteration structure, so compare the
    common prefix of production instants over a fixed horizon.
    """
    sdf = csdf_to_sdf(g)
    horizon = 200
    fine = execute(g, horizon=horizon)
    coarse = execute(sdf, horizon=horizon)
    fine_times = [t for t in fine.production_times("p") if t <= horizon]
    coarse_times = [t for t in coarse.production_times("p") if t <= horizon]
    # token-level comparison: the k-th *token* on the channel appears no
    # later in the CSDF model than in the SDF abstraction
    def token_times(times, graph):
        out = []
        edge = graph.edge("ch")
        prods = list(edge.production)
        for i, t in enumerate(times):
            out.extend([t] * prods[i % len(prods)])
        return out

    ft = token_times(fine_times, g)
    ct = token_times(coarse_times, sdf)
    for a, b in zip(ft, ct):
        assert a <= b + 1e-9


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
def test_faster_actor_refines_slower(da, db):
    def mk(d):
        g = SDFGraph("r")
        g.add_actor("A", d)
        g.add_actor("B", 2)
        g.add_edge("A", "B", name="f")
        g.add_edge("B", "A", tokens=2, name="b")
        return g

    fast = execute(mk(min(da, db)), iterations=3)
    slow = execute(mk(max(da, db)), iterations=3)
    assert refines_execution(fast, slow, ["A", "B"])


@given(bounded_chain())
@settings(max_examples=20, deadline=None)
def test_throughput_rate_is_positive_fraction(g):
    r = steady_state_throughput(g, actor=sorted(g.actors)[0])
    assert isinstance(r.firing_rate, Fraction)
    assert r.firing_rate > 0
