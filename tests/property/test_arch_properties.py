"""Property-based tests of the gateway protocol on the architecture.

Randomised stream mixes (block sizes, kernel configurations, copy costs)
must always preserve the protocol invariants:

* per-stream lossless FIFO order: every stream's output equals running its
  samples through a PRIVATE copy of the accelerator (sharing transparent),
* mutual exclusion: a block is admitted only after the previous block
  fully drained (admissions never overlap completions),
* conservation: samples in = η per admitted block; outputs match the
  chain's decimation ratio exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import CordicKernel, FirDecimatorKernel, design_lowpass, run_kernel
from repro.arch import Get, MPSoC, Put, TaskSpec

etas = st.integers(min_value=1, max_value=6)
freqs = st.floats(min_value=-0.4, max_value=0.4, allow_nan=False)


@st.composite
def scenario(draw):
    n_streams = draw(st.integers(min_value=1, max_value=3))
    blocks = draw(st.integers(min_value=1, max_value=3))
    eps = draw(st.integers(min_value=1, max_value=8))
    etas_ = [draw(etas) for _ in range(n_streams)]
    freqs_ = [draw(freqs) for _ in range(n_streams)]
    reconf = draw(st.integers(min_value=0, max_value=200))
    return n_streams, blocks, eps, etas_, freqs_, reconf


def run_scenario(n_streams, blocks, eps, etas_, freqs_, reconf):
    soc = MPSoC(n_stations=8)
    prod = soc.add_processor("p")
    cons = soc.add_processor("c")
    counts = [etas_[i] * blocks for i in range(n_streams)]
    ins = [prod.fifo_to(2, capacity=c + 4, name=f"in{i}")
           for i, c in enumerate(counts)]
    outs = [soc.software_fifo(4, cons, capacity=c + 4, name=f"out{i}")
            for i, c in enumerate(counts)]
    chain = soc.shared_chain(
        "g", [CordicKernel()],
        [{"name": f"s{i}", "eta": etas_[i], "in_fifo": ins[i],
          "out_fifo": outs[i],
          "states": [CordicKernel("mix", freqs_[i]).get_state()],
          "reconfigure_cycles": reconf} for i in range(n_streams)],
        entry_copy=eps, exit_copy=1,
    )
    inputs = [
        [complex(k + 1, (i + 1) * 0.5) for k in range(counts[i])]
        for i in range(n_streams)
    ]
    got = [[] for _ in range(n_streams)]

    def producer():
        for k in range(max(counts)):
            for i in range(n_streams):
                if k < counts[i]:
                    yield Put(ins[i], inputs[i][k])

    def consumer():
        for k in range(max(counts)):
            for i in range(n_streams):
                if k < counts[i]:
                    got[i].append((yield Get(outs[i])))

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start()
    cons.start()
    soc.run(until=sum(counts) * (eps + 20) + (reconf + 100) * blocks * n_streams * 2
            + 20_000)
    return chain, inputs, got


@given(scenario())
@settings(max_examples=15, deadline=None)
def test_sharing_transparent_for_every_stream(sc):
    n_streams, blocks, eps, etas_, freqs_, reconf = sc
    chain, inputs, got = run_scenario(*sc)
    for i in range(n_streams):
        assert len(got[i]) == len(inputs[i]), f"s{i} lost samples"
        private = run_kernel(CordicKernel("mix", freqs_[i]), np.array(inputs[i]))
        assert np.allclose(got[i], private), f"s{i} corrupted by sharing"


@given(scenario())
@settings(max_examples=15, deadline=None)
def test_mutual_exclusion_of_blocks(sc):
    chain, inputs, got = run_scenario(*sc)
    events = []
    for b in chain.bindings.values():
        for a in b.admissions:
            events.append((a, "admit"))
        for c in b.completions:
            events.append((c, "complete"))
    events.sort()
    depth = 0
    for _t, kind in events:
        depth += 1 if kind == "admit" else -1
        assert 0 <= depth <= 1, "two blocks in the pipeline at once"


@given(scenario())
@settings(max_examples=15, deadline=None)
def test_block_accounting_exact(sc):
    n_streams, blocks, eps, etas_, freqs_, reconf = sc
    chain, inputs, got = run_scenario(*sc)
    for i in range(n_streams):
        b = chain.binding(f"s{i}")
        assert b.blocks_done == blocks
        assert b.samples_in == etas_[i] * blocks
        assert b.samples_out == etas_[i] * blocks  # ratio 1 for the mixer


@given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_decimating_chain_conserves_block_ratio(factor_pow, blocks):
    """With an 2^k:1 decimator in the chain, outputs are exactly η/2^k."""
    factor = 2 ** factor_pow
    eta = factor * 2
    soc = MPSoC(n_stations=8)
    prod = soc.add_processor("p")
    cons = soc.add_processor("c")
    n = eta * blocks
    in_f = prod.fifo_to(2, capacity=n + 4, name="in")
    out_f = soc.software_fifo(4, cons, capacity=n + 4, name="out")
    kernel = FirDecimatorKernel(design_lowpass(5, 0.2), factor)
    chain = soc.shared_chain(
        "g", [kernel],
        [{"name": "s", "eta": eta, "in_fifo": in_f, "out_fifo": out_f,
          "states": [FirDecimatorKernel(design_lowpass(5, 0.2), factor).get_state()],
          "reconfigure_cycles": 10}],
        entry_copy=2, exit_copy=1,
    )
    got = []

    def producer():
        for k in range(n):
            yield Put(in_f, 1.0)

    def consumer():
        for _ in range(n // factor):
            got.append((yield Get(out_f)))

    prod.add_task(TaskSpec("p", producer))
    cons.add_task(TaskSpec("c", consumer))
    prod.start()
    cons.start()
    soc.run(until=n * 40 + 10_000)
    assert len(got) == n // factor
    assert chain.binding("s").samples_out == n // factor
