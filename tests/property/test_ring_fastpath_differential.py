"""Differential property: the fused ring fast path is trace-equivalent.

The congestion-aware fast path (DESIGN.md §7) must be a pure execution
optimisation: for ANY mix of congestion, fault injection, watchdog
interrupts and reconfiguration, a run with fusion enabled and the same run
under ``REPRO_NO_FASTPATH=1`` semantics (``ring.fastpath = False``) must
produce identical observable behaviour — same per-cycle trace records, same
flit/drop accounting, same delivery instants, same admissions/completions,
same final clock.  Within one cycle the two paths may dispatch in different
micro-order, so records are canonicalised per cycle by sorting.
"""

import os
from fractions import Fraction
from unittest import mock

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import CFifo, DualRing
from repro.arch.harness import simulate_system
from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec
from repro.sim import FaultInjector, FaultPlan, FaultSpec, Simulator, Tracer
from repro.sim.faults import CFIFO_PTR_LOSS, RING_DELAY, RING_DROP


def canon(records):
    """Per-cycle canonical form of a trace (within-cycle order is free).

    Data values go through ``repr`` so records stay sortable (and
    comparable) when payloads are complex samples or other unordered types.
    """
    return sorted(
        (r.time, r.source, r.kind,
         tuple(sorted((k, repr(v)) for k, v in r.data.items())))
        for r in records
    )


# ---------------------------------------------------- ring-level differential
ring_fault_specs = st.one_of(
    st.builds(
        FaultSpec,
        kind=st.just(RING_DELAY),
        at=st.integers(0, 30),
        duration=st.integers(1, 30),
        extra=st.integers(1, 5),
        ring=st.sampled_from(["data", "credit"]),
        src=st.none() | st.integers(0, 5),
        dst=st.none() | st.integers(0, 5),
    ),
    st.builds(
        FaultSpec,
        kind=st.just(RING_DROP),
        at=st.integers(0, 30),
        duration=st.integers(1, 30),
        probability=st.none() | st.floats(0.05, 0.95, allow_nan=False),
        count=st.none() | st.integers(1, 3),
        ring=st.sampled_from(["data", "credit"]),
        src=st.none() | st.integers(0, 5),
        dst=st.none() | st.integers(0, 5),
    ),
)


@st.composite
def ring_mixes(draw):
    n = draw(st.integers(3, 6))
    hop = draw(st.integers(1, 2))
    drivers = draw(st.lists(
        st.lists(
            st.tuples(
                st.integers(0, 4),                    # idle cycles first
                st.integers(0, 64),                   # src (mod n)
                st.integers(1, 64),                   # dst offset (mod n-1, +1)
                st.sampled_from([DualRing.DATA, DualRing.CREDIT]),
                st.booleans(),                        # await delivery?
            ),
            min_size=1, max_size=8,
        ),
        min_size=1, max_size=3,
    ))
    specs = tuple(draw(st.lists(ring_fault_specs, max_size=3)))
    seed = draw(st.integers(0, 2 ** 16))
    return n, hop, drivers, specs, seed


def run_ring_mix(n, hop, drivers, specs, seed, fastpath):
    sim = Simulator()
    tracer = Tracer(sim)
    ring = DualRing(sim, n, hop_latency=hop, tracer=tracer)
    ring.fastpath = fastpath
    if specs:
        ring.fault_injector = FaultInjector(
            FaultPlan(specs=specs, seed=seed), sim, tracer=tracer)
    deliveries = []

    def driver(ops, who):
        for i, (idle, s, d, direction, wait) in enumerate(ops):
            if idle:
                yield sim.timeout(idle)
            src = s % n
            dst = (src + 1 + d % (n - 1)) % n
            tag = (who, i)
            _acc, delivered = ring.post(
                src, dst, tag, ring=direction,
                on_delivery=lambda _w, t=tag: deliveries.append((sim.now, t)),
            )
            if wait:
                yield delivered  # hangs harmlessly if the flit is dropped

    for who, ops in enumerate(drivers):
        sim.process(driver(ops, who), name=f"drv{who}")
    sim.run()
    return {
        "trace": canon(tracer.records),
        "sent": dict(ring.flits_sent),
        "dropped": dict(ring.flits_dropped),
        "deliveries": sorted(deliveries),
        "clock": sim.now,
    }


@given(ring_mixes())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ring_fastpath_differential(mix):
    n, hop, drivers, specs, seed = mix
    fast = run_ring_mix(n, hop, drivers, specs, seed, fastpath=True)
    slow = run_ring_mix(n, hop, drivers, specs, seed, fastpath=False)
    assert fast == slow


# -------------------------------------------------- C-FIFO-level differential
@st.composite
def cfifo_mixes(draw):
    n_fifos = draw(st.integers(1, 2))
    fifos = []
    for _ in range(n_fifos):
        fifos.append((
            draw(st.integers(0, 3)),      # producer station (mod n below)
            draw(st.integers(1, 3)),      # consumer offset
            draw(st.integers(1, 4)),      # capacity
            draw(st.integers(3, 10)),     # words
            draw(st.integers(0, 2)),      # producer pacing
            draw(st.integers(0, 3)),      # consumer pacing
        ))
    ptr_loss = draw(st.booleans())
    specs = tuple(draw(st.lists(ring_fault_specs, max_size=2)))
    if ptr_loss:
        specs = specs + (FaultSpec(
            kind=CFIFO_PTR_LOSS, at=draw(st.integers(0, 20)),
            duration=draw(st.integers(1, 10)), count=1,
            side=draw(st.sampled_from(["write", "read"])),
        ),)
    seed = draw(st.integers(0, 2 ** 16))
    return fifos, specs, seed


def run_cfifo_mix(fifos, specs, seed, fastpath):
    sim = Simulator()
    tracer = Tracer(sim)
    ring = DualRing(sim, 4, tracer=tracer)
    ring.fastpath = fastpath
    injector = None
    if specs:
        injector = FaultInjector(FaultPlan(specs=specs, seed=seed), sim,
                                 tracer=tracer)
        ring.fault_injector = injector
    results = []
    for k, (p, doff, cap, words, ppace, cpace) in enumerate(fifos):
        prod, cons = p % 4, (p + doff) % 4
        if prod == cons:
            cons = (cons + 1) % 4
        fifo = CFifo(sim, ring, prod, cons, capacity=cap,
                     name=f"f{k}", tracer=tracer)
        if injector is not None:
            fifo.fault_injector = injector
        got = []
        results.append((fifo, got))

        def producer(fifo=fifo, words=words, pace=ppace):
            for w in range(words):
                yield from fifo.put(w)
                if pace:
                    yield sim.timeout(pace)

        def consumer(fifo=fifo, words=words, pace=cpace, got=got):
            for _ in range(words):
                got.append((yield from fifo.get()))
                if pace:
                    yield sim.timeout(pace)

        sim.process(producer(), name=f"p{k}")
        sim.process(consumer(), name=f"c{k}")
    # a fault window can strand a consumer waiting on a lost pointer
    # update: bound the run instead of draining (identically in both modes)
    sim.run(until=5_000)
    return {
        "trace": canon(tracer.records),
        "sent": dict(ring.flits_sent),
        "dropped": dict(ring.flits_dropped),
        "fifos": [(f.level_debug(), got) for f, got in results],
        "clock": sim.now,
    }


@given(cfifo_mixes())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cfifo_fastpath_differential(mix):
    fifos, specs, seed = mix
    fast = run_cfifo_mix(fifos, specs, seed, fastpath=True)
    slow = run_cfifo_mix(fifos, specs, seed, fastpath=False)
    assert fast == slow


# -------------------------------------------------- system-level differential
@st.composite
def system_mixes(draw):
    n_streams = draw(st.integers(1, 2))
    streams = tuple(
        StreamSpec(
            f"s{i}",
            Fraction(1, draw(st.integers(50_000, 200_000))),
            draw(st.integers(10, 60)),
            block_size=draw(st.integers(2, 6)),
        )
        for i in range(n_streams)
    )
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=streams,
        entry_copy=draw(st.integers(1, 8)),
        exit_copy=1,
    )
    blocks = draw(st.integers(1, 2))
    specs = tuple(draw(st.lists(st.one_of(
        st.builds(
            FaultSpec,
            kind=st.just(RING_DELAY),
            at=st.integers(0, 200),
            duration=st.integers(1, 100),
            extra=st.integers(1, 4),
            count=st.integers(1, 3),
        ),
        st.builds(
            FaultSpec,
            kind=st.just(RING_DROP),
            at=st.integers(0, 200),
            duration=st.integers(1, 50),
            count=st.integers(1, 2),
        ),
        st.builds(
            FaultSpec,
            kind=st.just(CFIFO_PTR_LOSS),
            at=st.integers(0, 200),
            duration=st.integers(1, 50),
            count=st.integers(1, 2),
            side=st.sampled_from(["write", "read"]),
        ),
    ), max_size=2)))
    seed = draw(st.integers(0, 2 ** 16))
    return system, blocks, specs, seed


def run_system_mix(system, blocks, specs, seed, fastpath):
    plan = FaultPlan(specs=specs, seed=seed) if specs else None
    # both legs must be env-independent: the differential is fast-vs-slow
    # even when the surrounding test run exports REPRO_NO_FASTPATH=1
    with mock.patch.dict(os.environ):
        os.environ.pop("REPRO_NO_FASTPATH", None)
        run = simulate_system(system, blocks=blocks, faults=plan,
                              no_fastpath=not fastpath)
    chain = run.chain
    return {
        "bindings": {
            b.name: (list(b.admissions), list(b.completions),
                     b.samples_in, b.samples_out, b.blocks_done)
            for b in chain.bindings.values()
        },
        "horizon": run.horizon,
        "trace": canon(run.soc.tracer.records) if run.soc.tracer.enabled else None,
        "fastpath_enabled": run.soc.ring.fastpath,
    }


@given(system_mixes())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_system_fastpath_differential(mix):
    """Full gateway runs (watchdog interrupts and all) are trace-equivalent."""
    system, blocks, specs, seed = mix
    fast = run_system_mix(system, blocks, specs, seed, fastpath=True)
    slow = run_system_mix(system, blocks, specs, seed, fastpath=False)
    assert fast["fastpath_enabled"] and not slow["fastpath_enabled"]
    fast.pop("fastpath_enabled")
    slow.pop("fastpath_enabled")
    assert fast == slow
