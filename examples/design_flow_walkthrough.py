#!/usr/bin/env python
"""The complete design methodology, end to end, on a config file.

Loads a gateway-system description from JSON, runs the paper's full flow
(feasibility → Algorithm 1 → buffer sizing → verification → utilization),
then explores two design alternatives the analysis makes cheap to compare:

* the §V-F buffer-optimal block sizes (non-monotone buffers mean the
  Ση-minimum is not always the memory minimum),
* the future-work fast context switch (shadow contexts): what the same
  system looks like when R_s drops from 4100 to 4 cycles.

Run:  python examples/design_flow_walkthrough.py
"""

from pathlib import Path

from repro.core import (
    StreamSpec,
    gamma,
    load_system,
    run_design_flow,
    sample_latency_bound,
)


def main() -> None:
    # small_radios.json keeps η in the tens so the exact buffer search and
    # the §V-F branch-and-bound finish in seconds; analyse the full-rate
    # two_radios.json with `python -m repro analyze` (buffers skipped there)
    config = Path(__file__).parent / "configs" / "small_radios.json"
    system = load_system(config.read_text())
    print(f"loaded {config.name}: {len(system.streams)} streams over "
          f"{len(system.accelerators)} accelerator(s)\n")

    # -- the paper's flow, one call ----------------------------------------
    report = run_design_flow(system, buffer_bnb_radius=3)
    print(report.summary())

    # -- alternative 1: buffer-optimal block sizes -------------------------
    if report.buffer_optimal and report.buffer_optimal != report.block_sizes:
        print("\nthe buffer-optimal block sizes differ from the Ση-minimum —")
        print("Section V-E's non-monotonicity at work.")
    else:
        print("\n(here the Ση-minimum is also buffer-minimal within ±3)")

    # -- alternative 2: shadow contexts (R: 4100 -> 4) ----------------------
    fast_streams = tuple(
        StreamSpec(s.name, s.throughput, 4) for s in system.streams
    )
    fast = type(system)(
        accelerators=system.accelerators,
        streams=fast_streams,
        entry_copy=system.entry_copy,
        exit_copy=system.exit_copy,
    )
    fast_report = run_design_flow(fast)
    print("\nwith shadow contexts (R_s = 4 cycles):")
    for name in report.block_sizes:
        eta_sw = report.block_sizes[name]
        eta_sh = fast_report.block_sizes[name]
        print(f"  {name:<10} η {eta_sw} -> {eta_sh}")
    g_sw = gamma(report.system, system.streams[0].name)
    g_sh = gamma(fast_report.system, system.streams[0].name)
    l_sw = float(sample_latency_bound(report.system, system.streams[0].name))
    l_sh = float(sample_latency_bound(fast_report.system, system.streams[0].name))
    print(f"  worst-case turnaround γ̂: {g_sw} -> {g_sh} cycles "
          f"({g_sw / g_sh:.1f}x better)")
    print(f"  sample latency bound L̂ : {l_sw:.0f} -> {l_sh:.0f} cycles")
    print(f"  total buffers           : {report.total_buffer} -> "
          f"{fast_report.total_buffer} tokens")


if __name__ == "__main__":
    main()
