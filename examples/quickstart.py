#!/usr/bin/env python
"""Quickstart: share one accelerator between two real-time streams.

Walks the paper's full design flow in a few lines:

1. describe the shared chain (accelerators, streams, gateway costs),
2. compute minimum block sizes with the Algorithm-1 ILP,
3. verify the assignment end-to-end (Eq. 5, SDF model, CSDF model τ ≤ τ̂,
   CSDF ⊑ SDF refinement),
4. print the Fig. 6-style admissible schedule of one block.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    analyze_utilization,
    build_stream_csdf,
    compute_block_sizes,
    gamma,
    tau_hat,
    verify_system,
)
from repro.dataflow import admissible_schedule


def main() -> None:
    # -- 1. the system: two radio streams share one CORDIC ----------------
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", rho=1),),
        streams=(
            # throughputs in samples per clock cycle: e.g. 2 MS/s and
            # 0.5 MS/s on a 100 MHz clock
            StreamSpec("radio_a", Fraction(2_000_000, 100_000_000), reconfigure=4100),
            StreamSpec("radio_b", Fraction(500_000, 100_000_000), reconfigure=4100),
        ),
        entry_copy=15,  # ε: entry-gateway cycles/sample (the prototype's 15)
        exit_copy=1,    # δ
    )

    # -- 2. Algorithm 1: minimum block sizes ------------------------------
    result = compute_block_sizes(system)
    print("block sizes (Algorithm 1):")
    for name, eta in result.block_sizes.items():
        print(f"  η[{name}] = {eta}")
    print(f"  aggregate load c0·Σμ = {float(result.load):.3f} (must be < 1)\n")

    assigned = system.with_block_sizes(result.block_sizes)

    # -- 3. the closed-form bounds (Eqs. 2 and 4) -------------------------
    for s in assigned.streams:
        print(
            f"  {s.name}: τ̂ = {tau_hat(assigned, s.name)} cycles, "
            f"γ̂ = {gamma(assigned, s.name)} cycles"
        )
    print()

    # -- 4. full verification ----------------------------------------------
    report = verify_system(assigned)
    print(report.summary())
    print()

    # -- 5. utilization (Section VI-A style) -------------------------------
    util = analyze_utilization(assigned)
    print(
        f"round length {util.round_length} cycles; gateway copying "
        f"{float(util.gateway_copy_fraction):.1%}, reconfiguration "
        f"{float(util.reconfig_fraction):.1%}"
    )
    print()

    # -- 6. Fig. 6: the admissible schedule of one block --------------------
    # (a small-R instance so the per-sample pipeline is visible in ASCII)
    small = GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", rho=2),),
        streams=(
            StreamSpec("radio_a", Fraction(1, 100), reconfigure=20),
            StreamSpec("radio_b", Fraction(1, 400), reconfigure=20),
        ),
        entry_copy=5,
        exit_copy=1,
    ).with_block_sizes({"radio_a": 6, "radio_b": 3})
    graph, info = build_stream_csdf(
        small, "radio_a", producer_period=1, consumer_period=1,
        alpha0=12, alpha3=12, prequeued=12,
    )
    schedule = admissible_schedule(graph, iterations=1)
    print("one-block schedule (η=6, compressed time axis):")
    print(schedule.render(scale=max(1, int(schedule.makespan // 64))))


if __name__ == "__main__":
    main()
