#!/usr/bin/env python
"""Table I / Fig. 11: hardware cost of sharing vs duplicating accelerators.

Reproduces the paper's Virtex-6 numbers exactly from the component database
(4×(FIR+DS) + 4×CORDIC against gateways + one of each: 63.5% slice / 66.3%
LUT savings, 75% fewer accelerator instances) and then sweeps the break-even
point: with how many streams does a gateway pair pay for itself for
accelerators of different sizes?

Run:  python examples/hardware_cost_report.py
"""

from repro.hwcost import COMPONENTS, ComponentCost, compare_sharing, paper_table1


def main() -> None:
    print("=== Fig. 11: per-component costs (Virtex-6) ===")
    print(f"{'component':<22} {'slices':>7} {'LUTs':>7}  source")
    for c in COMPONENTS.values():
        print(f"{c.name:<22} {c.slices:>7} {c.luts:>7}  {c.source}")

    print("\n=== Table I: the demonstrator ===")
    cmp = paper_table1()
    print(cmp.table())
    print(f"accelerator instances reduced by {cmp.accelerator_reduction_pct:.0f}% "
          "(4+4 → 1+1)")

    print("\n=== break-even: when does sharing pay? ===")
    print("streams sharing one accelerator vs one instance per stream")
    print(f"{'accelerator':<18} {'cost(slices)':>12} {'break-even streams':>20}")
    for comp_name in ("cordic", "fir_downsampler"):
        cost = COMPONENTS[comp_name].slices
        breakeven = None
        for n in range(2, 12):
            c = compare_sharing({comp_name: n})
            if c.slice_savings > 0:
                breakeven = n
                break
        print(f"{comp_name:<18} {cost:>12} {str(breakeven):>20}")

    # a hypothetical small accelerator never pays for a gateway pair
    tiny = ComponentCost("tiny_alu", 150, 200, "hypothetical")
    shared = 150 + COMPONENTS["entry_exit_pair"].slices
    print(f"{'tiny_alu (150 sl.)':<18} {150:>12} "
          f"{'> %d streams' % (shared // 150):>20}")

    print("\nsharing pays exactly when the duplicated area exceeds the "
          "gateway pair;\nfor the paper's 8.2k-slice accelerator set it pays "
          "from 2 streams on.")


if __name__ == "__main__":
    main()
