#!/usr/bin/env python
"""A tour of the scenario registry (the canonical front door).

Walks every registered entry, then runs three of them end to end:

* ``product_cipher`` — the second real chain (key-mix → S-box → permute),
* ``multi_mode`` — an adaptive family whose churn schedule joins and
  leaves per-mode streams through online reconfiguration,
* ``generated`` — the seeded workload generator, sampled over a handful
  of seeds; every output must finish with zero unattributed Eq. 2–5
  violations (the generator's contract, enforced at corpus scale by
  ``repro sweep scenario://generated?seed=0 --points N``).

Run:  python examples/scenario_tour.py
"""

from repro.api import Scenario, load_scenario
from repro.app import scenarios


def main() -> None:
    print("registered scenarios")
    print("--------------------")
    for name in scenarios.names():
        entry = scenarios.get(name)
        print(f"  {name:<15} {entry.description}")
    print()

    # a real chain by name, parameters validated against the schema
    result = Scenario.from_registry("product_cipher", sessions=2).with_blocks(2).build()
    att = result.attributed_conformance()
    print(f"product_cipher: {len(result.system.streams)} sessions over "
          f"{len(result.system.accelerators)} tiles, "
          f"{result.horizon} cycles, "
          f"{'clean' if att.fully_attributed else 'VIOLATIONS'}")

    # the adaptive family: churn drives mode transitions
    result = Scenario.from_registry("multi_mode?modes=2&period=1500").build()
    rm = result.reconfig
    att = result.attributed_conformance()
    accepted = sum(1 for t in rm.transitions if t.accepted)
    print(f"multi_mode:     {len(rm.transitions)} transitions "
          f"({accepted} accepted), "
          f"{len(att.attributions)} violation(s) all attributed: "
          f"{att.fully_attributed}")

    # the generator: same URI spelling load_scenario and the CLI accept
    print("generated corpus sample:")
    for seed in range(5):
        result = load_scenario(f"scenario://generated?seed={seed}").build()
        att = result.attributed_conformance()
        churn = result.reconfig
        print(f"  seed {seed}: {len(result.system.streams)} stream(s), "
              f"{len(result.system.accelerators)} tile(s), "
              f"{'churn' if churn else 'static'}, "
              f"unattributed={len(att.unattributed)}")
        assert att.fully_attributed, f"seed {seed} broke the generator contract"
    print("all sampled seeds conformance-clean")


if __name__ == "__main__":
    main()
