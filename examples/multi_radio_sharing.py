#!/usr/bin/env python
"""Sharing accelerators BETWEEN independent radios (the intro's motivation).

The paper motivates gateways not only for sharing within one application but
for "data streams from different radios that are executed simultaneously on
the multiprocessor system".  This example runs two unrelated software-defined
radios — an FM receiver and a plain AM envelope path — whose streams are
multiplexed over ONE shared CORDIC tile:

* Algorithm 1 sizes the blocks from each radio's own rate requirement,
* the MPSoC simulation runs both radios concurrently and checks that each
  decodes its own signal correctly (contexts never leak between streams),
* the measured turnaround of every block is checked against γ̂ (Eq. 4).

Run:  python examples/multi_radio_sharing.py
"""

from fractions import Fraction

import numpy as np

from repro.accel import CordicKernel, run_kernel
from repro.arch import Get, MPSoC, Put, TaskSpec
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    compute_block_sizes,
    gamma,
)


def main() -> None:
    # -- two radios with different rate requirements -----------------------
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", rho=1),),
        streams=(
            StreamSpec("fm_radio", Fraction(1, 40), reconfigure=200),
            StreamSpec("am_radio", Fraction(1, 160), reconfigure=200),
        ),
        entry_copy=8,
        exit_copy=1,
    )
    sizes = compute_block_sizes(system).block_sizes
    assigned = system.with_block_sizes(sizes)
    print(f"block sizes: {sizes}")
    print(f"worst-case turnaround γ̂ = {gamma(assigned, 'fm_radio')} cycles\n")

    # -- input signals ---------------------------------------------------
    n = 4 * max(sizes.values())
    t = np.arange(n)
    fm_tone = 0.6 * np.sin(2 * np.pi * 0.011 * t)          # FM modulating tone
    fm_signal = np.exp(1j * 2 * np.pi * np.cumsum(0.08 * fm_tone))
    am_signal = np.exp(2j * np.pi * 0.125 * t) * (1.0 + 0.5 * np.sin(2 * np.pi * 0.003 * t))

    # -- the MPSoC ----------------------------------------------------------
    soc = MPSoC(n_stations=8)
    prod = soc.add_processor("radios")
    cons = soc.add_processor("demods")
    in_fm = prod.fifo_to(2, capacity=n + 8, name="fm.in")
    in_am = prod.fifo_to(2, capacity=n + 8, name="am.in")
    out_fm = soc.software_fifo(4, cons, capacity=n + 8, name="fm.out")
    out_am = soc.software_fifo(4, cons, capacity=n + 8, name="am.out")

    chain = soc.shared_chain(
        "radio", [CordicKernel()],
        [
            {"name": "fm_radio", "eta": sizes["fm_radio"], "in_fifo": in_fm,
             "out_fifo": out_fm, "states": [CordicKernel("fm").get_state()],
             "reconfigure_cycles": 200},
            {"name": "am_radio", "eta": sizes["am_radio"], "in_fifo": in_am,
             "out_fifo": out_am,
             "states": [CordicKernel("mix", 0.125).get_state()],
             "reconfigure_cycles": 200},
        ],
        entry_copy=8, exit_copy=1,
    )

    fm_out, am_out = [], []

    def feeder():
        for a, b in zip(fm_signal, am_signal):
            yield Put(in_fm, complex(a))
            yield Put(in_am, complex(b))

    def sink():
        for _ in range(n):
            fm_out.append((yield Get(out_fm)))
            am_out.append((yield Get(out_am)))

    prod.add_task(TaskSpec("feeder", feeder))
    cons.add_task(TaskSpec("sink", sink))
    prod.start()
    cons.start()
    soc.run(until=n * 40 * 4 + 100_000)

    # -- results ------------------------------------------------------------
    print("per-stream blocks processed:")
    worst = 0
    for name, b in chain.bindings.items():
        turnarounds = [c - a for a, c in zip(b.admissions, b.completions)]
        worst = max(worst, *turnarounds)
        print(f"  {name:<9} blocks={b.blocks_done}  max block time="
              f"{max(turnarounds)} cycles")
    bound = gamma(assigned, "fm_radio")
    print(f"  worst measured block time {worst} ≤ γ̂ = {bound}: "
          f"{'OK' if worst <= bound else 'VIOLATED'}\n")

    # FM radio must see the demodulated tone, AM radio its mixed-down carrier
    fm_ref = run_kernel(CordicKernel("fm"), fm_signal)
    am_ref = run_kernel(CordicKernel("mix", 0.125), am_signal)
    fm_err = float(np.max(np.abs(np.asarray(fm_out) - fm_ref[: len(fm_out)])))
    am_err = float(np.max(np.abs(np.asarray(am_out) - am_ref[: len(am_out)])))
    print(f"FM stream matches its private-accelerator reference: err={fm_err:.2e}")
    print(f"AM stream matches its private-accelerator reference: err={am_err:.2e}")
    print("\ncontexts are fully isolated: two radios, one CORDIC, zero leakage.")


if __name__ == "__main__":
    main()
