#!/usr/bin/env python
"""The paper's demonstrator: real-time PAL stereo audio decoding with one
shared CORDIC and one shared FIR+down-sampler (Fig. 10, Section VI).

The script:

1. computes the demonstrator's block sizes with Algorithm 1 (the paper's
   10136/1267 pair at full scale; scaled values are used for the simulated
   run),
2. synthesises a PAL-like baseband carrying two test tones (L = 440 Hz,
   R = 1 kHz),
3. decodes it on the cycle-level MPSoC — four streams multiplexed over the
   two shared accelerator tiles by an entry/exit-gateway pair,
4. reports audio quality, per-stream block statistics and gateway
   utilization, and cross-checks against the functional (no-architecture)
   reference decode.

Run:  python examples/pal_stereo_decoder.py
"""

import numpy as np

from repro.accel import (
    PalChannelPlan,
    correlation,
    make_test_tones,
    synthesize_pal_baseband,
    tone_frequency,
)
from repro.app import (
    PAPER_BLOCK_SIZES,
    PalDecoderConfig,
    decode_functional,
    pal_block_sizes,
    pal_gateway_system,
    run_pal_on_soc,
)
from repro.core import analyze_utilization, gamma


def main() -> None:
    # -- 1. Algorithm 1 at the paper's full scale ---------------------------
    sizes = pal_block_sizes()
    print("Algorithm-1 block sizes for the 44.1 kHz demonstrator @100 MHz:")
    print(f"  stage-1 streams: η = {sizes['ch1.s1']}   (paper: "
          f"{PAPER_BLOCK_SIZES['stage1']})")
    print(f"  stage-2 streams: η = {sizes['ch1.s2']}   (paper: "
          f"{PAPER_BLOCK_SIZES['stage2']})")
    system = pal_gateway_system().with_block_sizes(sizes)
    util = analyze_utilization(system)
    print(f"  round-robin rotation: γ = {gamma(system, 'ch1.s2')} cycles")
    print(f"  gateway per-sample copying: {float(util.gateway_copy_fraction):.1%}"
          f" | reconfiguration: {float(util.reconfig_fraction):.1%}")
    print(f"  data movement vs state management (paper's 5%/95%): "
          f"{float(util.data_processing_fraction):.1%} / "
          f"{float(util.state_management_fraction):.1%}\n")

    # -- 2. scaled simulated run --------------------------------------------
    plan = PalChannelPlan()  # 512 kS/s front-end, 8 kS/s audio (64:1 as in Fig. 10)
    config = PalDecoderConfig(plan=plan, eta_stage1=64, eta_stage2=8,
                              reconfigure_cycles=100)
    n_audio = 48
    left, right = make_test_tones(n_audio, audio_rate=plan.audio_rate,
                                  f_left=440, f_right=1000)
    print(f"decoding {n_audio} audio samples "
          f"({n_audio * plan.oversample} baseband samples) on the MPSoC ...")
    l_rec, r_rec, handles = run_pal_on_soc(config, left, right)
    print(f"  simulated {handles.soc.sim.now} cycles\n")

    # -- 3. stream statistics -------------------------------------------------
    print("per-stream gateway statistics:")
    for name, b in handles.chain.bindings.items():
        print(f"  {name:<8} η={b.eta:>3}  blocks={b.blocks_done:>3}  "
              f"samples in/out = {b.samples_in}/{b.samples_out}")
    entry = handles.chain.entry
    total = handles.soc.sim.now
    print(f"  entry-gateway: copy {entry.copy_cycles} cy "
          f"({entry.copy_cycles / total:.1%}), reconfig "
          f"{entry.reconfig_cycles} cy ({entry.reconfig_cycles / total:.1%})\n")

    # -- 4. audio quality ------------------------------------------------------
    skip = 8  # FIR/FM warm-up transient
    fl = tone_frequency(l_rec[skip:], plan.audio_rate)
    fr = tone_frequency(r_rec[skip:], plan.audio_rate)
    cl = correlation(l_rec[skip:], left[skip:skip + len(l_rec) - skip])
    cr = correlation(r_rec[skip:], right[skip:skip + len(r_rec) - skip])
    print(f"recovered left : {fl:6.0f} Hz (sent 440 Hz), corr {cl:.3f}")
    print(f"recovered right: {fr:6.0f} Hz (sent 1000 Hz), corr {cr:.3f}")

    # -- 5. cross-check against the functional reference -----------------------
    baseband = synthesize_pal_baseband(left, right, plan)
    l_ref, r_ref = decode_functional(baseband, config)
    l_ref -= np.mean(l_ref)
    err = float(np.max(np.abs(l_rec - l_ref[: len(l_rec)])))
    print(f"\nmax |architecture − functional reference| = {err:.2e} "
          f"(sharing is transparent)")


if __name__ == "__main__":
    main()
