#!/usr/bin/env python
"""Fig. 8: minimum buffer capacities are NON-monotone in the block size.

Section V-E's counter-intuitive observation — "using the smallest possible
block size does not result in the smallest possible buffer capacities in
general" — reproduced with the exact two-actor SDF model of Fig. 8a:
``vA`` produces ``η_s`` tokens per firing into a buffer of capacity ``α_s``
drained by ``vB`` consuming 5 per firing.

The script prints the paper's Fig. 8b table (exactly: 5, 6, 7, 8, 5 for
η = 1..5), the same sweep under a throughput objective, and a wider sweep
showing the sawtooth structure (dips whenever η divides 5's multiples).

Run:  python examples/buffer_nonmonotonicity.py
"""

from repro.dataflow import (
    SDFGraph,
    min_capacity_for_liveness,
    min_capacity_single,
)


def fig8_graph(eta: int, consume: int = 5) -> SDFGraph:
    """The Fig. 8a model: vA --(η_s : 5)--> vB with buffer α_s."""
    g = SDFGraph(f"fig8[eta={eta}]")
    g.add_actor("vA", 1)
    g.add_actor("vB", 5)
    g.add_edge("vA", "vB", production=eta, consumption=consume, name="ch")
    return g


def main() -> None:
    print("Fig. 8b — minimum buffer capacity α_s vs block size η_s")
    print("(paper's table: η 1..5 → α 5, 6, 7, 8, 5)\n")
    print("  η_s   min α_s (deadlock-free)   min α_s (max throughput)")
    for eta in range(1, 6):
        g = fig8_graph(eta)
        live = min_capacity_for_liveness(g, "ch")
        tput = min_capacity_single(g, "ch", target=None, actor="vB").capacities["ch"]
        print(f"  {eta:>3}   {live:>10}                {tput:>10}")

    print("\nnon-monotonicity in both columns: α(1) < α(2) but α(5) < α(4).")

    print("\nwider sweep (η = 1..15), deadlock-free minimum:")
    values = []
    for eta in range(1, 16):
        values.append(min_capacity_for_liveness(fig8_graph(eta), "ch"))
    for eta, alpha in enumerate(values, start=1):
        bar = "#" * alpha
        print(f"  η={eta:>2}  α={alpha:>2}  {bar}")
    drops = [(e, a, b) for e, (a, b) in enumerate(zip(values, values[1:]), start=1)
             if b < a]
    print(f"\n{len(drops)} points where a LARGER block needs a SMALLER buffer: "
          f"{[(e + 1) for e, _a, _b in drops]}")


if __name__ == "__main__":
    main()
