"""Extension bench: fast context switching (the paper's future work).

Section VI-A closes with "we are working on techniques to improve the
speed at which state can be saved and restored".  This bench quantifies
what that buys, using the analysis stack end-to-end: dropping R_s from the
prototype's 4100 cycles to a 4-cycle shadow-bank swap shrinks the
Algorithm-1 block sizes, the round length, the worst-case latency γ̂ and
the buffer footprint — and the architecture simulation confirms the
functional equivalence and the reduced switch cost.
"""

from fractions import Fraction

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    compute_block_sizes,
    gamma,
)

from conftest import banner


def pal_like(R):
    clock = 100_000_000
    mu1 = Fraction(64 * 44_100, clock)
    mu2 = Fraction(8 * 44_100, clock)
    return GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", 1), AcceleratorSpec("fir", 1)),
        streams=tuple(
            StreamSpec(n, m, R)
            for n, m in (("ch1.s1", mu1), ("ch2.s1", mu1),
                         ("ch1.s2", mu2), ("ch2.s2", mu2))
        ),
        entry_copy=15,
        exit_copy=1,
    )


def solve_for(R):
    system = pal_like(R)
    sizes = compute_block_sizes(system).block_sizes
    assigned = system.with_block_sizes(sizes)
    return sizes, gamma(assigned, "ch1.s1")


def test_shadow_contexts_shrink_blocks_and_latency(benchmark):
    def sweep():
        return {R: solve_for(R) for R in (4100, 1024, 256, 64, 4)}

    rows = benchmark(sweep)
    banner("future work: block sizes & γ̂ vs reconfiguration cost R")
    print(f"{'R':>6} {'η stage-1':>10} {'η stage-2':>10} {'γ̂ (cycles)':>12}")
    prev_eta, prev_gamma = None, None
    for R, (sizes, g) in rows.items():
        print(f"{R:>6} {sizes['ch1.s1']:>10} {sizes['ch1.s2']:>10} {g:>12}")
        if prev_eta is not None:
            assert sizes["ch1.s1"] <= prev_eta
            assert g <= prev_gamma
        prev_eta, prev_gamma = sizes["ch1.s1"], g
    # shadow switching (R=4) cuts the worst-case latency by >10x
    assert rows[4][1] * 10 < rows[4100][1]


def test_shadow_mode_on_architecture(benchmark):
    """The simulated gateway with shadow contexts: same data, tiny switches."""
    from repro.accel import MixerKernel
    from repro.arch import Get, MPSoC, Put, TaskSpec

    def run(mode):
        soc = MPSoC(n_stations=8)
        prod = soc.add_processor("p")
        cons = soc.add_processor("c")
        ins = [prod.fifo_to(2, capacity=64, name=f"in{i}") for i in range(2)]
        outs = [soc.software_fifo(4, cons, capacity=64, name=f"out{i}")
                for i in range(2)]
        chain = soc.shared_chain(
            "g", [MixerKernel(0.0)],
            [{"name": f"s{i}", "eta": 4, "in_fifo": ins[i], "out_fifo": outs[i],
              "states": [MixerKernel(0.0).get_state()],
              "reconfigure_cycles": 4100} for i in range(2)],
            entry_copy=15, exit_copy=1, context_mode=mode,
        )
        n = 16

        def producer():
            for _ in range(n):
                yield Put(ins[0], 1.0)
                yield Put(ins[1], 1.0)

        def consumer():
            for _ in range(n):
                yield Get(outs[0])
                yield Get(outs[1])

        prod.add_task(TaskSpec("p", producer))
        cons.add_task(TaskSpec("c", consumer))
        prod.start()
        cons.start()
        soc.run(until=200_000)
        return chain, soc.sim.now

    def both():
        return run("software"), run("shadow")

    (sw, _t1), (sh, _t2) = benchmark(both)
    banner("shadow vs software context switching on the MPSoC")
    print(f"software: reconfig {sw.entry.reconfig_cycles} cycles over "
          f"{sw.entry.blocks_admitted} blocks")
    print(f"shadow  : reconfig {sh.entry.reconfig_cycles} cycles over "
          f"{sh.entry.blocks_admitted} blocks")
    assert sw.entry.blocks_admitted == sh.entry.blocks_admitted
    assert sh.entry.reconfig_cycles * 100 < sw.entry.reconfig_cycles
