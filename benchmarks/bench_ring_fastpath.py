"""RING: macro benchmark of the fused data-path fast path (DESIGN.md §7).

Drives self-timed C-FIFO traffic over an 8-station ring — every word costs
three flits (data, write-pointer, read-pointer) and the read pointer walks
the 7-hop wrap route back to the producer — with the compiled fast path on
and off (``REPRO_NO_FASTPATH=1`` semantics), and asserts

* the observable traces are **identical** (per-cycle canonical form) on a
  traced slice of the workload, and the flit/word accounting and final
  clock match on the full run,
* the fusion rate stays high (the C-FIFO's own round-trip timing keeps
  every route free at injection, so eligibility regressions show up here),
* flits/sec improves by at least :data:`MACRO_MIN_SPEEDUP` (full mode).

Full mode pushes ``>= 10**7`` flits and persists the comparison as
``BENCH_ring_fastpath.json`` next to this file.  Setting
``RING_BENCH_SMOKE=1`` (CI) shrinks the flit count and only
sanity-checks the speedup, keeping the identity and take-rate assertions
strict.
"""

import os
import time

from repro.arch import CFifo, DualRing
from repro.core.config_io import dump_report, make_report
from repro.sim import Simulator, Tracer

from conftest import banner

#: CI smoke mode: small flit count, no artifact, lenient speedup gate
SMOKE = os.environ.get("RING_BENCH_SMOKE") == "1"

STATIONS = 8
#: flits per word: data + wptr (1 hop each) + rptr (7-hop wrap route)
FLITS_PER_WORD = 3
MACRO_WORDS = 10_000 if SMOKE else 3_400_000  # >= 10**7 flits in full mode
MACRO_MIN_SPEEDUP = 1.2 if SMOKE else 2.0
#: timing runs per leg; the min damps scheduler/GC noise in the ratio
BEST_OF = 1 if SMOKE else 3
#: traced slice for the bit-identity check (tracing itself is the cost)
TRACE_WORDS = 2_000

HERE = os.path.dirname(os.path.abspath(__file__))
ARTIFACT = os.path.join(HERE, "BENCH_ring_fastpath.json")


def stream_words(words, fastpath, trace=False):
    """One producer/consumer pair over a capacity-1 C-FIFO, ``words`` words.

    Capacity 1 makes the FIFO self-timed: each word's data, wptr and rptr
    flits drain before the next word's space returns, so every route is
    free at injection and the fast path should take (almost) every flit.
    Returns (elapsed_s, flits, observables).
    """
    sim = Simulator()
    tracer = Tracer(sim) if trace else None
    ring = DualRing(sim, STATIONS, tracer=tracer)
    ring.fastpath = fastpath
    fifo = CFifo(sim, ring, 0, 1, capacity=1, name="f", tracer=tracer)
    got = 0

    def producer():
        for w in range(words):
            yield from fifo.put(w)

    def consumer():
        nonlocal got
        for _ in range(words):
            yield from fifo.get()
            got += 1

    sim.process(producer(), name="prod")
    sim.process(consumer(), name="cons")
    # CPU time, not wall clock: the ratio is what the gate checks, and
    # scheduler interference on shared runners swings wall clock far more
    # than it swings cycles actually spent in the simulator
    started = time.process_time()
    sim.run()
    elapsed = time.process_time() - started
    flits = ring.flits_sent[DualRing.DATA] + ring.flits_sent[DualRing.CREDIT]
    observables = {
        "clock": sim.now,
        "words": got,
        "flits_sent": dict(ring.flits_sent),
        "flits_dropped": dict(ring.flits_dropped),
        "fifo": fifo.level_debug(),
        "trace": sorted(
            (r.time, r.source, r.kind, tuple(sorted(r.data.items())))
            for r in tracer.records
        ) if tracer else None,
    }
    stats = ring.fastpath_stats()[DualRing.DATA]
    return elapsed, flits, observables, stats


def test_ring_macro_fastpath_vs_generator():
    # bit-identity on a traced slice (tracing dominates, so keep it short)
    _, _, fast_obs, _ = stream_words(TRACE_WORDS, fastpath=True, trace=True)
    _, _, slow_obs, _ = stream_words(TRACE_WORDS, fastpath=False, trace=True)
    assert fast_obs == slow_obs, "fast path changed the observable trace"

    # untraced macro runs: throughput and full-run accounting; best-of-N
    # per leg (min, as in bench_kernel_hotpath) damps residual noise in
    # the ratio
    fast_s, fast_n, fast_obs, stats = stream_words(MACRO_WORDS, fastpath=True)
    slow_s, slow_n, slow_obs, _ = stream_words(MACRO_WORDS, fastpath=False)
    for _ in range(BEST_OF - 1):
        fast_s = min(fast_s, stream_words(MACRO_WORDS, fastpath=True)[0])
        slow_s = min(slow_s, stream_words(MACRO_WORDS, fastpath=False)[0])
    assert fast_obs == slow_obs
    assert fast_n == slow_n == MACRO_WORDS * FLITS_PER_WORD

    fast_fps = fast_n / fast_s
    slow_fps = slow_n / slow_s
    speedup = fast_fps / slow_fps
    banner(f"RING macro: self-timed C-FIFO stream ({fast_n:.1e} flits, "
           f"{STATIONS}-station ring)")
    print(f"generator path: {slow_n} flits in {slow_s:.3f}s CPU "
          f"({slow_fps / 1e3:.0f}k flits/s)")
    print(f"compiled path:  {fast_n} flits in {fast_s:.3f}s CPU "
          f"({fast_fps / 1e3:.0f}k flits/s)")
    print(f"speedup {speedup:.2f}x, take rate {stats['take_rate']:.3f}, "
          f"{stats['demoted']} demoted")

    # the self-timed workload must keep the eligibility predicate engaged
    assert stats["take_rate"] > 0.99, (
        f"fast-path take rate collapsed to {stats['take_rate']:.3f}"
    )
    assert speedup >= MACRO_MIN_SPEEDUP, (
        f"flits/sec improved only {speedup:.2f}x "
        f"(gate {MACRO_MIN_SPEEDUP}x, smoke={SMOKE})"
    )

    if not SMOKE:
        report = make_report("bench", {
            "name": "ring_fastpath",
            "workload": {
                "stations": STATIONS,
                "words": MACRO_WORDS,
                "flits": fast_n,
                "flits_per_word": FLITS_PER_WORD,
                "horizon_cycles": fast_obs["clock"],
            },
            "before": {"path": "per-hop generator (REPRO_NO_FASTPATH=1)",
                       "cpu_s": slow_s, "flits_per_s": slow_fps},
            "after": {"path": "compiled transit (DESIGN.md §7)",
                      "cpu_s": fast_s, "flits_per_s": fast_fps,
                      "take_rate": stats["take_rate"],
                      "demoted": stats["demoted"]},
            "timing": {"clock": "process_time", "best_of": BEST_OF},
            "speedup": speedup,
            "trace_identical": True,
        })
        with open(ARTIFACT, "w") as fh:
            fh.write(dump_report(report) + "\n")
