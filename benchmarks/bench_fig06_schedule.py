"""FIG6: the parameterized execution schedule of one block.

Fig. 6's claim, as an executable check: in the admissible (self-timed)
schedule of the Fig. 5 CSDF model, a complete block of η_s samples is
processed in

    τ_s ≤ τ̂_s = R_s + (η_s + 2) · max(ε, ρ_A, δ)          (Eq. 2)

with the entry-gateway, accelerator and exit-gateway pipelining sample
copies exactly as drawn.  The benchmark times schedule construction, the
asserts reproduce the schedule's structure for a sweep of η_s.
"""

from fractions import Fraction

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    build_stream_csdf,
    measure_block_time,
    tau_hat,
)
from repro.dataflow import admissible_schedule

from conftest import banner


def make(eta, eps=15, rho=1, delta=1, R=4100):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", rho),),
        streams=(StreamSpec("s", Fraction(1, 10**6), R, block_size=eta),),
        entry_copy=eps,
        exit_copy=delta,
    )


def schedule_one_block(eta):
    system = make(eta)
    graph, info = build_stream_csdf(
        system, "s", producer_period=1, consumer_period=1,
        alpha0=2 * eta, alpha3=2 * eta, prequeued=2 * eta,
    )
    return admissible_schedule(graph, iterations=1), system, info, graph


def test_fig6_schedule_structure(benchmark):
    eta = 32
    schedule, system, info, _g = benchmark(schedule_one_block, eta)
    banner(f"FIG6 schedule, η={eta}, ε=15, ρ_A=δ=1, R=4100")
    # the structural properties of Fig. 6:
    # 1. vG0's first phase carries R + ε
    assert schedule.end_of("vG0", 0) - schedule.start_of("vG0", 0) == 4100 + 15
    # 2. the accelerator's k-th firing follows the k-th gateway phase
    for k in range(3):
        assert schedule.start_of("vA0", k) >= schedule.end_of("vG0", k)
    # 3. the exit gateway produces last
    assert schedule.completion_time("vG1") >= schedule.completion_time("vA0")
    print(f"makespan {schedule.makespan}, τ̂ = {tau_hat(system, 's')}")


def test_fig6_tau_within_bound_sweep(benchmark):
    def sweep():
        rows = []
        for eta in (1, 4, 16, 64, 256):
            system = make(eta)
            graph, info = build_stream_csdf(
                system, "s", producer_period=1, consumer_period=1,
                alpha0=2 * eta, alpha3=2 * eta, prequeued=2 * eta,
            )
            tau = measure_block_time(graph, info, blocks=1)[0]
            rows.append((eta, tau, tau_hat(system, "s")))
        return rows

    rows = benchmark(sweep)
    banner("FIG6/EQ2: measured τ vs bound τ̂ = R + (η+2)·c0")
    print(f"{'η':>5} {'τ (model)':>10} {'τ̂ (Eq. 2)':>10} {'slack':>7}")
    for eta, tau, bound in rows:
        print(f"{eta:>5} {tau:>10.0f} {bound:>10} {bound - tau:>7.0f}")
        assert tau <= bound
        # the bound is tight: within the 2·c0 flush allowance + ρ + δ
        assert bound - tau <= 2 * 15 + 2


def test_fig6_schedule_parameterized_in_eta(benchmark):
    """τ grows affinely in η with slope c0 = max(ε, ρ, δ) — the schedule is
    'parameterized in the block size' (Section III)."""

    def taus():
        out = {}
        for eta in (8, 16, 32):
            system = make(eta)
            graph, info = build_stream_csdf(
                system, "s", producer_period=1, consumer_period=1,
                alpha0=2 * eta, alpha3=2 * eta, prequeued=2 * eta,
            )
            out[eta] = measure_block_time(graph, info)[0]
        return out

    t = benchmark(taus)
    assert (t[16] - t[8]) / 8 == (t[32] - t[16]) / 16 == 15  # slope = c0
