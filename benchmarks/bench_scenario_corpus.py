"""CORPUS: a seeded generated-scenario corpus through the sweep engine.

The scenario registry's load-bearing claim — every output of
``generate(seed)`` builds, simulates, and passes attributed Eq. 2–5
conformance with **zero unattributed violations** — gets measured here at
corpus scale instead of one seed at a time.  A strict
:func:`repro.exp.scenario_corpus` sweep fans ``scenario://generated``
across consecutive seeds; any unattributed violation fails its point, so
the corpus result doubles as the generator's conformance gate.

Also asserted: the corpus is **deterministic** (two serial runs produce
byte-equal payload digests — the generator never consults ambient
randomness) and **pool-stable** (serial ≡ parallel digest identity holds
for scenario points exactly as it does for the analytic tasks).

The run persists as ``BENCH_scenario_corpus.json`` next to this file:
per-point violation/attribution counts, churn coverage (how many corpus
points exercised mode transitions), digests and timings, so a generator
or attribution regression is visible in the artifact diff.
"""

import os

from repro.core import make_report
from repro.core.config_io import dump_report, load_report
from repro.exp import run_sweep, scenario_corpus

from conftest import banner

POINTS = 24
BASE_SEED = 0

HERE = os.path.dirname(os.path.abspath(__file__))
ARTIFACT = os.path.join(HERE, "BENCH_scenario_corpus.json")


def make_corpus():
    return scenario_corpus(
        f"scenario://generated?seed={BASE_SEED}",
        points=POINTS,
        name="scenario_corpus",
        strict=True,
    )


def test_corpus_fully_attributed(benchmark):
    corpus = make_corpus()
    result = benchmark.pedantic(
        lambda: run_sweep(corpus, workers=1), rounds=1
    )
    banner(f"CORPUS {POINTS} generated scenarios, strict conformance")
    rows = [o.value for o in result.outcomes]
    churny = sum(1 for r in rows if r["transitions"])
    violations = sum(r["violations"] for r in rows)
    print(f"{len(rows)} points, {churny} with churn, "
          f"{violations} violation(s), all attributed")
    assert len(rows) == POINTS
    assert all(o.error is None for o in result.outcomes)
    # the generator invariant: violations may occur, but every one is
    # explained by an injected fault or a transition record
    assert all(r["fully_attributed"] for r in rows)
    assert all(r["unattributed"] == 0 for r in rows)
    # the corpus must actually exercise churn, not just static systems
    assert churny >= POINTS // 4, f"only {churny} churny points"


def test_corpus_deterministic_and_pool_stable(benchmark):
    corpus = make_corpus()
    serial = run_sweep(corpus, workers=1)
    workers = max(2, min(4, os.cpu_count() or 1))
    parallel = benchmark.pedantic(
        lambda: run_sweep(corpus, workers=workers), rounds=1
    )
    again = run_sweep(corpus, workers=1)
    banner("CORPUS determinism: serial == serial == parallel")
    print(f"serial   {serial.digest()}")
    print(f"repeat   {again.digest()}")
    print(f"parallel {parallel.digest()}  ({parallel.workers} workers)")
    assert again.digest() == serial.digest()
    assert parallel.digest() == serial.digest()


def test_scenario_corpus_artifact(benchmark):
    """One full corpus run, persisted as BENCH_scenario_corpus.json."""
    corpus = make_corpus()
    result = benchmark.pedantic(
        lambda: run_sweep(corpus, workers=1), rounds=1
    )
    rows = [o.value for o in result.outcomes]
    report = make_report("sweep", {
        "name": "scenario_corpus",
        "reference": f"scenario://generated?seed={BASE_SEED}",
        "points": len(rows),
        "digest": result.digest(),
        "elapsed_s": round(result.elapsed_s, 3),
        "churn_points": sum(1 for r in rows if r["transitions"]),
        "violations": sum(r["violations"] for r in rows),
        "unattributed": sum(r["unattributed"] for r in rows),
        "fully_attributed": all(r["fully_attributed"] for r in rows),
        "horizon_cycles": {
            "min": min(r["horizon"] for r in rows),
            "max": max(r["horizon"] for r in rows),
        },
        "outcomes": [
            {"id": o.id, **o.value} for o in result.outcomes
        ],
    })
    with open(ARTIFACT, "w") as fh:
        fh.write(dump_report(report) + "\n")
    banner("CORPUS artifact")
    print(f"wrote {ARTIFACT}")
    print(f"{report['points']} points in {report['elapsed_s']} s, "
          f"{report['violations']} violation(s), "
          f"{report['unattributed']} unattributed")
    assert report["fully_attributed"]
    assert report["unattributed"] == 0
    assert load_report(open(ARTIFACT).read())["kind"] == "sweep"
