"""Ablation: the two ILP backends (SciPy/HiGHS MILP vs own branch-and-bound).

Algorithm 1's result must not depend on the solver: both backends must
return the same objective on the PAL instance and on a family of scaled
instances, and the bench records their relative cost.
"""

from fractions import Fraction

from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec, compute_block_sizes

from conftest import banner


def make_instance(n_streams: int, load_pct: int = 60):
    """n streams with distinct rates summing to load_pct% of capacity."""
    weights = list(range(1, n_streams + 1))
    base = Fraction(load_pct, 100 * 15 * sum(weights))  # c0 = 15
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=tuple(
            StreamSpec(f"s{i}", base * w, 4100) for i, w in enumerate(weights)
        ),
        entry_copy=15,
        exit_copy=1,
    )


def test_backends_agree_on_pal(benchmark, pal_system):
    def both():
        a = compute_block_sizes(pal_system, backend="scipy")
        b = compute_block_sizes(pal_system, backend="bnb")
        return a, b

    a, b = benchmark(both)
    banner("ILP backends on the PAL instance")
    print(f"scipy objective {a.objective}, bnb objective {b.objective}")
    assert a.objective == b.objective
    assert a.block_sizes == b.block_sizes


def test_backends_agree_on_instance_family(benchmark):
    def sweep():
        out = []
        for n in (2, 3, 4, 5):
            system = make_instance(n)
            a = compute_block_sizes(system, backend="scipy")
            b = compute_block_sizes(system, backend="bnb")
            out.append((n, a.objective, b.objective))
        return out

    rows = benchmark(sweep)
    banner("ILP backends across instance sizes")
    print(f"{'streams':>8} {'scipy Ση':>9} {'bnb Ση':>8}")
    for n, a, b in rows:
        print(f"{n:>8} {a:>9} {b:>8}")
        assert a == b


def test_scipy_backend_alone(benchmark, pal_system):
    res = benchmark(compute_block_sizes, pal_system, backend="scipy")
    assert res.feasible


def test_bnb_backend_alone(benchmark, pal_system):
    res = benchmark(compute_block_sizes, pal_system, backend="bnb")
    assert res.feasible
