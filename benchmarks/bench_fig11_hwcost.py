"""FIG11: hardware costs of the components on the Virtex-6.

Regenerates the per-component cost bars (Table-I entries exact, the
entry/exit pair's internal split reconstructed to sum to the published
pair total) and the paper's observation that the MicroBlaze dominates the
gateway cost.
"""

from repro.hwcost import COMPONENTS, component

from conftest import banner

PAPER_EXACT = {
    "entry_exit_pair": (3788, 4445),
    "fir_downsampler": (6512, 10837),
    "cordic": (1714, 1882),
}


def collect_costs():
    return {name: (c.slices, c.luts) for name, c in COMPONENTS.items()}


def test_fig11_component_costs(benchmark):
    costs = benchmark(collect_costs)
    banner("FIG11 hardware costs (Virtex-6)")
    print(f"{'component':<22} {'slices':>7} {'LUTs':>7}")
    for name, (s, l) in costs.items():
        mark = " (Table I exact)" if name in PAPER_EXACT else " (Fig. 11 estimate)"
        print(f"{name:<22} {s:>7} {l:>7}{mark}")
    for name, (s, l) in PAPER_EXACT.items():
        assert costs[name] == (s, l)


def test_fig11_microblaze_dominates(benchmark):
    costs = benchmark(collect_costs)
    mb_s, mb_l = costs["microblaze"]
    pair_s, pair_l = costs["entry_exit_pair"]
    assert mb_s / pair_s > 0.5
    assert mb_l / pair_l > 0.5


def test_fig11_pair_split_consistent(benchmark):
    costs = benchmark(collect_costs)
    parts = ("microblaze", "entry_gateway_logic", "exit_gateway")
    assert sum(costs[p][0] for p in parts) == costs["entry_exit_pair"][0]
    assert sum(costs[p][1] for p in parts) == costs["entry_exit_pair"][1]


def test_fig11_fir_is_most_expensive_accelerator(benchmark):
    """Visible in Fig. 11: the FIR+down-sampler towers over the CORDIC."""
    benchmark(collect_costs)
    assert component("fir_downsampler").slices > 3 * component("cordic").slices
    assert component("fir_downsampler").luts > 5 * component("cordic").luts
