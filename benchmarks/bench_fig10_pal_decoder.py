"""FIG10: the PAL stereo decoder on the shared-accelerator MPSoC.

Regenerates the demonstrator run (scaled rates, identical structure): four
streams over one CORDIC + one FIR+down-sampler, stereo tones recovered,
architecture output bit-identical to the private-accelerator reference.
The paper's headline "the application satisfies its real-time throughput
constraints" maps to: every audio sample is delivered and the gateway
round fits the block budget.
"""

import numpy as np

from repro.accel import (
    PalChannelPlan,
    correlation,
    make_test_tones,
    synthesize_pal_baseband,
)
from repro.app import PalDecoderConfig, decode_functional, run_pal_on_soc

from conftest import banner

N_AUDIO = 24


def run_decoder():
    plan = PalChannelPlan()
    config = PalDecoderConfig(plan=plan, eta_stage1=64, eta_stage2=8,
                              reconfigure_cycles=100)
    left, right = make_test_tones(N_AUDIO, audio_rate=plan.audio_rate,
                                  f_left=440, f_right=1000)
    l_rec, r_rec, handles = run_pal_on_soc(config, left, right)
    return plan, config, left, right, l_rec, r_rec, handles


def test_fig10_decode_on_mpsoc(benchmark):
    plan, config, left, right, l_rec, r_rec, handles = benchmark(run_decoder)
    banner("FIG10 PAL stereo decoder on the simulated MPSoC")
    print(f"audio samples delivered: L={len(l_rec)} R={len(r_rec)} "
          f"in {handles.soc.sim.now} cycles")
    assert len(l_rec) == N_AUDIO and len(r_rec) == N_AUDIO
    # stereo separation (skip the filter warm-up)
    skip = 8
    cl = correlation(l_rec[skip:], left[skip:N_AUDIO])
    cr = correlation(r_rec[skip:], right[skip:N_AUDIO])
    print(f"correlation with sent tones: L={cl:.3f} R={cr:.3f}")
    assert cl > 0.8 and cr > 0.8
    # 75% fewer accelerators: 2 tiles serve what would need 8
    assert len(handles.chain.tiles) == 2


def test_fig10_sharing_is_transparent(benchmark):
    plan, config, left, right, l_rec, r_rec, handles = benchmark(run_decoder)
    baseband = synthesize_pal_baseband(left, right, plan)
    l_ref, r_ref = decode_functional(baseband, config)
    l_ref = l_ref - np.mean(l_ref)
    r_ref = r_ref - np.mean(r_ref)
    err = max(
        float(np.max(np.abs(l_rec - l_ref[: len(l_rec)]))),
        float(np.max(np.abs(r_rec - r_ref[: len(r_rec)]))),
    )
    banner("FIG10 shared vs private accelerators")
    print(f"max output deviation: {err:.2e}")
    assert err < 1e-9


def test_fig10_block_ratio_matches_downsampling(benchmark):
    plan, config, left, right, l_rec, r_rec, handles = benchmark(run_decoder)
    b = handles.chain.bindings
    # "note the 8:1 ratio in the block sizes due to down-sampling"
    assert b["ch1.s1"].eta == 8 * b["ch1.s2"].eta
    assert b["ch1.s1"].samples_in == 8 * b["ch1.s2"].samples_in
