"""CONF: observed-vs-bound margins of the cycle-level architecture.

The paper's refinement claim (Section V, validated on the Virtex-6
prototype) is that the implemented gateway chain never exceeds the Eq. 2–5
bounds.  This bench runs the cycle-level architecture model over a sweep of
system shapes — entry-copy cost, accelerator firing duration, block-size
mix, reconfiguration weight — checks every observed block against the
calibrated bounds, and reports the tightest margins seen.  Zero violations
across the sweep is the executable form of the temporal-refinement claim.
"""

from fractions import Fraction

from repro.arch import simulate_system
from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec

from conftest import banner

SLOW = Fraction(1, 10**9)  # rates far below capacity: Eq. 5 never binds

SWEEP = [
    # (label, entry_copy, exit_copy, rhos, R, etas)
    ("paper-like eps=15", 15, 1, (1, 1), 200, (16, 8)),
    ("tight entry eps=8", 8, 1, (1, 1), 200, (15, 4)),
    ("fat accelerator", 5, 2, (9,), 60, (12, 6)),
    ("reconfig heavy", 10, 1, (2, 2), 500, (24, 24)),
    ("three streams", 6, 3, (3,), 50, (30, 22, 18)),
    ("single stream", 15, 1, (1, 1), 100, (20,)),
]


def make(entry, exit_, rhos, R, etas):
    return GatewaySystem(
        accelerators=tuple(
            AcceleratorSpec(f"a{i}", r) for i, r in enumerate(rhos)
        ),
        streams=tuple(
            StreamSpec(f"s{i}", SLOW, R, block_size=e)
            for i, e in enumerate(etas)
        ),
        entry_copy=entry,
        exit_copy=exit_,
    )


def run_sweep(blocks=3):
    rows = []
    for label, entry, exit_, rhos, R, etas in SWEEP:
        system = make(entry, exit_, rhos, R, etas)
        run = simulate_system(system, blocks=blocks)
        report = run.conformance()
        rows.extend((label, sc) for sc in report.streams)
    return rows


def test_conformance_margins_zero_violations(benchmark):
    rows = benchmark(run_sweep)
    banner("CONF — observed vs calibrated Eq. 2–5 bounds")
    print(f"{'config':<20} {'stream':<6} {'τ margin':>9} {'ε margin':>9} "
          f"{'γ margin':>9}")
    worst_tau = worst_gamma = None
    for label, sc in rows:
        tm, wm, gm = sc.block_time_margin, sc.wait_margin, sc.turnaround_margin
        print(f"{label:<20} {sc.stream:<6} {str(tm):>9} {str(wm):>9} "
              f"{str(gm):>9}")
        if tm is not None and (worst_tau is None or tm < worst_tau):
            worst_tau = tm
        if gm is not None and (worst_gamma is None or gm < worst_gamma):
            worst_gamma = gm
        assert sc.ok, [str(v) for v in sc.violations]
    print(f"tightest τ margin: {worst_tau} cycles, "
          f"tightest γ margin: {worst_gamma} cycles")
    # the calibration is tight, not vacuous: some config comes within a
    # couple dozen cycles of its bound
    assert worst_tau is not None and worst_tau >= 0
    assert worst_tau < 64


def test_conformance_throughput_guarantee(benchmark):
    rows = benchmark(run_sweep)
    banner("CONF — achieved throughput vs η/γ guarantee (Eq. 5)")
    for label, sc in rows:
        thr = sc.achieved_throughput
        if thr is None:
            continue
        guar = sc.bounds.guaranteed_throughput
        print(f"{label:<20} {sc.stream:<6} achieved {float(thr):.5f} "
              f">= guaranteed {float(guar):.5f}")
        assert thr >= guar
