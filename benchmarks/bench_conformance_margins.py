"""CONF: observed-vs-bound margins of the cycle-level architecture.

The paper's refinement claim (Section V, validated on the Virtex-6
prototype) is that the implemented gateway chain never exceeds the Eq. 2–5
bounds.  This bench runs the cycle-level architecture model over a sweep of
system shapes — entry-copy cost, accelerator firing duration, block-size
mix, reconfiguration weight — checks every observed block against the
calibrated bounds, and reports the tightest margins seen.  Zero violations
across the sweep is the executable form of the temporal-refinement claim.

The sweep itself is a :class:`repro.exp.Sweep` over the ``conformance``
task, so each row here is exactly one point payload of the sweep engine.
"""

from fractions import Fraction

from repro.exp import Sweep, run_sweep
from repro.exp.tasks import conformance_margins

from conftest import banner

CONF_POINTS = [
    {"id": "paper-like eps=15",
     "params": {"entry_copy": 15, "exit_copy": 1, "rhos": [1, 1],
                "reconfigure": 200, "etas": [16, 8]}},
    {"id": "tight entry eps=8",
     "params": {"entry_copy": 8, "exit_copy": 1, "rhos": [1, 1],
                "reconfigure": 200, "etas": [15, 4]}},
    {"id": "fat accelerator",
     "params": {"entry_copy": 5, "exit_copy": 2, "rhos": [9],
                "reconfigure": 60, "etas": [12, 6]}},
    {"id": "reconfig heavy",
     "params": {"entry_copy": 10, "exit_copy": 1, "rhos": [2, 2],
                "reconfigure": 500, "etas": [24, 24]}},
    {"id": "three streams",
     "params": {"entry_copy": 6, "exit_copy": 3, "rhos": [3],
                "reconfigure": 50, "etas": [30, 22, 18]}},
    {"id": "single stream",
     "params": {"entry_copy": 15, "exit_copy": 1, "rhos": [1, 1],
                "reconfigure": 100, "etas": [20]}},
]

CONF_SWEEP = Sweep("conf_margins", conformance_margins, CONF_POINTS)


def run_conf_sweep():
    result = run_sweep(CONF_SWEEP, workers=1)
    assert not result.failed, [o.error for o in result.failed]
    return [(o.id, row) for o in result.succeeded for row in o.value["streams"]]


def test_conformance_margins_zero_violations(benchmark):
    rows = benchmark(run_conf_sweep)
    banner("CONF — observed vs calibrated Eq. 2–5 bounds (via repro.exp)")
    print(f"{'config':<20} {'stream':<6} {'τ margin':>9} {'ε margin':>9} "
          f"{'γ margin':>9}")
    worst_tau = worst_gamma = None
    for label, row in rows:
        tm = row["block_time_margin"]
        wm = row["wait_margin"]
        gm = row["turnaround_margin"]
        print(f"{label:<20} {row['stream']:<6} {str(tm):>9} {str(wm):>9} "
              f"{str(gm):>9}")
        if tm is not None and (worst_tau is None or tm < worst_tau):
            worst_tau = tm
        if gm is not None and (worst_gamma is None or gm < worst_gamma):
            worst_gamma = gm
        assert row["ok"], row["violations"]
    print(f"tightest τ margin: {worst_tau} cycles, "
          f"tightest γ margin: {worst_gamma} cycles")
    # the calibration is tight, not vacuous: some config comes within a
    # couple dozen cycles of its bound
    assert worst_tau is not None and worst_tau >= 0
    assert worst_tau < 64


def test_conformance_throughput_guarantee(benchmark):
    rows = benchmark(run_conf_sweep)
    banner("CONF — achieved throughput vs η/γ guarantee (Eq. 5)")
    for label, row in rows:
        if row["achieved_throughput"] is None:
            continue
        thr = Fraction(row["achieved_throughput"])
        guar = Fraction(row["guaranteed_throughput"])
        print(f"{label:<20} {row['stream']:<6} achieved {float(thr):.5f} "
              f">= guaranteed {float(guar):.5f}")
        assert thr >= guar
