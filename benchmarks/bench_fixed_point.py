"""Ablation: fixed-point CORDIC datapath width vs decoded audio quality.

The FPGA CORDIC computes in fixed point; our default kernels run in double
precision.  This ablation quantifies what datapath width the demonstrator
would actually need: decoded-audio SNR of the functional PAL chain as a
function of the CORDIC's fractional bits.
"""

import numpy as np

from repro.accel import (
    CordicKernel,
    FirDecimatorKernel,
    PalChannelPlan,
    correlation,
    design_lowpass,
    make_test_tones,
    normalize_fm_output,
    run_kernel,
    synthesize_pal_baseband,
)

from conftest import banner


def decode_channel(baseband, plan, carrier, bits):
    mix = CordicKernel("mix", carrier / plan.sample_rate, fractional_bits=bits)
    f1 = FirDecimatorKernel(design_lowpass(33, 1 / 20), 8)
    fm = CordicKernel("fm", fractional_bits=bits)
    f2 = FirDecimatorKernel(design_lowpass(33, 1 / 20), 8)
    x = run_kernel(f2, run_kernel(fm, run_kernel(f1, run_kernel(mix, baseband))))
    return normalize_fm_output(np.real(x), plan.deviation, plan.sample_rate / 8)


def quality_vs_bits():
    plan = PalChannelPlan()
    left, right = make_test_tones(64, audio_rate=plan.audio_rate, f_left=440,
                                  f_right=1000)
    baseband = synthesize_pal_baseband(left, right, plan)
    out = {}
    for bits in (8, 12, 16, None):
        rec = decode_channel(baseband, plan, plan.carrier2, bits)
        out[bits] = correlation(rec[8:], right[8 : 8 + len(rec) - 8])
    return out


def test_fixed_point_audio_quality(benchmark):
    rows = benchmark(quality_vs_bits)
    banner("decoded-audio correlation vs CORDIC datapath width")
    for bits, corr in rows.items():
        label = "float64" if bits is None else f"{bits} frac bits"
        print(f"  {label:>13}: corr = {corr:.4f}")
    # 16 fractional bits are audio-transparent; 8 measurably degrade
    assert rows[16] > 0.95
    assert rows[None] > 0.95
    assert rows[8] <= rows[12] + 0.02  # quality non-degrading with bits
    assert abs(rows[16] - rows[None]) < 0.01
