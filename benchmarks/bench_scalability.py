"""Scalability of the analysis machinery beyond the paper's 4-stream case.

The paper evaluates one gateway pair with four streams; a reusable library
must handle more.  These benches time Algorithm 1 and the closed-form
bounds for growing stream counts and assert the results stay sound
(feasible + minimal) as the instance grows.  The stream-count sweep runs
through :mod:`repro.exp` so the timed loop is the same engine the
``repro sweep`` CLI uses.
"""

from repro.core import compute_block_sizes, gamma, throughput_satisfied
from repro.exp import Sweep, run_sweep
from repro.exp.tasks import many_streams_system, scalability_blocksizes

from conftest import banner


def many_streams(n, load_pct=70, R=4100, eps=15):
    return many_streams_system(
        n, load_pct=load_pct, reconfigure=R, entry_copy=eps
    )


def test_ilp_scales_to_32_streams(benchmark):
    system = many_streams(32)
    result = benchmark(compute_block_sizes, system)
    banner("Algorithm 1 with 32 streams")
    assigned = system.with_block_sizes(result.block_sizes)
    assert throughput_satisfied(assigned)
    print(f"Ση = {result.total}, γ̂ = {gamma(assigned, 's0')} cycles")


def test_ilp_objective_grows_smoothly(benchmark):
    sweep = Sweep.grid(
        "scal_totals", scalability_blocksizes, axes={"streams": [2, 4, 8, 16]}
    )

    def run():
        result = run_sweep(sweep, workers=1)
        return {o.params["streams"]: o.value["total_eta"] for o in result.succeeded}

    totals = benchmark(run)
    banner("Ση vs stream count at constant 70% load (via repro.exp)")
    for n, total in totals.items():
        print(f"  {n:>3} streams: Ση = {total}")
    values = [totals[n] for n in (2, 4, 8, 16)]
    assert all(b > a for a, b in zip(values, values[1:]))


def test_backends_agree_at_scale(benchmark):
    system = many_streams(12)

    def both():
        return (
            compute_block_sizes(system, backend="scipy").objective,
            compute_block_sizes(system, backend="bnb").objective,
        )

    a, b = benchmark(both)
    assert a == b


def test_bounds_cheap_at_scale(benchmark):
    system = many_streams(64)
    sizes = compute_block_sizes(system).block_sizes
    assigned = system.with_block_sizes(sizes)

    def all_bounds():
        return [gamma(assigned, s.name) for s in assigned.streams]

    gammas = benchmark(all_bounds)
    assert len(set(gammas)) == 1  # one rotation length for everyone
