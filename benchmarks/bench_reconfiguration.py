"""RECONFIG: mode-transition latency sweep for runtime reconfiguration.

Jung-style bounded mode changes are the point of the reconfiguration
manager: a stream joining or leaving a live system must complete its
freeze → quiesce → re-solve → bus-reprogram → thaw sequence within the
closed-form budget (one block round of the outgoing mode plus the
serialized ConfigBus reprogramming plus slack), and a permanent tile
failure must fail over onto a spare within the watchdog-extended budget.
This bench sweeps the number of already-admitted streams and reports the
measured transition latency of a join and a leave against the budget, then
measures the spare-failover latency.  The online re-solve must warm-start
from the running assignment every time.
"""

from fractions import Fraction

from repro.arch import simulate_system
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    compute_block_sizes,
)
from repro.sim.faults import FaultPlan, FaultSpec

from conftest import banner

BLOCKS = 10

#: base denominators for the resident streams, slow enough that any
#: subset keeps the single shared accelerator schedulable after a join
_DENS = [120, 150, 180, 220, 260, 300]


def make_system(n_streams: int) -> GatewaySystem:
    sys_ = GatewaySystem(
        accelerators=(AcceleratorSpec("acc0", 1),),
        streams=tuple(
            StreamSpec(f"s{i}", Fraction(1, _DENS[i]), 410)
            for i in range(n_streams)
        ),
    )
    return sys_.with_block_sizes(compute_block_sizes(sys_).block_sizes)


def churn_plan() -> FaultPlan:
    return FaultPlan(specs=(
        FaultSpec(kind="stream_join", at=30_000, target="joiner",
                  params={"throughput": [1, 400], "reconfigure": 410}),
        FaultSpec(kind="stream_leave", at=60_000, target="s0"),
    ), seed=5)


def run_churn_sweep():
    rows = []
    for n in (2, 3, 4):
        run = simulate_system(make_system(n), blocks=BLOCKS,
                              faults=churn_plan(), admission=False, spares=0)
        rows.append((n, run))
    return rows


def run_failover():
    plan = FaultPlan(specs=(
        FaultSpec(kind="stream_join", at=30_000, target="joiner",
                  params={"throughput": [1, 400], "reconfigure": 410}),
        FaultSpec(kind="permanent_tile_failure", at=45_000,
                  target="sys.acc0"),
    ), seed=5)
    return simulate_system(make_system(2), blocks=BLOCKS, faults=plan,
                           admission=False, spares=1)


def test_transition_latency_within_budget(benchmark):
    rows = benchmark(run_churn_sweep)
    banner("RECONFIG — join/leave transition latency vs stream count")
    print(f"{'streams':>7} {'trigger':<14} {'detail':<8} {'latency':>8} "
          f"{'budget':>8} {'margin':>7} {'warm':>5}")
    for n, run in rows:
        transitions = run.reconfig.transitions
        assert [t.trigger for t in transitions] == ["stream_join",
                                                    "stream_leave"]
        for t in transitions:
            print(f"{n:>7} {t.trigger:<14} {t.detail:<8} {t.latency:>8} "
                  f"{t.budget:>8} {t.budget - t.latency:>7} "
                  f"{str(t.warm_start):>5}")
            assert t.accepted, (n, t.trigger, t.reason)
            # the Jung-style bound: every transition lands inside its
            # closed-form budget
            assert t.within_budget, (n, t.trigger, t.latency, t.budget)
            # the online Algorithm-1 re-run warm-starts from the running
            # assignment instead of solving from scratch
            assert t.warm_start, (n, t.trigger)
        modal = run.mode_conformance()
        assert modal.ok, (n, [str(v) for v in modal.violations])
        assert run.attributed_conformance().fully_attributed, n


def test_transition_budget_grows_with_mode_size(benchmark):
    rows = benchmark(run_churn_sweep)
    banner("RECONFIG — budget scales with the outgoing mode's round length")
    budgets = []
    for n, run in rows:
        join = run.reconfig.transitions[0]
        budgets.append(join.budget)
        print(f"{n} resident streams: join budget {join.budget} cycles")
    # a bigger mode has a longer block round, hence a larger (but still
    # closed-form) transition budget
    assert budgets == sorted(budgets)


def test_spare_failover_latency(benchmark):
    run = benchmark(run_failover)
    banner("RECONFIG — spare-tile failover")
    [failure] = [t for t in run.reconfig.transitions
                 if t.trigger == "tile_failure"]
    print(f"remap {failure.detail}: latency {failure.latency} cycles "
          f"<= budget {failure.budget} (via {failure.via})")
    assert failure.accepted and failure.within_budget
    assert run.chain.remaps == [("sys.acc0", "sys.spare0")]
    for name, binding in run.chain.bindings.items():
        assert not binding.failed, name
        assert binding.blocks_done >= BLOCKS, name
    assert run.attributed_conformance().fully_attributed
