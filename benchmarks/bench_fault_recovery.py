"""FAULT: recovery cost sweep for the watchdog/retransmission protocol.

The paper's architecture targets always-on radios; the robustness layer
(watchdog flush at the entry gateway, credit repair on the dual ring,
exactly-once retransmission through the exit gateway, Eq. 5 admission
degradation) must deliver every stream's samples exactly once under each
fault class the injector models, and its overhead must stay bounded by
the watchdog budget arithmetic.  This bench sweeps one seeded fault of
each kind over a two-accelerator / two-stream system and reports the
recovery latency, retries and degradation each one costs.
"""

from fractions import Fraction

from repro.arch import simulate_system
from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    compute_block_sizes,
)
from repro.sim.faults import (
    ACCEL_STALL,
    CFIFO_PTR_LOSS,
    RECONFIG_FAIL,
    RING_DROP,
    FaultPlan,
    FaultSpec,
)

from conftest import banner

BLOCKS = 4

SWEEP = [
    ("none", FaultPlan()),
    ("accel_stall", FaultPlan(specs=(
        FaultSpec(kind=ACCEL_STALL, at=1000, target="sys.acc0",
                  duration=2000, extra=1500, count=1),
    ), seed=7)),
    ("ring_drop", FaultPlan(specs=(
        FaultSpec(kind=RING_DROP, at=400, duration=2000, ring="data",
                  src=4, dst=5, count=1),
    ), seed=3)),
    ("cfifo_ptr_loss", FaultPlan(specs=(
        FaultSpec(kind=CFIFO_PTR_LOSS, at=0, duration=5000, target="pal.in",
                  side="read", count=2),
    ), seed=1)),
    ("reconfig_fail", FaultPlan(specs=(
        FaultSpec(kind=RECONFIG_FAIL, at=0, duration=100_000, target="ntsc",
                  count=3),
    ), seed=2)),
]


def make_system():
    sys_ = GatewaySystem(
        accelerators=(AcceleratorSpec("acc0", 1), AcceleratorSpec("acc1", 1)),
        streams=(StreamSpec("pal", Fraction(1, 120), 410),
                 StreamSpec("ntsc", Fraction(1, 150), 410)),
    )
    return sys_.with_block_sizes(compute_block_sizes(sys_).block_sizes)


def run_sweep():
    rows = []
    for label, plan in SWEEP:
        run = simulate_system(make_system(), blocks=BLOCKS, faults=plan)
        rows.append((label, run, run.fault_report()))
    return rows


def test_fault_recovery_exactly_once(benchmark):
    rows = benchmark(run_sweep)
    banner("FAULT — recovery cost per injected fault class")
    print(f"{'fault':<16} {'stream':<6} {'blocks':>6} {'retries':>7} "
          f"{'rec cyc':>8} {'degraded':>8} {'horizon':>8}")
    for label, run, report in rows:
        for name, s in sorted(report["streams"].items()):
            print(f"{label:<16} {name:<6} {s['blocks_done']:>6} "
                  f"{s['retries']:>7} {s['recovery_cycles']:>8} "
                  f"{s['degraded_cycles']:>8} {run.horizon:>8}")
            # every stream survives every single-fault scenario in the
            # sweep and delivers each sample exactly once
            assert not s["failed"], (label, name)
            assert s["blocks_done"] == BLOCKS, (label, name)
        for binding in run.chain.bindings.values():
            assert binding.samples_out == binding.expected_out * BLOCKS
            assert binding.samples_in == binding.eta * BLOCKS
        fired = len(report["injected"])
        expected = sum(s.count for s in SWEEP[[l for l, _ in SWEEP]
                                              .index(label)][1].specs)
        assert fired == expected, (label, fired, expected)
        assert report["fully_attributed"], (label, report["unattributed"])


def test_fault_recovery_overhead_bounded(benchmark):
    rows = benchmark(run_sweep)
    banner("FAULT — recovery overhead vs watchdog budget")
    baseline = next(run for label, run, _ in rows if label == "none")
    for label, run, report in rows:
        if label == "none":
            continue
        wd = run.watchdog
        slowdown = run.horizon - baseline.horizon
        print(f"{label:<16} horizon +{slowdown} cycles")
        for name, s in report["streams"].items():
            if not s["watchdog_timeouts"]:
                continue
            # each recovery round costs at most one watchdog budget plus
            # the flush and backoff allowance
            per_retry = (wd.budget_for(name)
                         + wd.settle_rounds * wd.settle_cycles
                         + wd.backoff_cap)
            allowance = s["retries"] * per_retry
            for latency in s["recovery_latencies"]:
                print(f"  {name}: recovery latency {latency} "
                      f"<= budget allowance {per_retry}")
                assert latency <= per_retry, (label, name)
            assert s["recovery_cycles"] <= allowance, (label, name)
        # a fault-free rerun of the same plan object stays deterministic
        again = simulate_system(make_system(), blocks=BLOCKS,
                                faults=SWEEP[[l for l, _ in SWEEP]
                                             .index(label)][1])
        assert again.horizon == run.horizon, label
