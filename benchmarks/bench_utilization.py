"""UTIL: gateway utilization and the 44.1 kS/s real-time constraint.

Paper Section VI-A: "The entry-gateway … is processing data streams 5% of
the time, which means that 95% of the time is spent to save and restore
state from the accelerators.  … our current implementation is already
sufficiently fast … as we meet our real-time throughput constraint of
44.1 kS/s for continuous audio playback."  And: sharing "improved
accelerator utilization by a factor of four".

Reproduced with both decompositions (see repro.core.utilization): the
transfer-centric reading lands at ≈6% data movement / ≈94% state
management; the explicit-R reconfiguration alone is ≈4.7% of the round.
"""

from fractions import Fraction

from repro.app import pal_block_sizes, pal_gateway_system
from repro.core import (
    accelerator_utilization_gain,
    analyze_utilization,
    gamma,
    guaranteed_throughput,
)

from conftest import banner


def pal_utilization():
    system = pal_gateway_system().with_block_sizes(pal_block_sizes())
    return system, analyze_utilization(system)


def test_util_data_vs_state_split(benchmark):
    system, util = benchmark(pal_utilization)
    banner("UTIL — one worst-case round-robin rotation")
    print(f"round length          : {util.round_length} cycles")
    print(f"samples moved         : {util.samples_per_round}")
    print(f"data movement         : {float(util.data_processing_fraction):.1%} "
          "(paper: ≈5%)")
    print(f"state management      : {float(util.state_management_fraction):.1%} "
          "(paper: ≈95%)")
    print(f"explicit reconfig R_s : {float(util.reconfig_fraction):.1%}")
    assert 0.03 < float(util.data_processing_fraction) < 0.10
    assert 0.90 < float(util.state_management_fraction) < 0.97


def test_util_realtime_constraint_met(benchmark):
    system, util = benchmark(pal_utilization)
    # 44.1 kS/s continuous audio: every stream's guarantee covers its rate
    for s in system.streams:
        assert guaranteed_throughput(system, s.name) >= s.throughput
    # and the rotation fits the audio budget its blocks carry
    s2 = system.stream("ch1.s2")
    budget = Fraction(s2.block_size or 0, 8 * 44_100) * 100_000_000
    print(f"\nγ = {gamma(system, 'ch1.s2')} cycles ≤ audio budget "
          f"{float(budget):.0f} cycles")
    assert gamma(system, "ch1.s2") <= budget


def test_util_accelerator_gain_factor_four(benchmark):
    gain = benchmark(accelerator_utilization_gain, 4, 1)
    banner("UTIL — accelerator utilization gain")
    print(f"4 streams on 1 accelerator of each type: ×{gain} (paper: ×4)")
    assert gain == 4


def test_util_gateway_near_saturation(benchmark):
    """The chain runs at ≈95% load — the regime where Algorithm 1's
    1/(1−load) block-size blow-up is visible."""
    from repro.core import sharing_load

    system, util = benchmark(pal_utilization)
    load = float(sharing_load(system))
    print(f"\naggregate load c0·Σμ = {load:.4f}")
    assert 0.94 < load < 0.96
    # busy fraction of the round ≈ copy + reconfig ≈ 100%
    busy = float(util.gateway_copy_fraction + util.reconfig_fraction)
    assert busy > 0.99
