"""Ablation: state-space throughput vs MCM-on-HSDF throughput.

The paper cannot use MCM for its parametric model (Section III); we have
both engines for concrete instances and they must agree exactly.  This
bench cross-validates them on gateway-shaped CSDF instances and records
the cost of each method (the HSDF expansion grows with the repetition
vector; the state space with the transient length).
"""

from fractions import Fraction

from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec, build_stream_csdf
from repro.dataflow import (
    SDFGraph,
    bound_channel,
    mcm_throughput,
    steady_state_throughput,
)

from conftest import banner


def gateway_csdf(eta):
    system = GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=(StreamSpec("s", Fraction(1, 100), 50, block_size=eta),),
        entry_copy=5,
        exit_copy=1,
    )
    graph, _info = build_stream_csdf(
        system, "s", producer_period=2, consumer_period=2,
        alpha0=2 * eta, alpha3=2 * eta,
    )
    return graph


def test_methods_agree_on_gateway_models(benchmark):
    def sweep():
        out = []
        for eta in (2, 4, 8):
            g = gateway_csdf(eta)
            ss = steady_state_throughput(g, actor="vC").firing_rate
            mc = mcm_throughput(g, "vC")
            out.append((eta, ss, mc))
        return out

    rows = benchmark(sweep)
    banner("state-space vs MCM on the Fig. 5 CSDF model")
    print(f"{'η':>4} {'state-space':>14} {'MCM':>14}")
    for eta, ss, mc in rows:
        print(f"{eta:>4} {str(ss):>14} {str(mc):>14}")
        assert ss == mc


def test_statespace_method(benchmark):
    g = gateway_csdf(8)
    rate = benchmark(lambda: steady_state_throughput(g, actor="vC").firing_rate)
    assert rate > 0


def test_mcm_method(benchmark):
    g = gateway_csdf(8)
    rate = benchmark(mcm_throughput, g, "vC")
    assert rate > 0


def test_methods_agree_on_multirate_sdf(benchmark):
    def both():
        g = SDFGraph("m")
        g.add_actor("A", 3)
        g.add_actor("B", 2)
        g.add_edge("A", "B", production=5, consumption=2, tokens=1, name="ch")
        gb = bound_channel(g, "ch", 9)
        return (
            steady_state_throughput(gb, actor="B").firing_rate,
            mcm_throughput(gb, "B"),
        )

    ss, mc = benchmark(both)
    assert ss == mc
