"""Ablation: pessimism of the single-actor SDF abstraction vs the CSDF model.

Section V-C claims "there is hardly any loss in accuracy" when collapsing
the Fig. 5 CSDF model into the Fig. 7 single-actor SDF model — the only
loss being atomic end-of-firing token production.  This bench quantifies
it: per-token production-time gap and end-to-end block-completion gap
between the two models, over a sweep of block sizes.
"""

from fractions import Fraction

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    build_stream_csdf,
    build_stream_sdf,
)
from repro.dataflow import execute

import pytest

from conftest import banner


def make(eta):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=(StreamSpec("s", Fraction(1, 10**6), 4100, block_size=eta),),
        entry_copy=15,
        exit_copy=1,
    )


def production_gap(eta, blocks=2):
    system = make(eta)
    fast = Fraction(1, 1000)
    depth = (blocks + 1) * eta
    csdf, info = build_stream_csdf(
        system, "s", producer_period=fast, consumer_period=fast,
        alpha0=depth, alpha3=depth, prequeued=depth,
    )
    sdf = build_stream_sdf(
        system, "s", producer_period=fast, consumer_period=fast,
        alpha0=depth, alpha3=depth,
    )
    fine = execute(csdf, iterations=blocks, record=True)
    coarse = execute(sdf, iterations=blocks, record=True)
    fine_tokens = fine.production_times(info.exit)[: blocks * eta]
    coarse_tokens: list[float] = []
    for t in coarse.production_times("vS"):
        coarse_tokens.extend([t] * eta)
    coarse_tokens = coarse_tokens[: blocks * eta]
    gaps = [c - f for f, c in zip(fine_tokens, coarse_tokens)]
    return gaps


def test_abstraction_is_conservative(benchmark):
    gaps = benchmark(production_gap, 16)
    banner("SDF abstraction vs CSDF model (η=16)")
    print(f"per-token gap: min {float(min(gaps)):.0f}, max {float(max(gaps)):.0f} cycles")
    # conservative: the SDF model never predicts earlier production
    assert all(g >= 0 for g in gaps)


def test_abstraction_pessimism_bounded(benchmark):
    """Token-level pessimism = intra-block drain (first token waits the
    whole SDF firing, ≈ η·c0) + a constant per-block drift of at most
    flush·c0 (the SDF period γ̂ carries the pipeline-flush allowance the
    CSDF execution does not spend) — 'hardly any loss' relative to τ̂."""

    blocks = 2

    def sweep():
        return {eta: max(production_gap(eta, blocks)) for eta in (4, 16, 64)}

    worst = benchmark(sweep)
    banner("abstraction pessimism vs block size (2 blocks)")
    print(f"{'η':>5} {'max gap':>8} {'allowance':>10} {'τ̂':>7}")
    for eta, gap in worst.items():
        system = make(eta)
        c0, flush = system.c0, system.flush_stages
        allowance = eta * c0 + (blocks + 1) * flush * c0
        tau = 4100 + (eta + flush) * c0
        print(f"{eta:>5} {float(gap):>8.0f} {allowance:>10} {tau:>7}")
        assert gap <= allowance
    # the dominant term is the intra-block drain η·c0: token-level
    # pessimism grows with η, but BLOCK-level pessimism (what Eq. 5 uses)
    # stays at the constant flush drift — see the next test
    assert worst[4] < worst[16] < worst[64]
    assert worst[64] <= 64 * 15 + 3 * 2 * 15


def test_per_block_drift_is_the_flush_allowance(benchmark):
    """The last token of block k lags exactly k·(flush·c0 − ρ − δ): the
    per-block pessimism is the unspent pipeline-flush term, constant and
    small compared to τ̂ (0.6% for the demonstrator's η=10136)."""
    eta, blocks = 16, 3
    gaps = benchmark(production_gap, eta, blocks)
    system = make(eta)
    drift = system.flush_stages * system.c0 - 1 - 1  # flush·c0 − ρ − δ
    last = [gaps[(k + 1) * eta - 1] for k in range(blocks)]
    print(f"\nlast-token gap per block: {[round(float(g)) for g in last]} "
          f"(drift/block = {drift})")
    for k in range(1, blocks):
        assert last[k] - last[k - 1] == pytest.approx(drift, abs=1)
    assert last[0] <= 2 * drift
