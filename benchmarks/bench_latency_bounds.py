"""Latency: the L̂ = η/μ + γ̂ sample-latency bound vs measured latencies.

The refinement theory guarantees maximum token arrival times (Section
III); this bench regenerates the latency side of that guarantee: measured
producer-to-output token latencies in the CSDF model stay below the
closed-form bound, and the bound exposes the block-size/latency trade-off
that motivates minimising Ση in Algorithm 1.
"""

from fractions import Fraction

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    build_stream_csdf,
    sample_latency_bound,
)
from repro.dataflow import measure_latency

from conftest import banner


def make(eta, mu=Fraction(1, 60), R=200, eps=10):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(StreamSpec("s", mu, R, block_size=eta),),
        entry_copy=eps,
        exit_copy=1,
    )


def measured_worst(eta, **kw):
    system = make(eta, **kw)
    graph, info = build_stream_csdf(system, "s")
    rep = measure_latency(graph, info.producer, info.exit, iterations=3)
    return rep.worst, float(sample_latency_bound(system, "s"))


def test_latency_bound_conservative(benchmark):
    def sweep():
        return {eta: measured_worst(eta) for eta in (4, 8, 16, 32)}

    rows = benchmark(sweep)
    banner("sample latency: measured worst vs L̂ = η/μ + γ̂")
    print(f"{'η':>5} {'measured':>10} {'bound':>10}")
    for eta, (worst, bound) in rows.items():
        print(f"{eta:>5} {float(worst):>10.0f} {float(bound):>10.0f}")
        assert worst <= bound


def test_latency_grows_with_block_size(benchmark):
    """Bigger blocks amortise R but cost latency — the trade-off behind
    'minimize Ση' in Algorithm 1."""
    rows = benchmark(lambda: {eta: measured_worst(eta) for eta in (4, 16, 64)})
    worsts = [rows[eta][0] for eta in (4, 16, 64)]
    assert worsts[0] < worsts[1] < worsts[2]


def test_latency_bound_not_vacuous(benchmark):
    worst, bound = benchmark(measured_worst, 16)
    assert bound <= 3 * worst
