"""FIG8: non-monotone minimum buffer capacities vs block size.

Paper Fig. 8b table (reconstructed): η_s = 1..5 → α_s = 5, 6, 7, 8, 5 for
the two-actor model of Fig. 8a (producer bursts η_s tokens, consumer drains
5 per firing).  Reproduced EXACTLY by the deadlock-free minimum capacity;
the max-throughput minimum shows the same non-monotone shape shifted up.
The η sweep runs through the :mod:`repro.exp` engine (``fig8-buffers``
task), so the table here is the same payload ``repro sweep`` persists.
"""

from repro.dataflow import SDFGraph, min_capacity_single
from repro.exp import Sweep, run_sweep
from repro.exp.tasks import fig8_min_buffer

from conftest import banner

PAPER_TABLE = {1: 5, 2: 6, 3: 7, 4: 8, 5: 5}

FIG8_SWEEP = Sweep.grid(
    "fig8_buffers", fig8_min_buffer, axes={"eta": [1, 2, 3, 4, 5]}
)


def fig8_graph(eta: int) -> SDFGraph:
    g = SDFGraph(f"fig8[{eta}]")
    g.add_actor("vA", 1)
    g.add_actor("vB", 5)
    g.add_edge("vA", "vB", production=eta, consumption=5, name="ch")
    return g


def compute_table() -> dict[int, int]:
    result = run_sweep(FIG8_SWEEP, workers=1)
    return {o.value["eta"]: o.value["alpha"] for o in result.succeeded}


def test_fig8_buffer_table_exact(benchmark):
    table = benchmark(compute_table)
    banner("FIG8b minimum buffer capacities")
    print(f"{'η_s':>4} {'α_s (ours)':>11} {'α_s (paper)':>12}")
    for eta, alpha in table.items():
        print(f"{eta:>4} {alpha:>11} {PAPER_TABLE[eta]:>12}")
    assert table == PAPER_TABLE


def test_fig8_nonmonotone_in_both_directions(benchmark):
    table = benchmark(compute_table)
    # "for ηs = 1 and ηs = 2, the opposite is true"
    assert table[1] < table[2]
    # "the small block size requires a larger buffer capacity than the larger"
    assert table[2] > table[5]


def test_fig8_same_shape_under_max_throughput(benchmark):
    def tput_table():
        return {
            eta: min_capacity_single(
                fig8_graph(eta), "ch", target=None, actor="vB"
            ).capacities["ch"]
            for eta in range(1, 6)
        }

    table = benchmark(tput_table)
    banner("FIG8b under a max-throughput objective (same non-monotone shape)")
    print(" ".join(f"η={e}:α={a}" for e, a in table.items()))
    assert table[1] < table[2]
    assert table[4] > table[5]
