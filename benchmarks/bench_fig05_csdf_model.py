"""FIG5: construction and analysis of the per-stream CSDF model.

Regenerates the model's structural properties: consistency, liveness,
the repetition vector (one block per iteration), the Eq. 1 first-phase
duration, and the admission semantics (data + space + idle checks) — and
times model construction + one-iteration analysis as the benchmark.
"""

from fractions import Fraction

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    build_stream_csdf,
    epsilon_hat,
    rho_g0_first_phase,
)
from repro.dataflow import repetition_vector, validate_graph

from conftest import banner


def two_stream_system(eta=16):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=(
            StreamSpec("s0", Fraction(1, 60), 4100, block_size=eta),
            StreamSpec("s1", Fraction(1, 120), 4100, block_size=eta // 2),
        ),
        entry_copy=15,
        exit_copy=1,
    )


def build_and_validate(eta=16):
    system = two_stream_system(eta)
    graph, info = build_stream_csdf(system, "s0", prequeued=2 * eta)
    report = validate_graph(graph)
    reps = repetition_vector(graph)
    return system, graph, info, report, reps


def test_fig5_model_valid_and_live(benchmark):
    system, graph, info, report, reps = benchmark(build_and_validate)
    banner("FIG5 per-stream CSDF model")
    print(f"actors: {sorted(graph.actors)}")
    print(f"repetition vector: {reps}")
    assert report.ok, report.errors


def test_fig5_one_block_per_iteration(benchmark):
    system, graph, info, report, reps = benchmark(build_and_validate, 16)
    # one iteration = one complete block through the pipeline
    assert reps["vG0"] == reps["vG1"] == 1
    assert reps["vA0"] == reps["vP"] == reps["vC"] == 16


def test_fig5_eq1_first_phase_includes_interference(benchmark):
    system, graph, info, report, reps = benchmark(build_and_validate)
    # ρ_G0[0] = ε̂_s + R_s + ε  (Eq. 1)
    expected = rho_g0_first_phase(system, "s0")
    assert graph.actor("vG0").duration[0] == expected
    assert epsilon_hat(system, "s0") > 0  # other stream really contributes


def test_fig5_space_check_edge_targets_entry_gateway(benchmark):
    """The α3 space back-edge runs from the CONSUMER to the ENTRY gateway —
    the paper's check-for-space contribution (Section V-G)."""
    system, graph, info, report, reps = benchmark(build_and_validate)
    space = graph.edge("space")
    assert space.src == "vC"
    assert space.dst == "vG0"
    # consumed in phase 0 only, a whole block's worth at once
    assert space.consumption[0] == 16
    assert all(q == 0 for q in space.consumption[1:])


def test_fig5_idle_edge_has_one_token(benchmark):
    system, graph, info, report, reps = benchmark(build_and_validate)
    idle = graph.edge("idle")
    assert idle.src == "vG1" and idle.dst == "vG0"
    assert idle.tokens == 1  # the pipeline starts idle
    assert idle.production[-1] == 1  # released by vG1's LAST phase
    assert sum(idle.production[:-1]) == 0


def test_fig5_ni_buffers_are_two_deep(benchmark):
    system, graph, info, report, reps = benchmark(build_and_validate)
    # α1 = α2 = 2 (paper: "equal to the capacity of the buffers in the NIs")
    assert graph.edge("cap:ni0").tokens == 2
    assert graph.edge("cap:ni1").tokens == 2
