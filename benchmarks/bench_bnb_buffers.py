"""Ablation: buffer-optimal block sizes vs Algorithm 1's Ση-minimal ones.

Section V-F: minimising Ση does "not necessarily result in the minimal
buffer capacities due to the non-monotonic relation between block sizes
and buffer capacities"; a branch-and-bound over block sizes is needed for
buffer-optimality.  This bench runs our B&B around the ILP optimum and
reports the buffer totals of both solutions.
"""

from fractions import Fraction

from repro.core import (
    AcceleratorSpec,
    GatewaySystem,
    StreamSpec,
    compute_block_sizes,
    optimal_block_sizes_for_buffers,
    stream_buffer_cost,
    throughput_satisfied,
)

from conftest import banner


def small_instance():
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=(StreamSpec("s0", Fraction(1, 80), 20),),
        entry_copy=5,
        exit_copy=1,
    )


def test_bnb_finds_feasible_buffer_optimum(benchmark):
    system = small_instance()
    ilp = compute_block_sizes(system)
    eta0 = ilp.block_sizes["s0"]

    def search():
        return optimal_block_sizes_for_buffers(
            system, {"s0": range(eta0, eta0 + 6)}
        )

    res = benchmark(search)
    banner("buffer-optimal block-size search (B&B)")
    ilp_caps = stream_buffer_cost(system.with_block_sizes(ilp.block_sizes), "s0")
    print(f"ILP optimum      η={eta0}: buffers {ilp_caps} "
          f"(total {sum(ilp_caps.values())})")
    print(f"buffer optimum   η={res.block_sizes['s0']}: buffers "
          f"{res.capacities['s0']} (total {res.total_buffer})")
    print(f"candidate vectors examined: {res.vectors_examined}")
    assert throughput_satisfied(system.with_block_sizes(res.block_sizes))
    # the buffer optimum is never worse than the ILP point
    assert res.total_buffer <= sum(ilp_caps.values())


def test_buffer_cost_nonmonotone_in_eta(benchmark):
    """The buffer totals along the η axis are not monotone — the reason a
    plain 'take the ILP minimum' can be suboptimal in memory."""
    system = small_instance()
    eta0 = compute_block_sizes(system).block_sizes["s0"]

    def sweep():
        out = {}
        for eta in range(eta0, eta0 + 8):
            cand = system.with_block_sizes({"s0": eta})
            if throughput_satisfied(cand):
                caps = stream_buffer_cost(cand, "s0")
                out[eta] = sum(caps.values())
        return out

    totals = benchmark(sweep)
    banner("total buffer capacity vs η (feasible range)")
    for eta, total in totals.items():
        print(f"η={eta:>3}: total buffers {total}")
    assert len(totals) >= 4
    diffs = [b - a for a, b in zip(list(totals.values()), list(totals.values())[1:])]
    # larger blocks need larger buffers overall...
    assert sum(diffs) >= 0
