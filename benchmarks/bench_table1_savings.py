"""TAB1: hardware costs and savings of sharing (paper Table I).

Published: non-shared 4×(F+D) + 4×C = 32904 slices / 50876 LUTs; shared
(gateways + one of each) = 12014 / 17164; savings 20890 slices (63.5%) and
33712 LUTs (66.3%); accelerator count reduced by 75%.  All reproduced
exactly from the component database.
"""

from repro.hwcost import compare_sharing, paper_table1

from conftest import banner


def test_table1_exact(benchmark):
    cmp = benchmark(paper_table1)
    banner("TABLE I — hardware costs and savings")
    print(cmp.table())
    assert cmp.non_shared.slices == 32904
    assert cmp.non_shared.luts == 50876
    assert cmp.shared.slices == 12014
    assert cmp.shared.luts == 17164
    assert cmp.slice_savings == 20890
    assert cmp.lut_savings == 33712
    assert round(cmp.slice_savings_pct, 1) == 63.5
    assert round(cmp.lut_savings_pct, 1) == 66.3


def test_table1_accelerator_reduction(benchmark):
    cmp = benchmark(paper_table1)
    # "sharing reduces the number of accelerators by 75%"
    assert cmp.accelerator_reduction_pct == 75.0


def test_table1_savings_scale_with_stream_count(benchmark):
    """Ablation: savings as a function of how many streams share the chain."""

    def sweep():
        return {
            n: compare_sharing({"fir_downsampler": n, "cordic": n})
            for n in (2, 3, 4, 6, 8)
        }

    rows = benchmark(sweep)
    banner("TABLE I ablation — savings vs number of sharing streams")
    print(f"{'streams':>8} {'non-shared':>11} {'shared':>8} {'savings%':>9}")
    prev = -100.0
    for n, cmp in rows.items():
        print(f"{n:>8} {cmp.non_shared.slices:>11} {cmp.shared.slices:>8} "
              f"{cmp.slice_savings_pct:>8.1f}%")
        assert cmp.slice_savings_pct > prev  # monotone in stream count
        prev = cmp.slice_savings_pct
    assert rows[4].slice_savings_pct > 60  # the paper's operating point
