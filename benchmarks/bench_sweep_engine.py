"""SWEEP: the experiment engine itself — caching, determinism, fan-out.

The engine's two load-bearing claims get measured and asserted here:

* **bit-identity** — the same sweep run serially and on a process pool
  produces byte-equal payload digests (chunk-scoped solver caches + fixed
  chunk size make results independent of worker count and scheduling);
* **cached speedup** — replica-style sweeps (same analysis system solved
  at many points) hit the :class:`repro.exp.SolverCache` memo, cutting the
  Algorithm-1 solve count by the replication factor.

The run is persisted as ``BENCH_sweep_engine.json`` next to this file:
digests, timings, speedups, cache counters and the host CPU count, so a
regression in either claim is visible in the artifact diff.  Wall-clock
parallel speedup is asserted only on hosts with ≥4 CPUs — on smaller
machines the pool cannot beat the serial loop and the artifact records
why.

The artifact also carries a ``resilience`` section — kill → resume →
complete, measured: a run interrupted after its first journaled chunk
and resumed from the result store, and a chaos run whose work-queue
worker is SIGKILLed mid-chunk, must both land on the undisturbed serial
digest.
"""

import os
import tempfile

from repro.core.config_io import dump_report, load_report
from repro.core import make_report
from repro.exp import (
    ChaosEvent,
    ChaosPlan,
    Sweep,
    SweepInterrupted,
    run_chaos_sweep,
    run_sweep,
)
from repro.exp.tasks import scalability_blocksizes

from conftest import banner

#: two distinct systems × four replicas each; grid order is streams-major,
#: so each engine chunk (size 4) sees one system — 3 memo hits per chunk.
AXES = {"streams": [12, 16], "replica": [0, 1, 2, 3]}

HERE = os.path.dirname(os.path.abspath(__file__))
ARTIFACT = os.path.join(HERE, "BENCH_sweep_engine.json")


def make_sweep() -> Sweep:
    return Sweep.grid("sweep_engine", scalability_blocksizes, axes=AXES)


def test_sweep_cache_hit_rate_and_speedup(benchmark):
    sweep = make_sweep()
    cold = run_sweep(sweep, workers=1, cache=False)
    cached = benchmark(lambda: run_sweep(sweep, workers=1))
    banner("SWEEP solver-cache speedup (serial, 2 systems x 4 replicas)")
    stats = cached.cache
    speedup = cold.elapsed_s / cached.elapsed_s
    print(f"cold serial: {cold.elapsed_s * 1e3:.1f} ms, "
          f"cached serial: {cached.elapsed_s * 1e3:.1f} ms "
          f"({speedup:.1f}x)")
    print(f"cache: {stats['hits']}/{stats['lookups']} hits "
          f"({stats['hit_rate']:.0%}), {stats['warm_starts']} warm start(s)")
    # caching must not change results...
    assert cached.digest() == cold.digest()
    # ...and must actually reuse: 6 of 8 lookups are memo hits
    assert stats["hits"] == 6 and stats["hit_rate"] == 0.75
    # dodging 6 of 8 ILP solves buys at least 2x end to end
    assert speedup >= 2.0, f"cache speedup only {speedup:.2f}x"


def test_sweep_serial_parallel_bit_identical(benchmark):
    sweep = make_sweep()
    serial = run_sweep(sweep, workers=1)
    workers = min(4, os.cpu_count() or 1)
    parallel = benchmark.pedantic(
        lambda: run_sweep(sweep, workers=max(2, workers)), rounds=1
    )
    banner("SWEEP serial == parallel bit-identity")
    print(f"serial   {serial.digest()}")
    print(f"parallel {parallel.digest()}  ({parallel.workers} workers)")
    assert parallel.digest() == serial.digest()
    assert [o.id for o in parallel.outcomes] == [o.id for o in serial.outcomes]
    assert parallel.payload() == serial.payload()


def _resilience_scenario(sweep, reference_digest):
    """kill → resume → complete: the crash-tolerance claim, measured.

    Two disturbances against the same sweep, both required to land on the
    reference digest: (a) an interrupt after the first journaled chunk
    followed by a ``--resume`` run, and (b) a chaos run on the work-queue
    backend whose first chunk's worker is SIGKILLed mid-flight.
    """
    with tempfile.TemporaryDirectory() as store:
        try:
            run_sweep(sweep, workers=1, store=store, interrupt_after=1)
            raise AssertionError("interrupt_after=1 did not interrupt")
        except SweepInterrupted as err:
            journaled = err.completed_chunks
        resumed = run_sweep(sweep, workers=1, store=store, resume=True)
    plan = ChaosPlan(seed=13, events=(ChaosEvent(chunk=0, action="kill"),))
    chaotic, monkey = run_chaos_sweep(sweep, plan, workers=2)
    return {
        "interrupt_resume": {
            "journaled_chunks_at_kill": journaled,
            "resumed_chunks": resumed.resumed_chunks,
            "store_point_hits": resumed.store_hits,
            "digest": resumed.digest(),
            "digest_matches_serial": resumed.digest() == reference_digest,
        },
        "chaos_kill": {
            "plan": plan.to_dict(),
            "strikes": len(monkey.log),
            "worker_restarts": chaotic.worker_restarts,
            "quarantined": chaotic.quarantined,
            "digest": chaotic.digest(),
            "digest_matches_serial": chaotic.digest() == reference_digest,
        },
    }


def test_sweep_engine_artifact(benchmark):
    """One full comparison run, persisted as BENCH_sweep_engine.json."""
    sweep = make_sweep()

    def full_run():
        cold = run_sweep(sweep, workers=1, cache=False)
        cached = run_sweep(sweep, workers=1)
        workers = min(4, os.cpu_count() or 1)
        parallel = run_sweep(sweep, workers=max(2, workers))
        return cold, cached, parallel

    cold, cached, parallel = benchmark.pedantic(full_run, rounds=1)
    identical = (cold.digest() == cached.digest() == parallel.digest())
    resilience = _resilience_scenario(sweep, cached.digest())
    # genuine wall-clock parallel win is only physical with enough cores;
    # the artifact records whether the gate was enforced or skipped so a
    # green run on a 2-CPU host cannot be mistaken for a passed speedup
    gate_enforced = (os.cpu_count() or 1) >= 4 and parallel.workers >= 4
    speedup_gate = {
        "status": "enforced" if gate_enforced else "skipped",
        "cpu_count": os.cpu_count(),
        "parallel_workers": parallel.workers,
        "threshold": 3.0,
        "observed": round(cold.elapsed_s / parallel.elapsed_s, 2),
    }
    report = make_report("sweep", {
        "name": "sweep_engine",
        "axes": AXES,
        "points": len(sweep),
        "bit_identical": identical,
        "digests": {
            "cold_serial": cold.digest(),
            "cached_serial": cached.digest(),
            "parallel": parallel.digest(),
        },
        "timing_s": {
            "cold_serial": round(cold.elapsed_s, 4),
            "cached_serial": round(cached.elapsed_s, 4),
            "parallel": round(parallel.elapsed_s, 4),
            "speedup_cache": round(cold.elapsed_s / cached.elapsed_s, 2),
            "speedup_parallel": round(cold.elapsed_s / parallel.elapsed_s, 2),
        },
        "solver_cache": cached.cache,
        "speedup_gate": speedup_gate,
        "resilience": resilience,
        "environment": {
            "cpu_count": os.cpu_count(),
            "parallel_workers": parallel.workers,
            # what actually ran: on a 1-CPU host a "parallel" run is a
            # process pool multiplexed onto one core, and the attribution
            # below keeps the artifact from presenting it as a speedup
            "parallel_effective_workers": parallel.effective_workers,
            "parallel_mode": parallel.mode,
            "chunk_count": parallel.chunk_count,
            "chunk_size": parallel.chunk_size,
        },
    })
    with open(ARTIFACT, "w") as fh:
        fh.write(dump_report(report) + "\n")
    banner("SWEEP engine artifact")
    print(f"wrote {ARTIFACT}")
    print(f"speedup: cache {report['timing_s']['speedup_cache']}x, "
          f"parallel {report['timing_s']['speedup_parallel']}x "
          f"on {os.cpu_count()} CPU(s)")
    resume_ok = resilience["interrupt_resume"]["digest_matches_serial"]
    print(f"resilience: resume matched={resume_ok}, "
          f"chaos matched={resilience['chaos_kill']['digest_matches_serial']} "
          f"({resilience['chaos_kill']['strikes']} strike(s))")
    assert identical
    assert resilience["interrupt_resume"]["digest_matches_serial"]
    assert resilience["chaos_kill"]["digest_matches_serial"]
    assert resilience["chaos_kill"]["strikes"] >= 1
    assert resilience["chaos_kill"]["quarantined"] == []
    # the artifact round-trips through the versioned report schema
    assert load_report(open(ARTIFACT).read())["kind"] == "sweep"
    print(f"parallel speedup gate: {speedup_gate['status']} "
          f"(cpu_count={speedup_gate['cpu_count']}, "
          f"observed {speedup_gate['observed']}x)")
    if gate_enforced:
        speedup = cold.elapsed_s / parallel.elapsed_s
        assert speedup >= 3.0, f"parallel speedup only {speedup:.2f}x"
