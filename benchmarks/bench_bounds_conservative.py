"""EQ2-4: the analysis bounds against the cycle-level architecture.

Regenerates the refinement claim quantitatively: for a sweep of block
sizes and stream mixes, the measured block time and turnaround in the
MPSoC simulation never exceed τ̂ (Eq. 2) / γ̂ (Eq. 4) computed with the
architecture's measured per-sample costs, and the bounds stay tight
(within the pipeline-flush allowance).
"""

from fractions import Fraction

from repro.accel import MixerKernel
from repro.arch import Get, MPSoC, Put, TaskSpec
from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec, gamma, tau_hat

from conftest import banner


def drive(etas, eps=15, delta=1, R=200, blocks=4):
    soc = MPSoC(n_stations=8)
    prod = soc.add_processor("p")
    cons = soc.add_processor("c")
    total = [e * blocks for e in etas]
    ins = [prod.fifo_to(2, capacity=t + 8, name=f"in{i}") for i, t in enumerate(total)]
    outs = [soc.software_fifo(4, cons, capacity=t + 8, name=f"out{i}")
            for i, t in enumerate(total)]
    chain = soc.shared_chain(
        "g", [MixerKernel(0.0)],
        [{"name": f"s{i}", "eta": etas[i], "in_fifo": ins[i], "out_fifo": outs[i],
          "states": [MixerKernel(0.0).get_state()], "reconfigure_cycles": R}
         for i in range(len(etas))],
        entry_copy=eps, exit_copy=delta,
    )

    def producer(fifo, n):
        def gen():
            for k in range(n):
                yield Put(fifo, float(k))
        return gen

    def consumer(fifo, n):
        def gen():
            for _ in range(n):
                yield Get(fifo)
        return gen

    for i, t in enumerate(total):
        prod.add_task(TaskSpec(f"p{i}", producer(ins[i], t)))
        cons.add_task(TaskSpec(f"c{i}", consumer(outs[i], t)))
    prod.start()
    cons.start()
    soc.run(until=(R + max(etas) * (eps + 10)) * blocks * (len(etas) + 2) + 10000)
    return chain


def calibrated(etas, eps=15, delta=1, R=200):
    return GatewaySystem(
        accelerators=(AcceleratorSpec("a", 3),),  # ρ + NI overhead
        streams=tuple(StreamSpec(f"s{i}", Fraction(1, 10**9), R, block_size=e)
                      for i, e in enumerate(etas)),
        entry_copy=eps + 1,
        exit_copy=delta + 3,
    )


def test_eq2_block_times_conservative_and_tight(benchmark):
    etas = (16, 8)
    chain = benchmark(drive, etas)
    system = calibrated(etas)
    banner("EQ2 — measured block time vs τ̂ (calibrated)")
    print(f"{'stream':>7} {'η':>4} {'max τ':>7} {'τ̂':>7} {'slack':>6}")
    for i, eta in enumerate(etas):
        b = chain.binding(f"s{i}")
        measured = max(c - a for a, c in zip(b.admissions, b.completions))
        bound = tau_hat(system, f"s{i}")
        print(f"{f's{i}':>7} {eta:>4} {measured:>7} {bound:>7} {bound - measured:>6}")
        assert measured <= bound
        assert bound <= 1.5 * measured  # not vacuous


def test_eq4_turnaround_conservative(benchmark):
    etas = (16, 16, 8)
    chain = benchmark(drive, etas, blocks=5)
    system = calibrated(etas)
    banner("EQ4 — inter-completion gap vs γ̂")
    for i in range(len(etas)):
        b = chain.binding(f"s{i}")
        gaps = [c2 - c1 for c1, c2 in zip(b.completions, b.completions[1:])]
        bound = gamma(system, f"s{i}")
        print(f"s{i}: max gap {max(gaps)} ≤ γ̂ {bound}")
        assert max(gaps) <= bound


def test_eq3_interference_grows_with_stream_count(benchmark):
    """ε̂ (and hence γ̂) scales with the number of co-multiplexed streams —
    and so does the measured turnaround."""

    def measure(n_streams):
        etas = (8,) * n_streams
        chain = drive(etas, blocks=4)
        b = chain.binding("s0")
        gaps = [c2 - c1 for c1, c2 in zip(b.completions, b.completions[1:])]
        return max(gaps)

    worst = benchmark(measure, 3)
    single = measure(1)
    double = measure(2)
    print(f"\nmax turnaround: 1 stream {single}, 2 streams {double}, 3 streams {worst}")
    assert single < double < worst
