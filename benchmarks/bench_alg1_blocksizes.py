"""ALG1: the block-size ILP on the PAL demonstrator.

Paper: "we computed that for 44.1 kHz audio output, the streams at the
start of the chain need to multiplex blocks of 10136 samples while the
streams at the end of the chain will be multiplexed at 1267 samples (note
the 8:1 ratio in the block sizes due to down-sampling)."

Reproduced: η = 9870 / 1234 at the nominal 100 MHz parameters (the paper's
exact values correspond to a 0.127% rate margin — both satisfy Eq. 5 and
both show the 8:1 structure).  See EXPERIMENTS.md.
"""

from fractions import Fraction

from repro.app import PAPER_BLOCK_SIZES, pal_block_sizes, pal_gateway_system
from repro.core import compute_block_sizes, throughput_satisfied
from repro.exp import Sweep, run_sweep
from repro.exp.tasks import pal_blocksizes

from conftest import banner


def test_alg1_pal_block_sizes(benchmark):
    sizes = benchmark(pal_block_sizes)
    banner("ALG1 block sizes (streams over shared CORDIC+FIR chain)")
    print(f"{'stream':<10} {'computed η':>11} {'paper η':>9}")
    paper = {"s1": PAPER_BLOCK_SIZES["stage1"], "s2": PAPER_BLOCK_SIZES["stage2"]}
    for name, eta in sorted(sizes.items()):
        stage = name.split(".")[1]
        print(f"{name:<10} {eta:>11} {paper[stage]:>9}")
    s1, s2 = sizes["ch1.s1"], sizes["ch1.s2"]
    # the 8:1 ratio holds within integer rounding
    assert abs(s1 - 8 * s2) <= 8
    # within 3% of the published values
    assert abs(s1 - 10136) / 10136 < 0.03
    assert abs(s2 - 1267) / 1267 < 0.03
    # the solution actually satisfies Eq. 5
    system = pal_gateway_system().with_block_sizes(sizes)
    assert throughput_satisfied(system)


def test_alg1_exact_paper_values_with_margin(benchmark):
    sizes = benchmark(pal_block_sizes, rate_margin=Fraction(100127, 100000))
    banner("ALG1 with the prototype's implied 0.127% rate margin")
    print(f"stage-1: {sizes['ch1.s1']} (paper 10136), "
          f"stage-2: {sizes['ch1.s2']} (paper 1267)")
    assert sizes["ch1.s1"] == 10136
    assert sizes["ch1.s2"] == 1267


def test_alg1_margin_sweep_engine(benchmark):
    """The rate-margin sweep through repro.exp: nominal vs prototype margin."""
    sweep = Sweep.grid(
        "alg1_margins", pal_blocksizes, axes={"margin_ppm": [0, 635, 1270]}
    )

    def run():
        result = run_sweep(sweep, workers=1)
        return {o.params["margin_ppm"]: o.value["block_sizes"] for o in result.succeeded}

    by_margin = benchmark(run)
    banner("ALG1 margin sweep via repro.exp (0 / 635 / 1270 ppm)")
    for ppm, sizes in sorted(by_margin.items()):
        print(f"  {ppm:>5} ppm: s1={sizes['ch1.s1']}, s2={sizes['ch1.s2']}")
    # the prototype's 0.127% margin lands on the paper's exact values
    assert by_margin[1270]["ch1.s1"] == 10136
    assert by_margin[1270]["ch1.s2"] == 1267
    # tighter margins never allow larger blocks
    s1 = [by_margin[p]["ch1.s1"] for p in (0, 635, 1270)]
    assert s1 == sorted(s1)


def test_alg1_minimality(benchmark, pal_system):
    """One sample less on any stream breaks Eq. 5 — Ση is truly minimal."""
    result = benchmark(compute_block_sizes, pal_system)
    sizes = result.block_sizes
    for name in sizes:
        smaller = dict(sizes)
        smaller[name] -= 1
        cand = pal_system.with_block_sizes(smaller)
        assert not throughput_satisfied(cand), f"{name} not minimal"
