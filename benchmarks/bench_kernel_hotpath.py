"""KERN: microbenchmarks of the discrete-event kernel hot path.

Every architecture result in this repo is produced by the event loop in
:mod:`repro.sim.kernel`; the sweep engine multiplies how often it runs.
These benches pin down the loop's per-event cost on three workloads —
a timeout storm (pure scheduling), same-cycle bursts (the bucket fast
path) and a full gateway simulation (the loop under its real instruction
mix) — and assert the optimisations change no observable behaviour
(final clock, event order, metrics).

The macro benchmark (``test_kernel_macro_sparse_wheel_vs_heap``) is the
gate for the calendar-queue + temporal-decoupling rewrite: it drives a
long-horizon, sparse-in-time periodic workload (the block-periodic shape
the shared-accelerator MPSoC produces: every stream's timers align on
block boundaries) through both the production kernel and the frozen
heap-only reference (:mod:`repro.sim.refkernel`) and asserts

* the observable traces are **bit-identical**,
* the cycle-skip path engages (nonzero ``skipped_cycles``),
* events/sec improves by at least :data:`MACRO_MIN_SPEEDUP` (full mode).

Full mode simulates ``10**8`` cycles and persists the before/after
comparison as ``BENCH_kernel_wheel.json`` next to this file.  Setting
``KERNEL_BENCH_SMOKE=1`` (CI) shrinks the horizon and only sanity-checks
the speedup, keeping the identity and cycle-skip assertions strict.
"""

import os
import time
from fractions import Fraction

from repro.core.config_io import dump_report, make_report
from repro.sim import Simulator, kernel, refkernel

from conftest import banner

PROCS = 50
TICKS = 200

#: CI smoke mode: small horizon, no artifact, lenient speedup gate
SMOKE = os.environ.get("KERNEL_BENCH_SMOKE") == "1"

MACRO_HORIZON = 1_000_000 if SMOKE else 100_000_000
MACRO_PROCS = 256
#: harmonic block periods (cycles): sparse in time, bursty per cycle
MACRO_PERIODS = (6_400, 12_800, 25_600, 51_200)
#: required events/sec improvement of the calendar queue over the heap
MACRO_MIN_SPEEDUP = 1.2 if SMOKE else 2.0

HERE = os.path.dirname(os.path.abspath(__file__))
ARTIFACT = os.path.join(HERE, "BENCH_kernel_wheel.json")


def timeout_storm(procs: int = PROCS, ticks: int = TICKS) -> int:
    """`procs` generators each sleeping `ticks` staggered timeouts."""
    sim = Simulator()

    def ticker(offset):
        for i in range(ticks):
            yield sim.timeout(1 + (offset + i) % 3)

    for p in range(procs):
        sim.process(ticker(p), name=f"t{p}")
    sim.run()
    return sim.now


def same_cycle_bursts(rounds: int = 300, width: int = 40) -> int:
    """`width` events per cycle for `rounds` cycles: the batched-pop path."""
    sim = Simulator()

    def burster():
        for _ in range(rounds):
            yield sim.timeout(1)

    for _ in range(width):
        sim.process(burster())
    sim.run()
    return sim.now


def bounded_run_until(procs: int = PROCS, ticks: int = TICKS) -> bool:
    """The harness driver loop: run_until a completion event with a cap."""
    sim = Simulator()

    def ticker():
        for _ in range(ticks):
            yield sim.timeout(2)

    last = [sim.process(ticker(), name=f"t{p}") for p in range(procs)][-1]
    return sim.run_until(last, limit=10 * ticks)


def simulate_small_system():
    from repro.arch import simulate_system
    from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(
            StreamSpec("s0", Fraction(1, 100_000), 40, block_size=8),
            StreamSpec("s1", Fraction(1, 200_000), 40, block_size=4),
        ),
        entry_copy=6,
        exit_copy=1,
    )
    return simulate_system(system, blocks=3, trace=False)


def test_kernel_timeout_storm(benchmark):
    now = benchmark(timeout_storm)
    banner("KERN timeout storm (50 procs x 200 timeouts)")
    print(f"final clock: {now} cycles, {PROCS * TICKS} events fired")
    assert now == max(
        sum(1 + (p + i) % 3 for i in range(TICKS)) for p in range(PROCS)
    )


def test_kernel_same_cycle_bursts(benchmark):
    now = benchmark(same_cycle_bursts)
    banner("KERN same-cycle bursts (40 events/cycle x 300 cycles)")
    print(f"final clock: {now} cycles")
    assert now == 300


def test_kernel_bounded_run_until(benchmark):
    finished = benchmark(bounded_run_until)
    assert finished


def test_kernel_under_real_simulation(benchmark):
    run = benchmark(simulate_small_system)
    banner("KERN full gateway simulation (2 streams x 3 blocks)")
    print(f"horizon: {run.horizon} cycles")
    metrics = run.metrics()
    assert all(m.blocks_done == 3 for m in metrics.values())


# -- long-horizon macro benchmark: calendar queue vs frozen heap kernel ----

def sparse_periodic_storm(kernel_module, horizon=MACRO_HORIZON):
    """Block-periodic timers over a long, mostly idle horizon.

    ``MACRO_PROCS`` processes sleep on harmonic block periods, so events
    cluster on sparse, shared cycles — the traffic shape of the paper's
    architecture, where every stream's activity aligns on block
    boundaries.  Returns (elapsed_s, events, trace, skipped_cycles); the
    trace encodes the full observable dispatch order as ``now * 1024 +
    pid`` integers, so equality between two kernels is bit-identity of
    event ordering.
    """
    sim = kernel_module.Simulator()
    trace = []
    record = trace.append

    def ticker(pid, period):
        while sim.now + period <= horizon:
            yield sim.timeout(period)
            record(sim.now * 1024 + pid)

    for pid in range(MACRO_PROCS):
        period = MACRO_PERIODS[pid % len(MACRO_PERIODS)]
        sim.process(ticker(pid, period), name=f"p{pid}")
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return elapsed, len(trace), trace, getattr(sim, "skipped_cycles", 0)


def test_kernel_macro_sparse_wheel_vs_heap():
    # best-of-2 per kernel damps scheduler/GC noise in the ratio
    ref_s, ref_n, ref_trace, _ = min(
        (sparse_periodic_storm(refkernel) for _ in range(2)), key=lambda r: r[0]
    )
    new_s, new_n, new_trace, skipped = min(
        (sparse_periodic_storm(kernel) for _ in range(2)), key=lambda r: r[0]
    )
    ref_eps = ref_n / ref_s
    new_eps = new_n / new_s
    speedup = new_eps / ref_eps
    banner(f"KERN macro: sparse periodic storm ({MACRO_HORIZON:.0e} cycles, "
           f"{MACRO_PROCS} procs)")
    print(f"heap reference: {ref_n} events in {ref_s:.3f}s ({ref_eps / 1e3:.0f}k ev/s)")
    print(f"calendar queue: {new_n} events in {new_s:.3f}s ({new_eps / 1e3:.0f}k ev/s)")
    print(f"speedup {speedup:.2f}x, {skipped} cycles skipped "
          f"({skipped / MACRO_HORIZON:.1%} of horizon)")

    # observable behaviour is bit-identical: same events, same order
    assert new_trace == ref_trace, "calendar queue changed the dispatch order"
    # temporal decoupling engages: almost the whole horizon is jumped over
    assert skipped > 0.9 * MACRO_HORIZON
    assert speedup >= MACRO_MIN_SPEEDUP, (
        f"events/sec improved only {speedup:.2f}x "
        f"(gate {MACRO_MIN_SPEEDUP}x, smoke={SMOKE})"
    )

    if not SMOKE:
        report = make_report("bench", {
            "name": "kernel_wheel",
            "workload": {
                "horizon_cycles": MACRO_HORIZON,
                "processes": MACRO_PROCS,
                "periods": list(MACRO_PERIODS),
                "events": new_n,
            },
            "before": {"kernel": "heap (repro.sim.refkernel)",
                       "elapsed_s": ref_s, "events_per_s": ref_eps},
            "after": {"kernel": "calendar queue (repro.sim.kernel)",
                      "elapsed_s": new_s, "events_per_s": new_eps,
                      "skipped_cycles": skipped},
            "speedup": speedup,
            "trace_bit_identical": True,
        })
        with open(ARTIFACT, "w") as fh:
            fh.write(dump_report(report) + "\n")
