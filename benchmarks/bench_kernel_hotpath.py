"""KERN: microbenchmarks of the discrete-event kernel hot path.

Every architecture result in this repo is produced by the heapq event loop
in :mod:`repro.sim.kernel`; the sweep engine multiplies how often it runs.
These benches pin down the loop's per-event cost on three workloads —
a timeout storm (pure scheduling), same-cycle bursts (the batched-pop
path) and a full gateway simulation (the loop under its real instruction
mix) — and assert the optimisations change no observable behaviour
(final clock, event order, metrics).
"""

from fractions import Fraction

from repro.sim import Simulator

from conftest import banner

PROCS = 50
TICKS = 200


def timeout_storm(procs: int = PROCS, ticks: int = TICKS) -> int:
    """`procs` generators each sleeping `ticks` staggered timeouts."""
    sim = Simulator()

    def ticker(offset):
        for i in range(ticks):
            yield sim.timeout(1 + (offset + i) % 3)

    for p in range(procs):
        sim.process(ticker(p), name=f"t{p}")
    sim.run()
    return sim.now


def same_cycle_bursts(rounds: int = 300, width: int = 40) -> int:
    """`width` events per cycle for `rounds` cycles: the batched-pop path."""
    sim = Simulator()

    def burster():
        for _ in range(rounds):
            yield sim.timeout(1)

    for _ in range(width):
        sim.process(burster())
    sim.run()
    return sim.now


def bounded_run_until(procs: int = PROCS, ticks: int = TICKS) -> bool:
    """The harness driver loop: run_until a completion event with a cap."""
    sim = Simulator()

    def ticker():
        for _ in range(ticks):
            yield sim.timeout(2)

    last = [sim.process(ticker(), name=f"t{p}") for p in range(procs)][-1]
    return sim.run_until(last, limit=10 * ticks)


def simulate_small_system():
    from repro.arch import simulate_system
    from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("a", 1),),
        streams=(
            StreamSpec("s0", Fraction(1, 100_000), 40, block_size=8),
            StreamSpec("s1", Fraction(1, 200_000), 40, block_size=4),
        ),
        entry_copy=6,
        exit_copy=1,
    )
    return simulate_system(system, blocks=3, trace=False)


def test_kernel_timeout_storm(benchmark):
    now = benchmark(timeout_storm)
    banner("KERN timeout storm (50 procs x 200 timeouts)")
    print(f"final clock: {now} cycles, {PROCS * TICKS} events fired")
    assert now == max(
        sum(1 + (p + i) % 3 for i in range(TICKS)) for p in range(PROCS)
    )


def test_kernel_same_cycle_bursts(benchmark):
    now = benchmark(same_cycle_bursts)
    banner("KERN same-cycle bursts (40 events/cycle x 300 cycles)")
    print(f"final clock: {now} cycles")
    assert now == 300


def test_kernel_bounded_run_until(benchmark):
    finished = benchmark(bounded_run_until)
    assert finished


def test_kernel_under_real_simulation(benchmark):
    run = benchmark(simulate_small_system)
    banner("KERN full gateway simulation (2 streams x 3 blocks)")
    print(f"horizon: {run.horizon} cycles")
    metrics = run.metrics()
    assert all(m.blocks_done == 3 for m in metrics.values())
