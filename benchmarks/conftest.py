"""Shared fixtures/utilities for the benchmark harness.

Every file regenerates one table or figure of the paper (see DESIGN.md's
experiment index).  Benchmarks both *time* the analysis machinery and
*assert* the reproduced numbers, so `pytest benchmarks/ --benchmark-only`
doubles as the reproduction run.  Run with `-s` to see the regenerated
rows next to the paper's published values.
"""

from fractions import Fraction

import pytest

from repro.core import AcceleratorSpec, GatewaySystem, StreamSpec


@pytest.fixture
def pal_system():
    """The PAL demonstrator's analysis model (4 streams, 2 accelerators)."""
    from repro.app import pal_gateway_system

    return pal_gateway_system()


@pytest.fixture
def small_system():
    """A small system for model-level benchmarks."""
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=(
            StreamSpec("s0", Fraction(1, 60), 100),
            StreamSpec("s1", Fraction(1, 120), 100),
        ),
        entry_copy=15,
        exit_copy=1,
    )


def banner(title: str) -> None:
    print(f"\n=== {title} ===")
