"""Reproduction of Dekens, Bekooij & Smit, *Real-Time Multiprocessor
Architecture for Sharing Stream Processing Accelerators* (IPDPSW 2015).

Package map
-----------

=================  ===========================================================
``repro.core``     the paper's contribution: per-stream CSDF/SDF models,
                   Eqs. 1–5, the Algorithm-1 block-size ILP, buffer-optimal
                   search, verification and utilization analysis
``repro.dataflow`` (C)SDF substrate: graphs, repetition vectors, HSDF + MCM,
                   state-space throughput, buffer minimisation, refinement
``repro.ilp``      ILP modelling layer with SciPy-HiGHS and own B&B backends
``repro.arch``     cycle-level MPSoC model: dual ring, credit NIs, C-FIFOs,
                   budget-scheduled processors, accelerator tiles, gateways
``repro.accel``    CORDIC / FIR+down-sampler kernels, synthetic PAL front-end
``repro.app``      the PAL stereo audio decoder (functional + architectural)
``repro.hwcost``   Virtex-6 cost database and Table-I sharing comparison
``repro.sim``      discrete-event simulation kernel
``repro.api``      unified facade: ``Scenario`` builder → ``RunResult``
``repro.exp``      parallel experiment engine: validated sweeps, solver
                   cache, process-pool fan-out, ``BENCH_*.json`` artifacts
=================  ===========================================================

Quickstart::

    from fractions import Fraction
    from repro.core import (AcceleratorSpec, GatewaySystem, StreamSpec,
                            compute_block_sizes, verify_system)

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("cordic", 1),),
        streams=(StreamSpec("radio_a", Fraction(1, 60), reconfigure=4100),
                 StreamSpec("radio_b", Fraction(1, 90), reconfigure=4100)),
        entry_copy=15, exit_copy=1,
    )
    sizes = compute_block_sizes(system).block_sizes
    report = verify_system(system.with_block_sizes(sizes))
    assert report.ok
"""

from . import accel, api, app, arch, core, dataflow, exp, hwcost, ilp, sim

__version__ = "1.0.0"

__all__ = ["accel", "api", "app", "arch", "core", "dataflow", "exp", "hwcost",
           "ilp", "sim", "__version__"]
