"""Deterministic, seeded fault injection for the architecture model.

The paper's bounds (Eq. 2–5) assume fault-free accelerators, ring links and
C-FIFOs.  This module supplies the failure model that lets the rest of the
repo answer "what happens when a component misbehaves?":

* :class:`FaultSpec` — one typed fault (kind, arming cycle, target, shape),
* :class:`FaultPlan` — an ordered, JSON-serialisable collection of specs
  plus the RNG seed that makes probabilistic faults reproducible,
* :class:`FaultInjector` — the runtime object the architecture components
  query from their hook points (``DualRing.post``, ``AcceleratorTile``
  firings, ``CFifo`` pointer posts, gateway reconfiguration),
* :class:`WatchdogConfig` — entry-gateway recovery policy (per-stream cycle
  budgets derived from the γ_s turnaround bound, retry cap, backoff shape),
* :class:`AdmissionController` — graceful degradation: pauses the
  lowest-priority streams while recovery overhead breaks the Eq. 5
  throughput check and re-admits them after a healthy window.

Everything here is architecture-agnostic: the module only speaks in
component *names* and cycle numbers, never imports :mod:`repro.arch`, and
stays fully deterministic for a fixed plan (the single :class:`random.Random`
instance is seeded from the plan and consulted in simulation order).
"""

from __future__ import annotations

import json
import random
from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterable

from .trace import Kind, Tracer

__all__ = [
    "FaultError",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "WatchdogConfig",
    "AdmissionController",
    "StreamRequirement",
    "ACCEL_STALL",
    "RING_DELAY",
    "RING_DROP",
    "CFIFO_PTR_LOSS",
    "RECONFIG_FAIL",
    "TASK_STALL",
    "TILE_FAILURE",
    "STREAM_JOIN",
    "STREAM_LEAVE",
    "FAULT_KINDS",
    "CHURN_KINDS",
]


class FaultError(ValueError):
    """Raised for malformed fault specifications or plans."""


#: an accelerator tile stalls (or slows) for ``extra`` cycles per firing
ACCEL_STALL = "accel_stall"
#: flits between two ring stations are delayed by ``extra`` cycles
RING_DELAY = "ring_delay"
#: flits between two ring stations are dropped (probabilistically)
RING_DROP = "ring_drop"
#: a C-FIFO pointer-update flit is lost (credit desynchronisation)
CFIFO_PTR_LOSS = "cfifo_ptr_loss"
#: gateway reconfiguration fails and must be repeated
RECONFIG_FAIL = "reconfig_fail"
#: a processor task overruns its budget by ``extra`` cycles
TASK_STALL = "task_stall"
#: an accelerator tile dies for good on its next firing (spare failover)
TILE_FAILURE = "permanent_tile_failure"
#: a new stream requests admission mid-run (``params`` carries its spec)
STREAM_JOIN = "stream_join"
#: a running stream requests departure mid-run
STREAM_LEAVE = "stream_leave"

FAULT_KINDS = frozenset(
    {ACCEL_STALL, RING_DELAY, RING_DROP, CFIFO_PTR_LOSS, RECONFIG_FAIL,
     TASK_STALL, TILE_FAILURE, STREAM_JOIN, STREAM_LEAVE}
)

#: kinds handled by the reconfiguration manager, not the injector hooks
CHURN_KINDS = frozenset({STREAM_JOIN, STREAM_LEAVE})

#: spec fields serialised to / parsed from JSON, in canonical order
_SPEC_FIELDS = (
    "kind",
    "at",
    "target",
    "duration",
    "extra",
    "count",
    "probability",
    "ring",
    "side",
    "src",
    "dst",
    "params",
)


@dataclass(frozen=True)
class FaultSpec:
    """One typed fault, armed for a window of simulated cycles.

    Parameters
    ----------
    kind:
        One of the module-level fault-kind constants.
    at:
        First cycle at which the fault is armed.
    target:
        Component name the fault applies to (tile name for
        :data:`ACCEL_STALL`, fifo name for :data:`CFIFO_PTR_LOSS`, stream
        name for :data:`RECONFIG_FAIL` / :data:`TASK_STALL`).  ``None``
        matches every component the kind can affect.
    duration:
        Width of the armed window in cycles (armed while
        ``at <= now < at + duration``).
    extra:
        Added latency in cycles (stall/delay kinds).
    count:
        Cap on how many times the fault may fire; ``None`` = unlimited
        within the window.
    probability:
        For :data:`RING_DROP`: per-flit drop probability (drawn from the
        plan's seeded RNG).  ``None`` means drop every matching flit.
    ring:
        ``"data"`` or ``"credit"`` — which ring a link fault applies to.
    side:
        For :data:`CFIFO_PTR_LOSS`: ``"write"`` (wptr update lost, consumer
        starves) or ``"read"`` (rptr update lost, producer loses credit).
    src / dst:
        Ring station pair a link fault applies to; ``None`` matches any.
    params:
        For :data:`STREAM_JOIN`: the joining stream's parameters — at least
        ``"throughput"`` (``[num, den]`` samples/cycle) and ``"reconfigure"``
        (``R_s`` cycles); optionally ``"block_size"`` to skip the online
        re-solve for this stream.
    """

    kind: str
    at: int
    target: str | None = None
    duration: int = 1
    extra: int = 0
    count: int | None = None
    probability: float | None = None
    ring: str = "data"
    side: str = "write"
    src: int | None = None
    dst: int | None = None
    params: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise FaultError(f"fault arming cycle must be >= 0, got {self.at}")
        if self.duration < 1:
            raise FaultError(f"fault duration must be >= 1, got {self.duration}")
        if self.count is not None and self.count < 1:
            raise FaultError(f"fault count must be >= 1, got {self.count}")
        if self.kind in (ACCEL_STALL, RING_DELAY, TASK_STALL) and self.extra < 1:
            raise FaultError(f"{self.kind} needs extra >= 1 cycles, got {self.extra}")
        if self.ring not in ("data", "credit"):
            raise FaultError(f"ring must be 'data' or 'credit', got {self.ring!r}")
        if self.side not in ("write", "read"):
            raise FaultError(f"side must be 'write' or 'read', got {self.side!r}")
        if self.probability is not None and not (0.0 < self.probability <= 1.0):
            raise FaultError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.probability is not None and self.kind != RING_DROP:
            raise FaultError("probability is only meaningful for ring_drop faults")
        if self.kind in (TILE_FAILURE, STREAM_JOIN, STREAM_LEAVE) and not self.target:
            what = "tile" if self.kind == TILE_FAILURE else "stream"
            raise FaultError(f"{self.kind} needs a target {what} name")
        if self.params is not None and self.kind != STREAM_JOIN:
            raise FaultError("params is only meaningful for stream_join faults")
        if self.kind == STREAM_JOIN:
            p = self.params
            if not isinstance(p, dict):
                raise FaultError(
                    "stream_join needs a params dict with at least "
                    "'throughput' ([num, den]) and 'reconfigure' (cycles)"
                )
            missing = {"throughput", "reconfigure"} - set(p)
            if missing:
                raise FaultError(
                    f"stream_join params missing {sorted(missing)}; got "
                    f"{sorted(p)}"
                )
            tp = p["throughput"]
            if (not isinstance(tp, (list, tuple)) or len(tp) != 2
                    or not all(isinstance(v, int) and v > 0 for v in tp)):
                raise FaultError(
                    "stream_join params['throughput'] must be a positive "
                    f"[num, den] pair, got {tp!r}"
                )

    @property
    def throughput(self) -> Fraction:
        """The joining stream's required rate (:data:`STREAM_JOIN` only)."""
        if self.kind != STREAM_JOIN or self.params is None:
            raise FaultError(f"{self.kind} specs carry no throughput")
        num, den = self.params["throughput"]
        return Fraction(num, den)

    @property
    def until(self) -> int:
        """First cycle past the armed window."""
        return self.at + self.duration

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name in _SPEC_FIELDS:
            value = getattr(self, name)
            if name in ("kind", "at") or value != FaultSpec.__dataclass_fields__[
                name
            ].default:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        unknown = set(data) - set(_SPEC_FIELDS)
        if unknown:
            raise FaultError(f"unknown fault-spec fields: {sorted(unknown)}")
        if "kind" not in data or "at" not in data:
            raise FaultError("a fault spec needs at least 'kind' and 'at'")
        try:
            return cls(**data)
        except TypeError as err:
            raise FaultError(f"malformed fault spec {data!r}: {err}") from err


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, reproducible collection of :class:`FaultSpec` objects."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def churn(self) -> tuple[FaultSpec, ...]:
        """Join/leave requests, for the reconfiguration manager."""
        return tuple(s for s in self.specs if s.kind in CHURN_KINDS)

    @property
    def tile_failures(self) -> tuple[FaultSpec, ...]:
        """Permanent tile failures, for spare provisioning checks."""
        return tuple(s for s in self.specs if s.kind == TILE_FAILURE)

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "faults": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultError(f"fault plan must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultError(f"unknown fault-plan fields: {sorted(unknown)}")
        raw = data.get("faults", [])
        if not isinstance(raw, list):
            raise FaultError("'faults' must be a list of fault specs")
        return cls(
            specs=tuple(FaultSpec.from_dict(d) for d in raw),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise FaultError(f"invalid fault-plan JSON: {err}") from err
        return cls.from_dict(data)


class FaultInjector:
    """Runtime fault oracle the architecture components query at hook points.

    The injector is passive: components *ask* it whether a fault applies at
    the current cycle, and it answers deterministically from the plan (and
    the plan's seeded RNG for probabilistic drops).  Every fault that fires
    is recorded in :attr:`events` (and mirrored to the tracer as
    :data:`Kind.FAULT` records) so conformance checking can later attribute
    bound violations to their causes.
    """

    def __init__(self, plan: FaultPlan, sim: Any, tracer: Tracer | None = None) -> None:
        self.plan = plan
        self.sim = sim
        self.tracer = tracer
        self.rng = random.Random(plan.seed)
        #: chronological record of every fault that actually fired
        self.events: list[dict[str, Any]] = []
        self._fired: Counter[int] = Counter()  # spec index -> times fired
        #: dropped flits per (ring, src, dst), awaiting repair
        self._lost: Counter[tuple[str, int, int]] = Counter()

    # -- internals -------------------------------------------------------
    def _armed(self, spec: FaultSpec, idx: int) -> bool:
        if spec.kind == TILE_FAILURE:
            # a permanent failure latches: armed from ``at`` onward until
            # it has fired once (the tile never asks again after dying)
            if self.sim.now < spec.at or self._fired[idx] >= 1:
                return False
            return True
        if not (spec.at <= self.sim.now < spec.until):
            return False
        if spec.count is not None and self._fired[idx] >= spec.count:
            return False
        return True

    def _fire(self, spec: FaultSpec, idx: int, **detail: Any) -> None:
        self._fired[idx] += 1
        record = {
            "time": self.sim.now,
            "kind": spec.kind,
            "target": spec.target,
            **detail,
        }
        self.events.append(record)
        if self.tracer is not None:
            self.tracer.log(self.sim.now, "fault-injector", Kind.FAULT,
                            fault=spec.kind, **{k: v for k, v in record.items()
                                                if k not in ("time", "kind")})

    def _matching(self, kind: str) -> Iterable[tuple[int, FaultSpec]]:
        for idx, spec in enumerate(self.plan.specs):
            if spec.kind == kind and self._armed(spec, idx):
                yield idx, spec

    # -- hook points -----------------------------------------------------
    def accel_extra(self, tile_name: str) -> int:
        """Extra stall cycles for one firing of ``tile_name`` (0 = healthy)."""
        total = 0
        for idx, spec in self._matching(ACCEL_STALL):
            if spec.target is not None and spec.target != tile_name:
                continue
            self._fire(spec, idx, target=tile_name, extra=spec.extra)
            total += spec.extra
        return total

    def ring_fault(self, ring: str, src: int, dst: int) -> tuple[int, bool]:
        """(extra delay, dropped?) for a flit from ``src`` to ``dst``.

        Dropped flits are remembered per ``(ring, src, dst)`` so recovery
        can later settle the books via :meth:`claim_drops`.
        """
        delay = 0
        dropped = False
        for idx, spec in self._matching(RING_DELAY):
            if spec.ring != ring:
                continue
            if spec.src is not None and spec.src != src:
                continue
            if spec.dst is not None and spec.dst != dst:
                continue
            self._fire(spec, idx, ring=ring, src=src, dst=dst, extra=spec.extra)
            delay += spec.extra
        for idx, spec in self._matching(RING_DROP):
            if spec.ring != ring:
                continue
            if spec.src is not None and spec.src != src:
                continue
            if spec.dst is not None and spec.dst != dst:
                continue
            if spec.probability is not None and self.rng.random() >= spec.probability:
                continue
            self._fire(spec, idx, ring=ring, src=src, dst=dst)
            dropped = True
        if dropped:
            self._lost[(ring, src, dst)] += 1
        return delay, dropped

    def cfifo_ptr_loss(self, fifo_name: str, side: str) -> bool:
        """Should this ``side`` ("write"/"read") pointer update be lost?"""
        for idx, spec in self._matching(CFIFO_PTR_LOSS):
            if spec.target is not None and spec.target != fifo_name:
                continue
            if spec.side != side:
                continue
            self._fire(spec, idx, target=fifo_name, side=side)
            return True
        return False

    def reconfig_fails(self, stream: str) -> bool:
        """Does this reconfiguration attempt for ``stream`` fail?"""
        for idx, spec in self._matching(RECONFIG_FAIL):
            if spec.target is not None and spec.target != stream:
                continue
            self._fire(spec, idx, target=stream)
            return True
        return False

    def tile_fails(self, tile_name: str) -> bool:
        """Does ``tile_name`` die permanently at this firing?

        Queried by the tile before each firing; a ``True`` answer is
        terminal — the tile marks itself dead and never asks again.
        """
        for idx, spec in self._matching(TILE_FAILURE):
            if spec.target != tile_name:
                continue
            self._fire(spec, idx, target=tile_name)
            return True
        return False

    def task_stall(self, stream: str) -> int:
        """Extra budget-overrun cycles for ``stream``'s producer task."""
        total = 0
        for idx, spec in self._matching(TASK_STALL):
            if spec.target is not None and spec.target != stream:
                continue
            self._fire(spec, idx, target=stream, extra=spec.extra)
            total += spec.extra
        return total

    # -- recovery support ------------------------------------------------
    def claim_drops(self, data_src: int, data_dst: int) -> tuple[int, int]:
        """Take (and reset) the drop counts for one data-direction channel.

        Returns ``(data_drops, credit_drops)``: data flits lost on the way
        ``data_src → data_dst`` and credit-return flits lost on the way
        back (``data_dst → data_src`` on the credit ring).
        """
        data = self._lost.pop(("data", data_src, data_dst), 0)
        credit = self._lost.pop(("credit", data_dst, data_src), 0)
        return data, credit

    @property
    def pending_losses(self) -> int:
        """Credits dropped by ring faults and not yet repaired."""
        return sum(self._lost.values())

    def max_ring_delay(self) -> int:
        """Worst extra per-flit delay any armed-at-any-time spec can add."""
        return max(
            (s.extra for s in self.plan.specs if s.kind == RING_DELAY), default=0
        )


@dataclass
class WatchdogConfig:
    """Entry-gateway recovery policy.

    The watchdog arms a per-block timer when a block is admitted; if the
    exit gateway has not signalled pipeline-idle within the stream's cycle
    budget (γ_s turnaround bound plus ``slack``), the chain is flushed and
    the block retransmitted with bounded exponential backoff.
    """

    #: stream name -> cycle budget (γ_s bound; :attr:`slack` is added on top)
    budgets: dict[str, int] = field(default_factory=dict)
    #: budget for streams not listed in :attr:`budgets`
    default_budget: int = 100_000
    #: grace cycles added to every budget
    slack: int = 64
    #: cycles between chain-quiescence probes while flushing
    settle_cycles: int = 64
    #: maximum quiescence probes before giving up on a flush
    settle_rounds: int = 64
    #: first retry backoff (cycles); doubles per retry up to :attr:`backoff_cap`
    backoff_base: int = 32
    backoff_cap: int = 2048
    #: retransmissions per block before the stream is declared failed
    retry_limit: int = 4
    #: admission-poll stall horizon after which lost credits are repaired
    stall_resync_after: int = 4096
    #: called with the stream name when its retry cap is exhausted
    on_stream_failed: Callable[[str], None] | None = None

    def __post_init__(self) -> None:
        if self.slack < 0:
            raise FaultError(f"watchdog slack must be >= 0, got {self.slack}")
        if self.retry_limit < 0:
            raise FaultError(f"retry limit must be >= 0, got {self.retry_limit}")
        if self.backoff_base < 1 or self.backoff_cap < self.backoff_base:
            raise FaultError(
                f"backoff must satisfy 1 <= base <= cap, got "
                f"base={self.backoff_base} cap={self.backoff_cap}"
            )
        if self.settle_cycles < 1 or self.settle_rounds < 1:
            raise FaultError("settle_cycles and settle_rounds must be >= 1")

    def budget_for(self, stream: str) -> int:
        """Watchdog budget (bound + slack) for one block of ``stream``."""
        return self.budgets.get(stream, self.default_budget) + self.slack

    def backoff(self, attempt: int) -> int:
        """Backoff before retransmission ``attempt`` (1-based), in cycles."""
        if attempt < 1:
            raise FaultError(f"backoff attempt must be >= 1, got {attempt}")
        return min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)


@dataclass(frozen=True)
class StreamRequirement:
    """Throughput requirement of one stream, for admission control."""

    name: str
    mu: Fraction        # required throughput (samples/cycle), Eq. 5 right side
    tau: int            # τ̂ block-time bound contribution to the round
    eta: int            # block size η


class AdmissionController:
    """Graceful degradation per the Eq. 5 throughput check.

    Streams are given in priority order (highest first).  After each
    recovery the controller re-evaluates ``η_s / (γ_active + overhead)`` for
    every active stream, where ``γ_active`` counts only non-paused streams
    and ``overhead`` is the recovery time observed within the sliding
    ``healthy_window``; while any active stream misses its μ_s, the
    lowest-priority active stream is paused.  A paused stream is re-admitted
    once a healthy window elapses with no recovery events.
    """

    def __init__(
        self,
        requirements: Iterable[StreamRequirement],
        healthy_window: int = 8192,
    ) -> None:
        self.requirements = list(requirements)
        if healthy_window < 1:
            raise FaultError(f"healthy window must be >= 1, got {healthy_window}")
        self.healthy_window = healthy_window
        self._paused: set[str] = set()
        self._failed: set[str] = set()
        #: (cycle, recovery_cycles) observations inside the sliding window
        self._recoveries: list[tuple[int, int]] = []
        self._last_event = 0

    # -- queries ---------------------------------------------------------
    def is_paused(self, name: str) -> bool:
        return name in self._paused

    @property
    def paused(self) -> list[str]:
        """Currently paused stream names, in priority order."""
        return [r.name for r in self.requirements if r.name in self._paused]

    def _active(self) -> list[StreamRequirement]:
        return [
            r
            for r in self.requirements
            if r.name not in self._paused and r.name not in self._failed
        ]

    def _overhead(self, now: int) -> int:
        self._recoveries = [
            (t, c) for t, c in self._recoveries if now - t < self.healthy_window
        ]
        return sum(c for _t, c in self._recoveries)

    def _satisfied(self, now: int) -> bool:
        active = self._active()
        round_len = sum(r.tau for r in active) + self._overhead(now)
        if round_len <= 0:
            return True
        return all(Fraction(r.eta, round_len) >= r.mu for r in active)

    # -- transitions -----------------------------------------------------
    def note_recovery(self, now: int, stream: str, cycles: int) -> list[str]:
        """Record ``cycles`` of recovery overhead; returns newly paused streams."""
        self._recoveries.append((now, int(cycles)))
        self._last_event = now
        newly_paused: list[str] = []
        while not self._satisfied(now) and len(self._active()) > 1:
            victim = self._active()[-1]
            self._paused.add(victim.name)
            newly_paused.append(victim.name)
        return newly_paused

    def tick(self, now: int) -> list[str]:
        """Periodic re-admission check; returns streams re-admitted at ``now``."""
        if not self._paused or now - self._last_event < self.healthy_window:
            return []
        readmitted: list[str] = []
        for req in self.requirements:  # highest priority first
            if req.name in self._paused:
                self._paused.discard(req.name)
                readmitted.append(req.name)
                self._last_event = now
                break
        return readmitted

    def mark_failed(self, name: str) -> None:
        """Permanently drop ``name`` from the active set (retry cap hit)."""
        self._failed.add(name)
        self._paused.discard(name)
