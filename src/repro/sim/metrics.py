"""Per-stream runtime metrics derived from gateway simulation state.

This is the measurement half of the observability layer: it turns the raw
counters and timestamp lists accumulated by the architecture components
(:class:`~repro.arch.gateway.StreamBinding`, :class:`~repro.arch.cfifo.CFifo`,
:class:`~repro.arch.gateway.EntryGateway`) plus the structured trace
(:class:`~repro.sim.trace.Tracer`) into the quantities the paper's analysis
bounds: observed block processing time (vs. Eq. 2), round-robin wait
(vs. Eq. 3), block turnaround (vs. Eq. 4) and achieved throughput
(vs. Eq. 5).  :mod:`repro.core.conformance` compares these observations
against the closed-form bounds.

Everything here is duck-typed on the architecture objects (``sim`` must not
import ``arch``): a *binding* needs ``name``, ``eta``, ``samples_in``,
``samples_out``, ``blocks_done``, ``admissions``, ``completions``,
``first_output_at``, ``last_output_at`` and (optionally) ``in_fifo`` /
``out_fifo`` objects exposing ``high_water``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable

from .trace import Kind, Tracer

__all__ = [
    "StreamMetrics",
    "GatewayUtilization",
    "stream_metrics",
    "gateway_utilization",
    "observed_sample_latency",
    "fastpath_summary",
    "metrics_table",
]


@dataclass(frozen=True)
class StreamMetrics:
    """Observed per-stream quantities from one simulation run.

    All times are in cycles.  ``block_times[i]`` is the i-th block's
    admission-to-completion duration (the observed counterpart of ``τ̂``);
    ``waits[i]`` is the gap between the completion of block ``i`` and the
    admission of block ``i+1`` (observed counterpart of ``ε̂``);
    ``turnarounds[i]`` is the completion-to-completion gap (observed
    counterpart of ``γ``).  ``throughput`` is input samples per cycle over
    the steady-state span between the first and last completion (observed
    counterpart of Eq. 5's ``η/γ`` guarantee); it is ``None`` until two
    blocks have completed.
    """

    name: str
    eta: int
    blocks_done: int
    samples_in: int
    samples_out: int
    block_times: tuple[int, ...]
    waits: tuple[int, ...]
    turnarounds: tuple[int, ...]
    throughput: Fraction | None
    first_output_at: int | None
    last_output_at: int | None
    in_high_water: int | None
    out_high_water: int | None
    worst_sample_latency: int | None = None

    # -- recovery quantities (all zero/False on a fault-free run) --------
    retries: int = 0
    watchdog_timeouts: int = 0
    recovery_cycles: int = 0
    recovery_latencies: tuple[int, ...] = ()
    degraded_cycles: int = 0
    failed: bool = False

    # -- convenience aggregates -----------------------------------------
    @property
    def worst_block_time(self) -> int | None:
        return max(self.block_times) if self.block_times else None

    @property
    def worst_wait(self) -> int | None:
        return max(self.waits) if self.waits else None

    @property
    def worst_turnaround(self) -> int | None:
        return max(self.turnarounds) if self.turnarounds else None

    @property
    def mean_block_time(self) -> float | None:
        if not self.block_times:
            return None
        return sum(self.block_times) / len(self.block_times)

    @property
    def recovered(self) -> bool:
        """The stream hit a watchdog timeout but completed its run anyway."""
        return self.watchdog_timeouts > 0 and not self.failed

    @property
    def worst_recovery_latency(self) -> int | None:
        return max(self.recovery_latencies) if self.recovery_latencies else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (Fractions become floats).

        Recovery quantities appear under a ``"recovery"`` key only when
        something actually happened, keeping fault-free output identical
        to the pre-recovery format.
        """
        out = self._base_dict()
        if self.retries or self.watchdog_timeouts or self.degraded_cycles or self.failed:
            out["recovery"] = {
                "retries": self.retries,
                "watchdog_timeouts": self.watchdog_timeouts,
                "recovery_cycles": self.recovery_cycles,
                "recovery_latencies": list(self.recovery_latencies),
                "worst_recovery_latency": self.worst_recovery_latency,
                "degraded_cycles": self.degraded_cycles,
                "failed": self.failed,
                "recovered": self.recovered,
            }
        return out

    def _base_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "eta": self.eta,
            "blocks_done": self.blocks_done,
            "samples_in": self.samples_in,
            "samples_out": self.samples_out,
            "worst_block_time": self.worst_block_time,
            "mean_block_time": self.mean_block_time,
            "worst_wait": self.worst_wait,
            "worst_turnaround": self.worst_turnaround,
            "throughput": float(self.throughput) if self.throughput is not None else None,
            "first_output_at": self.first_output_at,
            "last_output_at": self.last_output_at,
            "in_high_water": self.in_high_water,
            "out_high_water": self.out_high_water,
            "worst_sample_latency": self.worst_sample_latency,
        }


@dataclass(frozen=True)
class GatewayUtilization:
    """Entry-gateway cycle breakdown over a simulation horizon.

    ``other`` is whatever the horizon is not accounted for by copying,
    reconfiguring or polling: chiefly time blocked on the pipeline-idle
    signal while the accelerators drain a block.
    """

    horizon: int
    copy_cycles: int
    reconfig_cycles: int
    poll_cycles: int
    blocks_admitted: int

    @property
    def copy(self) -> float:
        return self.copy_cycles / self.horizon

    @property
    def reconfig(self) -> float:
        return self.reconfig_cycles / self.horizon

    @property
    def poll(self) -> float:
        return self.poll_cycles / self.horizon

    @property
    def other(self) -> float:
        return max(0.0, 1.0 - self.copy - self.reconfig - self.poll)

    def to_dict(self) -> dict[str, Any]:
        return {
            "horizon": self.horizon,
            "blocks_admitted": self.blocks_admitted,
            "copy": self.copy,
            "reconfig": self.reconfig,
            "poll": self.poll,
            "other": self.other,
        }


def stream_metrics(binding: Any, tracer: Tracer | None = None) -> StreamMetrics:
    """Derive :class:`StreamMetrics` from one stream binding.

    When a ``tracer`` with stored C-FIFO ``put`` records is given, the
    observed worst-case sample latency (input put → block completion) is
    included; it is only meaningful when the producer is rate-limited
    rather than backlogged.
    """
    admissions = list(binding.admissions)
    completions = list(binding.completions)
    n = len(completions)
    block_times = tuple(c - a for a, c in zip(admissions, completions))
    waits = tuple(a - c for c, a in zip(completions, admissions[1:]))
    turnarounds = tuple(c2 - c1 for c1, c2 in zip(completions, completions[1:]))
    throughput: Fraction | None = None
    if n >= 2 and completions[-1] > completions[0]:
        throughput = Fraction(binding.eta * (n - 1), completions[-1] - completions[0])
    latency = None
    if tracer is not None:
        latency = observed_sample_latency(tracer, binding)
    return StreamMetrics(
        name=binding.name,
        eta=binding.eta,
        blocks_done=binding.blocks_done,
        samples_in=binding.samples_in,
        samples_out=binding.samples_out,
        block_times=block_times,
        waits=waits,
        turnarounds=turnarounds,
        throughput=throughput,
        first_output_at=binding.first_output_at,
        last_output_at=binding.last_output_at,
        in_high_water=getattr(getattr(binding, "in_fifo", None), "high_water", None),
        out_high_water=getattr(getattr(binding, "out_fifo", None), "high_water", None),
        worst_sample_latency=latency,
        retries=getattr(binding, "retries", 0),
        watchdog_timeouts=getattr(binding, "watchdog_timeouts", 0),
        recovery_cycles=getattr(binding, "recovery_cycles", 0),
        recovery_latencies=tuple(getattr(binding, "recovery_latencies", ())),
        degraded_cycles=getattr(binding, "degraded_cycles", 0),
        failed=getattr(binding, "failed", False),
    )


def observed_sample_latency(tracer: Tracer, binding: Any) -> int | None:
    """Worst observed put-to-completion latency over completed blocks.

    The j-th word put into the stream's input C-FIFO belongs to block
    ``j // η``; its latency is that block's completion time minus the put
    time.  Returns ``None`` when the trace has no usable ``put`` records
    (tracing disabled, ring-evicted, or aggregate mode).
    """
    in_fifo = getattr(binding, "in_fifo", None)
    if in_fifo is None:
        return None
    if tracer.dropped:
        # ring eviction broke the positional word -> block correspondence
        return None
    puts = [r.time for r in tracer.query(kind=Kind.PUT, source=in_fifo.name)]
    completions = list(binding.completions)
    if not puts or not completions:
        return None
    worst = None
    for j, t_put in enumerate(puts):
        block = j // binding.eta
        if block >= len(completions):
            break
        lat = completions[block] - t_put
        if worst is None or lat > worst:
            worst = lat
    return worst


def gateway_utilization(entry: Any, horizon: int) -> GatewayUtilization:
    """Cycle breakdown of an entry gateway over ``horizon`` cycles."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    return GatewayUtilization(
        horizon=horizon,
        copy_cycles=entry.copy_cycles,
        reconfig_cycles=entry.reconfig_cycles,
        poll_cycles=entry.wait_cycles,
        blocks_admitted=entry.blocks_admitted,
    )


def fastpath_summary(ring: Any) -> dict[str, Any]:
    """Fused-data-path take rates for one ring and its registered clients.

    ``ring`` is duck-typed (``sim`` must not import ``arch``): it needs
    ``fastpath``, a ``fastpath_stats()`` method, and a ``clients`` list of
    components each exposing ``name`` and ``fastpath_stats()`` (C-FIFOs and
    NI channels register themselves at construction).  The aggregate
    ``take_rate`` is the fused fraction of all flits the ring carried;
    eligibility regressions show up here first, so the summary is embedded
    in every ``metrics`` report the sweep artifacts record.
    """
    rings = ring.fastpath_stats()
    fast = sum(r["fast"] for r in rings.values())
    slow = sum(r["slow"] for r in rings.values())
    total = fast + slow
    return {
        "enabled": bool(ring.fastpath),
        "take_rate": (fast / total) if total else 0.0,
        "rings": rings,
        "clients": {c.name: c.fastpath_stats() for c in ring.clients},
    }


def metrics_table(metrics: Iterable[StreamMetrics]) -> str:
    """Fixed-width table of per-stream metrics for terminal output."""
    header = (
        f"{'stream':<12} {'η':>6} {'blocks':>6} {'τ max':>8} {'ε max':>8} "
        f"{'γ max':>8} {'thru (smp/cyc)':>15} {'in hw':>6} {'out hw':>6}"
    )
    lines = [header, "-" * len(header)]
    for m in metrics:
        thru = f"{float(m.throughput):.6f}" if m.throughput is not None else "-"
        lines.append(
            f"{m.name:<12} {m.eta:>6} {m.blocks_done:>6} "
            f"{m.worst_block_time if m.worst_block_time is not None else '-':>8} "
            f"{m.worst_wait if m.worst_wait is not None else '-':>8} "
            f"{m.worst_turnaround if m.worst_turnaround is not None else '-':>8} "
            f"{thru:>15} "
            f"{m.in_high_water if m.in_high_water is not None else '-':>6} "
            f"{m.out_high_water if m.out_high_water is not None else '-':>6}"
        )
    return "\n".join(lines)
