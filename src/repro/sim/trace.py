"""Event tracing for the architecture simulator.

The tracer records timestamped records of simulator activity (sample
transfers, block admissions, reconfigurations, stalls).  Records double as
the measurement substrate for the evaluation: utilization percentages,
observed throughput, bound-conformance checks and Gantt-chart data are all
computed from traces.

:class:`Kind` names the typed record vocabulary emitted by the architecture
components; :mod:`repro.sim.metrics` consumes it.  A tracer can run in three
storage modes:

* ``"full"`` — every record kept (the default; what the unit tests inspect),
* ``"ring"`` — only the newest ``capacity`` records kept (bounded memory for
  long soak runs; aggregate counters still see every record),
* ``"aggregate"`` — no records stored at all, only per-(source, kind)
  counters (production-style always-on observability).

Record order is kernel dispatch order: components emit records from event
callbacks, and the calendar-queue scheduler (see :mod:`repro.sim.kernel`
and DESIGN.md §6) guarantees the same cycle-then-FIFO dispatch order as
the reference heap kernel, so traces are bit-identical across kernels and
stable enough to diff between runs.  Temporal decoupling never reorders
records — skipped cycles are, by construction, cycles with no callbacks
and therefore no records.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["Kind", "TraceRecord", "Tracer", "IntervalAccumulator", "GanttRow"]


class Kind:
    """Canonical record kinds emitted by the architecture components."""

    ADMIT = "admit"                # entry gateway admits a block
    RECONFIGURE = "reconfigured"   # context switch finished
    COPY = "copy"                  # entry gateway finished DMA-copying a block
    BLOCK_DONE = "block_done"      # exit gateway drained a block's last sample
    PUT = "put"                    # C-FIFO producer side
    GET = "get"                    # C-FIFO consumer side
    FIRE = "fire"                  # accelerator kernel firing
    SEND = "send"                  # NI hardware-FIFO send
    RECV = "recv"                  # NI hardware-FIFO receive
    TRANSFER = "transfer"          # configuration-bus word transfer
    DELIVER = "deliver"            # ring flit delivery
    TASK_DONE = "task_done"        # processor task completion

    # -- robustness vocabulary (fault injection & recovery) --------------
    FAULT = "fault"                        # injector armed a fault
    WATCHDOG = "watchdog_timeout"          # entry-gateway watchdog expired
    RETRY = "retry"                        # block retransmission scheduled
    RECOVERED = "recovered"                # block completed after >=1 retry
    DEGRADE = "degrade"                    # stream paused by admission control
    READMIT = "readmit"                    # paused stream re-admitted
    RESYNC = "resync"                      # lost credits/pointers repaired
    STREAM_FAILED = "stream_failed"        # retry cap exhausted, stream dropped

    # -- reconfiguration vocabulary (online mode transitions) -------------
    STREAM_JOIN = "stream_join"            # a stream was admitted mid-run
    STREAM_LEAVE = "stream_leave"          # a stream left mid-run
    TILE_FAILED = "tile_failed"            # an accelerator tile died for good
    TILE_REMAP = "tile_remapped"           # chain remapped onto a spare tile
    MODE_CHANGE = "mode_change"            # a hitless mode transition finished

    #: robustness kinds (fault/recovery bookkeeping)
    ROBUSTNESS = frozenset(
        {FAULT, WATCHDOG, RETRY, RECOVERED, DEGRADE, READMIT, RESYNC, STREAM_FAILED}
    )

    #: reconfiguration kinds (churn / mode-transition bookkeeping)
    RECONFIGURATION = frozenset(
        {STREAM_JOIN, STREAM_LEAVE, TILE_FAILED, TILE_REMAP, MODE_CHANGE}
    )

    #: kinds sufficient for metrics/conformance work (cheap to keep)
    METRICS = (frozenset({ADMIT, RECONFIGURE, COPY, BLOCK_DONE, PUT, GET})
               | ROBUSTNESS | RECONFIGURATION)


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation."""

    time: int
    source: str
    kind: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """A structured, queryable store of :class:`TraceRecord` objects.

    Parameters
    ----------
    enabled:
        Master switch; a disabled tracer drops everything.
    kinds:
        Optional allow-list of record kinds (others are dropped entirely).
    mode:
        Storage mode: ``"full"``, ``"ring"`` or ``"aggregate"`` (see module
        docstring).  ``"ring"`` requires ``capacity``.
    capacity:
        Ring size for ``mode="ring"``.
    """

    def __init__(
        self,
        enabled: bool = True,
        kinds: Iterable[str] | None = None,
        mode: str = "full",
        capacity: int | None = None,
    ) -> None:
        if mode not in ("full", "ring", "aggregate"):
            raise ValueError(f"unknown tracer mode {mode!r}")
        if mode == "ring":
            if capacity is None or capacity < 1:
                raise ValueError("ring mode needs a positive capacity")
        elif capacity is not None:
            raise ValueError(f"capacity is only meaningful in ring mode, not {mode!r}")
        self.enabled = enabled
        self.kinds = set(kinds) if kinds is not None else None
        self.mode = mode
        self.capacity = capacity
        self._records: deque[TraceRecord] | list[TraceRecord]
        self._records = deque(maxlen=capacity) if mode == "ring" else []
        self.total_logged = 0          # every accepted record, ever
        self._counts: Counter[tuple[str, str]] = Counter()

    @property
    def records(self) -> list[TraceRecord]:
        """Stored records in time order (empty in aggregate mode)."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Accepted records no longer stored (ring eviction / aggregate mode)."""
        return self.total_logged - len(self._records)

    def log(self, time: int, source: str, kind: str, **data: Any) -> None:
        """Record an observation (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.total_logged += 1
        self._counts[(source, kind)] += 1
        if self.mode != "aggregate":
            self._records.append(TraceRecord(time, source, kind, data))

    # -- queries ---------------------------------------------------------
    def query(
        self,
        kind: str | None = None,
        source: str | None = None,
        since: int | None = None,
        until: int | None = None,
        **data_filters: Any,
    ) -> Iterator[TraceRecord]:
        """Stored records matching every given criterion, in time order.

        ``data_filters`` match against the record's ``data`` payload, e.g.
        ``tracer.query(kind=Kind.ADMIT, stream="ch1.s1")``.
        """
        for r in self._records:
            if kind is not None and r.kind != kind:
                continue
            if source is not None and r.source != source:
                continue
            if since is not None and r.time < since:
                continue
            if until is not None and r.time > until:
                continue
            if any(r.data.get(k) != v for k, v in data_filters.items()):
                continue
            yield r

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records of one kind, in time order."""
        return list(self.query(kind=kind))

    def by_source(self, source: str) -> list[TraceRecord]:
        """All stored records from one component, in time order."""
        return list(self.query(source=source))

    def last(self, kind: str, **data_filters: Any) -> TraceRecord | None:
        """Newest stored record of ``kind`` matching the filters, if any."""
        found = None
        for r in self.query(kind=kind, **data_filters):
            found = r
        return found

    def count(self, kind: str, source: str | None = None) -> int:
        """Lifetime count of accepted records (survives ring eviction)."""
        if source is not None:
            return self._counts[(source, kind)]
        return sum(n for (_s, k), n in self._counts.items() if k == kind)

    def counts(self) -> dict[tuple[str, str], int]:
        """Lifetime (source, kind) → count aggregation."""
        return dict(self._counts)

    def clear(self) -> None:
        self._records.clear()
        self._counts.clear()
        self.total_logged = 0


class IntervalAccumulator:
    """Accumulates busy intervals per activity label, for utilization stats.

    ``begin(label, t)`` / ``end(label, t)`` pairs accumulate total busy time.
    Overlapping begins for the same label are treated as nested and only the
    outermost pair contributes.
    """

    def __init__(self) -> None:
        self._busy: dict[str, int] = defaultdict(int)
        self._open: dict[str, list[int]] = defaultdict(list)

    def begin(self, label: str, time: int) -> None:
        self._open[label].append(time)

    def end(self, label: str, time: int) -> None:
        stack = self._open[label]
        if not stack:
            raise ValueError(f"end({label!r}) without matching begin")
        start = stack.pop()
        if not stack:  # outermost interval closed
            if time < start:
                raise ValueError(f"interval for {label!r} ends before it starts")
            self._busy[label] += time - start

    def busy(self, label: str) -> int:
        """Total closed busy time for ``label``."""
        return self._busy[label]

    def labels(self) -> list[str]:
        return sorted(set(self._busy) | set(k for k, v in self._open.items() if v))

    def utilization(self, label: str, horizon: int) -> float:
        """Fraction of ``horizon`` spent busy on ``label``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self._busy[label] / horizon


@dataclass(frozen=True)
class GanttRow:
    """One row of a Gantt chart: a resource and its busy segments."""

    resource: str
    segments: tuple[tuple[int, int, str], ...]  # (start, end, label)

    def render(self, scale: int = 1, width: int = 72, horizon: int | None = None) -> str:
        """Poor-man's ASCII rendering for terminal output.

        ``horizon`` fixes the time axis so several rows align; it defaults
        to this row's own last segment end.
        """
        if not self.segments:
            return f"{self.resource:>14} | (idle)"
        if horizon is None:
            horizon = max(end for _s, end, _l in self.segments)
        scale = max(1, scale, -(-horizon // width))  # ceil so everything fits
        cells = [" "] * max(1, -(-horizon // scale))
        for start, end, label in self.segments:
            lo = min(len(cells) - 1, start // scale)
            hi = min(len(cells), max(lo + 1, -(-end // scale)))
            ch = label[0] if label else "#"
            for i in range(lo, hi):
                cells[i] = ch
        return f"{self.resource:>14} |{''.join(cells)}|"
