"""Event tracing for the architecture simulator.

The tracer records timestamped records of simulator activity (sample
transfers, block admissions, reconfigurations, stalls).  Records double as
the measurement substrate for the evaluation: utilization percentages,
observed throughput and Gantt-chart data are all computed from traces.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["TraceRecord", "Tracer", "IntervalAccumulator", "GanttRow"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation."""

    time: int
    source: str
    kind: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by kind."""

    def __init__(self, enabled: bool = True, kinds: Iterable[str] | None = None) -> None:
        self.enabled = enabled
        self.kinds = set(kinds) if kinds is not None else None
        self.records: list[TraceRecord] = []

    def log(self, time: int, source: str, kind: str, **data: Any) -> None:
        """Record an observation (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.records.append(TraceRecord(time, source, kind, data))

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def by_source(self, source: str) -> list[TraceRecord]:
        """All records from one component, in time order."""
        return [r for r in self.records if r.source == source]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def clear(self) -> None:
        self.records.clear()


class IntervalAccumulator:
    """Accumulates busy intervals per activity label, for utilization stats.

    ``begin(label, t)`` / ``end(label, t)`` pairs accumulate total busy time.
    Overlapping begins for the same label are treated as nested and only the
    outermost pair contributes.
    """

    def __init__(self) -> None:
        self._busy: dict[str, int] = defaultdict(int)
        self._open: dict[str, list[int]] = defaultdict(list)

    def begin(self, label: str, time: int) -> None:
        self._open[label].append(time)

    def end(self, label: str, time: int) -> None:
        stack = self._open[label]
        if not stack:
            raise ValueError(f"end({label!r}) without matching begin")
        start = stack.pop()
        if not stack:  # outermost interval closed
            if time < start:
                raise ValueError(f"interval for {label!r} ends before it starts")
            self._busy[label] += time - start

    def busy(self, label: str) -> int:
        """Total closed busy time for ``label``."""
        return self._busy[label]

    def labels(self) -> list[str]:
        return sorted(set(self._busy) | set(k for k, v in self._open.items() if v))

    def utilization(self, label: str, horizon: int) -> float:
        """Fraction of ``horizon`` spent busy on ``label``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self._busy[label] / horizon


@dataclass(frozen=True)
class GanttRow:
    """One row of a Gantt chart: a resource and its busy segments."""

    resource: str
    segments: tuple[tuple[int, int, str], ...]  # (start, end, label)

    def render(self, scale: int = 1, width: int = 72, horizon: int | None = None) -> str:
        """Poor-man's ASCII rendering for terminal output.

        ``horizon`` fixes the time axis so several rows align; it defaults
        to this row's own last segment end.
        """
        if not self.segments:
            return f"{self.resource:>14} | (idle)"
        if horizon is None:
            horizon = max(end for _s, end, _l in self.segments)
        scale = max(1, scale, -(-horizon // width))  # ceil so everything fits
        cells = [" "] * max(1, -(-horizon // scale))
        for start, end, label in self.segments:
            lo = min(len(cells) - 1, start // scale)
            hi = min(len(cells), max(lo + 1, -(-end // scale)))
            ch = label[0] if label else "#"
            for i in range(lo, hi):
                cells[i] = ch
        return f"{self.resource:>14} |{''.join(cells)}|"
