"""Blocking bounded queues for simulated processes.

Two primitives are provided:

* :class:`FifoQueue` — a bounded FIFO of tokens; ``put`` blocks when full and
  ``get`` blocks when empty.  This models the hardware FIFOs in network
  interfaces and the software C-FIFOs at the level of abstraction the
  dataflow analysis uses (a buffer of a fixed capacity).
* :class:`Signal` — a counting semaphore used for credit-based flow control
  and for the exit-gateway → entry-gateway "pipeline idle" notification.

Both are fair: waiters are served in arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .kernel import Event, SimulationError, Simulator

__all__ = ["FifoQueue", "Signal"]


class FifoQueue:
    """A bounded FIFO buffer with blocking put/get.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum number of tokens held; must be positive.
    name:
        Optional label used in error messages and traces.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "fifo") -> None:
        if capacity <= 0:
            raise SimulationError(f"FIFO capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._items: deque[Any] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0
        self.total_got = 0

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def level(self) -> int:
        """Number of tokens currently buffered."""
        return len(self._items)

    @property
    def space(self) -> int:
        """Free slots currently available."""
        return self.capacity - len(self._items)

    # -- operations --------------------------------------------------------
    def _purge_getters(self) -> None:
        while self._getters and self._getters[0].cancelled:
            self._getters.popleft()

    def _purge_putters(self) -> None:
        while self._putters and self._putters[0][0].cancelled:
            self._putters.popleft()

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` has been accepted."""
        self._purge_getters()
        ev = self.sim.event()
        if self._getters and not self._items:
            # Hand over directly to the longest-waiting getter.
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.succeed(item)
            ev.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            self.total_put += 1
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event that fires with the next token."""
        ev = self.sim.event()
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            ev.succeed(item)
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the FIFO is full."""
        self._purge_getters()
        if self._getters and not self._items:
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.succeed(item)
            return True
        if len(self._items) < self.capacity:
            self._items.append(item)
            self.total_put += 1
            return True
        return False

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            self._drain_putters()
            return True, item
        return False, None

    def _drain_putters(self) -> None:
        self._purge_putters()
        while self._putters and len(self._items) < self.capacity:
            ev, item = self._putters.popleft()
            self._items.append(item)
            self.total_put += 1
            ev.succeed()
            self._purge_putters()


class Signal:
    """A counting semaphore with blocking acquire of N units.

    Used to model hardware credits (one unit per FIFO slot at the consumer)
    and block-level notifications between gateways.
    """

    def __init__(self, sim: Simulator, initial: int = 0, name: str = "signal") -> None:
        if initial < 0:
            raise SimulationError(f"initial signal count must be >= 0, got {initial}")
        self.sim = sim
        self.name = name
        self._count = int(initial)
        self._waiters: deque[tuple[Event, int]] = deque()

    @property
    def count(self) -> int:
        """Units currently available."""
        return self._count

    def _purge_waiters(self) -> None:
        while self._waiters and self._waiters[0][0].cancelled:
            self._waiters.popleft()

    def release(self, units: int = 1) -> None:
        """Add ``units`` and wake waiters whose demand is now met (in order)."""
        if units <= 0:
            raise SimulationError(f"release units must be positive, got {units}")
        self._count += units
        # FIFO service discipline: head-of-line waiter must be satisfiable.
        self._purge_waiters()
        while self._waiters and self._waiters[0][1] <= self._count:
            ev, need = self._waiters.popleft()
            self._count -= need
            ev.succeed(need)
            self._purge_waiters()

    def acquire(self, units: int = 1) -> Event:
        """Return an event firing once ``units`` are granted to the caller."""
        if units <= 0:
            raise SimulationError(f"acquire units must be positive, got {units}")
        self._purge_waiters()
        ev = self.sim.event()
        if not self._waiters and self._count >= units:
            self._count -= units
            ev.succeed(units)
        else:
            self._waiters.append((ev, units))
        return ev

    def try_acquire(self, units: int = 1) -> bool:
        """Non-blocking acquire; only succeeds when no one is queued ahead."""
        if units <= 0:
            raise SimulationError(f"acquire units must be positive, got {units}")
        self._purge_waiters()
        if not self._waiters and self._count >= units:
            self._count -= units
            return True
        return False
