"""Discrete-event simulation kernel.

This module provides the substrate on which the MPSoC architecture model
(:mod:`repro.arch`) is built.  It is a small, dependency-free, cycle-level
discrete-event simulator in the style of SimPy, specialised for this
reproduction:

* time is an integer number of *clock cycles* (the paper expresses every
  latency in cycles: the entry-gateway copies a sample in 15 cycles, the
  accelerators and exit-gateway in 1 cycle, reconfiguration takes 4100
  cycles),
* processes are Python generators that ``yield`` :class:`Event` objects,
* events carry an optional value and fire all their callbacks at a single
  simulated instant.

The kernel is deliberately deterministic: events scheduled for the same cycle
fire in FIFO order of scheduling, which makes traces reproducible and lets the
tests assert exact cycle counts.

Scheduling is a calendar queue (per-cycle FIFO buckets indexed by absolute
cycle, ordered by a min-heap over the occupied cycles) with temporal
decoupling: the clock jumps from occupied cycle to occupied cycle and the
idle spans in between are counted in :attr:`Simulator.skipped_cycles`, never
stepped.  ``benchmarks/bench_kernel_hotpath.py`` measures this scheduler
against the frozen heap-only reference in :mod:`repro.sim.refkernel`, and
``tests/property/test_kernel_differential.py`` proves the two produce
bit-identical observable traces.  See DESIGN.md, "Kernel scheduling &
temporal decoupling".
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any

__all__ = [
    "Event",
    "Timeout",
    "Callback",
    "Process",
    "Simulator",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for protocol violations inside the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a simulated instant.

    An event starts *pending*, may be *triggered* (scheduled to fire) and is
    finally *processed* once its callbacks have run.  Processes wait on events
    by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
                 "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (vs. failed)."""
        return self._ok

    @property
    def cancelled(self) -> bool:
        """True once the event has been withdrawn and will never fire."""
        return self._cancelled

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Schedule this event to fire successfully after ``delay`` cycles."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Schedule this event to fire as a failure after ``delay`` cycles."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def cancel(self) -> None:
        """Withdraw the event: its callbacks will never run.

        A scheduled event stays in its calendar bucket but is skipped (lazy
        deletion); an event queued as a waiter (e.g. a pending
        :meth:`Signal.acquire`) is skipped by the owning primitive without
        consuming any resource.  Cancelling an already-processed event is an
        error — its callbacks have run.
        """
        if self._processed:
            raise SimulationError("cannot cancel an already-processed event")
        self._cancelled = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires (or immediately if done)."""
        if self.callbacks is None:
            # Already processed: run at the current instant.
            fn(self)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        if self._cancelled:
            return
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that fires automatically ``delay`` cycles after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Timeout creation is the kernel's hottest allocation (every sleep,
        # poll and watchdog arm makes one): initialise every slot in one
        # flat pass instead of Event.__init__ plus re-assignment.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._cancelled = False
        self.delay = delay
        # inlined Simulator._schedule (delay is never negative here): one
        # call frame less on the single most frequent scheduling operation
        when = sim.now + int(delay)
        if when == sim._active_cycle:
            sim._active.append(self)
        else:
            bucket = sim._buckets.get(when)
            if bucket is None:
                sim._buckets[when] = [self]
                _heappush(sim._times, when)
            else:
                bucket.append(self)


class Callback(Event):
    """A bare function invocation at an absolute cycle.

    The lightweight half of a *precompiled event chain* (see
    :meth:`Simulator.schedule_at`): where a generator process costs a
    :class:`Process` object plus one resume per ``yield``, a Callback is a
    single event whose only callback is ``fn`` itself.  It follows the full
    event contract — it lives in the calendar buckets, fires in FIFO order
    within its cycle, can be :meth:`~Event.cancel`-led lazily, survives
    ``run(until=cycle)`` clamping past idle tails, and extra watchers may
    ``add_callback`` (they run after ``fn``).

    With ``defer=True`` the callback fires *late* within its cycle: when
    dispatch reaches it, it re-appends a tail event to the end of the
    cycle's live firing list and runs ``fn`` there, i.e. after every event
    that was scheduled for the cycle before the cycle began — the
    within-cycle position a generator resume would occupy after being
    appended behind continuously re-scheduled pollers.  (The ring's
    compiled transit ultimately went further — ``_FastFlit`` subclasses
    :class:`Event` directly and re-arms itself, avoiding even the
    one-Callback-per-step allocation — but Callback remains the
    general-purpose chain primitive and is pinned by the kernel tests.)
    """

    __slots__ = ("fn", "defer")

    def __init__(
        self,
        sim: "Simulator",
        cycle: int,
        fn: Callable[[], None],
        defer: bool = False,
    ) -> None:
        cycle = int(cycle)
        if cycle < sim.now:
            raise SimulationError(
                f"cannot schedule a callback in the past "
                f"(cycle {cycle} < now {sim.now})"
            )
        # flat one-pass init, same as Timeout: this is a hot-path allocation
        self.sim = sim
        self.callbacks = [self._invoke]
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._cancelled = False
        self.fn = fn
        self.defer = defer
        if cycle == sim._active_cycle:
            sim._active.append(self)
        else:
            bucket = sim._buckets.get(cycle)
            if bucket is None:
                sim._buckets[cycle] = [self]
                _heappush(sim._times, cycle)
            else:
                bucket.append(self)

    def _invoke(self, _event: "Event") -> None:
        if self.defer and self.sim._active is not None:
            # Re-enter the live bucket at the tail: build the tail event with
            # the same flat init (the head's callbacks list is already
            # consumed by the dispatch loop, so it cannot be requeued).
            tail = Callback.__new__(Callback)
            tail.sim = self.sim
            tail.callbacks = [tail._invoke]
            tail._value = None
            tail._ok = True
            tail._triggered = True
            tail._processed = False
            tail._cancelled = self._cancelled
            tail.fn = self.fn
            tail.defer = False
            self.sim._active.append(tail)
            return
        self.fn()


class AllOf(Event):
    """Fires when all constituent events have fired.

    Value is the list of the constituent values in input order.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = 0
        for ev in self._events:
            if ev.processed:
                if not ev.ok and not self._triggered:
                    self.fail(ev.value)
            else:
                self._remaining += 1
                ev.add_callback(self._on_child)
        if self._remaining == 0 and not self._triggered:
            self.succeed([ev.value for ev in self._events])

    def _on_child(self, ev: Event) -> None:
        if not ev.ok:
            if not self._triggered:
                self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0 and not self._triggered:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires as soon as any constituent event fires; value is (index, value)."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        for idx, ev in enumerate(self._events):
            ev.add_callback(lambda e, i=idx: self._on_child(i, e))
        if self._triggered:
            # a constituent was already processed; reap timers registered
            # after the winner resolved us
            self._cancel_losers(None)

    def _on_child(self, idx: int, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed((idx, ev.value))
        else:
            self.fail(ev.value)
        self._cancel_losers(ev)

    def _cancel_losers(self, winner: Event | None) -> None:
        """Cancel losing constituent timers once the race is decided.

        A stale Timeout must neither wake a process later nor keep the
        event queue artificially non-empty.  Only sole-watcher timers are
        withdrawn: a Timeout someone else also waits on must still fire.
        """
        for other in self._events:
            if other is winner or not isinstance(other, Timeout):
                continue
            if other.processed or other.cancelled:
                continue
            if other.callbacks is not None and len(other.callbacks) == 1:
                other.cancel()


class Process(Event):
    """A generator-based simulated process.

    The generator yields :class:`Event` objects; the process resumes when the
    yielded event fires, receiving the event's value via ``send`` (or its
    exception via ``throw`` for failed events).  A :class:`Process` is itself
    an :class:`Event` that fires when the generator returns, carrying the
    generator's return value.
    """

    __slots__ = ("name", "_gen", "_waiting_on", "_stale", "_resume_cb")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        super().__init__(sim)
        if not isinstance(gen, Generator):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._waiting_on: Event | None = None
        # Events detached by interrupt() whose wakeup must be swallowed even
        # if they fire before the Interrupt is delivered.
        self._stale: set[Event] = set()
        # One bound method for the process's whole life, instead of a fresh
        # allocation on every yield.
        self._resume_cb = self._resume
        # Kick off at the current instant.
        init = Event(sim)
        init.succeed()
        init.add_callback(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None and not waited.processed:
            sole = waited.callbacks is not None and len(waited.callbacks) == 1
            if sole and (not waited.triggered or isinstance(waited, Timeout)):
                # We were the sole watcher of a still-pending event (e.g. a
                # queued Signal.acquire): withdraw it so it cannot consume a
                # resource unit nobody will ever collect.  A Timeout counts
                # as triggered from birth but holds no resource, so a
                # sole-watched one is likewise safe to reclaim — leaving it
                # would keep the heap (and the clock) running to its expiry.
                waited.cancel()
            else:
                # The detached event may still fire before the Interrupt below
                # is delivered (both can land at the current instant); mark it
                # stale so _resume swallows it instead of double-resuming the
                # generator.
                self._stale.add(waited)
        # Deliver asynchronously so the interrupter keeps running first.
        ev = Event(self.sim)
        ev.succeed()
        ev.add_callback(lambda _e: self._throw(Interrupt(cause), waited))

    def _throw(self, exc: BaseException, waited: Event | None) -> None:
        if not self.is_alive:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if not self._fail_or_raise(err):
                raise
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        if self._stale and event in self._stale:
            # Detached by interrupt(); its wakeup must never reach the
            # generator, no matter when it arrives relative to the Interrupt.
            # Checked first: a re-wait on a still-pending stale event must
            # swallow the detached registration, not the fresh one.
            self._stale.discard(event)
            return
        if event is self._waiting_on:
            # Fast path: the event we are parked on woke us (the dominant
            # resume by far — every Timeout expiry lands here).
            self._waiting_on = None
        elif self._triggered or self._waiting_on is not None:
            # Generator already finished, or interrupted while waiting and
            # this is the stale wakeup from the detached event.
            return
        try:
            if event._ok:
                target = self._gen.send(event._value)
            else:
                target = self._gen.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if not self._fail_or_raise(err):
                raise
            return
        # inlined _wait_on fast path: one call frame less per yield
        if isinstance(target, Event) and target.sim is self.sim:
            self._waiting_on = target
            callbacks = target.callbacks
            if callbacks is None:
                self._resume(target)  # already processed: wake right now
            else:
                callbacks.append(self._resume_cb)
        else:
            self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, expected Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from a different simulator")
        self._waiting_on = target
        target.add_callback(self._resume_cb)

    def _fail_or_raise(self, err: BaseException) -> bool:
        """Fail this process-event if someone is watching, else propagate."""
        if self.callbacks:
            self.fail(err)
            return True
        return False


class Simulator:
    """The event loop: a calendar queue of per-cycle FIFO buckets.

    Scheduling structure (timing wheel / calendar queue):

    * ``_buckets`` maps an absolute cycle to the list of events scheduled
      for that cycle.  Appending preserves the deterministic same-cycle
      FIFO order the previous tuple heap obtained from per-event sequence
      numbers — without allocating a tuple or bumping a counter per event;
    * ``_times`` is a min-heap over the *distinct occupied cycles*: one
      heap operation per cycle instead of one per event, which is what
      makes same-cycle bursts (ring flit hops, C-FIFO pointer updates,
      gateway copy completions) cheap;
    * while a bucket is being drained, ``_active``/``_active_cycle`` expose
      it so zero-delay schedules append straight onto the live bucket and
      fire in the same pass — the same-cycle Event-burst fast path, which
      bypasses the dict and the heap entirely.

    Temporal decoupling: the clock jumps from occupied cycle to occupied
    cycle; idle spans are counted in :attr:`skipped_cycles` and never
    stepped or simulated.

    Clock semantics (uniform, regression-pinned in
    ``tests/unit/test_sim_kernel.py``):

    * ``run()``, ``run(until=event)`` and the bounded drivers
      :meth:`run_until`/:meth:`run_while` leave the clock on the cycle of
      the **last dispatched event**.  A bounded driver that gives up
      (queue drained, or next live event beyond ``limit``) does *not*
      advance to the limit, so measurement horizons are never inflated by
      idle tails;
    * ``run(until=cycle)`` always ends with ``now == until`` — its
      contract is "advance simulated time to exactly this cycle"; an idle
      tail is accounted to :attr:`skipped_cycles`, not simulated;
    * ``run(until=event)`` raises a :class:`SimulationError` naming the
      cancellation when the target event was cancelled and can never
      fire, rather than the generic ran-dry message.

    The frozen heap-only predecessor lives in :mod:`repro.sim.refkernel`;
    ``tests/property/test_kernel_differential.py`` holds the two kernels
    to bit-identical observable traces and
    ``benchmarks/bench_kernel_hotpath.py`` records the speedup in
    ``BENCH_kernel_wheel.json``.
    """

    __slots__ = ("now", "skipped_cycles", "_buckets", "_times", "_active",
                 "_active_cycle")

    def __init__(self) -> None:
        self.now: int = 0
        #: cycles crossed without dispatching any event (clock jumps)
        self.skipped_cycles: int = 0
        self._buckets: dict[int, list[Event]] = {}
        self._times: list[int] = []
        self._active: list[Event] | None = None
        self._active_cycle: int = -1

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` cycles from now."""
        return Timeout(self, int(delay), value)

    def schedule_at(
        self, cycle: int, fn: Callable[[], None], defer: bool = False
    ) -> Callback:
        """Run ``fn()`` at absolute ``cycle``; returns the cancellable event.

        This is the precompiled-event-chain primitive: work whose timing
        is known in closed form at injection schedules its side effects
        as plain callbacks instead of driving a generator through every
        step.  The
        returned :class:`Callback` obeys the normal event contract
        (deterministic FIFO order within the cycle, lazy ``cancel()``,
        unaffected by ``run(until=...)`` horizon clamping short of its
        cycle).  ``defer=True`` pushes ``fn`` to the tail of its cycle's
        firing list, reproducing the within-cycle position of a generator
        resume (see :class:`Callback`).
        """
        return Callback(self, cycle, fn, defer)

    def process(self, gen: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Register and start a generator as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        when = self.now + int(delay)
        if when == self._active_cycle:
            # Same-cycle burst fast path: the bucket for this cycle is being
            # drained right now — appending joins the current firing pass in
            # FIFO position without touching the dict or the heap.
            self._active.append(event)
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [event]
            _heappush(self._times, when)
        else:
            bucket.append(event)

    def peek(self) -> int | None:
        """Cycle of the next live scheduled event, or None when idle.

        Prunes consumed heap entries and cancelled bucket prefixes as a
        side effect, so a successful peek leaves the next live event at
        the front of ``_buckets[peek()]`` and its cycle on top of the
        heap (lazy deletion happens here, once, not per driver iteration).
        """
        buckets = self._buckets
        times = self._times
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:
                # bucket already drained; stale heap entry
                _heappop(times)
                continue
            i = 0
            n = len(bucket)
            while i < n and bucket[i]._cancelled:
                i += 1
            if i == n:
                # cancelled-only bucket: drop it without advancing the clock
                del buckets[t]
                _heappop(times)
                continue
            if i:
                del bucket[:i]
            return t
        return None

    def step(self) -> None:
        """Fire the single next live event."""
        t = self.peek()
        if t is None:
            raise SimulationError("step() on an empty event queue")
        bucket = self._buckets[t]
        event = bucket.pop(0)  # live: peek() pruned the cancelled prefix
        if not bucket:
            del self._buckets[t]
        if t > self.now:
            self.skipped_cycles += t - self.now - 1
            self.now = t
        event._fire()

    def run(self, until: int | Event | None = None) -> Any:
        """Run the event loop.

        ``until`` may be an absolute cycle count (run to exactly that
        cycle: events at it fire, the clock always ends on it), an
        :class:`Event` (run until it fires; its value is returned; a failed
        event re-raises; a cancelled target raises :class:`SimulationError`
        naming the cancellation), or None (run until the queue drains; the
        clock rests on the last dispatched event).
        """
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._drive(stop, None):
                    if stop._cancelled:
                        raise SimulationError(
                            f"target event was cancelled (clock at cycle "
                            f"{self.now}); it can never fire"
                        )
                    raise SimulationError(
                        f"simulation ran dry at cycle {self.now} "
                        "before target event fired"
                    )
            if not stop._ok:
                raise stop._value
            return stop._value
        if until is not None:
            horizon = int(until)
            if horizon < self.now:
                raise SimulationError("cannot run backwards in time")
            self._run_to(horizon)
            return None
        self._run_all()
        return None

    def _run_all(self) -> None:
        """Drain the queue completely; clock rests on the last dispatch."""
        buckets = self._buckets
        times = self._times
        while times:
            t = _heappop(times)
            bucket = buckets.pop(t, None)
            if bucket is None:
                continue
            i = 0
            n = len(bucket)
            while i < n and bucket[i]._cancelled:
                i += 1
            if i == n:
                continue
            if t > self.now:
                self.skipped_cycles += t - self.now - 1
                self.now = t
            self._active = bucket
            self._active_cycle = t
            try:
                while i < len(bucket):
                    event = bucket[i]
                    i += 1
                    if event._cancelled:
                        continue
                    # inlined Event._fire: the Timeout-expiry hot path
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
            finally:
                self._active = None
                self._active_cycle = -1
                if i < len(bucket):
                    # aborted mid-bucket (process exception): keep the tail
                    # scheduled, exactly like the heap kernel did
                    del bucket[:i]
                    buckets[t] = bucket
                    _heappush(times, t)

    def _run_to(self, horizon: int) -> None:
        """Fire everything at cycles <= horizon; clock ends on horizon."""
        buckets = self._buckets
        times = self._times
        while times:
            t = times[0]
            if t > horizon:
                break
            _heappop(times)
            bucket = buckets.pop(t, None)
            if bucket is None:
                continue
            i = 0
            n = len(bucket)
            while i < n and bucket[i]._cancelled:
                i += 1
            if i == n:
                continue
            if t > self.now:
                self.skipped_cycles += t - self.now - 1
                self.now = t
            self._active = bucket
            self._active_cycle = t
            try:
                while i < len(bucket):
                    event = bucket[i]
                    i += 1
                    if event._cancelled:
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
            finally:
                self._active = None
                self._active_cycle = -1
                if i < len(bucket):
                    del bucket[:i]
                    buckets[t] = bucket
                    _heappush(times, t)
        if horizon > self.now:
            # temporal decoupling: the idle tail is skipped, not simulated
            self.skipped_cycles += horizon - self.now
            self.now = horizon

    def _drive(self, stop: Event, limit: int | None) -> bool:
        """Fire events in order until ``stop`` has been processed.

        Never fires an event past ``limit`` (None = unbounded).  Returns
        True once ``stop`` was processed; False when it gave up first
        (queue drained, or next live event beyond the limit) — the clock
        then rests on the last dispatched event.
        """
        buckets = self._buckets
        times = self._times
        while not stop._processed:
            t = self.peek()
            if t is None or (limit is not None and t > limit):
                return stop._processed
            _heappop(times)  # peek() left t on top with a live bucket
            bucket = buckets.pop(t)
            if t > self.now:
                self.skipped_cycles += t - self.now - 1
                self.now = t
            i = 0
            self._active = bucket
            self._active_cycle = t
            try:
                while i < len(bucket):
                    if stop._processed:
                        break
                    event = bucket[i]
                    i += 1
                    if event._cancelled:
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
            finally:
                self._active = None
                self._active_cycle = -1
                if i < len(bucket):
                    # stop fired (or a process raised) mid-bucket: the
                    # same-cycle tail stays scheduled for a later run call
                    del bucket[:i]
                    buckets[t] = bucket
                    _heappush(times, t)
        return True

    def run_until(self, stop: Event, limit: int) -> bool:
        """Run until ``stop`` fires, never past cycle ``limit``.

        Returns True once ``stop`` has fired; False when the queue drained
        or the next live event lies beyond ``limit`` first (the clock then
        rests on the last fired event, not on ``limit`` — see the class
        docstring's clock-semantics contract).  This is the bounded-horizon
        driver loop of the architecture harness.
        """
        return self._drive(stop, limit)

    def run_while(self, pending: Callable[[], bool], limit: int) -> bool:
        """Run while ``pending()`` is true, never past cycle ``limit``.

        The predicate is re-evaluated before every event dispatch.  Returns
        True once ``pending()`` turned false; False when the queue drained
        or the next live event lies beyond ``limit`` while still pending
        (the clock then rests on the last fired event, not on ``limit``).
        """
        buckets = self._buckets
        times = self._times
        while pending():
            t = self.peek()
            if t is None or t > limit:
                return not pending()
            _heappop(times)
            bucket = buckets.pop(t)
            if t > self.now:
                self.skipped_cycles += t - self.now - 1
                self.now = t
            i = 0
            self._active = bucket
            self._active_cycle = t
            try:
                while i < len(bucket):
                    if not pending():
                        break
                    event = bucket[i]
                    i += 1
                    if event._cancelled:
                        continue
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        for fn in callbacks:
                            fn(event)
            finally:
                self._active = None
                self._active_cycle = -1
                if i < len(bucket):
                    del bucket[:i]
                    buckets[t] = bucket
                    _heappush(times, t)
        return True
