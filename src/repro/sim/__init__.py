"""Discrete-event simulation kernel (cycle-level) used by :mod:`repro.arch`."""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .queues import FifoQueue, Signal
from .trace import GanttRow, IntervalAccumulator, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FifoQueue",
    "GanttRow",
    "Interrupt",
    "IntervalAccumulator",
    "Process",
    "Signal",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
