"""Discrete-event simulation kernel (cycle-level) used by :mod:`repro.arch`."""

from .faults import (
    AdmissionController,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    StreamRequirement,
    WatchdogConfig,
)
from .kernel import (
    AllOf,
    AnyOf,
    Callback,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .metrics import (
    GatewayUtilization,
    StreamMetrics,
    fastpath_summary,
    gateway_utilization,
    metrics_table,
    observed_sample_latency,
    stream_metrics,
)
from .queues import FifoQueue, Signal
from .trace import GanttRow, IntervalAccumulator, Kind, TraceRecord, Tracer

__all__ = [
    "AdmissionController",
    "AllOf",
    "AnyOf",
    "Callback",
    "Event",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FifoQueue",
    "GanttRow",
    "GatewayUtilization",
    "Interrupt",
    "IntervalAccumulator",
    "Kind",
    "Process",
    "Signal",
    "SimulationError",
    "Simulator",
    "StreamMetrics",
    "StreamRequirement",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "WatchdogConfig",
    "fastpath_summary",
    "gateway_utilization",
    "metrics_table",
    "observed_sample_latency",
    "stream_metrics",
]
