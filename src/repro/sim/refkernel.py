"""Frozen heap-only reference implementation of the simulation kernel.

This is the binary-heap event loop that :mod:`repro.sim.kernel` shipped
with before the calendar-queue rewrite, kept verbatim as an executable
specification.  It exists for two jobs only:

* **differential testing** — the hypothesis properties in
  ``tests/property/test_kernel_differential.py`` replay random programs
  (timeouts, interrupts, cancellations, AnyOf races) on both kernels and
  require bit-identical observable traces;
* **before/after benchmarking** — ``benchmarks/bench_kernel_hotpath.py``
  measures events/sec here versus the production kernel and records the
  comparison in ``BENCH_kernel_wheel.json``.

Do not "improve" this module: its value is that it does not change.  It is
a complete copy (events, processes, heap scheduler) rather than a subclass
so the reference semantics cannot drift when the production classes are
optimised.  It must never be imported by production code — only by tests
and benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for protocol violations inside the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a simulated instant.

    An event starts *pending*, may be *triggered* (scheduled to fire) and is
    finally *processed* once its callbacks have run.  Processes wait on events
    by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
                 "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._cancelled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (vs. failed)."""
        return self._ok

    @property
    def cancelled(self) -> bool:
        """True once the event has been withdrawn and will never fire."""
        return self._cancelled

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Schedule this event to fire successfully after ``delay`` cycles."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Schedule this event to fire as a failure after ``delay`` cycles."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def cancel(self) -> None:
        """Withdraw the event: its callbacks will never run.

        A scheduled event stays in the simulator heap but is skipped (lazy
        deletion); an event queued as a waiter (e.g. a pending
        :meth:`Signal.acquire`) is skipped by the owning primitive without
        consuming any resource.  Cancelling an already-processed event is an
        error — its callbacks have run.
        """
        if self._processed:
            raise SimulationError("cannot cancel an already-processed event")
        self._cancelled = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` to run when the event fires (or immediately if done)."""
        if self.callbacks is None:
            # Already processed: run at the current instant.
            fn(self)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        if self._cancelled:
            return
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that fires automatically ``delay`` cycles after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class AllOf(Event):
    """Fires when all constituent events have fired.

    Value is the list of the constituent values in input order.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = 0
        for ev in self._events:
            if ev.processed:
                if not ev.ok and not self._triggered:
                    self.fail(ev.value)
            else:
                self._remaining += 1
                ev.add_callback(self._on_child)
        if self._remaining == 0 and not self._triggered:
            self.succeed([ev.value for ev in self._events])

    def _on_child(self, ev: Event) -> None:
        if not ev.ok:
            if not self._triggered:
                self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0 and not self._triggered:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires as soon as any constituent event fires; value is (index, value)."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: list[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        for idx, ev in enumerate(self._events):
            ev.add_callback(lambda e, i=idx: self._on_child(i, e))
        if self._triggered:
            # a constituent was already processed; reap timers registered
            # after the winner resolved us
            self._cancel_losers(None)

    def _on_child(self, idx: int, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed((idx, ev.value))
        else:
            self.fail(ev.value)
        self._cancel_losers(ev)

    def _cancel_losers(self, winner: Event | None) -> None:
        """Cancel losing constituent timers once the race is decided.

        A stale Timeout must neither wake a process later nor keep the
        event queue artificially non-empty.  Only sole-watcher timers are
        withdrawn: a Timeout someone else also waits on must still fire.
        """
        for other in self._events:
            if other is winner or not isinstance(other, Timeout):
                continue
            if other.processed or other.cancelled:
                continue
            if other.callbacks is not None and len(other.callbacks) == 1:
                other.cancel()


class Process(Event):
    """A generator-based simulated process.

    The generator yields :class:`Event` objects; the process resumes when the
    yielded event fires, receiving the event's value via ``send`` (or its
    exception via ``throw`` for failed events).  A :class:`Process` is itself
    an :class:`Event` that fires when the generator returns, carrying the
    generator's return value.
    """

    __slots__ = ("name", "_gen", "_waiting_on", "_stale")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        super().__init__(sim)
        if not isinstance(gen, Generator):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._waiting_on: Event | None = None
        # Events detached by interrupt() whose wakeup must be swallowed even
        # if they fire before the Interrupt is delivered.
        self._stale: set[Event] = set()
        # Kick off at the current instant.
        init = Event(sim)
        init.succeed()
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None and not waited.processed:
            sole = waited.callbacks is not None and len(waited.callbacks) == 1
            if sole and (not waited.triggered or isinstance(waited, Timeout)):
                # We were the sole watcher of a still-pending event (e.g. a
                # queued Signal.acquire): withdraw it so it cannot consume a
                # resource unit nobody will ever collect.  A Timeout counts
                # as triggered from birth but holds no resource, so a
                # sole-watched one is likewise safe to reclaim — leaving it
                # would keep the heap (and the clock) running to its expiry.
                waited.cancel()
            else:
                # The detached event may still fire before the Interrupt below
                # is delivered (both can land at the current instant); mark it
                # stale so _resume swallows it instead of double-resuming the
                # generator.
                self._stale.add(waited)
        # Deliver asynchronously so the interrupter keeps running first.
        ev = Event(self.sim)
        ev.succeed()
        ev.add_callback(lambda _e: self._throw(Interrupt(cause), waited))

    def _throw(self, exc: BaseException, waited: Event | None) -> None:
        if not self.is_alive:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if not self._fail_or_raise(err):
                raise
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        if event in self._stale:
            # Detached by interrupt(); its wakeup must never reach the
            # generator, no matter when it arrives relative to the Interrupt.
            self._stale.discard(event)
            return
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            # Interrupted while waiting; stale wakeup from the old event.
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if not self._fail_or_raise(err):
                raise
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, expected Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from a different simulator")
        self._waiting_on = target
        target.add_callback(self._resume)

    def _fail_or_raise(self, err: BaseException) -> bool:
        """Fail this process-event if someone is watching, else propagate."""
        if self.callbacks:
            self.fail(err)
            return True
        return False


class Simulator:
    """The event loop: a priority queue of (cycle, sequence, event).

    The loop methods (:meth:`run`, :meth:`run_until`, :meth:`run_while`)
    pop events inline — same-cycle bursts drain in one tight loop without
    the per-event ``peek``/``purge``/``step`` call triple — which is worth
    double-digit percentages on simulation-bound runs (see
    ``benchmarks/bench_kernel_hotpath.py``).  :meth:`peek`/:meth:`step`
    remain for drivers that need per-event control.
    """

    __slots__ = ("now", "_queue", "_seq")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._seq = 0

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` cycles from now."""
        return Timeout(self, int(delay), value)

    def process(self, gen: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Register and start a generator as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        self._seq = seq = self._seq + 1
        _heappush(self._queue, (self.now + int(delay), seq, event))

    def _purge_cancelled(self) -> None:
        """Drop cancelled events from the head of the queue (lazy deletion)."""
        queue = self._queue
        while queue and queue[0][2]._cancelled:
            _heappop(queue)

    def peek(self) -> int | None:
        """Cycle of the next live scheduled event, or None when idle."""
        self._purge_cancelled()
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Fire the single next live event."""
        self._purge_cancelled()
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = _heappop(self._queue)
        self.now = when
        event._fire()

    def run(self, until: int | Event | None = None) -> Any:
        """Run the event loop.

        ``until`` may be an absolute cycle count, an :class:`Event` (run until
        it fires; its value is returned; a failed event re-raises), or None
        (run until the queue drains).
        """
        queue = self._queue
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                while queue and queue[0][2]._cancelled:
                    _heappop(queue)
                if not queue:
                    raise SimulationError(
                        f"simulation ran dry at cycle {self.now} "
                        "before target event fired"
                    )
                when, _seq, event = _heappop(queue)
                self.now = when
                event._fire()
            if not stop._ok:
                raise stop._value
            return stop._value
        if until is not None:
            horizon = int(until)
            if horizon < self.now:
                raise SimulationError("cannot run backwards in time")
            while queue:
                head = queue[0]
                if head[2]._cancelled:
                    _heappop(queue)
                    continue
                if head[0] > horizon:
                    break
                when, _seq, event = _heappop(queue)
                self.now = when
                event._fire()
            self.now = horizon
            return None
        while queue:
            when, _seq, event = _heappop(queue)
            if event._cancelled:
                continue
            self.now = when
            event._fire()
        return None

    def run_until(self, stop: Event, limit: int) -> bool:
        """Run until ``stop`` fires, never past cycle ``limit``.

        Returns True once ``stop`` has fired; False when the queue drained
        or the next live event lies beyond ``limit`` first (the clock then
        rests on the last fired event, not on ``limit``).  This is the
        bounded-horizon driver loop of the architecture harness, inlined so
        same-cycle event bursts pop in one pass.
        """
        queue = self._queue
        while not stop._processed:
            while queue and queue[0][2]._cancelled:
                _heappop(queue)
            if not queue or queue[0][0] > limit:
                return False
            when, _seq, event = _heappop(queue)
            self.now = when
            event._fire()
        return True

    def run_while(self, pending: Callable[[], bool], limit: int) -> bool:
        """Run while ``pending()`` is true, never past cycle ``limit``.

        The predicate is re-evaluated after every fired event.  Returns
        True once ``pending()`` turned false; False when the queue drained
        or the next live event lies beyond ``limit`` while still pending.
        """
        queue = self._queue
        while pending():
            while queue and queue[0][2]._cancelled:
                _heappop(queue)
            if not queue or queue[0][0] > limit:
                return not pending()
            when, _seq, event = _heappop(queue)
            self.now = when
            event._fire()
        return True
