"""Unified facade over the analysis + simulation entry points.

Historically, driving the toolkit end to end meant stitching together four
scattered entry points: :func:`repro.arch.harness.simulate_system` for the
cycle-level run, :mod:`repro.core.conformance` for the Eq. 2–5 checks,
:mod:`repro.sim.faults` for injection plans and
:mod:`repro.arch.reconfig` for churn.  This module wraps them behind one
builder::

    from repro.api import Scenario

    result = (
        Scenario(system)
        .with_blocks(8)
        .with_faults(plan)
        .with_spares(1)
        .build()
    )
    result.conformance().ok
    result.report()          # versioned repro.report envelope

A :class:`Scenario` is immutable; every ``with_*`` call returns a new one,
so partially-configured scenarios can be shared and forked (the sweep
engine relies on this).  :meth:`Scenario.build` solves Algorithm 1 when
block sizes are missing (optionally through a
:class:`repro.exp.SolverCache`), runs the architecture simulation and
returns a :class:`RunResult` carrying metrics, conformance, fault recovery
and reconfiguration views plus the unified report schema of
:mod:`repro.core.config_io`.

The canonical way to *name* a scenario is the registry
(:mod:`repro.app.scenarios`)::

    Scenario.from_registry("product_cipher", sessions=4)
    load_scenario("scenario://generated?seed=42")

Both spellings construct the same validated objects as the explicit
builder; ``load_scenario`` still accepts system-JSON paths and text for
raw :class:`~repro.core.params.GatewaySystem` descriptions.

The old entry points remain supported; :func:`simulate` is a thin
deprecation shim with the exact ``simulate_system`` signature for call
sites migrating incrementally, and constructing ``Scenario()`` without a
system (the old PAL-implicit path) warns and resolves through the
registry's ``pal_decoder`` entry for one more release.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from .core.blocksize_ilp import BlockSizeResult, resolve_block_sizes
from .core.config_io import load_system, make_report
from .core.conformance import (
    AttributedReport,
    ConformanceReport,
    ModalConformanceReport,
)
from .core.params import GatewaySystem, ParameterError
from .sim.faults import AdmissionController, FaultPlan, WatchdogConfig
from .sim.metrics import GatewayUtilization, StreamMetrics

__all__ = ["Scenario", "RunResult", "load_scenario", "simulate"]


@dataclass(frozen=True)
class Scenario:
    """Immutable description of one end-to-end run.

    Parameters mirror :func:`repro.arch.harness.simulate_system`; the
    builder methods exist so call sites read as a sentence and unset fields
    keep their defaults.

    Constructing a ``Scenario`` without a system is deprecated: it
    implicitly selects the PAL decoder, which predates the scenario
    registry.  Spell it :meth:`from_registry` instead.
    """

    system: GatewaySystem | None = None
    blocks: int = 4
    backend: str = "scipy"
    faults: FaultPlan | None = None
    spares: int = 0
    watchdog: WatchdogConfig | None = None
    admission: AdmissionController | bool | None = None
    max_cycles: int | None = None
    poll_interval: int = 1
    trace: bool = True
    trace_mode: str = "full"
    trace_capacity: int | None = None
    context_mode: str = "software"
    no_fastpath: bool = False

    def __post_init__(self) -> None:
        if self.system is None:
            warnings.warn(
                "constructing a Scenario without a system implicitly selects "
                "the PAL decoder; use Scenario.from_registry('pal_decoder') "
                "(this shim will be removed next release)",
                DeprecationWarning,
                stacklevel=3,
            )
            from .app.scenarios import get

            object.__setattr__(
                self, "system", get("pal_decoder").build().system
            )

    # -- registry front door ---------------------------------------------
    @classmethod
    def from_registry(cls, name: str, **params: Any) -> "Scenario":
        """Build a registered scenario by name (see :mod:`repro.app.scenarios`).

        ``name`` may carry URI-style parameters (``"generated?seed=3"`` or
        the full ``scenario://`` form); keyword ``params`` are validated
        against the entry's schema with did-you-mean errors.
        """
        from .app.scenarios import build_scenario

        return build_scenario(name, **params)

    # -- builder steps ---------------------------------------------------
    # every step validates eagerly: a bad value must fail at the call that
    # introduced it, not surface as a confusing error at build() time
    def with_blocks(self, blocks: int) -> "Scenario":
        """Blocks to complete per stream."""
        blocks = int(blocks)
        if blocks < 1:
            raise ParameterError(f"blocks must be >= 1, got {blocks}")
        return replace(self, blocks=blocks)

    def with_backend(self, backend: str) -> "Scenario":
        """ILP backend used when block sizes must be solved ('scipy'|'bnb')."""
        from .ilp import _BACKENDS

        if backend not in _BACKENDS:
            raise ParameterError(
                f"unknown ILP backend {backend!r}; choose from "
                f"{sorted(_BACKENDS)}"
            )
        return replace(self, backend=backend)

    def with_faults(self, plan: FaultPlan) -> "Scenario":
        """Arm a fault-injection / churn plan."""
        return replace(self, faults=plan)

    def with_spares(self, spares: int) -> "Scenario":
        """Provision dormant cold-spare tiles for tile-failure failover."""
        spares = int(spares)
        if spares < 0:
            raise ParameterError(f"spares must be >= 0, got {spares}")
        return replace(self, spares=spares)

    def with_watchdog(self, watchdog: WatchdogConfig | None) -> "Scenario":
        """Override the default calibrated watchdog."""
        return replace(self, watchdog=watchdog)

    def with_admission(
        self, admission: AdmissionController | bool | None
    ) -> "Scenario":
        """Override (or disable, with ``False``) graceful degradation."""
        return replace(self, admission=admission)

    def with_max_cycles(self, max_cycles: int | None) -> "Scenario":
        """Hard cycle cap; stalling past it raises ``SimulationStalled``."""
        if max_cycles is not None:
            max_cycles = int(max_cycles)
            if max_cycles < 1:
                raise ParameterError(
                    f"max_cycles must be >= 1 (or None), got {max_cycles}"
                )
        return replace(self, max_cycles=max_cycles)

    def with_trace(
        self, trace: bool, mode: str = "full", capacity: int | None = None
    ) -> "Scenario":
        """Toggle the structured tracer (mode, and ring capacity in events)."""
        if capacity is not None:
            capacity = int(capacity)
            if capacity < 1:
                raise ParameterError(
                    f"trace capacity must be >= 1 (or None), got {capacity}"
                )
        return replace(self, trace=trace, trace_mode=mode,
                       trace_capacity=capacity)

    def with_no_fastpath(self, no_fastpath: bool = True) -> "Scenario":
        """Disable the ring's fused fast path for this run (differential use)."""
        return replace(self, no_fastpath=bool(no_fastpath))

    def with_block_sizes(self, sizes: dict[str, int]) -> "Scenario":
        """Pin block sizes instead of solving Algorithm 1 at build time.

        Refuses to silently overwrite sizes an earlier :meth:`solve` (or
        an earlier pin) already assigned differently — two conflicting
        sources of η must be an error, not a last-write-wins surprise.
        """
        conflicts = {
            s.name: (s.block_size, sizes[s.name])
            for s in self.system.streams
            if s.name in sizes and s.block_size is not None
            and s.block_size != sizes[s.name]
        }
        if conflicts:
            detail = ", ".join(
                f"{name}: {have} -> {want}"
                for name, (have, want) in sorted(conflicts.items())
            )
            raise ParameterError(
                f"with_block_sizes conflicts with already-assigned block "
                f"sizes ({detail}); build the scenario from the unsolved "
                f"system to pin different sizes"
            )
        return replace(self, system=self.system.with_block_sizes(sizes))

    # -- execution -------------------------------------------------------
    def solve(self, cache: Any | None = None) -> "Scenario":
        """Assign block sizes via Algorithm 1 if any stream lacks one.

        ``cache`` may be a :class:`repro.exp.SolverCache` (anything with a
        matching ``resolve(system, backend=...)``) to memoize / warm-start
        the solve across neighbouring scenarios.
        """
        if all(s.block_size is not None for s in self.system.streams):
            return self
        result = self._resolve(cache)
        return replace(self, system=self.system.with_block_sizes(result.block_sizes))

    def build(self, cache: Any | None = None) -> "RunResult":
        """Solve (if needed), simulate, and wrap the outcome."""
        from .arch.harness import simulate_system

        solver: BlockSizeResult | None = None
        system = self.system
        if any(s.block_size is None for s in system.streams):
            solver = self._resolve(cache)
            system = system.with_block_sizes(solver.block_sizes)
        kwargs: dict[str, Any] = {
            "blocks": self.blocks,
            "trace": self.trace,
            "trace_mode": self.trace_mode,
            "trace_capacity": self.trace_capacity,
            "poll_interval": self.poll_interval,
            "context_mode": self.context_mode,
            "faults": self.faults,
            "watchdog": self.watchdog,
            "admission": self.admission,
            "spares": self.spares,
            "no_fastpath": self.no_fastpath,
        }
        if self.max_cycles is not None:
            kwargs["max_cycles"] = self.max_cycles
        run = simulate_system(system, **kwargs)
        return RunResult(scenario=self, run=run, solver=solver)

    def _resolve(self, cache: Any | None) -> BlockSizeResult:
        if cache is not None:
            return cache.resolve(self.system, backend=self.backend)
        return resolve_block_sizes(self.system, backend=self.backend)


def load_scenario(source: str | Path) -> Scenario:
    """Build a :class:`Scenario` from a registry URI, JSON path or JSON text.

    ``scenario://name?param=value`` references resolve through the
    :mod:`repro.app.scenarios` registry; anything else is treated as a
    system-JSON file path (or inline JSON text) exactly as before.
    """
    if isinstance(source, str) and source.lstrip().startswith("scenario://"):
        return Scenario.from_registry(source.strip())
    text = source
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        try:
            text = Path(source).read_text()
        except OSError as err:
            raise ParameterError(f"cannot read scenario config {source}: {err}") from err
    return Scenario(system=load_system(text))


@dataclass
class RunResult:
    """A completed scenario: simulation handle plus every derived view.

    The underlying :class:`~repro.arch.harness.SimulationRun` stays
    reachable as ``.run`` for anything the facade does not surface.
    """

    scenario: Scenario
    run: Any  # repro.arch.harness.SimulationRun (kept Any: arch imports api-free)
    solver: BlockSizeResult | None = None
    _metrics: dict[str, StreamMetrics] | None = field(default=None, repr=False)

    # -- raw views -------------------------------------------------------
    @property
    def system(self) -> GatewaySystem:
        """The simulated system (block sizes assigned)."""
        return self.run.system

    @property
    def horizon(self) -> int:
        return self.run.horizon

    @property
    def reconfig(self):
        """Reconfiguration manager of a churn run, else ``None``."""
        return self.run.reconfig

    @property
    def chain(self):
        return self.run.chain

    def metrics(self) -> dict[str, StreamMetrics]:
        """Per-stream observed metrics (cached: derivation walks the trace)."""
        if self._metrics is None:
            self._metrics = self.run.metrics()
        return self._metrics

    def utilization(self) -> GatewayUtilization:
        return self.run.utilization()

    def conformance(self, calibrated: bool = True) -> ConformanceReport:
        return self.run.conformance(calibrated=calibrated)

    def mode_conformance(self, calibrated: bool = True) -> ModalConformanceReport:
        return self.run.mode_conformance(calibrated=calibrated)

    def attributed_conformance(self, calibrated: bool = True) -> AttributedReport:
        return self.run.attributed_conformance(calibrated=calibrated)

    def fault_report(self) -> dict:
        return self.run.fault_report()

    @property
    def clean(self) -> bool:
        """Zero *unattributed* Eq. 2–5 violations.

        ``True`` when every conformance violation (per-mode-window in churn
        runs) is explained by an injected fault or an executed transition.
        A fault-free static run is ``clean`` iff it has no violations at
        all — this is the gate the scenario generator, the fuzz sweep and
        the ``repro scenarios run`` exit code all share.
        """
        return self.attributed_conformance().fully_attributed

    # -- unified report schema -------------------------------------------
    def report(self, kind: str = "run", calibrated: bool = True) -> dict[str, Any]:
        """The run as a versioned ``repro.report`` envelope.

        ``kind`` selects the body: ``"metrics"``, ``"conformance"``,
        ``"faults"`` and ``"reconfig"`` reproduce the historical CLI JSON
        shapes (plus the envelope fields); ``"run"`` (default) merges every
        available section — metrics, gateway utilization, conformance,
        solver stats, and, when armed, fault recovery and transitions.
        """
        if kind == "metrics":
            return make_report("metrics", self._metrics_body())
        if kind == "conformance":
            return make_report("conformance", {
                "horizon": self.horizon,
                **self._conformance_body(calibrated),
            })
        if kind == "faults":
            return make_report("faults", {
                "horizon": self.horizon,
                **self.fault_report(),
            })
        if kind == "reconfig":
            return make_report("reconfig", self._reconfig_body(calibrated))
        if kind != "run":
            raise ParameterError(
                f"unknown report kind {kind!r}; expected one of "
                "'run', 'metrics', 'conformance', 'faults', 'reconfig'"
            )
        body = self._metrics_body()
        body["conformance"] = self._conformance_body(calibrated)
        if self.solver is not None:
            body["solver"] = {
                "backend": self.solver.backend,
                "objective": self.solver.objective,
                "load": float(self.solver.load),
                "warm_start": self.solver.warm_start,
            }
        if self.run.injector is not None:
            body["faults"] = self.fault_report()
        if self.reconfig is not None:
            body["transitions"] = [
                t.to_dict() for t in self.reconfig.transitions
            ]
            body["remaps"] = [list(r) for r in self.chain.remaps]
        return make_report("run", body)

    def _conformance_body(self, calibrated: bool) -> dict[str, Any]:
        """Conformance section for the ``"run"``/``"conformance"`` reports.

        Static runs check against the solved model directly.  Churn runs
        must use the per-mode merged view: after an online re-solve the
        static model's block sizes are stale, and checking the final
        metrics against them is meaningless (and raises on any stream
        whose η changed mid-run).  Both views share the same keys.
        """
        if self.reconfig is not None:
            return self.mode_conformance(calibrated=calibrated).merged().to_dict()
        return self.conformance(calibrated=calibrated).to_dict()

    def _metrics_body(self) -> dict[str, Any]:
        return {
            "horizon": self.horizon,
            "streams": [m.to_dict() for m in self.metrics().values()],
            "gateway": self.utilization().to_dict(),
            "fastpath": self.run.fastpath(),
        }

    def _reconfig_body(self, calibrated: bool) -> dict[str, Any]:
        rm = self.reconfig
        if rm is None:
            raise ParameterError(
                "reconfig report needs a churn run (no joins/leaves scheduled "
                "and no spares provisioned)"
            )
        return {
            "horizon": self.horizon,
            "transitions": [t.to_dict() for t in rm.transitions],
            "remaps": [list(r) for r in self.chain.remaps],
            "modes": self.mode_conformance(calibrated=calibrated).to_dict(),
            "fully_attributed": self.attributed_conformance(
                calibrated=calibrated
            ).fully_attributed,
        }


#: simulate_system keyword -> Scenario field (identical spellings today,
#: kept as a map so the shim fails loudly if the surfaces ever drift)
_SIMULATE_FIELDS = frozenset({
    "blocks", "trace", "trace_mode", "trace_capacity", "poll_interval",
    "context_mode", "faults", "watchdog", "admission", "max_cycles",
    "spares",
})


def simulate(system: GatewaySystem, **kwargs: Any):
    """Deprecated shim: old-style direct simulation call.

    Kept so pre-facade call sites (``from repro.api import simulate``)
    migrate incrementally.  Accepts the
    :func:`repro.arch.harness.simulate_system` keyword surface, routes the
    run through the :class:`Scenario` facade and returns the raw
    :class:`~repro.arch.harness.SimulationRun`.  New code should build a
    :class:`Scenario` and keep the :class:`RunResult`.
    """
    warnings.warn(
        "repro.api.simulate(system, ...) is deprecated; use "
        "repro.api.Scenario(system).build() (the SimulationRun stays "
        "reachable as RunResult.run)",
        DeprecationWarning,
        stacklevel=2,
    )
    # parity with simulate_system: block sizes must already be assigned —
    # the facade would silently solve Algorithm 1, the old entry point errors
    system.require_block_sizes()
    unknown = set(kwargs) - _SIMULATE_FIELDS - {"no_fastpath"}
    if unknown:
        raise TypeError(
            f"simulate() got unexpected keyword argument(s) {sorted(unknown)}"
        )
    return replace(Scenario(system), **kwargs).build().run
