"""Unified facade over the analysis + simulation entry points.

Historically, driving the toolkit end to end meant stitching together four
scattered entry points: :func:`repro.arch.harness.simulate_system` for the
cycle-level run, :mod:`repro.core.conformance` for the Eq. 2–5 checks,
:mod:`repro.sim.faults` for injection plans and
:mod:`repro.arch.reconfig` for churn.  This module wraps them behind one
builder::

    from repro.api import Scenario

    result = (
        Scenario(system)
        .with_blocks(8)
        .with_faults(plan)
        .with_spares(1)
        .build()
    )
    result.conformance().ok
    result.report()          # versioned repro.report envelope

A :class:`Scenario` is immutable; every ``with_*`` call returns a new one,
so partially-configured scenarios can be shared and forked (the sweep
engine relies on this).  :meth:`Scenario.build` solves Algorithm 1 when
block sizes are missing (optionally through a
:class:`repro.exp.SolverCache`), runs the architecture simulation and
returns a :class:`RunResult` carrying metrics, conformance, fault recovery
and reconfiguration views plus the unified report schema of
:mod:`repro.core.config_io`.

The old entry points remain supported; :func:`simulate` is a thin
deprecation shim with the exact ``simulate_system`` signature for call
sites migrating incrementally.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from .core.blocksize_ilp import BlockSizeResult, resolve_block_sizes
from .core.config_io import load_system, make_report
from .core.conformance import (
    AttributedReport,
    ConformanceReport,
    ModalConformanceReport,
)
from .core.params import GatewaySystem, ParameterError
from .sim.faults import AdmissionController, FaultPlan, WatchdogConfig
from .sim.metrics import GatewayUtilization, StreamMetrics

__all__ = ["Scenario", "RunResult", "load_scenario", "simulate"]


@dataclass(frozen=True)
class Scenario:
    """Immutable description of one end-to-end run.

    Parameters mirror :func:`repro.arch.harness.simulate_system`; the
    builder methods exist so call sites read as a sentence and unset fields
    keep their defaults.
    """

    system: GatewaySystem
    blocks: int = 4
    backend: str = "scipy"
    faults: FaultPlan | None = None
    spares: int = 0
    watchdog: WatchdogConfig | None = None
    admission: AdmissionController | bool | None = None
    max_cycles: int | None = None
    poll_interval: int = 1
    trace: bool = True
    trace_mode: str = "full"
    context_mode: str = "software"

    # -- builder steps ---------------------------------------------------
    # every step validates eagerly: a bad value must fail at the call that
    # introduced it, not surface as a confusing error at build() time
    def with_blocks(self, blocks: int) -> "Scenario":
        """Blocks to complete per stream."""
        blocks = int(blocks)
        if blocks < 1:
            raise ParameterError(f"blocks must be >= 1, got {blocks}")
        return replace(self, blocks=blocks)

    def with_backend(self, backend: str) -> "Scenario":
        """ILP backend used when block sizes must be solved ('scipy'|'bnb')."""
        from .ilp import _BACKENDS

        if backend not in _BACKENDS:
            raise ParameterError(
                f"unknown ILP backend {backend!r}; choose from "
                f"{sorted(_BACKENDS)}"
            )
        return replace(self, backend=backend)

    def with_faults(self, plan: FaultPlan) -> "Scenario":
        """Arm a fault-injection / churn plan."""
        return replace(self, faults=plan)

    def with_spares(self, spares: int) -> "Scenario":
        """Provision dormant cold-spare tiles for tile-failure failover."""
        spares = int(spares)
        if spares < 0:
            raise ParameterError(f"spares must be >= 0, got {spares}")
        return replace(self, spares=spares)

    def with_watchdog(self, watchdog: WatchdogConfig | None) -> "Scenario":
        """Override the default calibrated watchdog."""
        return replace(self, watchdog=watchdog)

    def with_admission(
        self, admission: AdmissionController | bool | None
    ) -> "Scenario":
        """Override (or disable, with ``False``) graceful degradation."""
        return replace(self, admission=admission)

    def with_max_cycles(self, max_cycles: int | None) -> "Scenario":
        """Hard cycle cap; stalling past it raises ``SimulationStalled``."""
        if max_cycles is not None:
            max_cycles = int(max_cycles)
            if max_cycles < 1:
                raise ParameterError(
                    f"max_cycles must be >= 1 (or None), got {max_cycles}"
                )
        return replace(self, max_cycles=max_cycles)

    def with_trace(self, trace: bool, mode: str = "full") -> "Scenario":
        """Toggle the structured tracer (and its ring/aggregate mode)."""
        return replace(self, trace=trace, trace_mode=mode)

    def with_block_sizes(self, sizes: dict[str, int]) -> "Scenario":
        """Pin block sizes instead of solving Algorithm 1 at build time.

        Refuses to silently overwrite sizes an earlier :meth:`solve` (or
        an earlier pin) already assigned differently — two conflicting
        sources of η must be an error, not a last-write-wins surprise.
        """
        conflicts = {
            s.name: (s.block_size, sizes[s.name])
            for s in self.system.streams
            if s.name in sizes and s.block_size is not None
            and s.block_size != sizes[s.name]
        }
        if conflicts:
            detail = ", ".join(
                f"{name}: {have} -> {want}"
                for name, (have, want) in sorted(conflicts.items())
            )
            raise ParameterError(
                f"with_block_sizes conflicts with already-assigned block "
                f"sizes ({detail}); build the scenario from the unsolved "
                f"system to pin different sizes"
            )
        return replace(self, system=self.system.with_block_sizes(sizes))

    # -- execution -------------------------------------------------------
    def solve(self, cache: Any | None = None) -> "Scenario":
        """Assign block sizes via Algorithm 1 if any stream lacks one.

        ``cache`` may be a :class:`repro.exp.SolverCache` (anything with a
        matching ``resolve(system, backend=...)``) to memoize / warm-start
        the solve across neighbouring scenarios.
        """
        if all(s.block_size is not None for s in self.system.streams):
            return self
        result = self._resolve(cache)
        return replace(self, system=self.system.with_block_sizes(result.block_sizes))

    def build(self, cache: Any | None = None) -> "RunResult":
        """Solve (if needed), simulate, and wrap the outcome."""
        from .arch.harness import simulate_system

        solver: BlockSizeResult | None = None
        system = self.system
        if any(s.block_size is None for s in system.streams):
            solver = self._resolve(cache)
            system = system.with_block_sizes(solver.block_sizes)
        kwargs: dict[str, Any] = {
            "blocks": self.blocks,
            "trace": self.trace,
            "trace_mode": self.trace_mode,
            "poll_interval": self.poll_interval,
            "context_mode": self.context_mode,
            "faults": self.faults,
            "watchdog": self.watchdog,
            "admission": self.admission,
            "spares": self.spares,
        }
        if self.max_cycles is not None:
            kwargs["max_cycles"] = self.max_cycles
        run = simulate_system(system, **kwargs)
        return RunResult(scenario=self, run=run, solver=solver)

    def _resolve(self, cache: Any | None) -> BlockSizeResult:
        if cache is not None:
            return cache.resolve(self.system, backend=self.backend)
        return resolve_block_sizes(self.system, backend=self.backend)


def load_scenario(source: str | Path) -> Scenario:
    """Build a :class:`Scenario` from a system-JSON file path or JSON text."""
    text = source
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        try:
            text = Path(source).read_text()
        except OSError as err:
            raise ParameterError(f"cannot read scenario config {source}: {err}") from err
    return Scenario(system=load_system(text))


@dataclass
class RunResult:
    """A completed scenario: simulation handle plus every derived view.

    The underlying :class:`~repro.arch.harness.SimulationRun` stays
    reachable as ``.run`` for anything the facade does not surface.
    """

    scenario: Scenario
    run: Any  # repro.arch.harness.SimulationRun (kept Any: arch imports api-free)
    solver: BlockSizeResult | None = None
    _metrics: dict[str, StreamMetrics] | None = field(default=None, repr=False)

    # -- raw views -------------------------------------------------------
    @property
    def system(self) -> GatewaySystem:
        """The simulated system (block sizes assigned)."""
        return self.run.system

    @property
    def horizon(self) -> int:
        return self.run.horizon

    @property
    def reconfig(self):
        """Reconfiguration manager of a churn run, else ``None``."""
        return self.run.reconfig

    @property
    def chain(self):
        return self.run.chain

    def metrics(self) -> dict[str, StreamMetrics]:
        """Per-stream observed metrics (cached: derivation walks the trace)."""
        if self._metrics is None:
            self._metrics = self.run.metrics()
        return self._metrics

    def utilization(self) -> GatewayUtilization:
        return self.run.utilization()

    def conformance(self, calibrated: bool = True) -> ConformanceReport:
        return self.run.conformance(calibrated=calibrated)

    def mode_conformance(self, calibrated: bool = True) -> ModalConformanceReport:
        return self.run.mode_conformance(calibrated=calibrated)

    def attributed_conformance(self, calibrated: bool = True) -> AttributedReport:
        return self.run.attributed_conformance(calibrated=calibrated)

    def fault_report(self) -> dict:
        return self.run.fault_report()

    # -- unified report schema -------------------------------------------
    def report(self, kind: str = "run", calibrated: bool = True) -> dict[str, Any]:
        """The run as a versioned ``repro.report`` envelope.

        ``kind`` selects the body: ``"metrics"``, ``"conformance"``,
        ``"faults"`` and ``"reconfig"`` reproduce the historical CLI JSON
        shapes (plus the envelope fields); ``"run"`` (default) merges every
        available section — metrics, gateway utilization, conformance,
        solver stats, and, when armed, fault recovery and transitions.
        """
        if kind == "metrics":
            return make_report("metrics", self._metrics_body())
        if kind == "conformance":
            return make_report("conformance", {
                "horizon": self.horizon,
                **self.conformance(calibrated=calibrated).to_dict(),
            })
        if kind == "faults":
            return make_report("faults", {
                "horizon": self.horizon,
                **self.fault_report(),
            })
        if kind == "reconfig":
            return make_report("reconfig", self._reconfig_body(calibrated))
        if kind != "run":
            raise ParameterError(
                f"unknown report kind {kind!r}; expected one of "
                "'run', 'metrics', 'conformance', 'faults', 'reconfig'"
            )
        body = self._metrics_body()
        body["conformance"] = self.conformance(calibrated=calibrated).to_dict()
        if self.solver is not None:
            body["solver"] = {
                "backend": self.solver.backend,
                "objective": self.solver.objective,
                "load": float(self.solver.load),
                "warm_start": self.solver.warm_start,
            }
        if self.run.injector is not None:
            body["faults"] = self.fault_report()
        if self.reconfig is not None:
            body["transitions"] = [
                t.to_dict() for t in self.reconfig.transitions
            ]
            body["remaps"] = [list(r) for r in self.chain.remaps]
        return make_report("run", body)

    def _metrics_body(self) -> dict[str, Any]:
        return {
            "horizon": self.horizon,
            "streams": [m.to_dict() for m in self.metrics().values()],
            "gateway": self.utilization().to_dict(),
            "fastpath": self.run.fastpath(),
        }

    def _reconfig_body(self, calibrated: bool) -> dict[str, Any]:
        rm = self.reconfig
        if rm is None:
            raise ParameterError(
                "reconfig report needs a churn run (no joins/leaves scheduled "
                "and no spares provisioned)"
            )
        return {
            "horizon": self.horizon,
            "transitions": [t.to_dict() for t in rm.transitions],
            "remaps": [list(r) for r in self.chain.remaps],
            "modes": self.mode_conformance(calibrated=calibrated).to_dict(),
            "fully_attributed": self.attributed_conformance(
                calibrated=calibrated
            ).fully_attributed,
        }


def simulate(system: GatewaySystem, **kwargs: Any):
    """Deprecated shim: old-style direct simulation call.

    Kept so pre-facade call sites (``from repro.api import simulate``)
    migrate incrementally; new code should use :class:`Scenario`.  Accepts
    exactly the :func:`repro.arch.harness.simulate_system` keyword surface
    and returns the raw :class:`~repro.arch.harness.SimulationRun`.
    """
    warnings.warn(
        "repro.api.simulate() is a compatibility shim; build a "
        "repro.api.Scenario instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .arch.harness import simulate_system

    return simulate_system(system, **kwargs)
