"""Sweep specifications: what the experiment engine fans out.

A :class:`Sweep` is a named, validated list of :class:`SweepPoint`\\ s plus
the *task* — a picklable module-level callable evaluated once per point in
a worker process.  The paper's evaluation is exactly this shape: families
of parameter variations (block sizes η_s, buffer capacities, stream
counts, entry-copy costs — Fig. 8/10/11, Table I) each mapped through one
analysis or simulation function.

Validation is **eager** (ConfigBus-style): empty grids, duplicate point
ids, unpicklable tasks or parameters and non-JSON-serialisable parameters
are rejected at construction time with a message naming the offending
point, instead of surfacing as an opaque pickling traceback inside a
worker process minutes into a run.

Per-point seeds are derived deterministically from the sweep seed, the
sweep name and the point id (SHA-256), so a point's seed never depends on
execution order, worker count or chunking — a prerequisite for the
engine's serial ≡ parallel bit-identity guarantee.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = ["Sweep", "SweepPoint", "SweepError", "point_seed",
           "scenario_corpus"]


class SweepError(ValueError):
    """Raised for invalid sweep specifications (eager, pre-execution)."""


def point_seed(sweep_seed: int, sweep_name: str, point_id: str) -> int:
    """Deterministic 32-bit seed for one point, stable across processes."""
    digest = hashlib.sha256(
        f"{sweep_seed}:{sweep_name}:{point_id}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class SweepPoint:
    """One evaluation of the task: an id, its parameters, and its seed."""

    id: str
    params: Mapping[str, Any]
    seed: int = 0


class Sweep:
    """A validated experiment specification.

    Parameters
    ----------
    name:
        Artifact name; results persist as ``BENCH_<name>.json``.
    task:
        Module-level callable ``task(params, ctx) -> dict`` evaluated per
        point (``ctx`` is a :class:`repro.exp.engine.PointContext`).  Must
        be picklable — lambdas and closures are rejected up front.  May
        also be a string: a built-in task name from
        :mod:`repro.exp.tasks`, or a ``scenario://`` registry reference
        (which implies the ``"scenario"`` task with the reference's
        validated parameters folded under every point's params).
    points:
        The points: :class:`SweepPoint` objects (seeds are re-derived),
        ``{"id": ..., "params": {...}}`` mappings (explicit ids — the JSON
        spec form), or plain param mappings (ids are synthesised).
    seed:
        Root seed all per-point seeds derive from.
    """

    def __init__(
        self,
        name: str,
        task: Callable[..., dict],
        points: Iterable[SweepPoint | Mapping[str, Any]],
        seed: int = 0,
    ) -> None:
        if not isinstance(name, str) or not name or not name.replace("_", "a").isalnum():
            raise SweepError(
                f"sweep name must be a non-empty alphanumeric/underscore "
                f"string (it names the BENCH_<name>.json artifact), got {name!r}"
            )
        self.name = name
        self.seed = int(seed)
        implied_base: Mapping[str, Any] = {}
        if isinstance(task, str):
            task, implied_base = _resolve_task_ref(task)
        self.task = _checked_task(task)
        built: list[SweepPoint] = []
        for i, p in enumerate(points):
            if isinstance(p, SweepPoint):
                pid, params = p.id, dict(p.params)
            elif isinstance(p, Mapping) and set(p) == {"id", "params"}:
                pid, params = p["id"], p["params"]
                if not isinstance(pid, str) or not pid:
                    raise SweepError(f"point #{i}: id must be a non-empty string")
                if not isinstance(params, Mapping):
                    raise SweepError(
                        f"point {pid!r}: 'params' must be a mapping, "
                        f"got {type(params).__name__}"
                    )
                params = dict(params)
            elif isinstance(p, Mapping):
                params = dict(p)
                pid = _synth_id(params, i)
            else:
                raise SweepError(
                    f"point #{i} must be a SweepPoint or a params mapping, "
                    f"got {type(p).__name__}"
                )
            if implied_base:
                params = {**implied_base, **params}
            _check_params(pid, params)
            built.append(
                SweepPoint(id=pid, params=params,
                           seed=point_seed(self.seed, name, pid))
            )
        if not built:
            raise SweepError(f"sweep {name!r} has no points (empty grid?)")
        ids = [p.id for p in built]
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        if dupes:
            raise SweepError(f"sweep {name!r} has duplicate point ids: {dupes}")
        self.points: tuple[SweepPoint, ...] = tuple(built)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sweep({self.name!r}, {len(self.points)} points)"

    @classmethod
    def grid(
        cls,
        name: str,
        task: Callable[..., dict],
        axes: Mapping[str, Sequence[Any]],
        base: Mapping[str, Any] | None = None,
        seed: int = 0,
    ) -> "Sweep":
        """Cartesian-product sweep over ``axes``, merged over ``base``.

        Point ids are ``"k=v,k2=v2"`` in axis insertion order, so a grid's
        ids (and therefore seeds and artifact layout) are reproducible.
        """
        if not axes:
            raise SweepError(f"sweep {name!r}: empty axes mapping")
        for key, values in axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise SweepError(
                    f"sweep {name!r}: axis {key!r} must be a sequence of values"
                )
            if len(values) == 0:
                raise SweepError(f"sweep {name!r}: axis {key!r} is empty")
        keys = list(axes)
        points = []
        for combo in product(*(axes[k] for k in keys)):
            params = dict(base or {})
            params.update(zip(keys, combo))
            pid = ",".join(f"{k}={v}" for k, v in zip(keys, combo))
            points.append(SweepPoint(id=pid, params=params))
        return cls(name, task, points, seed=seed)


def _checked_task(task: Callable[..., dict]) -> Callable[..., dict]:
    if not callable(task):
        raise SweepError(f"task must be callable, got {type(task).__name__}")
    try:
        blob = pickle.dumps(task)
        if pickle.loads(blob) is None:  # pragma: no cover - defensive
            raise SweepError("task pickled to None")
    except SweepError:
        raise
    except Exception as err:
        raise SweepError(
            f"task {getattr(task, '__name__', task)!r} is not picklable "
            f"({err}); worker processes need a module-level function, not a "
            "lambda or closure"
        ) from None
    return task


def _check_params(pid: str, params: dict[str, Any]) -> None:
    try:
        pickle.dumps(params)
    except Exception as err:
        raise SweepError(
            f"point {pid!r}: parameters are not picklable ({err})"
        ) from None
    try:
        json.dumps(params, sort_keys=True)
    except (TypeError, ValueError) as err:
        raise SweepError(
            f"point {pid!r}: parameters are not JSON-serialisable ({err}); "
            "sweep results persist as JSON, so params must round-trip"
        ) from None


def _synth_id(params: Mapping[str, Any], index: int) -> str:
    if not params:
        return f"p{index}"
    try:
        return ",".join(f"{k}={params[k]}" for k in params)
    except Exception:  # pragma: no cover - exotic key types
        return f"p{index}"


def _resolve_task_ref(ref: str) -> "tuple[Callable[..., dict], dict[str, Any]]":
    """Resolve a string task: a built-in task name or a scenario reference.

    A ``scenario://`` reference implies the built-in ``"scenario"`` task
    with the reference's name and schema-validated parameters folded under
    every point's params — the shape ``repro sweep scenario://...`` and
    :func:`scenario_corpus` fan out.  Anything else is looked up in the
    :data:`repro.exp.tasks.TASKS` registry (friendly error on a miss).
    """
    from .tasks import get_task

    if ref.lstrip().startswith("scenario://"):
        from ..app.scenarios import ScenarioError, get as get_scenario, parse_ref

        try:
            name, raw = parse_ref(ref)
            values = get_scenario(name).validate(raw)
        except ScenarioError as err:
            raise SweepError(str(err)) from None
        return get_task("scenario"), {"scenario": name, **values}
    return get_task(ref), {}


def scenario_corpus(
    ref: str,
    points: int = 25,
    name: str | None = None,
    seed: int = 0,
    strict: bool = True,
) -> Sweep:
    """Fan one scenario reference into a seeded corpus sweep.

    The workhorse behind ``repro sweep scenario://generated?seed=N
    --points K``: point *i* builds the referenced scenario with seed
    ``base_seed + i`` and runs it through the ``scenario`` task.  With
    ``strict`` (the default) any unattributed Eq. 2–5 violation fails the
    point, so the sweep's exit code *is* the conformance gate.

    Only entries whose schema has a ``seed`` parameter (the generator) can
    fan out — any other entry is deterministic, so a multi-point corpus
    would repeat the identical run.
    """
    from ..app.scenarios import ScenarioError, get as get_scenario, parse_ref

    try:
        sname, raw = parse_ref(ref)
        definition = get_scenario(sname)
        values = definition.validate(raw)
    except ScenarioError as err:
        raise SweepError(str(err)) from None
    points = int(points)
    if points < 1:
        raise SweepError(f"corpus needs >= 1 point, got {points}")
    if name is None:
        name = f"scenario_corpus_{sname}"
    if "seed" in definition.schema:
        base_seed = int(values.get("seed", 0))
        base = {"scenario": sname, "strict": bool(strict),
                **{k: v for k, v in values.items() if k != "seed"}}
        axes = {"seed": [base_seed + i for i in range(points)]}
        return Sweep.grid(name, "scenario", axes, base=base, seed=seed)
    if points > 1:
        raise SweepError(
            f"scenario {sname!r} has no 'seed' parameter; a {points}-point "
            "corpus would repeat the identical run — use --points 1 or a "
            "generator-backed reference like scenario://generated?seed=0"
        )
    return Sweep(name, "scenario",
                 [{"scenario": sname, "strict": bool(strict), **values}],
                 seed=seed)
