"""Seeded chaos injection for the sweep engine's recovery machinery.

Mirrors the seeded-plan style of :mod:`repro.sim.faults`: a
:class:`ChaosPlan` is a deterministic, JSON-serialisable list of
:class:`ChaosEvent`\\ s derived from one seed, and a :class:`ChaosMonkey`
executes it against live worker processes — SIGKILLing a worker the moment
it claims a doomed chunk, or SIGSTOPping it for a fixed nap to exercise
lease-based stall recovery.

The load-bearing assertion (made executable by :func:`run_chaos_sweep` and
the chaos benchmarks/tests) is the engine's crown invariant under fire:

    a sweep completed *through* seeded worker kills and stalls produces a
    :meth:`~repro.exp.engine.SweepResult.digest` **bit-identical** to an
    undisturbed serial run, with zero lost and zero duplicated points.

That holds because chaos only ever destroys *in-flight* work: a killed
worker's chunk is re-queued and re-run from its first point (fresh
chunk-local cache ⇒ same outcomes), and results commit by atomic rename
(a chunk is either fully published or not at all — never torn).
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import Any

from .sweep import SweepError

__all__ = ["ChaosEvent", "ChaosPlan", "ChaosMonkey", "KILL", "STALL", "run_chaos_sweep"]

#: SIGKILL the claiming worker (crash recovery path: reap, requeue, respawn)
KILL = "kill"
#: SIGSTOP the claiming worker for ``stall_s`` (lease / stall recovery path)
STALL = "stall"

_ACTIONS = frozenset({KILL, STALL})


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted misfortune: what happens when ``chunk`` is claimed."""

    chunk: int
    action: str
    #: nap length for STALL events (must stay below the executor lease to
    #: exercise the SIGCONT path; above it to exercise the lease kill)
    stall_s: float = 0.2

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise SweepError(
                f"chaos action must be one of {sorted(_ACTIONS)}, "
                f"got {self.action!r}"
            )
        if self.chunk < 0:
            raise SweepError(f"chaos chunk index must be >= 0, got {self.chunk}")
        if self.stall_s <= 0:
            raise SweepError(f"stall_s must be positive, got {self.stall_s}")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, reproducible set of chaos events (one per chunk at most)."""

    seed: int
    events: tuple[ChaosEvent, ...]

    @classmethod
    def random(
        cls,
        seed: int,
        chunk_count: int,
        kill_rate: float = 0.3,
        stall_rate: float = 0.15,
        stall_s: float = 0.2,
    ) -> "ChaosPlan":
        """Derive a plan from ``seed`` alone — same seed, same misfortunes."""
        if chunk_count < 1:
            raise SweepError(f"chunk_count must be >= 1, got {chunk_count}")
        rng = random.Random(seed)
        events = []
        for chunk in range(chunk_count):
            roll = rng.random()
            if roll < kill_rate:
                events.append(ChaosEvent(chunk, KILL))
            elif roll < kill_rate + stall_rate:
                events.append(ChaosEvent(chunk, STALL, stall_s=stall_s))
        return cls(seed=seed, events=tuple(events))

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form for reports and artifacts."""
        return {
            "seed": self.seed,
            "events": [
                {"chunk": e.chunk, "action": e.action, "stall_s": e.stall_s}
                for e in self.events
            ],
        }


@dataclass
class ChaosMonkey:
    """Executes a plan against live workers; keeps an audit log.

    Plugged into :class:`~repro.exp.executors.WorkQueueExecutor` via its
    ``chaos`` parameter; the executor calls :meth:`strike` exactly once per
    chunk, the first time it observes the chunk claimed.
    """

    plan: ChaosPlan
    log: list[dict[str, Any]] = field(default_factory=list)

    def strike(self, chunk: int, pid: int) -> float | None:
        """Apply the planned event for ``chunk``; returns a stall nap or None."""
        event = next((e for e in self.plan.events if e.chunk == chunk), None)
        if event is None:
            return None
        self.log.append({"chunk": chunk, "action": event.action, "pid": pid})
        if event.action == KILL:
            _kill_quietly(pid, signal.SIGKILL)
            return None
        _kill_quietly(pid, signal.SIGSTOP)
        return event.stall_s


def _kill_quietly(pid: int, sig: int) -> None:
    try:
        os.kill(pid, sig)
    except (ProcessLookupError, PermissionError):
        pass


def run_chaos_sweep(
    sweep,
    plan: ChaosPlan,
    workers: int = 2,
    chunk_size: int | None = None,
    lease_s: float = 15.0,
    store: Any = None,
    **engine_kwargs: Any,
):
    """Run ``sweep`` on the work-queue backend under ``plan``.

    Returns ``(result, monkey)``: the completed :class:`SweepResult` (the
    engine's recovery machinery must finish the run despite the kills and
    stalls) and the monkey whose ``log`` records every strike that fired.
    Callers assert ``result.digest()`` equality against an undisturbed
    serial run — see ``tests/integration/test_sweep_recovery.py`` and
    ``benchmarks/bench_sweep_engine.py``.
    """
    from .engine import run_sweep
    from .executors import WorkQueueExecutor

    monkey = ChaosMonkey(plan=plan)
    executor = WorkQueueExecutor(
        workers=workers,
        lease_s=lease_s,
        chaos=monkey,
        max_restarts=max(8, 2 * len(plan.events) + workers),
    )
    result = run_sweep(
        sweep,
        workers=workers,
        chunk_size=chunk_size,
        executor=executor,
        store=store,
        **engine_kwargs,
    )
    return result, monkey
