"""Per-point execution: contexts, outcomes, retries, timeouts.

This module is the part of the engine that actually *calls the task*.  It
is deliberately free of any executor / process-pool machinery so that every
execution backend (:mod:`repro.exp.executors`) and the work-queue worker
process (:mod:`repro.exp.worker`) share one code path — a chunk evaluated
in-process, in a pool worker, or in a queue worker produces byte-identical
outcomes by construction.

Guard rails per point:

* **retries** — a failing point is re-attempted up to ``retries`` extra
  times; every attempt re-derives its seed deterministically
  (``point.seed + attempt``) and the seed of the decisive attempt is
  recorded as :attr:`PointOutcome.retry_seed`, so a retried run remains
  reproducible and attributable.
* **seeded backoff** — between attempts the runner sleeps an exponentially
  growing, deterministically jittered delay derived from the point seed
  (never from wall-clock randomness), keeping retry schedules reproducible.
* **timeouts** — a wall-clock budget per attempt.  On platforms with
  ``SIGALRM`` (and when running on the main thread) the budget is enforced
  pre-emptively via ``setitimer``; everywhere else the attempt runs in a
  watchdog thread and the caller stops waiting at the deadline (the stuck
  thread is abandoned as a daemon — bounded *wait*, not bounded *work*).
  Which mechanism enforced the budget is recorded in the chunk stats and
  surfaced in the report's execution section.
"""

from __future__ import annotations

import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from .cache import SolverCache
from .sweep import SweepPoint

__all__ = [
    "PointContext",
    "PointOutcome",
    "ChunkRunner",
    "TIMEOUT_SIGALRM",
    "TIMEOUT_WALL_CLOCK",
    "retry_delay",
]

#: pre-emptive in-process timeout via ``signal.setitimer`` (POSIX main thread)
TIMEOUT_SIGALRM = "sigalrm"
#: portable fallback: watchdog thread + wall-clock deadline on the join
TIMEOUT_WALL_CLOCK = "wall-clock"


@dataclass(frozen=True)
class PointContext:
    """What a task sees besides its params: seed, attempt, solver cache."""

    seed: int
    attempt: int = 0
    cache: SolverCache | None = None


@dataclass(frozen=True)
class PointOutcome:
    """Result of one point: either a ``value`` dict or an ``error`` string."""

    id: str
    params: dict[str, Any]
    seed: int
    value: dict[str, Any] | None
    error: str | None = None
    attempts: int = 1
    #: seed of the decisive (last) attempt when the point was retried,
    #: ``None`` for first-attempt outcomes — makes retried runs attributable
    retry_seed: int | None = None
    wall_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def quarantined(self) -> bool:
        return self.error is not None and self.error.startswith("quarantined")

    def payload(self) -> dict[str, Any]:
        """The deterministic slice (no timings) used for digests."""
        return {
            "id": self.id,
            "params": self.params,
            "seed": self.seed,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
            "retry_seed": self.retry_seed,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any], wall_ms: float = 0.0) -> "PointOutcome":
        """Rebuild an outcome from its journaled :meth:`payload` dict."""
        return cls(
            id=payload["id"],
            params=dict(payload["params"]),
            seed=payload["seed"],
            value=payload["value"],
            error=payload["error"],
            attempts=payload.get("attempts", 1),
            retry_seed=payload.get("retry_seed"),
            wall_ms=wall_ms,
        )


def retry_delay(backoff: float, seed: int, attempt: int) -> float:
    """Deterministic jittered exponential backoff before retry ``attempt``.

    ``backoff * 2**(attempt-1)`` scaled into ``[0.5, 1.0)`` by a PRNG seeded
    from the point seed and the attempt number — two runs of the same sweep
    sleep the same schedule.
    """
    if backoff <= 0.0:
        return 0.0
    rng = random.Random((seed << 8) ^ attempt)
    return backoff * (2 ** (attempt - 1)) * (0.5 + rng.random() / 2)


@dataclass(frozen=True)
class ChunkRunner:
    """Everything needed to evaluate one chunk of points, picklable.

    Executors ship a ``ChunkRunner`` to whatever process ends up evaluating
    the chunk; :meth:`run` is the single shared evaluation loop.
    """

    task: Callable[..., dict]
    retries: int = 0
    timeout: float | None = None
    backoff: float = 0.0
    use_cache: bool = True

    def run(self, points: tuple[SweepPoint, ...]) -> tuple[list[PointOutcome], dict[str, Any]]:
        """Evaluate ``points`` serially with a fresh chunk-local cache."""
        solver_cache = SolverCache() if self.use_cache else None
        outcomes: list[PointOutcome] = []
        mechanism: str | None = None
        for point in points:
            value: dict[str, Any] | None = None
            error: str | None = None
            attempts = 0
            t0 = time.perf_counter()
            for attempt in range(self.retries + 1):
                attempts = attempt + 1
                if attempt > 0:
                    delay = retry_delay(self.backoff, point.seed, attempt)
                    if delay > 0.0:
                        time.sleep(delay)
                ctx = PointContext(
                    seed=point.seed + attempt, attempt=attempt, cache=solver_cache
                )
                try:
                    value, used = _call_with_timeout(
                        self.task, point, ctx, self.timeout
                    )
                    mechanism = mechanism or used
                    error = None
                    break
                except _PointTimeout as err:
                    mechanism = mechanism or err.mechanism
                    error = f"timeout after {self.timeout}s ({err.mechanism})"
                except Exception as err:
                    error = f"{type(err).__name__}: {err}"
            wall_ms = (time.perf_counter() - t0) * 1000.0
            if error is None and not isinstance(value, dict):
                error = f"task returned {type(value).__name__}, expected a dict"
                value = None
            outcomes.append(PointOutcome(
                id=point.id, params=dict(point.params), seed=point.seed,
                value=value, error=error, attempts=attempts,
                retry_seed=point.seed + attempts - 1 if attempts > 1 else None,
                wall_ms=wall_ms,
            ))
        stats = solver_cache.stats() if solver_cache is not None else {}
        if self.timeout is not None:
            stats["timeout_mechanism"] = mechanism or _pick_mechanism()
        return outcomes, stats


class _PointTimeout(Exception):
    """A point exceeded its wall-clock budget."""

    def __init__(self, mechanism: str = TIMEOUT_SIGALRM) -> None:
        super().__init__(mechanism)
        self.mechanism = mechanism


def _pick_mechanism() -> str:
    """Which timeout enforcement this thread/platform can use."""
    if (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    ):
        return TIMEOUT_SIGALRM
    return TIMEOUT_WALL_CLOCK


def _call_with_timeout(
    task: Callable[..., dict],
    point: SweepPoint,
    ctx: PointContext,
    timeout: float | None,
) -> tuple[dict[str, Any], str | None]:
    """Call ``task`` under ``timeout``; returns ``(value, mechanism)``.

    ``mechanism`` is ``None`` when no timeout was requested, otherwise the
    enforcement that guarded the call (:data:`TIMEOUT_SIGALRM` or
    :data:`TIMEOUT_WALL_CLOCK`).
    """
    if timeout is None:
        return task(dict(point.params), ctx), None
    if _pick_mechanism() == TIMEOUT_WALL_CLOCK:
        return _call_wall_clock(task, point, ctx, timeout), TIMEOUT_WALL_CLOCK
    # SIGALRM-based guard: only usable from a process's main thread, which
    # is where pool workers, queue workers and the serial path run chunks
    def _alarm(signum, frame):
        raise _PointTimeout(TIMEOUT_SIGALRM)

    previous = signal.signal(signal.SIGALRM, _alarm)
    started = time.monotonic()
    # setitimer returns the *old* timer; an outer alarm (e.g. a caller's own
    # watchdog) must be re-armed with its remaining budget, not wiped to 0.0
    outer_delay, outer_interval = signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return task(dict(point.params), ctx), TIMEOUT_SIGALRM
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay > 0.0:
            remaining = outer_delay - (time.monotonic() - started)
            # an already-overdue outer timer still must fire: arm the minimum
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), outer_interval
            )


def _call_wall_clock(
    task: Callable[..., dict],
    point: SweepPoint,
    ctx: PointContext,
    timeout: float,
) -> dict[str, Any]:
    """Portable fallback: run the attempt in a watchdog thread.

    The caller stops *waiting* at the deadline; a genuinely stuck attempt
    keeps its daemon thread (abandoned, reaped at process exit).  This
    bounds how long a sweep can block on one point everywhere ``SIGALRM``
    is unavailable — non-main threads, non-POSIX platforms — instead of
    silently running unbounded.
    """
    box: dict[str, Any] = {}

    def _invoke() -> None:
        try:
            box["value"] = task(dict(point.params), ctx)
        except BaseException as err:  # re-raised on the waiting thread
            box["error"] = err

    worker = threading.Thread(
        target=_invoke, name=f"point-{point.id}", daemon=True
    )
    worker.start()
    worker.join(timeout)
    if worker.is_alive():
        raise _PointTimeout(TIMEOUT_WALL_CLOCK)
    if "error" in box:
        raise box["error"]
    return box["value"]
