"""Work-queue worker process: ``python -m repro.exp.worker QUEUE_DIR``.

One side of the file-protocol queue spoken by
:class:`repro.exp.executors.WorkQueueExecutor`.  The loop is deliberately
crash-oblivious — every step either commits atomically (``os.rename`` /
``os.replace``) or leaves debris the parent knows how to reclaim:

1. claim the lexicographically first task by renaming it from ``tasks/``
   into ``claims/`` (atomic; losing the race just means trying the next);
2. publish an owner sidecar (``<chunk>.pkl.owner``: pid + wall-clock) so
   the parent can lease-police and attribute the claim after a crash;
3. evaluate the chunk with the shared :class:`~repro.exp.runner.ChunkRunner`
   loop — byte-identical semantics to every other backend;
4. commit the result by ``os.replace`` of a fully-written temp file into
   ``results/`` (readers never observe a torn result);
5. release the claim and loop; exit once the ``stop`` sentinel exists and
   no tasks remain.

A worker SIGKILLed at any point between 1 and 5 leaves either a claim the
parent re-queues (crash before commit) or a committed result plus a stale
claim the parent ignores (crash after commit) — never a lost or a
half-visible chunk.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from pathlib import Path

#: idle sleep between queue scans; small enough that tests stay snappy
_IDLE_S = 0.02


def _try_claim(tasks: Path, claims: Path, name: str) -> bool:
    try:
        os.rename(tasks / name, claims / name)
        return True
    except OSError:
        return False


def serve(queue_dir: str | Path) -> int:
    """Run the claim/evaluate/commit loop until the stop sentinel appears."""
    root = Path(queue_dir)
    tasks, claims, results = root / "tasks", root / "claims", root / "results"
    with (root / "runner.pkl").open("rb") as fh:
        runner = pickle.load(fh)
    while True:
        claimed = None
        try:
            names = sorted(n for n in os.listdir(tasks) if n.endswith(".pkl"))
        except FileNotFoundError:
            return 0  # parent tore the queue down
        for name in names:
            if _try_claim(tasks, claims, name):
                claimed = name
                break
        if claimed is None:
            if (root / "stop").exists():
                return 0
            time.sleep(_IDLE_S)
            continue
        owner = claims / (claimed + ".owner")
        with owner.open("w") as fh:
            fh.write(f"{os.getpid()} {time.time()}")
        # chaos-armed queues ask workers to hold between claim and execute
        # so the parent provably observes the claim and can strike mid-chunk
        try:
            hold = float((root / "chaos-hold").read_text())
        except (OSError, ValueError):
            hold = 0.0
        if hold > 0.0:
            time.sleep(hold)
        try:
            with (claims / claimed).open("rb") as fh:
                points = pickle.load(fh)
        except OSError:
            continue  # parent reclaimed it during the owner-write window
        outcomes, stats = runner.run(points)
        tmp = results / (claimed + ".tmp")
        with tmp.open("wb") as fh:
            pickle.dump((outcomes, stats), fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, results / claimed)
        for leftover in (claims / claimed, owner):
            try:
                os.unlink(leftover)
            except OSError:
                pass


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.exp.worker QUEUE_DIR", file=sys.stderr)
        return 2
    return serve(argv[0])


if __name__ == "__main__":
    raise SystemExit(main())
