"""The parallel experiment engine: fan a :class:`~repro.exp.sweep.Sweep` out.

Execution model
---------------

Points are split into fixed-size *chunks* (consecutive slices in point
order).  Each chunk is evaluated by one worker process via
:class:`concurrent.futures.ProcessPoolExecutor`; within a chunk, points
run serially against a fresh chunk-local :class:`~repro.exp.cache.SolverCache`,
so warm starts flow between neighbouring points of the same chunk.  Serial
mode (``workers <= 1``) runs the *same* chunks in the same order in
process — which is what makes the central guarantee possible:

    **serial and parallel execution produce bit-identical merged
    results**, because every deterministic input of a point (its params,
    its seed, its chunk-local cache history) is independent of worker
    count and scheduling.

Wall-clock timings and worker attribution are recorded separately in the
report's ``execution`` section, which is explicitly excluded from
:meth:`SweepResult.digest`.

Per-point guard rails: a point that raises is retried up to ``retries``
times (each attempt re-seeded deterministically) and then recorded as a
failed outcome instead of poisoning the run; an optional wall-clock
``timeout`` per point is enforced in-worker via ``SIGALRM`` on platforms
that have it.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..core.config_io import dump_report, make_report
from .cache import SolverCache
from .sweep import Sweep, SweepError, SweepPoint

__all__ = [
    "PointContext",
    "PointOutcome",
    "SweepResult",
    "run_sweep",
    "write_benchmark",
]

#: default chunk length — a deterministic constant (NOT derived from the
#: worker count: chunking shapes warm-start history, and serial vs parallel
#: runs must chunk identically for bit-identical results)
DEFAULT_CHUNK_SIZE = 4


@dataclass(frozen=True)
class PointContext:
    """What a task sees besides its params: seed, attempt, solver cache."""

    seed: int
    attempt: int = 0
    cache: SolverCache | None = None


@dataclass(frozen=True)
class PointOutcome:
    """Result of one point: either a ``value`` dict or an ``error`` string."""

    id: str
    params: dict[str, Any]
    seed: int
    value: dict[str, Any] | None
    error: str | None = None
    attempts: int = 1
    wall_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def payload(self) -> dict[str, Any]:
        """The deterministic slice (no timings) used for digests."""
        return {
            "id": self.id,
            "params": self.params,
            "seed": self.seed,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class SweepResult:
    """Merged outcome of a sweep run plus execution metadata."""

    name: str
    outcomes: list[PointOutcome]
    workers: int
    chunk_size: int
    elapsed_s: float
    cache: dict[str, Any] = field(default_factory=dict)
    #: the caller's raw ``workers`` argument (None = engine picked)
    requested_workers: int | None = None
    #: processes that could actually run concurrently: 1 when serial,
    #: otherwise capped by the number of chunks there was work for
    effective_workers: int = 1
    chunk_count: int = 0
    #: ``os.cpu_count()`` on the submitting host — a "parallel speedup"
    #: measured with cpu_count 1 is a serial run in disguise
    cpu_count: int | None = None
    mode: str = "serial"

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def succeeded(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def payload(self) -> list[dict[str, Any]]:
        """Deterministic merged results, in sweep point order."""
        return [o.payload() for o in self.outcomes]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`payload`.

        Two runs of the same sweep — any worker count, any scheduling —
        must produce equal digests; the executable form of the engine's
        determinism guarantee.
        """
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_report(self) -> dict[str, Any]:
        """The run as a versioned ``repro.report`` envelope (kind=sweep)."""
        return make_report("sweep", {
            "name": self.name,
            "points": self.payload(),
            "digest": self.digest(),
            "execution": {
                "workers": self.workers,
                "requested_workers": self.requested_workers,
                "effective_workers": self.effective_workers,
                "mode": self.mode,
                "chunk_size": self.chunk_size,
                "chunk_count": self.chunk_count,
                "cpu_count": self.cpu_count,
                "elapsed_s": self.elapsed_s,
                "failed_points": [o.id for o in self.failed],
                "wall_ms": {o.id: o.wall_ms for o in self.outcomes},
                "solver_cache": self.cache,
            },
        })

    def write(self, directory: str | Path = ".") -> Path:
        """Persist as ``BENCH_<name>.json``; returns the path written."""
        return write_benchmark(self, directory)


def write_benchmark(result: SweepResult, directory: str | Path = ".") -> Path:
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{result.name}.json"
    path.write_text(dump_report(result.to_report()) + "\n")
    return path


def run_sweep(
    sweep: Sweep,
    workers: int | None = None,
    chunk_size: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    cache: bool = True,
    out_dir: str | Path | None = None,
) -> SweepResult:
    """Execute ``sweep`` and merge the outcomes in point order.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` picks ``min(4, cpu_count)``, ``<= 1``
        runs serially in-process (identical results by construction).
    chunk_size:
        Points per chunk (default :data:`DEFAULT_CHUNK_SIZE`).  Must be
        identical between runs whose digests are compared.
    timeout:
        Per-point wall-clock limit in seconds (in-worker ``SIGALRM``;
        silently unenforced on platforms without it).  A timed-out attempt
        counts as a failure and is retried like any other error.
    retries:
        Extra attempts per failing point before recording the error.
    cache:
        Arm the chunk-local :class:`SolverCache` (disable for cold-solve
        baselines).
    out_dir:
        When given, persist ``BENCH_<name>.json`` there before returning.
    """
    requested_workers = workers
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise SweepError(f"chunk_size must be >= 1, got {chunk_size}")
    if retries < 0:
        raise SweepError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise SweepError(f"timeout must be positive, got {timeout}")

    chunks = [
        sweep.points[i:i + chunk_size]
        for i in range(0, len(sweep.points), chunk_size)
    ]
    started = time.perf_counter()
    if workers <= 1:
        parts = [
            _run_chunk(sweep.task, chunk, retries, timeout, cache)
            for chunk in chunks
        ]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_chunk, sweep.task, chunk, retries, timeout, cache)
                for chunk in chunks
            ]
            parts = [f.result() for f in futures]
    elapsed = time.perf_counter() - started

    outcomes: list[PointOutcome] = []
    totals = {"lookups": 0, "hits": 0, "misses": 0, "warm_starts": 0}
    for chunk_outcomes, stats in parts:
        outcomes.extend(chunk_outcomes)
        for key in totals:
            totals[key] += stats.get(key, 0)
    totals["hit_rate"] = (
        totals["hits"] / totals["lookups"] if totals["lookups"] else 0.0
    )
    totals["enabled"] = cache
    result = SweepResult(
        name=sweep.name,
        outcomes=outcomes,
        workers=workers,
        chunk_size=chunk_size,
        elapsed_s=elapsed,
        cache=totals,
        requested_workers=requested_workers,
        effective_workers=1 if workers <= 1 else min(workers, len(chunks)),
        chunk_count=len(chunks),
        cpu_count=os.cpu_count(),
        mode="serial" if workers <= 1 else "process-pool",
    )
    if out_dir is not None:
        result.write(out_dir)
    return result


class _PointTimeout(Exception):
    """A point exceeded its wall-clock budget."""


def _run_chunk(
    task: Callable[..., dict],
    points: tuple[SweepPoint, ...],
    retries: int,
    timeout: float | None,
    use_cache: bool,
) -> tuple[list[PointOutcome], dict[str, Any]]:
    """Evaluate one chunk serially with a fresh chunk-local cache.

    Top-level (not a closure) so the process pool can pickle it.
    """
    solver_cache = SolverCache() if use_cache else None
    outcomes: list[PointOutcome] = []
    for point in points:
        value: dict[str, Any] | None = None
        error: str | None = None
        attempts = 0
        t0 = time.perf_counter()
        for attempt in range(retries + 1):
            attempts = attempt + 1
            ctx = PointContext(
                seed=point.seed + attempt, attempt=attempt, cache=solver_cache
            )
            try:
                value = _call_with_timeout(task, point, ctx, timeout)
                error = None
                break
            except _PointTimeout:
                error = f"timeout after {timeout}s"
            except Exception as err:
                error = f"{type(err).__name__}: {err}"
        wall_ms = (time.perf_counter() - t0) * 1000.0
        if error is None and not isinstance(value, dict):
            error = (
                f"task returned {type(value).__name__}, expected a dict"
            )
            value = None
        outcomes.append(PointOutcome(
            id=point.id, params=dict(point.params), seed=point.seed,
            value=value, error=error, attempts=attempts, wall_ms=wall_ms,
        ))
    stats = solver_cache.stats() if solver_cache is not None else {}
    return outcomes, stats


def _call_with_timeout(
    task: Callable[..., dict],
    point: SweepPoint,
    ctx: PointContext,
    timeout: float | None,
) -> dict[str, Any]:
    if timeout is None or not hasattr(signal, "setitimer"):
        return task(dict(point.params), ctx)
    # SIGALRM-based guard: only usable from a process's main thread, which
    # is where pool workers (and the serial path) run chunk code
    def _alarm(signum, frame):
        raise _PointTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    started = time.monotonic()
    # setitimer returns the *old* timer; an outer alarm (e.g. a caller's own
    # watchdog) must be re-armed with its remaining budget, not wiped to 0.0
    outer_delay, outer_interval = signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return task(dict(point.params), ctx)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay > 0.0:
            remaining = outer_delay - (time.monotonic() - started)
            # an already-overdue outer timer still must fire: arm the minimum
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), outer_interval
            )
