"""The experiment engine: fan a :class:`~repro.exp.sweep.Sweep` out.

Execution model
---------------

Points are split into fixed-size *chunks* (consecutive slices in point
order).  Each chunk is evaluated by one worker via a pluggable
:class:`~repro.exp.executors.Executor` backend — in-process serial, a
crash-tolerant ``concurrent.futures`` process pool, or a spawn-safe
file-protocol work queue of independent worker processes.  Within a chunk,
points run serially against a fresh chunk-local
:class:`~repro.exp.cache.SolverCache`, so warm starts flow between
neighbouring points of the same chunk and never across chunks — which is
what makes the central guarantee possible:

    **every backend produces bit-identical merged results**, because every
    deterministic input of a point (its params, its seed, its chunk-local
    cache history) is independent of worker count, scheduling, crashes and
    restarts.

Durability & resume
-------------------

Arm a :class:`~repro.exp.store.ResultStore` (``store=``) and every
completed chunk is journaled as it lands; an interrupted or killed run
resumes incrementally (chunks already on disk replay without executing a
task) and a re-run of an identical spec is a pure cache hit.  The
``resume`` flag demands a matching journal exist; ``interrupt_after``
deterministically stops a run after N freshly executed chunks by raising
:class:`SweepInterrupted` — the hook CI and the chaos benchmarks use to
prove the kill → resume → digest-equality cycle.

Fault tolerance
---------------

Per point: deterministic seeded retries with jittered exponential backoff
and a wall-clock timeout (``SIGALRM`` pre-emption where available, a
watchdog-thread deadline everywhere else — the mechanism that enforced it
is recorded in the report).  Per worker: dead-worker detection with chunk
re-dispatch (exactly-once per point in the merged output via chunk-indexed
commits), poison-point quarantine after repeated crashes (recorded in the
report, never silently dropped), and graceful degradation to serial
execution when workers keep dying.  Wall-clock timings and worker
attribution live in the report's ``execution`` section, which is
explicitly excluded from :meth:`SweepResult.digest`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.config_io import dump_report, make_report
from .executors import Executor, StopExecution, resolve_executor
from .runner import (  # noqa: F401  (re-exported: public/engine-test surface)
    ChunkRunner,
    PointContext,
    PointOutcome,
    _call_with_timeout,
    _PointTimeout,
)
from .store import ResultStore, StoreSession, sweep_fingerprint
from .sweep import Sweep, SweepError

__all__ = [
    "PointContext",
    "PointOutcome",
    "SweepInterrupted",
    "SweepResult",
    "run_sweep",
    "write_benchmark",
]

#: default chunk length — a deterministic constant (NOT derived from the
#: worker count: chunking shapes warm-start history, and serial vs parallel
#: runs must chunk identically for bit-identical results)
DEFAULT_CHUNK_SIZE = 4


class SweepInterrupted(RuntimeError):
    """A run stopped early with its progress durably journaled.

    Raised when ``interrupt_after`` fires (or an executor reports a stop).
    Resume by re-running the same spec against the same store.
    """

    def __init__(self, name: str, completed: int, total: int,
                 store_path: str | None) -> None:
        super().__init__(
            f"sweep {name!r} interrupted with {completed}/{total} chunk(s) "
            f"journaled" + (f" in {store_path}" if store_path else "")
        )
        self.name = name
        self.completed_chunks = completed
        self.chunk_count = total
        self.store_path = store_path


@dataclass
class SweepResult:
    """Merged outcome of a sweep run plus execution metadata."""

    name: str
    outcomes: list[PointOutcome]
    workers: int
    chunk_size: int
    elapsed_s: float
    cache: dict[str, Any] = field(default_factory=dict)
    #: the caller's raw ``workers`` argument (None = engine picked)
    requested_workers: int | None = None
    #: processes that could actually run concurrently: 1 when serial,
    #: otherwise capped by the number of chunks there was work for
    effective_workers: int = 1
    chunk_count: int = 0
    #: ``os.cpu_count()`` on the submitting host — a "parallel speedup"
    #: measured with cpu_count 1 is a serial run in disguise
    cpu_count: int | None = None
    mode: str = "serial"
    #: executor fell back to in-process serial after workers kept dying
    degraded: bool = False
    #: pool rebuilds / replacement queue workers spawned
    worker_restarts: int = 0
    #: points recorded via poison quarantine: ``{id, chunk, failures, error}``
    quarantined: list[dict[str, Any]] = field(default_factory=list)
    #: chunks replayed from the result store instead of executed
    resumed_chunks: int = 0
    #: point outcomes served from the store (pure cache hits)
    store_hits: int = 0
    #: journal path when a store was armed
    store_path: str | None = None
    #: wall-clock timeout enforcement used ("sigalrm" | "wall-clock" | None)
    timeout_mechanism: str | None = None
    #: per-point timeout limit in seconds (None = unbounded)
    timeout_s: float | None = None

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def succeeded(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> list[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def retried(self) -> list[PointOutcome]:
        """Points that needed more than one attempt (seeds recorded)."""
        return [o for o in self.outcomes if o.attempts > 1]

    def payload(self) -> list[dict[str, Any]]:
        """Deterministic merged results, in sweep point order."""
        return [o.payload() for o in self.outcomes]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`payload`.

        Two runs of the same sweep — any backend, any worker count, any
        crash/resume history — must produce equal digests; the executable
        form of the engine's determinism guarantee.
        """
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_report(self) -> dict[str, Any]:
        """The run as a versioned ``repro.report`` envelope (kind=sweep)."""
        return make_report("sweep", {
            "name": self.name,
            "points": self.payload(),
            "digest": self.digest(),
            "execution": {
                "workers": self.workers,
                "requested_workers": self.requested_workers,
                "effective_workers": self.effective_workers,
                "mode": self.mode,
                "degraded": self.degraded,
                "worker_restarts": self.worker_restarts,
                "chunk_size": self.chunk_size,
                "chunk_count": self.chunk_count,
                "cpu_count": self.cpu_count,
                "elapsed_s": self.elapsed_s,
                "failed_points": [o.id for o in self.failed],
                "quarantined": self.quarantined,
                "retried_points": {
                    o.id: {"attempts": o.attempts, "retry_seed": o.retry_seed}
                    for o in self.retried
                },
                "timeout": {
                    "limit_s": self.timeout_s,
                    "mechanism": self.timeout_mechanism,
                },
                "store": None if self.store_path is None else {
                    "path": self.store_path,
                    "resumed_chunks": self.resumed_chunks,
                    "point_hits": self.store_hits,
                },
                "wall_ms": {o.id: o.wall_ms for o in self.outcomes},
                "solver_cache": self.cache,
            },
        })

    def write(self, directory: str | Path = ".") -> Path:
        """Persist as ``BENCH_<name>.json``; returns the path written."""
        return write_benchmark(self, directory)


def write_benchmark(result: SweepResult, directory: str | Path = ".") -> Path:
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{result.name}.json"
    path.write_text(dump_report(result.to_report()) + "\n")
    return path


def run_sweep(
    sweep: Sweep,
    workers: int | None = None,
    chunk_size: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    cache: bool = True,
    out_dir: str | Path | None = None,
    executor: Executor | str | None = None,
    store: ResultStore | str | Path | None = None,
    resume: bool = False,
    backoff: float = 0.0,
    interrupt_after: int | None = None,
) -> SweepResult:
    """Execute ``sweep`` and merge the outcomes in point order.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` picks ``min(4, cpu_count)``, ``<= 1``
        runs serially in-process (identical results by construction).
    chunk_size:
        Points per chunk (default :data:`DEFAULT_CHUNK_SIZE`).  Must be
        identical between runs whose digests are compared (and between a
        run and its resume — the store enforces this).
    timeout:
        Per-point wall-clock limit in seconds.  Enforced pre-emptively via
        ``SIGALRM`` where available, otherwise by a watchdog-thread
        deadline; the mechanism used is recorded in the report.  A
        timed-out attempt counts as a failure and is retried like any
        other error.
    retries:
        Extra attempts per failing point before recording the error; each
        attempt's seed is derived deterministically and recorded.
    cache:
        Arm the chunk-local :class:`SolverCache` (disable for cold-solve
        baselines).
    out_dir:
        When given, persist ``BENCH_<name>.json`` there before returning.
    executor:
        Backend: ``"serial"``, ``"pool"``, ``"queue"``, an
        :class:`~repro.exp.executors.Executor` instance, or ``None`` to
        pick serial/pool from ``workers``.
    store:
        A :class:`~repro.exp.store.ResultStore` (or its directory path).
        When armed, completed chunks are durably journaled as they land
        and matching journaled chunks are replayed instead of executed.
    resume:
        Require a matching journal in ``store`` (raise otherwise) — the
        explicit "continue where the last run died" switch.
    backoff:
        Base seconds for the deterministic jittered exponential retry
        backoff (0 = retry immediately).
    interrupt_after:
        Stop after this many *freshly executed* chunks have been journaled
        by raising :class:`SweepInterrupted` (testing/CI hook for the
        interrupt → resume → digest-equality cycle).
    """
    requested_workers = workers
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise SweepError(f"chunk_size must be >= 1, got {chunk_size}")
    if retries < 0:
        raise SweepError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise SweepError(f"timeout must be positive, got {timeout}")
    if backoff < 0:
        raise SweepError(f"backoff must be >= 0, got {backoff}")
    if interrupt_after is not None and interrupt_after < 1:
        raise SweepError(
            f"interrupt_after must be >= 1, got {interrupt_after}"
        )
    if resume and store is None:
        raise SweepError("resume=True needs a store to resume from")

    chunks = [
        sweep.points[i:i + chunk_size]
        for i in range(0, len(sweep.points), chunk_size)
    ]
    runner = ChunkRunner(
        task=sweep.task, retries=retries, timeout=timeout,
        backoff=backoff, use_cache=cache,
    )
    backend = resolve_executor(executor, workers)

    session: StoreSession | None = None
    if store is not None:
        result_store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        session = result_store.begin(
            sweep.name,
            sweep_fingerprint(sweep, chunk_size, retries, timeout, cache),
            chunk_count=len(chunks),
            resume=resume,
        )

    completed: dict[int, tuple[list[PointOutcome], dict[str, Any]]] = (
        dict(session.completed) if session is not None else {}
    )
    resumed_chunks = len(completed)
    executed = 0

    def on_chunk(index: int, outcomes: list[PointOutcome],
                 stats: dict[str, Any]) -> None:
        nonlocal executed
        if index in completed:
            return  # a re-dispatched twin already landed: exactly-once
        completed[index] = (outcomes, stats)
        if session is not None:
            session.record_chunk(index, outcomes, stats)
        executed += 1
        if (
            interrupt_after is not None
            and executed >= interrupt_after
            and len(completed) < len(chunks)
        ):
            raise StopExecution()

    pending = [
        (i, chunk) for i, chunk in enumerate(chunks) if i not in completed
    ]
    info = {"mode": backend.name, "effective_workers": 1, "degraded": False,
            "worker_restarts": 0, "quarantined": [], "stopped": False}
    started = time.perf_counter()
    try:
        if pending:
            info = backend.run(pending, runner, on_chunk)
    finally:
        if session is not None:
            session.close()
    elapsed = time.perf_counter() - started

    if info.get("stopped"):
        raise SweepInterrupted(
            sweep.name, len(completed), len(chunks),
            str(session.path) if session is not None else None,
        )
    missing = [i for i in range(len(chunks)) if i not in completed]
    if missing:  # pragma: no cover - executor contract violation
        raise SweepError(
            f"executor {info.get('mode')!r} lost chunk(s) {missing} — "
            "refusing to merge a partial sweep"
        )

    outcomes: list[PointOutcome] = []
    totals = {"lookups": 0, "hits": 0, "misses": 0, "warm_starts": 0}
    mechanism: str | None = None
    for index in range(len(chunks)):
        chunk_outcomes, stats = completed[index]
        outcomes.extend(chunk_outcomes)
        mechanism = mechanism or stats.get("timeout_mechanism")
        for key in totals:
            totals[key] += stats.get(key, 0)
    totals["hit_rate"] = (
        totals["hits"] / totals["lookups"] if totals["lookups"] else 0.0
    )
    totals["enabled"] = cache

    serial_like = info.get("mode", backend.name) == "serial"
    result = SweepResult(
        name=sweep.name,
        outcomes=outcomes,
        workers=workers,
        chunk_size=chunk_size,
        elapsed_s=elapsed,
        cache=totals,
        requested_workers=requested_workers,
        effective_workers=(
            1 if serial_like
            else min(info.get("effective_workers", workers), len(chunks))
        ),
        chunk_count=len(chunks),
        cpu_count=os.cpu_count(),
        mode=info.get("mode", backend.name),
        degraded=bool(info.get("degraded", False)),
        worker_restarts=int(info.get("worker_restarts", 0)),
        quarantined=list(info.get("quarantined", [])),
        resumed_chunks=resumed_chunks,
        store_hits=session.hits if session is not None else 0,
        store_path=str(session.path) if session is not None else None,
        timeout_mechanism=mechanism,
        timeout_s=timeout,
    )
    if out_dir is not None:
        result.write(out_dir)
    return result
