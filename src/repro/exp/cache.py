"""Process-local memoization + warm-start cache for Algorithm-1 solves.

Sweeps over system parameters re-solve Algorithm 1 at every point, and
neighbouring points differ in one axis value — exactly the regime
:func:`repro.core.blocksize_ilp.resolve_block_sizes` was built for.  The
cache layers two reuse levels on top of it:

* **exact memoization** — keyed on
  :func:`~repro.core.blocksize_ilp.system_fingerprint` (the identity of
  the constraint set), so a repeated system returns the previously
  computed :class:`~repro.core.blocksize_ilp.BlockSizeResult` verbatim
  without touching a solver;
* **warm starts** — a fingerprint miss passes the most recent solution as
  the incumbent, letting ``resolve_block_sizes`` grow a feasible candidate
  and tighten the branch-and-bound / LP search space instead of solving
  cold.

The cache is process-local by design: worker processes each own one, and
the engine scopes a fresh cache per chunk so a point's result depends only
on its chunk predecessors (deterministic under any worker count).

Long-running services (:mod:`repro.serve`) cannot afford an unbounded
memo under tenant churn, and their solves arrive for many unrelated
systems: :class:`ShardedSolverCache` partitions the memo into independent
:class:`SolverCache` shards keyed by the system *skeleton* (costs +
stream-name set, i.e. the fingerprint minus the throughputs), so systems
that differ only in rates share a shard — and a shard's warm-start
incumbent stays relevant — while every shard's memo is LRU-bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any
from zlib import crc32

from ..core.blocksize_ilp import (
    BlockSizeResult,
    resolve_block_sizes,
    system_fingerprint,
)
from ..core.params import GatewaySystem

__all__ = ["SolverCache", "ShardedSolverCache"]


class SolverCache:
    """Memoizing, warm-starting front-end to Algorithm 1.

    ``resolve`` is a drop-in for
    :func:`~repro.core.blocksize_ilp.resolve_block_sizes`; hit/miss and
    warm-start counters make the reuse rate observable (sweep reports
    surface them).  ``capacity`` bounds the memo (LRU eviction) so a cache
    embedded in a long-running service cannot grow without limit; ``None``
    (the default, used by the chunk-scoped sweep engine) keeps the
    historical unbounded behaviour.
    """

    def __init__(self, warm_start: bool = True, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.warm_start_enabled = warm_start
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.warm_starts = 0
        self.evictions = 0
        self._memo: OrderedDict[tuple, BlockSizeResult] = OrderedDict()
        self._incumbent: BlockSizeResult | None = None

    def __len__(self) -> int:
        return len(self._memo)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Exact-memo hit fraction over all lookups (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    # -- raw memo access (used by the serve layer, which runs its own
    # solve with a committed warm-start chain and memoizes the result) ----
    def get(self, fingerprint: tuple) -> BlockSizeResult | None:
        """Memo lookup by fingerprint; counts a hit or a miss."""
        cached = self._memo.get(fingerprint)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        self._memo.move_to_end(fingerprint)
        self._incumbent = cached
        return cached

    def put(self, fingerprint: tuple, result: BlockSizeResult) -> None:
        """Insert a solved result, evicting the least-recently-used entry
        when over capacity."""
        self._memo[fingerprint] = result
        self._memo.move_to_end(fingerprint)
        self._incumbent = result
        while self.capacity is not None and len(self._memo) > self.capacity:
            self._memo.popitem(last=False)
            self.evictions += 1

    def resolve(
        self,
        system: GatewaySystem,
        backend: str = "scipy",
        c1_mode: str = "sum",
        eta_max: int | None = None,
    ) -> BlockSizeResult:
        """Solve Algorithm 1 for ``system``, reusing prior work when possible."""
        fp = system_fingerprint(system, c1_mode=c1_mode)
        cached = self.get(fp)
        if cached is not None:
            return cached
        previous = self._incumbent if self.warm_start_enabled else None
        result = resolve_block_sizes(
            system, previous=previous, backend=backend,
            c1_mode=c1_mode, eta_max=eta_max,
        )
        if result.warm_start:
            self.warm_starts += 1
        self.put(fp, result)
        return result

    def invalidate(self) -> None:
        """Drop every memoized solution (counters are kept)."""
        self._memo.clear()
        self._incumbent = None

    def stats(self) -> dict[str, Any]:
        """JSON-friendly counters for sweep reports."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "warm_starts": self.warm_starts,
            "hit_rate": self.hit_rate,
            "entries": len(self._memo),
            "capacity": self.capacity,
            "evictions": self.evictions,
        }


def _shard_skeleton(fingerprint: tuple) -> tuple:
    """A fingerprint minus the stream throughputs: costs + name set.

    Two systems whose streams differ only in their required rates map to
    the same skeleton, so they land in the same shard and can warm-start
    each other.
    """
    c1_mode, entry, exit_, accels, streams = fingerprint
    return (c1_mode, entry, exit_, accels,
            tuple(name for name, _mu, _r in streams))


class ShardedSolverCache:
    """A fixed set of LRU-bounded :class:`SolverCache` shards.

    Shard selection hashes the system *skeleton* (see
    :func:`_shard_skeleton`) with a process-stable CRC so placement is
    deterministic across runs (``hash()`` is salted per process and would
    not be).  Each shard keeps its own warm-start incumbent, so a shard's
    incumbents are always structurally similar to the systems it serves,
    and its memo is independently capacity-bounded — a misbehaving tenant
    hammering one system shape cannot evict every other tenant's cached
    solves.
    """

    def __init__(
        self,
        shards: int = 8,
        capacity: int = 256,
        warm_start: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self._shards = tuple(
            SolverCache(warm_start=warm_start, capacity=capacity)
            for _ in range(shards)
        )

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    @property
    def shards(self) -> tuple[SolverCache, ...]:
        return self._shards

    def shard_index(self, fingerprint: tuple) -> int:
        key = repr(_shard_skeleton(fingerprint)).encode()
        return crc32(key) % len(self._shards)

    def shard_for(self, fingerprint: tuple) -> SolverCache:
        """The shard owning ``fingerprint``'s skeleton."""
        return self._shards[self.shard_index(fingerprint)]

    def get(self, fingerprint: tuple) -> BlockSizeResult | None:
        return self.shard_for(fingerprint).get(fingerprint)

    def put(self, fingerprint: tuple, result: BlockSizeResult) -> None:
        self.shard_for(fingerprint).put(fingerprint, result)

    def resolve(
        self,
        system: GatewaySystem,
        backend: str = "scipy",
        c1_mode: str = "sum",
        eta_max: int | None = None,
    ) -> BlockSizeResult:
        fp = system_fingerprint(system, c1_mode=c1_mode)
        return self.shard_for(fp).resolve(
            system, backend=backend, c1_mode=c1_mode, eta_max=eta_max
        )

    def invalidate(self) -> None:
        for shard in self._shards:
            shard.invalidate()

    def stats(self) -> dict[str, Any]:
        """Aggregate counters plus the per-shard breakdown."""
        totals = {
            "lookups": 0, "hits": 0, "misses": 0,
            "warm_starts": 0, "entries": 0, "evictions": 0,
        }
        per_shard = []
        for shard in self._shards:
            s = shard.stats()
            per_shard.append(s)
            for key in totals:
                totals[key] += s[key]
        totals["hit_rate"] = (
            totals["hits"] / totals["lookups"] if totals["lookups"] else 0.0
        )
        totals["shards"] = per_shard
        return totals
