"""Process-local memoization + warm-start cache for Algorithm-1 solves.

Sweeps over system parameters re-solve Algorithm 1 at every point, and
neighbouring points differ in one axis value — exactly the regime
:func:`repro.core.blocksize_ilp.resolve_block_sizes` was built for.  The
cache layers two reuse levels on top of it:

* **exact memoization** — keyed on
  :func:`~repro.core.blocksize_ilp.system_fingerprint` (the identity of
  the constraint set), so a repeated system returns the previously
  computed :class:`~repro.core.blocksize_ilp.BlockSizeResult` verbatim
  without touching a solver;
* **warm starts** — a fingerprint miss passes the most recent solution as
  the incumbent, letting ``resolve_block_sizes`` grow a feasible candidate
  and tighten the branch-and-bound / LP search space instead of solving
  cold.

The cache is process-local by design: worker processes each own one, and
the engine scopes a fresh cache per chunk so a point's result depends only
on its chunk predecessors (deterministic under any worker count).
"""

from __future__ import annotations

from typing import Any

from ..core.blocksize_ilp import (
    BlockSizeResult,
    resolve_block_sizes,
    system_fingerprint,
)
from ..core.params import GatewaySystem

__all__ = ["SolverCache"]


class SolverCache:
    """Memoizing, warm-starting front-end to Algorithm 1.

    ``resolve`` is a drop-in for
    :func:`~repro.core.blocksize_ilp.resolve_block_sizes`; hit/miss and
    warm-start counters make the reuse rate observable (sweep reports
    surface them).
    """

    def __init__(self, warm_start: bool = True) -> None:
        self.warm_start_enabled = warm_start
        self.hits = 0
        self.misses = 0
        self.warm_starts = 0
        self._memo: dict[tuple, BlockSizeResult] = {}
        self._incumbent: BlockSizeResult | None = None

    def __len__(self) -> int:
        return len(self._memo)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Exact-memo hit fraction over all lookups (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def resolve(
        self,
        system: GatewaySystem,
        backend: str = "scipy",
        c1_mode: str = "sum",
        eta_max: int | None = None,
    ) -> BlockSizeResult:
        """Solve Algorithm 1 for ``system``, reusing prior work when possible."""
        fp = system_fingerprint(system, c1_mode=c1_mode)
        cached = self._memo.get(fp)
        if cached is not None:
            self.hits += 1
            self._incumbent = cached
            return cached
        self.misses += 1
        previous = self._incumbent if self.warm_start_enabled else None
        result = resolve_block_sizes(
            system, previous=previous, backend=backend,
            c1_mode=c1_mode, eta_max=eta_max,
        )
        if result.warm_start:
            self.warm_starts += 1
        self._memo[fp] = result
        self._incumbent = result
        return result

    def invalidate(self) -> None:
        """Drop every memoized solution (counters are kept)."""
        self._memo.clear()
        self._incumbent = None

    def stats(self) -> dict[str, Any]:
        """JSON-friendly counters for sweep reports."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "warm_starts": self.warm_starts,
            "hit_rate": self.hit_rate,
            "entries": len(self._memo),
        }
