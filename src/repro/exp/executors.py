"""Pluggable execution backends for the sweep engine.

The engine hands every backend the same inputs — a list of ``(chunk_index,
points)`` jobs plus a picklable :class:`~repro.exp.runner.ChunkRunner` —
and requires the same contract back:

* call ``on_chunk(index, outcomes, stats)`` **as each chunk lands** (the
  engine journals it durably before the next chunk is acknowledged);
* deliver **exactly one** outcome list per chunk index, each computed by
  :meth:`ChunkRunner.run` (the single shared evaluation loop), so results
  are a pure function of the spec regardless of backend;
* survive dying workers: re-dispatch lost chunks, quarantine poison
  chunks instead of looping forever, and degrade to in-process serial
  execution when workers keep dying;
* honour ``on_chunk`` raising :class:`StopExecution` — stop dispatching,
  tear down, and report ``stopped=True`` (the engine turns this into a
  resumable :class:`~repro.exp.engine.SweepInterrupted`).

Backends
--------

:class:`SerialExecutor`
    Runs chunks in-process, in order.  The reference semantics.

:class:`ProcessPoolExecutor`
    ``concurrent.futures`` pool with dead-worker detection: a SIGKILLed or
    OOM-killed worker breaks the pool, the executor rebuilds it and
    re-dispatches every chunk that had no result yet.  Chunks that keep
    crashing workers are quarantined via isolated prefix replay; after
    ``degrade_after`` pool breakages the remainder runs serially.

:class:`WorkQueueExecutor`
    A spawn-safe, file-protocol work queue: the parent serialises chunks
    into ``tasks/``, independent worker *processes* (``python -m
    repro.exp.worker``) claim them by atomic rename into ``claims/`` and
    commit results by atomic rename into ``results/``.  The parent polls,
    reaps dead workers (re-queueing their claims), SIGKILLs workers whose
    claim lease expired (stall recovery), respawns up to a restart budget,
    and — like the pool — quarantines poison chunks and degrades to serial
    when the worker fleet cannot be kept alive.  Because the protocol is
    plain files + atomic renames, it tolerates SIGKILL at *any* instant:
    the chaos harness (:mod:`repro.exp.chaos`) leans on exactly this.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from abc import ABC, abstractmethod
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from tempfile import mkdtemp
from typing import Any, Callable

from .runner import ChunkRunner, PointOutcome
from .sweep import SweepPoint

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "WorkQueueExecutor",
    "StopExecution",
    "resolve_executor",
]

#: jobs are ``(chunk_index, points)``; outcomes flow back through on_chunk
Job = tuple[int, tuple[SweepPoint, ...]]
OnChunk = Callable[[int, list[PointOutcome], dict[str, Any]], None]


class StopExecution(Exception):
    """Raised *by the on_chunk callback* to stop an executor mid-run."""


class Executor(ABC):
    """One way of evaluating chunks; see the module docstring contract."""

    #: mode string recorded in the report execution section
    name = "abstract"

    @abstractmethod
    def run(
        self, jobs: list[Job], runner: ChunkRunner, on_chunk: OnChunk
    ) -> dict[str, Any]:
        """Evaluate every job; returns the execution-info dict."""

    def _info(self, **overrides: Any) -> dict[str, Any]:
        info = {
            "mode": self.name,
            "effective_workers": 1,
            "degraded": False,
            "worker_restarts": 0,
            "quarantined": [],
            "stopped": False,
        }
        info.update(overrides)
        return info


def resolve_executor(
    executor: "Executor | str | None", workers: int
) -> "Executor":
    """Map the engine's ``executor`` argument onto a backend instance."""
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        executor = "serial" if workers <= 1 else "pool"
    if executor == "serial":
        return SerialExecutor()
    if executor == "pool":
        return ProcessPoolExecutor(workers=max(2, workers))
    if executor == "queue":
        return WorkQueueExecutor(workers=max(2, workers))
    raise ValueError(
        f"unknown executor {executor!r}; expected 'serial', 'pool', 'queue' "
        "or an Executor instance"
    )


def _run_chunk_job(
    runner: ChunkRunner, index: int, points: tuple[SweepPoint, ...]
) -> tuple[int, list[PointOutcome], dict[str, Any]]:
    """Top-level (hence picklable) chunk evaluation for pool workers."""
    outcomes, stats = runner.run(points)
    return index, outcomes, stats


# ---------------------------------------------------------------------------
# serial
# ---------------------------------------------------------------------------


class SerialExecutor(Executor):
    """In-process, in-order evaluation — the reference backend."""

    name = "serial"

    def run(self, jobs, runner, on_chunk):
        for index, points in sorted(jobs):
            outcomes, stats = runner.run(points)
            try:
                on_chunk(index, outcomes, stats)
            except StopExecution:
                return self._info(stopped=True)
        return self._info()


# ---------------------------------------------------------------------------
# crash-tolerant process pool
# ---------------------------------------------------------------------------


class ProcessPoolExecutor(Executor):
    """``concurrent.futures`` pool with re-dispatch, quarantine, degradation.

    Parameters
    ----------
    workers:
        Pool size.
    quarantine_after:
        A chunk suspected in this many worker crashes is pulled out of the
        pool and finished via isolated prefix replay (one disposable
        process per point) so a poison point is *recorded*, never retried
        forever and never silently dropped.
    degrade_after:
        After this many pool breakages the remaining chunks run serially
        in-process — the graceful-degradation floor when workers keep
        dying for reasons no single chunk explains (OOM storms, cgroup
        kills).
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int,
        quarantine_after: int = 2,
        degrade_after: int = 4,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.quarantine_after = quarantine_after
        self.degrade_after = degrade_after

    def run(self, jobs, runner, on_chunk):
        pending: dict[int, tuple[SweepPoint, ...]] = dict(jobs)
        crashes: dict[int, int] = {}
        quarantined: list[dict[str, Any]] = []
        pool_breaks = 0
        while pending:
            if pool_breaks >= self.degrade_after:
                # workers keep dying wholesale: stop burning processes and
                # finish the remainder in this process, serially
                for index in sorted(pending):
                    outcomes, stats = runner.run(pending.pop(index))
                    try:
                        on_chunk(index, outcomes, stats)
                    except StopExecution:
                        return self._info(
                            degraded=True, worker_restarts=pool_breaks,
                            quarantined=quarantined, stopped=True,
                            effective_workers=min(self.workers, len(jobs)),
                        )
                break
            # chunks implicated in enough crashes leave the pool for good
            for index in [
                i for i in sorted(pending)
                if crashes.get(i, 0) >= self.quarantine_after
            ]:
                points = pending.pop(index)
                outcomes, stats, poisoned = _replay_chunk_isolated(
                    runner, points, crashes[index]
                )
                quarantined.extend(
                    {"id": pid, "chunk": index, "failures": crashes[index],
                     "error": err}
                    for pid, err in poisoned
                )
                try:
                    on_chunk(index, outcomes, stats)
                except StopExecution:
                    return self._info(
                        worker_restarts=pool_breaks, quarantined=quarantined,
                        stopped=True,
                        effective_workers=min(self.workers, len(jobs)),
                    )
            if not pending:
                break
            broke = False
            with futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
                submitted = {
                    pool.submit(_run_chunk_job, runner, index, points): index
                    for index, points in sorted(pending.items())
                }
                try:
                    for future in futures.as_completed(submitted):
                        index, outcomes, stats = future.result()
                        pending.pop(index, None)
                        try:
                            on_chunk(index, outcomes, stats)
                        except StopExecution:
                            for f in submitted:
                                f.cancel()
                            pool.shutdown(wait=False, cancel_futures=True)
                            return self._info(
                                worker_restarts=pool_breaks,
                                quarantined=quarantined, stopped=True,
                                effective_workers=min(self.workers, len(jobs)),
                            )
                except BrokenProcessPool:
                    # a worker died (SIGKILL, OOM, segfault).  Salvage every
                    # future that finished before the break — their results
                    # are intact — then re-dispatch the rest as crash
                    # suspects.
                    broke = True
                    for future, index in submitted.items():
                        if (
                            index in pending
                            and future.done()
                            and not future.cancelled()
                            and future.exception() is None
                        ):
                            _, outcomes, stats = future.result()
                            pending.pop(index, None)
                            try:
                                on_chunk(index, outcomes, stats)
                            except StopExecution:
                                return self._info(
                                    worker_restarts=pool_breaks + 1,
                                    quarantined=quarantined, stopped=True,
                                    effective_workers=min(
                                        self.workers, len(jobs)
                                    ),
                                )
            if broke:
                pool_breaks += 1
                for index in pending:
                    crashes[index] = crashes.get(index, 0) + 1
        return self._info(
            effective_workers=min(self.workers, max(1, len(jobs))),
            degraded=pool_breaks >= self.degrade_after,
            worker_restarts=pool_breaks,
            quarantined=quarantined,
        )


def _replay_chunk_isolated(
    runner: ChunkRunner,
    points: tuple[SweepPoint, ...],
    failures: int,
) -> tuple[list[PointOutcome], dict[str, Any], list[tuple[str, str]]]:
    """Finish a poison-suspect chunk one point at a time, each isolated.

    For point *i* a fresh single-worker pool replays the chunk *prefix*
    ``[0..i]`` (minus already-quarantined points) so the chunk-local cache
    history each survivor sees matches what a serial run of the survivors
    would build, then keeps only outcome *i*.  A prefix whose process dies
    identifies point *i* as the poison: it is recorded as a quarantined
    outcome — attributed, never silently dropped — and skipped from later
    prefixes (a run containing it could never complete on any backend).
    """
    outcomes: list[PointOutcome] = []
    poisoned: list[tuple[str, str]] = []
    stats: dict[str, Any] = {}
    alive: list[SweepPoint] = []
    for point in points:
        prefix = tuple(alive) + (point,)
        error: str | None = None
        with futures.ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_run_chunk_job, runner, 0, prefix)
            budget = None
            if runner.timeout is not None:
                # the in-worker guard should fire first; this is the belt
                # for points that wedge a worker so hard signals never land
                budget = (runner.timeout + 5.0) * len(prefix)
            try:
                _, prefix_outcomes, stats = future.result(timeout=budget)
                outcomes.append(prefix_outcomes[-1])
                alive.append(point)
                continue
            except BrokenProcessPool:
                error = (
                    f"quarantined: point crashed its worker (chunk implicated "
                    f"in {failures} worker death(s), confirmed in isolation)"
                )
            except futures.TimeoutError:
                for proc in getattr(pool, "_processes", {}).values():
                    proc.kill()
                error = (
                    "quarantined: point wedged an isolated worker past "
                    f"{budget}s (timeout mechanism never fired)"
                )
        poisoned.append((point.id, error))
        outcomes.append(PointOutcome(
            id=point.id, params=dict(point.params), seed=point.seed,
            value=None, error=error, attempts=failures,
        ))
    return outcomes, stats, poisoned


# ---------------------------------------------------------------------------
# spawn-safe file-protocol work queue
# ---------------------------------------------------------------------------

#: queue sub-directories; a chunk lives in exactly one of tasks/claims at a
#: time (moved by atomic rename), results/ is append-only commit space
_TASKS, _CLAIMS, _RESULTS = "tasks", "claims", "results"
_STOP_SENTINEL = "stop"
_RUNNER_FILE = "runner.pkl"
#: present only when a ChaosMonkey is armed: workers hold this many seconds
#: between claiming a chunk and executing it, guaranteeing the parent
#: observes the claim and can strike mid-chunk deterministically
_CHAOS_HOLD_FILE = "chaos-hold"


def _chunk_name(index: int) -> str:
    return f"chunk-{index:05d}.pkl"


def _chunk_index(name: str) -> int:
    return int(name.split("-")[1].split(".")[0])


class WorkQueueExecutor(Executor):
    """Multi-process work queue over an atomic-rename file protocol.

    Spawn-safe by construction: workers are independent interpreter
    processes started with ``subprocess`` (no inherited locks, no fork
    hazards) that speak to the parent exclusively through files —
    ``os.rename`` is the commit primitive for both claiming work and
    publishing results, so a SIGKILL at any instant leaves the queue in a
    state the parent provably recovers from.

    Parameters
    ----------
    workers: worker processes to keep alive.
    lease_s: a claim older than this is a stalled worker; the parent
        SIGKILLs it and re-queues the chunk.
    max_restarts: total replacement workers the parent may spawn before
        declaring the fleet unsustainable and degrading to serial.
    quarantine_after: per-chunk worker-death count that triggers isolated
        prefix replay (same policy as the pool backend).
    poll_s: parent poll interval.
    chaos: optional :class:`repro.exp.chaos.ChaosMonkey` consulted when a
        claim is first observed — test-only fault injection, never armed
        in production runs.
    """

    name = "work-queue"

    def __init__(
        self,
        workers: int = 2,
        lease_s: float = 30.0,
        max_restarts: int = 4,
        quarantine_after: int = 2,
        poll_s: float = 0.02,
        directory: str | Path | None = None,
        chaos: Any = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.lease_s = lease_s
        self.max_restarts = max_restarts
        self.quarantine_after = quarantine_after
        self.poll_s = poll_s
        self.directory = Path(directory) if directory is not None else None
        self.chaos = chaos

    # -- protocol helpers (parent side) ------------------------------------

    def _setup(self, root: Path, jobs: list[Job], runner: ChunkRunner) -> None:
        for sub in (_TASKS, _CLAIMS, _RESULTS):
            (root / sub).mkdir(parents=True, exist_ok=True)
        with (root / _RUNNER_FILE).open("wb") as fh:
            pickle.dump(runner, fh)
        if self.chaos is not None:
            (root / _CHAOS_HOLD_FILE).write_text(str(max(0.25, 10 * self.poll_s)))
        for index, points in jobs:
            target = root / _TASKS / _chunk_name(index)
            tmp = target.with_suffix(".tmp")
            with tmp.open("wb") as fh:
                pickle.dump(points, fh)
            os.replace(tmp, target)

    def _spawn_worker(self, root: Path) -> subprocess.Popen:
        # workers must be able to import repro from a bare interpreter:
        # prepend this package's root to PYTHONPATH (spawn-safe, no fork)
        pkg_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            pkg_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else pkg_root
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro.exp.worker", str(root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def run(self, jobs, runner, on_chunk):
        owned_dir = self.directory is None
        root = Path(mkdtemp(prefix="repro-queue-")) if owned_dir else self.directory
        try:
            return self._run(root, jobs, runner, on_chunk)
        finally:
            if owned_dir:
                import shutil

                shutil.rmtree(root, ignore_errors=True)

    def _run(self, root: Path, jobs, runner, on_chunk):
        self._setup(root, jobs, runner)
        by_index = dict(jobs)
        pending = set(by_index)
        crashes: dict[int, int] = {}
        quarantined: list[dict[str, Any]] = []
        restarts = 0
        degraded = False
        stopped = False
        procs = [self._spawn_worker(root) for _ in range(self.workers)]
        claim_seen: dict[int, float] = {}
        chaos_done: set[int] = set()
        stalled: dict[int, float] = {}  # pid -> resume_at (monotonic)
        try:
            while pending and not stopped:
                progressed = False
                # 1. results commit first: a dead worker that already
                # published its chunk still counts, its claim is garbage
                for name in sorted(os.listdir(root / _RESULTS)):
                    if not name.endswith(".pkl"):
                        continue
                    index = _chunk_index(name)
                    if index not in pending:
                        continue
                    with (root / _RESULTS / name).open("rb") as fh:
                        outcomes, stats = pickle.load(fh)
                    pending.discard(index)
                    claim_seen.pop(index, None)
                    progressed = True
                    try:
                        on_chunk(index, outcomes, stats)
                    except StopExecution:
                        stopped = True
                        break
                if stopped:
                    break
                now = time.monotonic()
                # 2. resume chaos-stalled workers whose nap is over
                for pid in [p for p, t in stalled.items() if now >= t]:
                    stalled.pop(pid)
                    _signal_quietly(pid, signal.SIGCONT)
                # 3. observe claims: lease enforcement + chaos injection
                claims = self._read_claims(root)
                for index, (pid, _claimed_at) in claims.items():
                    if index not in pending:
                        continue  # result already committed; claim is litter
                    if index not in claim_seen:
                        claim_seen[index] = now
                        if self.chaos is not None and index not in chaos_done:
                            chaos_done.add(index)
                            nap = self.chaos.strike(index, pid)
                            if nap:
                                stalled[pid] = now + nap
                    elif now - claim_seen[index] > self.lease_s:
                        # stalled worker: kill it; reap-and-requeue below
                        _signal_quietly(pid, signal.SIGKILL)
                        claim_seen.pop(index, None)
                # a claim whose owner file never appeared is a worker that
                # died between the rename and the owner write: requeue it
                # once it has clearly outlived that microscopic window
                for index in self._orphan_claims(root, claims):
                    if index not in pending:
                        continue
                    first = claim_seen.setdefault(index, now)
                    if now - first > self.lease_s:
                        self._requeue(root, index)
                        claim_seen.pop(index, None)
                        crashes[index] = crashes.get(index, 0) + 1
                # 4. reap dead workers, requeue their claims, respawn
                live: list[subprocess.Popen] = []
                for proc in procs:
                    if proc.poll() is None:
                        live.append(proc)
                        continue
                    for index, (pid, _t) in self._read_claims(root).items():
                        if pid == proc.pid:
                            self._requeue(root, index)
                            claim_seen.pop(index, None)
                            crashes[index] = crashes.get(index, 0) + 1
                    if restarts < self.max_restarts:
                        restarts += 1
                        live.append(self._spawn_worker(root))
                procs = live
                # 5. quarantine chunks that keep killing workers
                for index in [
                    i for i in sorted(pending)
                    if crashes.get(i, 0) >= self.quarantine_after
                ]:
                    self._steal_task(root, index)
                    outcomes, stats, poisoned = _replay_chunk_isolated(
                        runner, by_index[index], crashes[index]
                    )
                    quarantined.extend(
                        {"id": pid_, "chunk": index,
                         "failures": crashes[index], "error": err}
                        for pid_, err in poisoned
                    )
                    pending.discard(index)
                    progressed = True
                    try:
                        on_chunk(index, outcomes, stats)
                    except StopExecution:
                        stopped = True
                        break
                if stopped:
                    break
                # 6. no workers left and no restart budget: degrade
                if pending and not procs:
                    degraded = True
                    for index in sorted(pending):
                        self._steal_task(root, index)
                        outcomes, stats = runner.run(by_index[index])
                        pending.discard(index)
                        try:
                            on_chunk(index, outcomes, stats)
                        except StopExecution:
                            stopped = True
                            break
                    break
                if not progressed:
                    time.sleep(self.poll_s)
        finally:
            (root / _STOP_SENTINEL).touch()
            for pid in stalled:
                _signal_quietly(pid, signal.SIGCONT)
            for proc in procs:
                if proc.poll() is None:
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
        return self._info(
            effective_workers=min(self.workers, max(1, len(jobs))),
            degraded=degraded,
            worker_restarts=restarts,
            quarantined=quarantined,
            stopped=stopped,
        )

    def _orphan_claims(
        self, root: Path, claims: dict[int, tuple[int, float]]
    ) -> list[int]:
        """Claim files present with no readable owner sidecar."""
        orphans = []
        for name in os.listdir(root / _CLAIMS):
            if name.endswith(".pkl"):
                index = _chunk_index(name)
                if index not in claims:
                    orphans.append(index)
        return orphans

    def _read_claims(self, root: Path) -> dict[int, tuple[int, float]]:
        """Claims as ``{chunk_index: (pid, claimed_at)}`` (tolerant scan)."""
        claims: dict[int, tuple[int, float]] = {}
        for name in os.listdir(root / _CLAIMS):
            if not name.endswith(".owner"):
                continue
            try:
                with (root / _CLAIMS / name).open("r") as fh:
                    owner = fh.read().split()
                claims[_chunk_index(name)] = (int(owner[0]), float(owner[1]))
            except (OSError, ValueError, IndexError):
                continue  # worker mid-write or just died; next poll settles it
        return claims

    def _requeue(self, root: Path, index: int) -> None:
        """Move a dead worker's claim back into the task queue (atomic)."""
        name = _chunk_name(index)
        try:
            os.rename(root / _CLAIMS / name, root / _TASKS / name)
        except OSError:
            return  # result already committed or another pass re-queued it
        _unlink_quietly(root / _CLAIMS / (name + ".owner"))

    def _steal_task(self, root: Path, index: int) -> None:
        """Pull a chunk out of the queue so no worker picks it up again."""
        name = _chunk_name(index)
        _unlink_quietly(root / _TASKS / name)
        _unlink_quietly(root / _CLAIMS / name)
        _unlink_quietly(root / _CLAIMS / (name + ".owner"))


def _signal_quietly(pid: int, sig: int) -> None:
    try:
        os.kill(pid, sig)
    except (ProcessLookupError, PermissionError):
        pass


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
