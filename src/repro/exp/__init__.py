"""Parallel experiment engine for parameter sweeps (``repro.exp``).

The paper's evaluation is a family of parameter sweeps; this package turns
those loops into declarative, validated, parallel experiments::

    from repro.exp import Sweep, run_sweep, tasks

    sweep = Sweep.grid(
        "scalability",
        tasks.scalability_blocksizes,
        axes={"streams": [2, 4, 8, 16], "load_pct": [50, 70, 90]},
    )
    result = run_sweep(sweep, workers=4, out_dir=".")   # BENCH_scalability.json
    assert result.digest() == run_sweep(sweep, workers=1).digest()

Guarantees: eager spec validation (bad grids fail before any worker
spawns), deterministic per-point seeding, chunk-local solver caching with
warm starts, and bit-identical merged results for any worker count.
"""

from . import tasks
from .cache import SolverCache
from .engine import (
    DEFAULT_CHUNK_SIZE,
    PointContext,
    PointOutcome,
    SweepResult,
    run_sweep,
    write_benchmark,
)
from .sweep import Sweep, SweepError, SweepPoint, point_seed

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "PointContext",
    "PointOutcome",
    "SolverCache",
    "Sweep",
    "SweepError",
    "SweepPoint",
    "SweepResult",
    "point_seed",
    "run_sweep",
    "tasks",
    "write_benchmark",
]
