"""Crash-tolerant parallel experiment engine for parameter sweeps.

The paper's evaluation is a family of parameter sweeps; this package turns
those loops into declarative, validated, parallel, *resumable*
experiments::

    from repro.exp import Sweep, run_sweep, tasks

    sweep = Sweep.grid(
        "scalability",
        tasks.scalability_blocksizes,
        axes={"streams": [2, 4, 8, 16], "load_pct": [50, 70, 90]},
    )
    result = run_sweep(sweep, workers=4, out_dir=".")   # BENCH_scalability.json
    assert result.digest() == run_sweep(sweep, workers=1).digest()

    # durable + resumable: journal chunks as they land, survive kills
    result = run_sweep(sweep, workers=4, store="results/", resume=False)
    again = run_sweep(sweep, workers=4, store="results/")   # pure cache hit

Guarantees: eager spec validation (bad grids fail before any worker
spawns), deterministic per-point seeding, chunk-local solver caching with
warm starts, and bit-identical merged results for any worker count, any
execution backend (serial / process pool / work queue) and any
crash-resume history.  Fault tolerance: seeded retries with exponential
backoff, portable per-point timeouts, dead-worker detection with chunk
re-dispatch, poison-point quarantine, and graceful degradation to serial —
chaos-tested in :mod:`repro.exp.chaos`.
"""

from . import tasks
from .cache import ShardedSolverCache, SolverCache
from .chaos import ChaosEvent, ChaosMonkey, ChaosPlan, run_chaos_sweep
from .engine import (
    DEFAULT_CHUNK_SIZE,
    PointContext,
    PointOutcome,
    SweepInterrupted,
    SweepResult,
    run_sweep,
    write_benchmark,
)
from .executors import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    WorkQueueExecutor,
    resolve_executor,
)
from .runner import ChunkRunner, retry_delay
from .store import ResultStore, StoreMismatch, point_key, sweep_fingerprint
from .sweep import (
    Sweep,
    SweepError,
    SweepPoint,
    point_seed,
    scenario_corpus,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChaosEvent",
    "ChaosMonkey",
    "ChaosPlan",
    "ChunkRunner",
    "Executor",
    "PointContext",
    "PointOutcome",
    "ProcessPoolExecutor",
    "ResultStore",
    "SerialExecutor",
    "ShardedSolverCache",
    "SolverCache",
    "StoreMismatch",
    "Sweep",
    "SweepError",
    "SweepInterrupted",
    "SweepPoint",
    "SweepResult",
    "WorkQueueExecutor",
    "point_key",
    "point_seed",
    "resolve_executor",
    "retry_delay",
    "run_chaos_sweep",
    "run_sweep",
    "scenario_corpus",
    "sweep_fingerprint",
    "tasks",
    "write_benchmark",
]
