"""Content-addressed, journal-backed result store for sweep runs.

Every completed chunk of a sweep is durably journaled as it lands, so

* an interrupted or killed run **resumes incrementally** — chunks whose
  marker made it to disk are replayed from the journal without executing
  a single task, and
* a **re-run of an identical sweep is a pure cache hit** — same spec,
  same chunking, same guard rails ⇒ every chunk replays from the store.

Layout: one append-only JSONL journal per sweep name inside the store
directory (``<name>.journal.jsonl``), using the versioned one-line
envelopes from :mod:`repro.core.config_io`:

* a ``meta`` line pinning the sweep identity (the *spec digest*: points,
  seeds, chunking and every outcome-affecting engine knob),
* a ``point`` line per completed point (its deterministic payload plus a
  content-addressed key derived from the point's SHA-256 seed), and
* a ``chunk`` marker once **all** of a chunk's points are on disk — the
  marker is the commit record; points without their marker are re-run.

Chunk granularity is load-bearing for bit-identity: a chunk's outcomes
depend on the chunk-local :class:`~repro.exp.cache.SolverCache` history
(e.g. the recorded ``warm_start`` flags), so a partially-journaled chunk
must be re-run *from its first point* — replaying half and executing the
rest would fabricate a cache history no serial run ever produced.

Durability model: lines are flushed per point and fsynced at each chunk
marker.  A crash can at worst truncate the final line; readers stop at
the first ragged line and treat everything after it as not journaled.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..core.config_io import (
    JournalError,
    dump_journal_entry,
    make_journal_entry,
    parse_journal_entry,
)
from .runner import PointOutcome
from .sweep import SweepError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .sweep import Sweep

__all__ = ["ResultStore", "StoreMismatch", "StoreSession", "point_key", "sweep_fingerprint"]


class StoreMismatch(SweepError):
    """A resume was requested against a journal for a different sweep."""


def sweep_fingerprint(
    sweep: "Sweep",
    chunk_size: int,
    retries: int,
    timeout: float | None,
    cache: bool,
) -> str:
    """SHA-256 identity of everything that shapes deterministic outcomes.

    Two runs share a fingerprint iff their journaled results are
    interchangeable: same points (ids, params, seeds), same chunking (cache
    history), same retry/timeout/cache policy (attempt counts and error
    strings).  Wall-clock knobs (backoff, workers, executor) are excluded —
    they change timing, never payloads.
    """
    task = sweep.task
    ident = {
        "name": sweep.name,
        "seed": sweep.seed,
        "task": f"{getattr(task, '__module__', '?')}.{getattr(task, '__qualname__', repr(task))}",
        "chunk_size": chunk_size,
        "retries": retries,
        "timeout": timeout,
        "cache": cache,
        "points": [
            {"id": p.id, "seed": p.seed, "params": dict(p.params)}
            for p in sweep.points
        ],
    }
    blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def point_key(spec_digest: str, chunk_index: int, position: int,
              point_id: str, seed: int) -> str:
    """Content address of one point outcome within a journaled sweep.

    Derived from the sweep's spec digest and the point's own SHA-256 seed:
    the same point of the same spec always lands at the same key, which is
    what makes re-dispatched chunks exactly-once in the merged output —
    a duplicate landing simply overwrites its identical twin.
    """
    blob = json.dumps(
        {
            "spec": spec_digest,
            "chunk": chunk_index,
            "pos": position,
            "id": point_id,
            "seed": seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultStore:
    """A directory of per-sweep journals (create it lazily, share it freely)."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def journal_path(self, sweep_name: str) -> Path:
        return self.directory / f"{sweep_name}.journal.jsonl"

    def begin(
        self,
        sweep_name: str,
        spec_digest: str,
        chunk_count: int,
        resume: bool = False,
    ) -> "StoreSession":
        """Open (or adopt) the journal for ``sweep_name``.

        * journal absent → start fresh (``resume=True`` is an error: there
          is nothing to resume);
        * journal matches ``spec_digest`` → adopt its completed chunks
          (resumed runs *and* identical re-runs become cache hits);
        * journal mismatches → with ``resume`` raise :class:`StoreMismatch`
          (never silently splice incompatible results), otherwise rotate
          the stale journal to ``*.bak`` and start fresh.
        """
        path = self.journal_path(sweep_name)
        completed: dict[int, tuple[list[PointOutcome], dict[str, Any]]] = {}
        if path.exists():
            meta, chunks, ragged = _read_journal(path)
            if meta is not None and meta.get("spec") == spec_digest:
                completed = chunks
            elif resume:
                raise StoreMismatch(
                    f"journal {path} was written by a different sweep spec "
                    f"(have {meta.get('spec', '?')[:16] if meta else 'no meta'}…, "
                    f"need {spec_digest[:16]}…); refusing to resume — "
                    "delete the journal or point --store elsewhere"
                )
            else:
                _rotate(path)
        elif resume:
            raise StoreMismatch(
                f"cannot resume: no journal at {path} (run once with "
                "--store first, or drop --resume)"
            )
        fresh = not path.exists()
        fh = path.open("a", encoding="utf-8")
        session = StoreSession(
            path=path,
            handle=fh,
            spec_digest=spec_digest,
            completed=completed,
        )
        if fresh:
            session._write(make_journal_entry("meta", {
                "name": sweep_name,
                "spec": spec_digest,
                "chunk_count": chunk_count,
            }), fsync=True)
        return session


class StoreSession:
    """One open journal: adopted chunks plus an append handle for new ones."""

    def __init__(
        self,
        path: Path,
        handle,
        spec_digest: str,
        completed: dict[int, tuple[list[PointOutcome], dict[str, Any]]],
    ) -> None:
        self.path = path
        self.spec_digest = spec_digest
        #: chunks adopted from disk at begin() — the resume/cache-hit set
        self.completed = completed
        #: point outcomes served from the journal instead of executed
        self.hits = sum(len(outs) for outs, _ in completed.values())
        self._handle = handle

    def record_chunk(
        self,
        chunk_index: int,
        outcomes: list[PointOutcome],
        stats: dict[str, Any],
    ) -> None:
        """Durably journal one completed chunk (points, then the marker)."""
        if chunk_index in self.completed:
            return  # idempotent: a re-dispatched twin already landed
        for position, outcome in enumerate(outcomes):
            self._write(make_journal_entry("point", {
                "chunk": chunk_index,
                "pos": position,
                "key": point_key(
                    self.spec_digest, chunk_index, position,
                    outcome.id, outcome.seed,
                ),
                "outcome": outcome.payload(),
                "wall_ms": outcome.wall_ms,
            }))
        self._write(make_journal_entry("chunk", {
            "chunk": chunk_index,
            "points": len(outcomes),
            "stats": stats,
        }), fsync=True)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "StoreSession":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()

    def _write(self, entry: dict[str, Any], fsync: bool = False) -> None:
        self._handle.write(dump_journal_entry(entry) + "\n")
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())


def _rotate(path: Path) -> None:
    """Move a stale journal aside (never destroy results silently)."""
    backup = path.with_suffix(path.suffix + ".bak")
    n = 1
    while backup.exists():
        backup = path.with_suffix(path.suffix + f".bak{n}")
        n += 1
    path.replace(backup)


def _read_journal(
    path: Path,
) -> tuple[
    dict[str, Any] | None,
    dict[int, tuple[list[PointOutcome], dict[str, Any]]],
    bool,
]:
    """Parse a journal: ``(meta, completed_chunks, ragged_tail)``.

    Reading stops at the first malformed line (a crash mid-append leaves at
    most one, at the very end); everything before it is trusted, everything
    after it is treated as never written.
    """
    meta: dict[str, Any] | None = None
    points: dict[tuple[int, int], PointOutcome] = {}
    markers: dict[int, dict[str, Any]] = {}
    ragged = False
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = parse_journal_entry(line)
            except JournalError:
                ragged = True
                break
            if entry["kind"] == "meta":
                meta = entry
            elif entry["kind"] == "point":
                points[(entry["chunk"], entry["pos"])] = PointOutcome.from_payload(
                    entry["outcome"], wall_ms=entry.get("wall_ms", 0.0)
                )
            elif entry["kind"] == "chunk":
                markers[entry["chunk"]] = entry
    completed: dict[int, tuple[list[PointOutcome], dict[str, Any]]] = {}
    for index, marker in markers.items():
        count = marker["points"]
        outcomes = []
        for position in range(count):
            outcome = points.get((index, position))
            if outcome is None:
                break  # marker without all its points: treat as incomplete
            outcomes.append(outcome)
        if len(outcomes) == count:
            completed[index] = (outcomes, marker.get("stats", {}))
    return meta, completed, ragged
