"""Built-in sweep tasks: the paper's evaluation loops as picklable points.

Each task is a module-level function ``task(params, ctx) -> dict`` (the
shape :class:`~repro.exp.sweep.Sweep` requires for process-pool fan-out):
``params`` is the point's JSON-serialisable parameter dict, ``ctx`` the
:class:`~repro.exp.engine.PointContext` carrying the deterministic point
seed and the chunk-local :class:`~repro.exp.cache.SolverCache`.  Returned
dicts must be JSON-serialisable — they are persisted verbatim into
``BENCH_<name>.json`` and hashed for the serial ≡ parallel identity check.

These tasks back both the ported ``benchmarks/bench_*`` files and the
``repro sweep`` CLI subcommand (see :data:`TASKS`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable

from ..core.blocksize_ilp import resolve_block_sizes
from ..core.params import AcceleratorSpec, GatewaySystem, StreamSpec
from ..core.config_io import system_from_dict
from ..core.timing import gamma
from .sweep import SweepError

__all__ = [
    "TASKS",
    "get_task",
    "solve_blocksizes",
    "scalability_blocksizes",
    "fig8_min_buffer",
    "pal_blocksizes",
    "conformance_margins",
    "scenario_conformance",
]


def _solve(system: GatewaySystem, ctx, backend: str = "scipy"):
    """Algorithm 1 via the chunk-local cache when armed, cold otherwise."""
    if ctx is not None and ctx.cache is not None:
        return ctx.cache.resolve(system, backend=backend)
    return resolve_block_sizes(system, backend=backend)


def solve_blocksizes(params: dict[str, Any], ctx) -> dict[str, Any]:
    """Algorithm 1 on an explicit system description.

    params: ``system`` (a :func:`~repro.core.config_io.system_to_dict`
    dict), optional ``backend``.
    """
    system = system_from_dict(params["system"])
    result = _solve(system, ctx, backend=params.get("backend", "scipy"))
    return {
        "block_sizes": dict(sorted(result.block_sizes.items())),
        "objective": result.objective,
        "load": float(result.load),
        "warm_start": result.warm_start,
    }


def many_streams_system(
    n: int,
    load_pct: int = 70,
    reconfigure: int = 4100,
    entry_copy: int = 15,
) -> GatewaySystem:
    """The bench_scalability family: ``n`` weighted streams at a target load."""
    weights = list(range(1, n + 1))
    base = Fraction(load_pct, 100 * entry_copy * sum(weights))
    return GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 1),),
        streams=tuple(
            StreamSpec(f"s{i}", base * w, reconfigure)
            for i, w in enumerate(weights)
        ),
        entry_copy=entry_copy,
        exit_copy=1,
    )


def scalability_blocksizes(params: dict[str, Any], ctx) -> dict[str, Any]:
    """Algorithm 1 over growing stream counts / loads (SCAL sweep).

    params: ``streams`` (count), optional ``load_pct``, ``reconfigure``,
    ``entry_copy``, ``backend``.
    """
    system = many_streams_system(
        params["streams"],
        load_pct=params.get("load_pct", 70),
        reconfigure=params.get("reconfigure", 4100),
        entry_copy=params.get("entry_copy", 15),
    )
    result = _solve(system, ctx, backend=params.get("backend", "scipy"))
    assigned = system.with_block_sizes(result.block_sizes)
    return {
        "objective": result.objective,
        "total_eta": result.total,
        "load": float(result.load),
        "gamma": gamma(assigned, "s0"),
        "warm_start": result.warm_start,
    }


def fig8_min_buffer(params: dict[str, Any], ctx) -> dict[str, Any]:
    """Fig. 8 minimum buffer capacity for one (η, consumption) point.

    params: ``eta``, optional ``consumption`` (paper: 5).
    """
    from ..dataflow import SDFGraph, min_capacity_for_liveness

    eta = params["eta"]
    consumption = params.get("consumption", 5)
    g = SDFGraph(f"fig8[{eta}]")
    g.add_actor("vA", 1)
    g.add_actor("vB", consumption)
    g.add_edge("vA", "vB", production=eta, consumption=consumption, name="ch")
    return {"eta": eta, "alpha": min_capacity_for_liveness(g, "ch")}


def pal_blocksizes(params: dict[str, Any], ctx) -> dict[str, Any]:
    """PAL-demonstrator block sizes at one rate margin (ALG1 sweep).

    params: optional ``margin_ppm`` (0.127% == 1270), ``audio_rate``,
    ``clock_hz``.
    """
    from ..app import pal_block_sizes as _pal_block_sizes

    margin = Fraction(1) + Fraction(params.get("margin_ppm", 0), 1_000_000)
    sizes = _pal_block_sizes(
        audio_rate=params.get("audio_rate", 44_100),
        clock_hz=params.get("clock_hz", 100_000_000),
        rate_margin=margin,
    )
    return {"block_sizes": dict(sorted(sizes.items()))}


#: rates far below capacity for conformance shapes: Eq. 5 never binds
_SLOW = Fraction(1, 10**9)


def conformance_margins(params: dict[str, Any], ctx) -> dict[str, Any]:
    """Cycle-level simulation of one system shape; Eq. 2–5 margins (CONF).

    params: ``entry_copy``, ``exit_copy``, ``rhos`` (list), ``reconfigure``,
    ``etas`` (list), optional ``blocks``.
    """
    from ..api import Scenario

    system = GatewaySystem(
        accelerators=tuple(
            AcceleratorSpec(f"a{i}", r) for i, r in enumerate(params["rhos"])
        ),
        streams=tuple(
            StreamSpec(f"s{i}", _SLOW, params["reconfigure"], block_size=e)
            for i, e in enumerate(params["etas"])
        ),
        entry_copy=params["entry_copy"],
        exit_copy=params["exit_copy"],
    )
    result = Scenario(system).with_blocks(params.get("blocks", 3)).build()
    report = result.conformance()
    streams = []
    for sc in report.streams:
        thr = sc.achieved_throughput
        guar = sc.bounds.guaranteed_throughput
        streams.append({
            "stream": sc.stream,
            "ok": sc.ok,
            "block_time_margin": sc.block_time_margin,
            "wait_margin": sc.wait_margin,
            "turnaround_margin": sc.turnaround_margin,
            # exact Fractions as strings: JSON-safe yet lossless for the
            # achieved >= guaranteed comparison downstream
            "achieved_throughput": None if thr is None else str(thr),
            "guaranteed_throughput": None if guar is None else str(guar),
            "violations": [str(v) for v in sc.violations],
        })
    return {"ok": report.ok, "horizon": result.horizon, "streams": streams}


def scenario_conformance(params: dict[str, Any], ctx) -> dict[str, Any]:
    """Build a registered scenario, run it, gate on attributed conformance.

    params: ``scenario`` (a registry name or reference — see
    :mod:`repro.app.scenarios`), optional ``strict`` (raise on any
    unattributed Eq. 2–5 violation so the sweep exits non-zero — the fuzz
    corpus gate), every other key is validated against the entry's
    parameter schema.
    """
    from ..app.scenarios import ScenarioError, build_scenario, parse_ref

    p = dict(params)
    try:
        ref = p.pop("scenario")
    except KeyError:
        raise SweepError(
            "scenario task needs a 'scenario' param (a registry name like "
            "'generated', or a scenario:// reference)"
        ) from None
    strict = bool(p.pop("strict", False))
    try:
        scenario = build_scenario(ref, **p)
    except ScenarioError as err:
        raise SweepError(str(err)) from None
    result = scenario.build(cache=ctx.cache if ctx is not None else None)
    att = result.attributed_conformance()
    rm = result.reconfig
    body = {
        "scenario": parse_ref(ref)[0],
        "ok": att.report.ok,
        "violations": len(att.attributions),
        "unattributed": len(att.unattributed),
        "fully_attributed": att.fully_attributed,
        "horizon": result.horizon,
        "streams": len(result.system.streams),
        "transitions": 0 if rm is None else len(rm.transitions),
    }
    if strict and not att.fully_attributed:
        raise SweepError(
            f"scenario {ref!r}: {len(att.unattributed)} unattributed "
            f"conformance violation(s): "
            + "; ".join(str(v) for v in att.unattributed[:3])
        )
    return body


TASKS: dict[str, Callable[..., dict]] = {
    "solve": solve_blocksizes,
    "scalability": scalability_blocksizes,
    "fig8-buffers": fig8_min_buffer,
    "pal-blocksizes": pal_blocksizes,
    "conformance": conformance_margins,
    "scenario": scenario_conformance,
}


def get_task(name: str) -> Callable[..., dict]:
    """Look up a built-in task by its registry name (friendly error)."""
    try:
        return TASKS[name]
    except KeyError:
        raise SweepError(
            f"unknown sweep task {name!r}; built-ins: {', '.join(sorted(TASKS))}"
        ) from None
