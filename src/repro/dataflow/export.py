"""Export helpers: Graphviz DOT for (C)SDF graphs, CSV for schedules.

Pure-text emitters (no graphviz dependency): the DOT output renders the
models the way the paper draws them — actors as circles annotated with
firing durations, edges annotated with quanta and initial-token dots — and
the CSV schedule dump makes Gantt data (Fig. 6) consumable by external
plotting tools.
"""

from __future__ import annotations

import io

from .graph import CSDFGraph
from .schedule import Schedule

__all__ = ["to_dot", "schedule_to_csv"]


def _quanta_label(quanta: tuple[int, ...]) -> str:
    """Compact per-phase quanta: '3' for uniform, '[3,0,1]' otherwise."""
    if len(set(quanta)) == 1:
        return str(quanta[0])
    return "[" + ",".join(str(q) for q in quanta) + "]"


def to_dot(graph: CSDFGraph, rankdir: str = "LR") -> str:
    """Graphviz DOT rendering of a (C)SDF graph.

    Capacity back-edges (names starting with ``cap:``) are drawn dashed so
    bounded channels read like the paper's forward-edge/back-edge pairs.
    """
    out = io.StringIO()
    out.write(f'digraph "{graph.name}" {{\n')
    out.write(f"  rankdir={rankdir};\n")
    out.write('  node [shape=circle, fontsize=11];\n')
    for name, actor in graph.actors.items():
        if actor.phases == 1:
            dur = f"{actor.duration[0]:g}"
        else:
            dur = "[" + ",".join(f"{d:g}" for d in actor.duration) + "]"
        out.write(f'  "{name}" [label="{name}\\nρ={dur}"];\n')
    for e in graph.edges.values():
        style = ', style=dashed, color=gray40' if e.name.startswith("cap:") else ""
        tokens = f", label=\"●{e.tokens}\"" if e.tokens else ""
        out.write(
            f'  "{e.src}" -> "{e.dst}" '
            f'[taillabel="{_quanta_label(e.production)}", '
            f'headlabel="{_quanta_label(e.consumption)}"{tokens}{style}];\n'
        )
    out.write("}\n")
    return out.getvalue()


def schedule_to_csv(schedule: Schedule) -> str:
    """CSV dump of a schedule: actor, phase, start, end — one row per firing."""
    out = io.StringIO()
    out.write("actor,phase,start,end\n")
    for f in sorted(schedule.firings, key=lambda f: (f.start, f.actor)):
        out.write(f"{f.actor},{f.phase},{f.start:g},{f.end:g}\n")
    return out.getvalue()
