"""Conservative CSDF → SDF abstraction.

Section V-C of the paper abstracts the detailed CSDF model of a gateway +
accelerator chain into a *single-actor* SDF model and argues the abstraction
is conservative under "the-earlier-the-better" refinement: the SDF actor
produces all tokens atomically at the *end* of its firing, whereas the CSDF
actor produces tokens phase by phase (earlier).  Hence any throughput
guarantee derived from the SDF model also holds for the CSDF model.

This module provides the general per-actor version of that abstraction:
every multi-phase actor is collapsed into a single-phase actor whose firing
duration is the sum of its phase durations and whose quanta are the per-cycle
totals.  Token production moves later, token consumption moves earlier
(all-at-start), so the abstraction is conservative in the same sense.
"""

from __future__ import annotations

from .graph import CSDFGraph, SDFGraph

__all__ = ["csdf_to_sdf"]


def csdf_to_sdf(graph: CSDFGraph) -> SDFGraph:
    """Collapse every multi-phase actor into one SDF actor.

    The result is a conservative abstraction: for each actor the firing
    duration is ``Σ_p ρ[p]`` and each edge's quanta are the totals over one
    cyclo-static cycle.  Initial tokens are preserved.
    """
    sdf = SDFGraph(f"{graph.name}-sdf")
    for name, actor in graph.actors.items():
        sdf.add_actor(name, duration=actor.total_duration)
    for e in graph.edges.values():
        sdf.add_edge(
            e.src,
            e.dst,
            production=e.total_production,
            consumption=e.total_consumption,
            tokens=e.tokens,
            name=e.name,
        )
    return sdf
