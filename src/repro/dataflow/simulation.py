"""Self-timed execution of (C)SDF graphs.

In a *self-timed* execution every actor fires as soon as it is enabled
(sufficient tokens on all input edges).  Because every CSDF actor carries an
implicit self-edge with one token (paper, Section V-A), firings of the same
actor never overlap; phases advance cyclically.

Token timing follows the standard (C)SDF semantics the paper relies on:
tokens are **consumed at firing start** and **produced at firing end**
(the firing duration is "the duration between the consumption of input
tokens and the production of output tokens").

The engine is event-driven over a sorted completion list and supports:

* execution for a fixed number of graph *iterations* or up to a time horizon,
* exact deadlock detection,
* full firing records (used to build Fig. 6-style schedules),
* state capture hooks used by :mod:`repro.dataflow.statespace` for exact
  steady-state throughput of bounded graphs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import NamedTuple

from .graph import CSDFGraph, GraphError
from .repetition import firing_repetition_vector

__all__ = ["Firing", "ExecutionResult", "SelfTimedEngine", "execute", "DeadlockError"]

_MICRO_GUARD = 1_000_000


class DeadlockError(RuntimeError):
    """Raised when a deadlock is encountered and the caller forbade it."""


class Firing(NamedTuple):
    """One completed (or ongoing) actor firing."""

    actor: str
    phase: int
    start: float
    end: float


@dataclass
class ExecutionResult:
    """Outcome of a self-timed execution run."""

    firings: list[Firing]
    completions: dict[str, int]
    end_time: float
    deadlocked: bool
    iterations_completed: int
    tokens: dict[str, int] = field(default_factory=dict)

    def firings_of(self, actor: str) -> list[Firing]:
        """Completed firings of one actor, ordered by start time."""
        return [f for f in self.firings if f.actor == actor]

    def production_times(self, actor: str) -> list[float]:
        """End times of an actor's firings — token production instants."""
        return [f.end for f in self.firings if f.actor == actor]


class SelfTimedEngine:
    """Stepwise self-timed executor; one instance per run.

    The public entry point for plain runs is :func:`execute`; the state-space
    analyses drive the engine directly through :meth:`advance` and
    :meth:`state_key`.
    """

    def __init__(self, graph: CSDFGraph, record: bool = True) -> None:
        self.graph = graph
        self.record = record
        self._actor_order = sorted(graph.actors)
        self._edge_order = sorted(graph.edges)
        self.tokens: dict[str, int] = {e: graph.edge(e).tokens for e in self._edge_order}
        self.phase: dict[str, int] = {a: 0 for a in self._actor_order}
        self.busy: dict[str, tuple[float, int] | None] = {a: None for a in self._actor_order}
        self.completions: dict[str, int] = {a: 0 for a in self._actor_order}
        # int start so exact (int/Fraction) durations stay exact; floats
        # contaminate locally only when an actor actually uses them
        self.now: float = 0
        self.firings: list[Firing] = []
        self._heap: list[tuple[float, str]] = []
        self._in = {a: graph.in_edges(a) for a in self._actor_order}
        self._out = {a: graph.out_edges(a) for a in self._actor_order}
        self._start_enabled()

    # -- core mechanics ---------------------------------------------------
    def _is_enabled(self, actor: str) -> bool:
        if self.busy[actor] is not None:
            return False
        p = self.phase[actor]
        return all(self.tokens[e.name] >= e.consumption[p] for e in self._in[actor])

    def _begin_firing(self, actor: str) -> None:
        p = self.phase[actor]
        spec = self.graph.actor(actor)
        for e in self._in[actor]:
            self.tokens[e.name] -= e.consumption[p]
        end = self.now + spec.duration[p]
        self.busy[actor] = (end, p)
        heapq.heappush(self._heap, (end, actor))

    def _complete_firing(self, actor: str) -> None:
        end, p = self.busy[actor]  # type: ignore[misc]
        for e in self._out[actor]:
            self.tokens[e.name] += e.production[p]
        self.busy[actor] = None
        self.phase[actor] = (p + 1) % self.graph.actor(actor).phases
        self.completions[actor] += 1
        if self.record:
            self.firings.append(Firing(actor, p, end - self.graph.actor(actor).duration[p], end))

    def _start_enabled(self) -> None:
        """Start every enabled actor; resolve zero-duration firings in place."""
        guard = 0
        progress = True
        while progress:
            progress = False
            for actor in self._actor_order:
                while self._is_enabled(actor):
                    guard += 1
                    if guard > _MICRO_GUARD:
                        raise GraphError(
                            f"zero-delay livelock at t={self.now} in graph {self.graph.name!r}"
                        )
                    self._begin_firing(actor)
                    end, _p = self.busy[actor]  # type: ignore[misc]
                    if end == self.now:
                        # zero-duration firing completes instantly
                        self._remove_from_heap(actor)
                        self._complete_firing(actor)
                        progress = True
                    else:
                        break

    def _remove_from_heap(self, actor: str) -> None:
        # Rare path (zero-duration firings only); rebuild without the entry.
        for i, (t, a) in enumerate(self._heap):
            if a == actor and t == self.now:
                self._heap[i] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                return
        raise AssertionError("zero-duration firing missing from heap")

    def advance(self) -> bool:
        """Advance to the next completion instant.

        Completes **all** firings ending at that instant, then starts newly
        enabled actors.  Returns False when nothing is in flight (the graph
        is deadlocked or has simply run dry).
        """
        if not self._heap:
            return False
        t = self._heap[0][0]
        self.now = t
        while self._heap and self._heap[0][0] == t:
            _t, actor = heapq.heappop(self._heap)
            self._complete_firing(actor)
        self._start_enabled()
        return True

    @property
    def idle(self) -> bool:
        """True when no firing is in flight."""
        return not self._heap

    def state_key(self) -> tuple:
        """Canonical state for recurrence detection (time-shift invariant)."""
        remaining = tuple(
            round(self.busy[a][0] - self.now, 9) if self.busy[a] is not None else -1.0
            for a in self._actor_order
        )
        phases = tuple(self.phase[a] for a in self._actor_order)
        toks = tuple(self.tokens[e] for e in self._edge_order)
        busy_phase = tuple(
            self.busy[a][1] if self.busy[a] is not None else -1 for a in self._actor_order
        )
        return (toks, phases, remaining, busy_phase)


def execute(
    graph: CSDFGraph,
    iterations: int | None = None,
    horizon: float | None = None,
    record: bool = True,
    allow_deadlock: bool = True,
) -> ExecutionResult:
    """Run a self-timed execution.

    Parameters
    ----------
    graph:
        The (C)SDF graph; bounded buffers must already be modelled as
        back-edges.
    iterations:
        Stop once this many complete graph iterations have finished (every
        actor ``a`` completed ``iterations * reps[a]`` firings).
    horizon:
        Stop when simulated time passes this value.
    record:
        Keep the full firing list (needed for schedules/refinement checks).
    allow_deadlock:
        When False, a deadlock raises :class:`DeadlockError` instead of
        returning a result flagged ``deadlocked``.
    """
    if iterations is None and horizon is None:
        raise GraphError("execute() needs an iteration count or a time horizon")
    reps = firing_repetition_vector(graph) if iterations is not None else {}
    engine = SelfTimedEngine(graph, record=record)

    def iterations_done() -> int:
        return min(
            (engine.completions[a] // reps[a] for a in reps if reps[a] > 0),
            default=0,
        )

    deadlocked = False
    while True:
        if iterations is not None and iterations_done() >= iterations:
            break
        if horizon is not None and engine.now >= horizon:
            break
        if not engine.advance():
            # nothing in flight: if iteration target not reached, deadlock
            if iterations is not None and iterations_done() < iterations:
                deadlocked = True
            break

    if deadlocked and not allow_deadlock:
        raise DeadlockError(
            f"graph {graph.name!r} deadlocked at t={engine.now} "
            f"after {iterations_done() if iterations is not None else '?'} iterations"
        )
    return ExecutionResult(
        firings=engine.firings,
        completions=dict(engine.completions),
        end_time=engine.now,
        deadlocked=deadlocked,
        iterations_completed=iterations_done() if iterations is not None else 0,
        tokens=dict(engine.tokens),
    )
