"""JSON (de)serialisation of (C)SDF graphs.

A stable on-disk representation so models can be stored alongside designs,
diffed in review, and fed to the CLI.  The schema is deliberately plain::

    {
      "name": "...",
      "actors": [{"name": "A", "duration": [2], "phases": 1}, ...],
      "edges":  [{"name": "ch", "src": "A", "dst": "B",
                  "production": [1], "consumption": [3], "tokens": 0}, ...]
    }

Durations are stored as ``[numerator, denominator]`` pairs when exact
rationality matters (Fraction durations), plain numbers otherwise.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from .graph import CSDFGraph, GraphError, SDFGraph

__all__ = ["graph_to_dict", "graph_from_dict", "dumps", "loads"]


def _encode_duration(d) -> Any:
    if isinstance(d, Fraction):
        return {"num": d.numerator, "den": d.denominator}
    return d


def _decode_duration(d) -> Any:
    if isinstance(d, dict):
        try:
            return Fraction(d["num"], d["den"])
        except KeyError as err:
            raise GraphError(f"bad duration encoding: missing {err}") from err
    return d


def graph_to_dict(graph: CSDFGraph) -> dict[str, Any]:
    """Plain-dict representation (JSON-ready)."""
    return {
        "name": graph.name,
        "kind": "sdf" if graph.is_sdf else "csdf",
        "actors": [
            {
                "name": a.name,
                "duration": [_encode_duration(d) for d in a.duration],
                "phases": a.phases,
            }
            for a in graph.actors.values()
        ],
        "edges": [
            {
                "name": e.name,
                "src": e.src,
                "dst": e.dst,
                "production": list(e.production),
                "consumption": list(e.consumption),
                "tokens": e.tokens,
            }
            for e in graph.edges.values()
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> CSDFGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    try:
        name = data["name"]
        actors = data["actors"]
        edges = data["edges"]
    except KeyError as err:
        raise GraphError(f"graph dict missing key {err}") from err
    kind = data.get("kind", "csdf")
    graph: CSDFGraph = SDFGraph(name) if kind == "sdf" else CSDFGraph(name)
    for a in actors:
        durations = [_decode_duration(d) for d in a["duration"]]
        if kind == "sdf":
            graph.add_actor(a["name"], duration=durations[0])
        else:
            graph.add_actor(a["name"], duration=durations, phases=a.get("phases"))
    for e in edges:
        graph.add_edge(
            e["src"],
            e["dst"],
            production=e["production"],
            consumption=e["consumption"],
            tokens=e.get("tokens", 0),
            name=e.get("name"),
        )
    return graph


def dumps(graph: CSDFGraph, indent: int | None = 2) -> str:
    """Serialise a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> CSDFGraph:
    """Parse a graph from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise GraphError(f"invalid graph JSON: {err}") from err
    return graph_from_dict(data)
