"""Admissible schedules and Gantt-chart extraction.

Section III of the paper determines the minimum throughput "by creating an
admissible schedule for the CSDF graph at design time": actors fire no
earlier than their enabling, using worst-case firing durations.  The
self-timed execution produced by :mod:`repro.dataflow.simulation` is exactly
such a schedule (the earliest admissible one); this module packages it into
per-resource Gantt rows like the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.trace import GanttRow
from .graph import CSDFGraph
from .simulation import ExecutionResult, Firing, execute

__all__ = ["Schedule", "admissible_schedule"]


@dataclass
class Schedule:
    """A complete admissible schedule: firings grouped per actor."""

    graph_name: str
    firings: list[Firing]
    makespan: float

    def actor_rows(self) -> list[GanttRow]:
        """One Gantt row per actor, segments labelled with the phase index."""
        per_actor: dict[str, list[tuple[int, int, str]]] = {}
        for f in self.firings:
            per_actor.setdefault(f.actor, []).append(
                (int(f.start), int(f.end), f"p{f.phase}")
            )
        return [GanttRow(actor, tuple(segs)) for actor, segs in sorted(per_actor.items())]

    def start_of(self, actor: str, index: int) -> float:
        """Start time of the ``index``-th firing of ``actor``."""
        firings = [f for f in self.firings if f.actor == actor]
        return firings[index].start

    def end_of(self, actor: str, index: int) -> float:
        """End time of the ``index``-th firing of ``actor``."""
        firings = [f for f in self.firings if f.actor == actor]
        return firings[index].end

    def completion_time(self, actor: str) -> float:
        """End of the last firing of ``actor`` (0 when it never fired)."""
        ends = [f.end for f in self.firings if f.actor == actor]
        return max(ends, default=0.0)

    def render(self, scale: int = 1, width: int = 72) -> str:
        """ASCII Gantt chart (Fig. 6 style); all rows share one time axis."""
        lines = [f"schedule of {self.graph_name!r}, makespan={self.makespan}"]
        horizon = max(1, int(self.makespan))
        lines += [
            row.render(scale=scale, width=width, horizon=horizon)
            for row in self.actor_rows()
        ]
        return "\n".join(lines)


def admissible_schedule(graph: CSDFGraph, iterations: int = 1) -> Schedule:
    """Earliest admissible (self-timed) schedule over ``iterations``.

    Deadlocking graphs raise through the underlying engine when the iteration
    target cannot be met; use :func:`repro.dataflow.validate.check_liveness`
    first for a friendlier diagnosis.
    """
    result: ExecutionResult = execute(
        graph, iterations=iterations, record=True, allow_deadlock=False
    )
    makespan = max((f.end for f in result.firings), default=0.0)
    return Schedule(graph.name, result.firings, makespan)
