"""Buffer-capacity modelling and minimisation for (C)SDF graphs.

The paper models a bounded buffer as "a forward edge with complementary back
edge containing a number of initial tokens denoting the depth of the buffer"
(Section V-A) and uses the buffer-minimisation technique of Geilen, Basten &
Stuijk [20] to compute minimum capacities that sustain a required throughput.
Crucially, Section V-E demonstrates that the **minimum capacities are
non-monotone in the block size** ``η_s`` — the motivation for the ILP of
Algorithm 1 followed by buffer sizing.

This module implements:

* :func:`bound_channel` / :func:`bounded_graph` — add capacity back-edges,
* :func:`max_throughput` — throughput with (conceptually) unbounded buffers,
* :func:`min_capacity_single` — exact minimum capacity of one channel under a
  throughput constraint (linear scan; valid because throughput is monotone
  in buffer capacity),
* :func:`min_capacities` — exact minimum *total* capacity over several
  channels (best-first search over capacity vectors, as in [20] but via our
  state-space throughput oracle).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from fractions import Fraction

from .graph import CSDFGraph, GraphError
from .statespace import steady_state_throughput

__all__ = [
    "bound_channel",
    "bounded_graph",
    "max_throughput",
    "min_capacity_single",
    "min_capacity_for_liveness",
    "min_capacities",
    "BufferSizingResult",
    "capacity_lower_bound",
]

_BACK_PREFIX = "cap:"


def bound_channel(graph: CSDFGraph, edge_name: str, capacity: int) -> CSDFGraph:
    """Return a copy of ``graph`` where ``edge_name`` has bounded capacity.

    The bound is modelled with a back edge carrying ``capacity - tokens``
    initial tokens (free spaces).  The producer consumes space at firing
    start; the consumer releases it at firing end — exactly the conservative
    buffer model used by the paper's analysis.
    """
    e = graph.edge(edge_name)
    if capacity < e.tokens:
        raise GraphError(
            f"capacity {capacity} below initial token count {e.tokens} on {edge_name!r}"
        )
    g = graph.with_edge_tokens({})  # deep copy
    g.add_edge(
        e.dst,
        e.src,
        production=e.consumption,
        consumption=e.production,
        tokens=capacity - e.tokens,
        name=f"{_BACK_PREFIX}{edge_name}",
    )
    return g


def bounded_graph(graph: CSDFGraph, capacities: dict[str, int]) -> CSDFGraph:
    """Apply :func:`bound_channel` for every ``edge -> capacity`` entry."""
    g = graph
    for edge_name, cap in sorted(capacities.items()):
        g = bound_channel(g, edge_name, cap)
    return g


def capacity_lower_bound(graph: CSDFGraph, edge_name: str) -> int:
    """A capacity below which the channel cannot even fire both endpoints.

    The producer must fit its largest burst and the consumer must see its
    largest demand; initial tokens must fit as well.
    """
    e = graph.edge(edge_name)
    return max(max(e.production), max(e.consumption), e.tokens, 1)


def max_throughput(graph: CSDFGraph, actor: str | None = None) -> Fraction:
    """Firing rate of ``actor`` with all channels unbounded.

    Computed by state-space execution on the graph as-is; the caller must
    ensure the graph as given is bounded enough to recur (e.g. strongly
    connected, or with existing back-edges).  For acyclic graphs the rate is
    limited only by the slowest actor's self-edge, which the engine models
    implicitly, so recurrence is still reached.
    """
    return steady_state_throughput(graph, actor=actor).firing_rate


@dataclass(frozen=True)
class BufferSizingResult:
    """Minimum capacities plus the throughput they achieve."""

    capacities: dict[str, int]
    throughput: Fraction
    actor: str

    @property
    def total(self) -> int:
        return sum(self.capacities.values())


def _rate_with(graph: CSDFGraph, caps: dict[str, int], actor: str | None) -> Fraction:
    bounded = bounded_graph(graph, caps)
    res = steady_state_throughput(bounded, actor=actor)
    return res.firing_rate


def min_capacity_single(
    graph: CSDFGraph,
    edge_name: str,
    target: Fraction | None = None,
    actor: str | None = None,
    cap_limit: int = 4096,
) -> BufferSizingResult:
    """Exact minimum capacity of one channel reaching ``target`` throughput.

    ``target=None`` means *maximum achievable* throughput: the scan runs
    until adding one more slot no longer improves the rate (valid because
    throughput is monotonically non-decreasing and eventually saturates in
    the buffer capacity).
    """
    if actor is None:
        actor = sorted(graph.actors)[0]
    lo = capacity_lower_bound(graph, edge_name)

    if target is not None:
        for cap in range(lo, cap_limit + 1):
            rate = _rate_with(graph, {edge_name: cap}, actor)
            if rate >= target:
                return BufferSizingResult({edge_name: cap}, rate, actor)
        raise GraphError(
            f"no capacity ≤ {cap_limit} on {edge_name!r} reaches throughput {target}"
        )

    # Saturation search for the maximum-throughput capacity.
    best_rate = Fraction(-1)
    best_cap = lo
    stall = 0
    for cap in range(lo, cap_limit + 1):
        rate = _rate_with(graph, {edge_name: cap}, actor)
        if rate > best_rate:
            best_rate, best_cap, stall = rate, cap, 0
        else:
            stall += 1
            # Throughput saturates once the channel stops being the
            # bottleneck; a run of non-improving steps certifies it.
            if stall >= 8:
                return BufferSizingResult({edge_name: best_cap}, best_rate, actor)
    return BufferSizingResult({edge_name: best_cap}, best_rate, actor)


def min_capacity_for_liveness(
    graph: CSDFGraph, edge_name: str, cap_limit: int = 4096
) -> int:
    """Smallest channel capacity under which the graph is deadlock-free.

    For a single-phase producer/consumer pair with quanta ``(p, c)`` this is
    the classical ``p + c - gcd(p, c)``; the paper's Fig. 8b table
    (η = 1..5 → α = 5, 6, 7, 8, 5 against a consumer of 5) is exactly this
    quantity, and its non-monotonicity in η is the paper's Section V-E
    observation.
    """
    from .validate import check_liveness

    lo = capacity_lower_bound(graph, edge_name)
    for cap in range(lo, cap_limit + 1):
        if check_liveness(bound_channel(graph, edge_name, cap)):
            return cap
    raise GraphError(
        f"no capacity ≤ {cap_limit} on {edge_name!r} makes the graph live"
    )


def min_capacities(
    graph: CSDFGraph,
    edge_names: list[str],
    target: Fraction,
    actor: str | None = None,
    cap_limit: int = 512,
    max_states: int = 100_000,
) -> BufferSizingResult:
    """Minimum **total** capacity over several channels reaching ``target``.

    Best-first search over capacity vectors ordered by total size; since
    throughput is monotone in each capacity, the first vector reaching the
    target has minimum total.  Exponential in the number of channels — meant
    for the small graphs of the paper's models (≤ 4 channels).
    """
    if not edge_names:
        raise GraphError("min_capacities needs at least one channel")
    if actor is None:
        actor = sorted(graph.actors)[0]
    lows = tuple(capacity_lower_bound(graph, e) for e in edge_names)

    start = lows
    seen = {start}
    explored = 0
    counter = itertools.count()
    heap: list[tuple[int, int, tuple[int, ...]]] = [(sum(start), next(counter), start)]
    while heap:
        total, _tie, caps = heapq.heappop(heap)
        explored += 1
        if explored > max_states:
            raise GraphError(f"buffer search exceeded {max_states} states")
        cap_map = dict(zip(edge_names, caps))
        rate = _rate_with(graph, cap_map, actor)
        if rate >= target:
            return BufferSizingResult(cap_map, rate, actor)
        for i in range(len(caps)):
            if caps[i] + 1 > cap_limit:
                continue
            nxt = caps[:i] + (caps[i] + 1,) + caps[i + 1 :]
            if nxt not in seen:
                seen.add(nxt)
                heapq.heappush(heap, (sum(nxt), next(counter), nxt))
    raise GraphError(f"no capacity vector ≤ {cap_limit} reaches throughput {target}")
