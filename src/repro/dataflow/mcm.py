"""Maximum Cycle Mean / Maximum Cycle Ratio analysis of HSDF graphs.

For an HSDF graph the steady-state period of the self-timed execution equals
the *maximum cycle ratio*

    MCM = max over cycles C of ( Σ_{v∈C} ρ(v)  /  Σ_{e∈C} tokens(e) )

and the throughput of every actor is ``1 / MCM`` firings per time unit
(Sriram & Bhattacharyya).  The paper cites this machinery ([17]) as the
standard technique that *cannot* be used for its parametric block-size model;
we implement it both as a substrate for concrete-instance analysis and to
cross-validate the state-space throughput method.

The implementation uses Lawler's parametric search: a candidate ratio ``λ``
is feasible (``λ ≥ MCM``) iff the graph re-weighted with
``w(e) = ρ(src(e)) − λ·tokens(e)`` has no positive cycle.  The search is done
with exact :class:`~fractions.Fraction` arithmetic over the Stern–Brocot
bound: since MCM is a ratio of (Σ durations)/(Σ tokens) with bounded
denominator, binary search plus ``limit_denominator`` recovers the exact
value.
"""

from __future__ import annotations

from fractions import Fraction

from .graph import CSDFGraph, GraphError, SDFGraph
from .hsdf import expand_to_hsdf
from .repetition import firing_repetition_vector

__all__ = ["max_cycle_ratio", "mcm_throughput", "CycleRatioResult"]


def _to_fraction(x: float | int | Fraction) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    return Fraction(x).limit_denominator(10**9)


class CycleRatioResult:
    """MCM value plus a witness critical cycle (as a list of node names)."""

    def __init__(self, ratio: Fraction, cycle: list[str]):
        self.ratio = ratio
        self.cycle = cycle

    def __repr__(self) -> str:  # pragma: no cover
        return f"CycleRatioResult(ratio={self.ratio}, cycle={self.cycle})"


def _positive_cycle(
    nodes: list[str],
    edges: list[tuple[str, str, Fraction, int]],
    lam: Fraction,
) -> list[str] | None:
    """Bellman-Ford longest-path: return a cycle with Σρ − λ·Στokens > 0."""
    dist = {n: Fraction(0) for n in nodes}
    pred: dict[str, tuple[str, int]] = {}
    last_relaxed: str | None = None
    for _ in range(len(nodes)):
        last_relaxed = None
        for idx, (u, v, w, tok) in enumerate(edges):
            cand = dist[u] + w - lam * tok
            if cand > dist[v]:
                dist[v] = cand
                pred[v] = (u, idx)
                last_relaxed = v
        if last_relaxed is None:
            return None
    # A relaxation in the n-th round proves a positive cycle; walk back.
    node = last_relaxed
    for _ in range(len(nodes)):
        node = pred[node][0]
    cycle = [node]
    cur = pred[node][0]
    while cur != node:
        cycle.append(cur)
        cur = pred[cur][0]
    cycle.reverse()
    return cycle


def max_cycle_ratio(hsdf: SDFGraph) -> CycleRatioResult:
    """Exact maximum cycle ratio of a unit-rate (HSDF) graph.

    Edges with zero tokens on a cycle with zero total tokens mean unbounded
    ratio (a zero-delay dependency cycle): reported as :class:`GraphError`.
    """
    for e in hsdf.edges.values():
        if e.total_production != 1 or e.total_consumption != 1:
            raise GraphError("max_cycle_ratio requires an HSDF (unit-rate) graph")
    nodes = sorted(hsdf.actors)
    edges = [
        (e.src, e.dst, _to_fraction(hsdf.actor(e.src).duration[0]), e.tokens)
        for e in hsdf.edges.values()
    ]
    if not edges:
        return CycleRatioResult(Fraction(0), [])

    total_w = sum((w for _u, _v, w, _tok in edges), Fraction(0))
    total_tokens = sum(tok for _u, _v, _w, tok in edges)
    # Zero-token positive cycle => infinite ratio (structural deadlock-free
    # zero-delay loop); detect with λ beyond any achievable ratio.
    hi_probe = total_w + 1
    if _positive_cycle(nodes, edges, hi_probe) is not None:
        raise GraphError("zero-token cycle with positive duration: unbounded cycle ratio")

    lo, hi = Fraction(0), hi_probe
    # Binary search until the interval isolates a unique fraction with
    # denominator ≤ total token count.
    bound = max(1, total_tokens)
    witness: list[str] = []
    while hi - lo > Fraction(1, 2 * bound * bound):
        mid = (lo + hi) / 2
        cyc = _positive_cycle(nodes, edges, mid)
        if cyc is not None:
            lo = mid
            witness = cyc
        else:
            hi = mid
    ratio = ((lo + hi) / 2).limit_denominator(bound)
    # `witness` is a positive cycle for some λ < MCM; refine: the critical
    # cycle is the one found at the last infeasible λ below MCM.
    if not witness:
        cyc = _positive_cycle(nodes, edges, ratio - Fraction(1, 4 * bound * bound))
        witness = cyc or []
    return CycleRatioResult(ratio, witness)


def mcm_throughput(graph: CSDFGraph, actor: str | None = None) -> Fraction:
    """Steady-state firing rate of ``actor`` via HSDF expansion + MCM.

    Returns firings per time unit.  This is the classical alternative to
    :func:`repro.dataflow.statespace.steady_state_throughput` and the two are
    cross-checked in the test suite.
    """
    reps = firing_repetition_vector(graph)
    if actor is None:
        actor = sorted(graph.actors)[0]
    if actor not in reps:
        raise GraphError(f"unknown actor {actor!r}")
    hsdf = expand_to_hsdf(graph)
    mcm = max_cycle_ratio(hsdf).ratio
    if mcm == 0:
        raise GraphError("graph has no cycles with tokens; throughput unbounded")
    # One iteration (reps[actor] firings) per MCM period.
    return Fraction(reps[actor]) / mcm
