"""Exact steady-state throughput via state-space exploration.

Self-timed execution of a consistent, deadlock-free, *bounded* (C)SDF graph
reaches a periodic regime after a finite transient (Ghamarian et al.,
"Throughput analysis of synchronous data flow graphs").  This module runs the
self-timed engine, captures a canonical state after every event instant and
detects recurrence; the throughput is the number of firings of a reference
actor per time unit inside the detected period.

This method is exact (unlike simulation-for-a-while estimates) and — unlike
MCM analysis on an HSDF expansion — applies directly to CSDF graphs and to
graphs whose HSDF expansion would blow up.  The paper's Fig. 8 buffer
experiment requires exactly this machinery: minimum buffer capacities under a
*maximum throughput* requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .graph import CSDFGraph, GraphError
from .repetition import firing_repetition_vector
from .simulation import SelfTimedEngine

__all__ = ["ThroughputResult", "steady_state_throughput"]


@dataclass(frozen=True)
class ThroughputResult:
    """Steady-state throughput of a self-timed execution.

    ``firing_rate`` is the number of firings of ``actor`` per time unit;
    ``iteration_rate`` normalises by the repetition vector (graph iterations
    per time unit).  ``deadlocked`` executions have zero rates.
    """

    actor: str
    firing_rate: Fraction
    iteration_rate: Fraction
    period: Fraction
    firings_per_period: int
    transient_steps: int
    deadlocked: bool

    @property
    def period_per_iteration(self) -> Fraction:
        """Average time for one graph iteration (inf when deadlocked)."""
        if self.iteration_rate == 0:
            raise ZeroDivisionError("deadlocked graph has no iteration period")
        return 1 / self.iteration_rate


def steady_state_throughput(
    graph: CSDFGraph,
    actor: str | None = None,
    max_steps: int = 1_000_000,
) -> ThroughputResult:
    """Exact throughput of the self-timed execution of ``graph``.

    The graph must be bounded (every cycle of interest closed by back-edges);
    otherwise token counts grow without recurrence and the exploration aborts
    with :class:`GraphError` after ``max_steps`` events.

    Durations are handled exactly when they are integers or Fractions; floats
    are rounded to 9 decimals inside the state key.
    """
    reps = firing_repetition_vector(graph)
    if actor is None:
        actor = sorted(graph.actors)[0]
    elif actor not in graph.actors:
        raise GraphError(f"unknown reference actor {actor!r}")

    engine = SelfTimedEngine(graph, record=False)
    seen: dict[tuple, tuple[float, int, int]] = {}
    steps = 0
    seen[engine.state_key()] = (engine.now, engine.completions[actor], steps)

    while steps < max_steps:
        if not engine.advance():
            return ThroughputResult(
                actor=actor,
                firing_rate=Fraction(0),
                iteration_rate=Fraction(0),
                period=Fraction(0),
                firings_per_period=0,
                transient_steps=steps,
                deadlocked=True,
            )
        steps += 1
        key = engine.state_key()
        if key in seen:
            t0, c0, s0 = seen[key]
            raw = engine.now - t0
            if isinstance(raw, float):
                period = Fraction(raw).limit_denominator(10**9)
            else:
                period = Fraction(raw)  # int/Fraction: exact
            count = engine.completions[actor] - c0
            if period == 0:
                raise GraphError("zero-time period detected; graph has zero-duration cycles")
            if count == 0:
                # The recurring state never fires the reference actor: the
                # reference is outside the live part of the graph.
                return ThroughputResult(
                    actor=actor,
                    firing_rate=Fraction(0),
                    iteration_rate=Fraction(0),
                    period=period,
                    firings_per_period=0,
                    transient_steps=s0,
                    deadlocked=False,
                )
            rate = Fraction(count) / period
            return ThroughputResult(
                actor=actor,
                firing_rate=rate,
                iteration_rate=rate / reps[actor],
                period=period,
                firings_per_period=count,
                transient_steps=s0,
                deadlocked=False,
            )
        seen[key] = (engine.now, engine.completions[actor], steps)

    raise GraphError(
        f"no steady state within {max_steps} events for graph {graph.name!r}; "
        "is every cycle bounded by back-edges?"
    )
