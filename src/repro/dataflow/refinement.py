"""The-earlier-the-better refinement checks (Geilen & Tripakis; paper Sec. III).

A component ``C`` refines an abstraction ``Ĉ`` (written ``C ⊑ Ĉ``) when
earlier input-token arrivals never cause later output-token productions:

    ∀i, a(i) ≤ â(i)  ⇒  ∀j, b(j) ≤ b̂(j)

The practical check the paper uses — and the one the test-suite exercises to
show the hardware/CSDF/SDF stack is a refinement chain — compares the token
*production times* of the refined model against the abstraction under equal
(or earlier) inputs: every production in the refinement must be no later
than the corresponding production in the abstraction.

This module works on plain production-time sequences, on
:class:`~repro.dataflow.simulation.ExecutionResult` pairs, and provides the
transitivity helper used to conclude ``hardware ⊑ CSDF ⊑ SDF`` from the two
pairwise checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .simulation import ExecutionResult

__all__ = ["RefinementReport", "refines_times", "refines_execution", "RefinementChain"]


@dataclass(frozen=True)
class RefinementReport:
    """Outcome of a refinement comparison."""

    holds: bool
    compared: int
    first_violation: int | None = None
    refined_time: float | None = None
    abstract_time: float | None = None

    def __bool__(self) -> bool:
        return self.holds


def refines_times(
    refined: list[float],
    abstract: list[float],
    tolerance: float = 1e-9,
) -> RefinementReport:
    """Check ``refined[j] ≤ abstract[j]`` for all common indices.

    The refinement may produce *more* tokens than the abstraction within the
    observation window (it is faster); the abstraction producing more than
    the refinement within the same window is itself evidence of violation
    only when the refinement has terminated — callers compare equal-length
    windows, so we check the common prefix and require the refinement to
    cover at least as many productions as the abstraction.
    """
    if len(refined) < len(abstract):
        # The abstraction produced a token the refinement never produced in
        # the window: the refinement is observably slower.
        j = len(refined)
        return RefinementReport(False, j, j, None, abstract[j])
    for j, (b, b_hat) in enumerate(zip(refined, abstract)):
        if b > b_hat + tolerance:
            return RefinementReport(False, j, j, b, b_hat)
    return RefinementReport(True, len(abstract))


def refines_execution(
    refined: ExecutionResult,
    abstract: ExecutionResult,
    actors: dict[str, str] | list[str],
    tolerance: float = 1e-9,
) -> RefinementReport:
    """Compare production times actor-by-actor between two executions.

    ``actors`` maps refined-actor name → abstract-actor name (or is a list of
    names present in both graphs).  The report aggregates: the first failing
    actor terminates the check.
    """
    mapping = {a: a for a in actors} if isinstance(actors, list) else dict(actors)
    compared = 0
    for ref_actor, abs_actor in mapping.items():
        rep = refines_times(
            refined.production_times(ref_actor),
            abstract.production_times(abs_actor),
            tolerance=tolerance,
        )
        compared += rep.compared
        if not rep:
            return RefinementReport(
                False, compared, rep.first_violation, rep.refined_time, rep.abstract_time
            )
    return RefinementReport(True, compared)


class RefinementChain:
    """Transitivity helper: ``A ⊑ B`` and ``B ⊑ C`` imply ``A ⊑ C``.

    The paper invokes exactly this step: "Due to transitivity of the ⊑
    relation we can conclude that also the hardware is a refinement of this
    SDF model."
    """

    def __init__(self) -> None:
        self._links: list[tuple[str, str, RefinementReport]] = []

    def add(self, refined: str, abstract: str, report: RefinementReport) -> None:
        self._links.append((refined, abstract, report))

    def holds(self, refined: str, abstract: str) -> bool:
        """Is there a verified chain from ``refined`` up to ``abstract``?"""
        frontier = {refined}
        verified = {(r, a) for r, a, rep in self._links if rep.holds}
        while True:
            reachable = {a for r, a in verified if r in frontier}
            if abstract in reachable:
                return True
            if reachable <= frontier:
                return False
            frontier |= reachable
