"""Repetition vectors and consistency for (C)SDF graphs.

A (C)SDF graph is *consistent* when the balance equations

    q[src] * total_production(e) == q[dst] * total_consumption(e)

have a non-trivial solution ``q`` (one entry per actor).  For CSDF the
quanta totals are taken over one full cyclo-static cycle of phases, so
``q[a]`` counts *cycles*; the number of individual firings per iteration is
``q[a] * phases(a)``.

Only consistent graphs can execute within bounded memory; the analysis in
:mod:`repro.core` refuses inconsistent models up front.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm

from .graph import CSDFGraph, GraphError

__all__ = ["repetition_vector", "firing_repetition_vector", "is_consistent", "iteration_tokens"]


def repetition_vector(graph: CSDFGraph) -> dict[str, int]:
    """Smallest positive integer solution of the balance equations.

    For CSDF the entries count full cyclo-static *cycles* per iteration.
    Raises :class:`GraphError` on inconsistency or on an actor-free graph.
    """
    if len(graph) == 0:
        raise GraphError("repetition vector of an empty graph")
    ratios: dict[str, Fraction] = {}
    adj: dict[str, list[tuple[str, Fraction]]] = {a: [] for a in graph.actors}
    for e in graph.edges.values():
        # q[dst] = q[src] * prod/cons
        ratio = Fraction(e.total_production, e.total_consumption)
        adj[e.src].append((e.dst, ratio))
        adj[e.dst].append((e.src, 1 / ratio))

    for component in graph.undirected_components():
        start = sorted(component)[0]
        ratios[start] = Fraction(1)
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt, ratio in adj[node]:
                value = ratios[node] * ratio
                if nxt in ratios:
                    if ratios[nxt] != value:
                        raise GraphError(
                            f"graph {graph.name!r} is inconsistent at actor {nxt!r}: "
                            f"{ratios[nxt]} != {value}"
                        )
                else:
                    ratios[nxt] = value
                    stack.append(nxt)

    # Verify every edge (covers multi-edges between already-visited actors).
    for e in graph.edges.values():
        if ratios[e.src] * e.total_production != ratios[e.dst] * e.total_consumption:
            raise GraphError(f"graph {graph.name!r} is inconsistent on edge {e.name!r}")

    denom = lcm(*(r.denominator for r in ratios.values()))
    ints = {a: int(r * denom) for a, r in ratios.items()}
    divisor = 0
    for v in ints.values():
        divisor = gcd(divisor, v)
    return {a: v // divisor for a, v in ints.items()}


def firing_repetition_vector(graph: CSDFGraph) -> dict[str, int]:
    """Per-actor number of *firings* (phases executed) in one graph iteration."""
    q = repetition_vector(graph)
    return {a: q[a] * graph.actor(a).phases for a in q}


def is_consistent(graph: CSDFGraph) -> bool:
    """True when the balance equations admit a non-trivial solution."""
    try:
        repetition_vector(graph)
        return True
    except GraphError:
        return False


def iteration_tokens(graph: CSDFGraph, edge_name: str) -> int:
    """Tokens transported over an edge during one complete graph iteration."""
    q = repetition_vector(graph)
    e = graph.edge(edge_name)
    return q[e.src] * e.total_production
