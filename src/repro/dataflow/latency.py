"""Token latency analysis for (C)SDF executions.

The refinement theory the paper builds on guarantees "maximum token arrival
times" (Section III); besides throughput, the models therefore bound
end-to-end *latency*.  This module extracts token-level latencies from
self-timed executions and provides the closed-form sample-latency bound for
a gateway-managed stream:

    L̂_s = η_s/μ_s + γ̂_s

— a sample arriving at an empty input buffer waits at most one block-fill
time (η_s further samples at rate μ_s) for its block to be admitted, plus
the worst-case block turnaround γ̂ (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .graph import CSDFGraph, GraphError
from .repetition import repetition_vector
from .simulation import ExecutionResult, execute

__all__ = ["TokenLatencyReport", "token_latencies", "measure_latency"]


@dataclass(frozen=True)
class TokenLatencyReport:
    """Per-token latencies between a producer and a consumer actor."""

    src: str
    dst: str
    latencies: tuple[float, ...]

    @property
    def worst(self) -> float:
        if not self.latencies:
            raise GraphError("no tokens observed")
        return max(self.latencies)

    @property
    def best(self) -> float:
        if not self.latencies:
            raise GraphError("no tokens observed")
        return min(self.latencies)

    @property
    def mean(self) -> float:
        if not self.latencies:
            raise GraphError("no tokens observed")
        return sum(self.latencies) / len(self.latencies)


def token_latencies(
    result: ExecutionResult,
    graph: CSDFGraph,
    src: str,
    dst: str,
) -> TokenLatencyReport:
    """Latency of the k-th corresponding tokens between two actors.

    Both actors' production instants are expanded to token level using the
    total production of their *output* rates per firing cycle position; the
    k-th token produced by ``dst`` is matched against the k-th token
    produced by ``src``, scaled by the repetition ratio (for a consistent
    graph, ``src`` and ``dst`` move token counts in a fixed proportion per
    iteration).
    """
    if src not in graph.actors or dst not in graph.actors:
        raise GraphError(f"unknown actors {src!r}/{dst!r}")
    q = repetition_vector(graph)
    src_times = result.production_times(src)
    dst_times = result.production_times(dst)
    if not src_times or not dst_times:
        raise GraphError("actors never fired in the observed window")
    # tokens produced per full cyclo-static cycle
    ratio = Fraction(q[src] * graph.actor(src).phases, q[dst] * graph.actor(dst).phases)
    lats = []
    for k, t_out in enumerate(dst_times):
        idx = int(k * ratio)
        if idx >= len(src_times):
            break
        lat = t_out - src_times[idx]
        if lat < 0:
            # dst token predates its matched src token: initial tokens in
            # between; skip (no causal relation for this index)
            continue
        lats.append(lat)
    return TokenLatencyReport(src, dst, tuple(lats))


def measure_latency(
    graph: CSDFGraph,
    src: str,
    dst: str,
    iterations: int = 4,
) -> TokenLatencyReport:
    """Convenience: execute and extract latencies in one call."""
    result = execute(graph, iterations=iterations, record=True)
    return token_latencies(result, graph, src, dst)
