"""(Cyclo-Static) Data Flow analysis library.

Implements the temporal-analysis substrate the paper builds on: (C)SDF
graphs, repetition vectors, HSDF expansion, Maximum-Cycle-Mean analysis,
exact state-space throughput, admissible schedules, buffer-capacity
minimisation and the-earlier-the-better refinement checks.
"""

from .buffers import (
    BufferSizingResult,
    bound_channel,
    bounded_graph,
    capacity_lower_bound,
    max_throughput,
    min_capacities,
    min_capacity_for_liveness,
    min_capacity_single,
)
from .csdf_to_sdf import csdf_to_sdf
from .export import schedule_to_csv, to_dot
from .graph import Actor, CSDFGraph, Edge, GraphError, SDFGraph, as_sdf, cyclic
from .hsdf import expand_to_hsdf, hsdf_node
from .latency import TokenLatencyReport, measure_latency, token_latencies
from .mcm import CycleRatioResult, max_cycle_ratio, mcm_throughput
from .refinement import RefinementChain, RefinementReport, refines_execution, refines_times
from .repetition import (
    firing_repetition_vector,
    is_consistent,
    iteration_tokens,
    repetition_vector,
)
from .schedule import Schedule, admissible_schedule
from .serialize import dumps as graph_dumps
from .serialize import graph_from_dict, graph_to_dict
from .serialize import loads as graph_loads
from .simulation import DeadlockError, ExecutionResult, Firing, SelfTimedEngine, execute
from .statespace import ThroughputResult, steady_state_throughput
from .validate import ValidationReport, check_liveness, is_deadlock_free, validate_graph

__all__ = [
    "Actor",
    "BufferSizingResult",
    "CSDFGraph",
    "CycleRatioResult",
    "DeadlockError",
    "Edge",
    "ExecutionResult",
    "Firing",
    "GraphError",
    "RefinementChain",
    "RefinementReport",
    "SDFGraph",
    "Schedule",
    "SelfTimedEngine",
    "ThroughputResult",
    "TokenLatencyReport",
    "ValidationReport",
    "admissible_schedule",
    "as_sdf",
    "bound_channel",
    "bounded_graph",
    "capacity_lower_bound",
    "check_liveness",
    "csdf_to_sdf",
    "cyclic",
    "execute",
    "expand_to_hsdf",
    "firing_repetition_vector",
    "graph_dumps",
    "graph_from_dict",
    "graph_loads",
    "graph_to_dict",
    "hsdf_node",
    "is_consistent",
    "is_deadlock_free",
    "iteration_tokens",
    "max_cycle_ratio",
    "max_throughput",
    "mcm_throughput",
    "measure_latency",
    "token_latencies",
    "min_capacities",
    "min_capacity_for_liveness",
    "min_capacity_single",
    "refines_execution",
    "refines_times",
    "repetition_vector",
    "schedule_to_csv",
    "steady_state_throughput",
    "to_dot",
    "validate_graph",
]
