"""(C)SDF graph data structures.

The paper's temporal analysis rests on Cyclo-Static Data Flow (CSDF) [Bilsen
et al., 1996] and its special case Synchronous Data Flow (SDF).  This module
defines the graph model used throughout :mod:`repro.dataflow`:

* an :class:`Actor` has one or more *phases*; each phase has a firing
  duration, and each incident edge has per-phase production/consumption
  *quanta*,
* an :class:`Edge` is a conceptually unbounded token queue with a number of
  *initial tokens*; a bounded buffer is modelled (as in the paper) by a
  forward edge plus a complementary back edge whose initial tokens encode the
  capacity,
* every CSDF actor carries an **implicit self-edge with one token**
  (paper, Section V-A), so firings of one actor never overlap.  This is
  enforced by the execution engine rather than materialised as an edge.

Quanta and durations are stored as tuples whose length equals the actor's
phase count.  The helper :func:`cyclic` builds the ``z × 1, 0``-style
parametric quanta notation used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Mapping, Sequence

__all__ = ["Actor", "Edge", "CSDFGraph", "SDFGraph", "cyclic", "as_sdf", "GraphError"]


class GraphError(ValueError):
    """Raised for malformed dataflow graphs."""


def cyclic(*groups: tuple[int, int | float]) -> tuple[int | float, ...]:
    """Expand ``(count, value)`` groups into a flat phase list.

    ``cyclic((3, 1), (1, 0))`` produces ``(1, 1, 1, 0)`` — the paper's
    ``3 × 1, 0`` notation.
    """
    out: list[int | float] = []
    for count, value in groups:
        if count < 0:
            raise GraphError(f"negative repetition count {count}")
        out.extend([value] * count)
    if not out:
        raise GraphError("cyclic() produced an empty phase list")
    return tuple(out)


def _as_phase_tuple(value: int | float | Sequence[int | float], phases: int, what: str):
    """Normalise scalar-or-sequence input to a tuple of length ``phases``."""
    if isinstance(value, (int, float)):
        return (value,) * phases
    out = tuple(value)
    if len(out) != phases:
        raise GraphError(f"{what} has {len(out)} entries but the actor has {phases} phases")
    return out


@dataclass(frozen=True)
class Actor:
    """A (C)SDF actor.

    Parameters
    ----------
    name:
        Unique actor identifier.
    duration:
        Firing duration per phase (scalar = same for all phases).
    phases:
        Number of phases (1 = plain SDF actor).
    """

    name: str
    duration: tuple[float, ...]
    phases: int = 1

    def __post_init__(self) -> None:
        if self.phases < 1:
            raise GraphError(f"actor {self.name!r} must have at least one phase")
        if len(self.duration) != self.phases:
            raise GraphError(
                f"actor {self.name!r}: {len(self.duration)} durations for {self.phases} phases"
            )
        if any(d < 0 for d in self.duration):
            raise GraphError(f"actor {self.name!r} has a negative firing duration")

    @staticmethod
    def make(name: str, duration: float | Sequence[float], phases: int | None = None) -> "Actor":
        """Build an actor, inferring the phase count from ``duration``.

        Exact numeric types (int, Fraction) are preserved so that tight
        throughput comparisons stay exact; floats stay floats.
        """
        def _keep(d):
            return d if isinstance(d, (int, Fraction)) else float(d)

        if isinstance(d := duration, (int, float, Fraction)):
            return Actor(name, (_keep(d),) * (phases or 1), phases or 1)
        dur = tuple(_keep(x) for x in duration)
        if phases is not None and phases != len(dur):
            raise GraphError(f"actor {name!r}: phases={phases} but {len(dur)} durations")
        return Actor(name, dur, len(dur))

    @property
    def is_sdf(self) -> bool:
        return self.phases == 1

    @property
    def total_duration(self) -> float:
        """Sum of all phase durations (one full cyclo-static cycle)."""
        return sum(self.duration)

    @property
    def max_duration(self) -> float:
        return max(self.duration)


@dataclass(frozen=True)
class Edge:
    """A token queue from ``src`` to ``dst``.

    ``production`` has one quantum per phase of ``src``; ``consumption`` one
    per phase of ``dst``.  ``tokens`` is the number of initial tokens.
    """

    name: str
    src: str
    dst: str
    production: tuple[int, ...]
    consumption: tuple[int, ...]
    tokens: int = 0

    def __post_init__(self) -> None:
        if any(q < 0 for q in self.production) or any(q < 0 for q in self.consumption):
            raise GraphError(f"edge {self.name!r} has negative quanta")
        if sum(self.production) == 0:
            raise GraphError(f"edge {self.name!r} never produces any token")
        if sum(self.consumption) == 0:
            raise GraphError(f"edge {self.name!r} never consumes any token")
        if self.tokens < 0:
            raise GraphError(f"edge {self.name!r} has negative initial tokens")

    @property
    def total_production(self) -> int:
        """Tokens produced over one full cyclo-static cycle of ``src``."""
        return sum(self.production)

    @property
    def total_consumption(self) -> int:
        """Tokens consumed over one full cyclo-static cycle of ``dst``."""
        return sum(self.consumption)


class CSDFGraph:
    """A cyclo-static dataflow graph: actors plus token-queue edges."""

    def __init__(self, name: str = "csdf") -> None:
        self.name = name
        self._actors: dict[str, Actor] = {}
        self._edges: dict[str, Edge] = {}

    # -- construction ---------------------------------------------------
    def add_actor(
        self,
        name: str,
        duration: float | Sequence[float] = 0.0,
        phases: int | None = None,
    ) -> Actor:
        """Add an actor; ``duration`` may be per-phase."""
        if name in self._actors:
            raise GraphError(f"duplicate actor {name!r}")
        actor = Actor.make(name, duration, phases)
        self._actors[name] = actor
        return actor

    def add_edge(
        self,
        src: str,
        dst: str,
        production: int | Sequence[int] = 1,
        consumption: int | Sequence[int] = 1,
        tokens: int = 0,
        name: str | None = None,
    ) -> Edge:
        """Add a token queue from ``src`` to ``dst`` with initial ``tokens``."""
        if src not in self._actors:
            raise GraphError(f"unknown source actor {src!r}")
        if dst not in self._actors:
            raise GraphError(f"unknown destination actor {dst!r}")
        label = name or f"{src}->{dst}#{len(self._edges)}"
        if label in self._edges:
            raise GraphError(f"duplicate edge name {label!r}")
        prod = _as_phase_tuple(production, self._actors[src].phases, f"production of {label!r}")
        cons = _as_phase_tuple(consumption, self._actors[dst].phases, f"consumption of {label!r}")
        prod = tuple(int(q) for q in prod)
        cons = tuple(int(q) for q in cons)
        edge = Edge(label, src, dst, prod, cons, int(tokens))
        self._edges[label] = edge
        return edge

    def with_edge_tokens(self, overrides: Mapping[str, int]) -> "CSDFGraph":
        """Copy of the graph with selected edges' initial tokens replaced."""
        unknown = set(overrides) - set(self._edges)
        if unknown:
            raise GraphError(f"unknown edges in override: {sorted(unknown)}")
        g = type(self)(self.name)
        g._actors = dict(self._actors)
        for label, e in self._edges.items():
            tok = overrides.get(label, e.tokens)
            g._edges[label] = Edge(e.name, e.src, e.dst, e.production, e.consumption, int(tok))
        return g

    # -- access -----------------------------------------------------------
    @property
    def actors(self) -> dict[str, Actor]:
        return dict(self._actors)

    @property
    def edges(self) -> dict[str, Edge]:
        return dict(self._edges)

    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise GraphError(f"unknown actor {name!r}") from None

    def edge(self, name: str) -> Edge:
        try:
            return self._edges[name]
        except KeyError:
            raise GraphError(f"unknown edge {name!r}") from None

    def in_edges(self, actor: str) -> list[Edge]:
        return [e for e in self._edges.values() if e.dst == actor]

    def out_edges(self, actor: str) -> list[Edge]:
        return [e for e in self._edges.values() if e.src == actor]

    def __iter__(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    def __len__(self) -> int:
        return len(self._actors)

    # -- properties ---------------------------------------------------------
    @property
    def is_sdf(self) -> bool:
        """True when every actor has a single phase."""
        return all(a.is_sdf for a in self._actors.values())

    def undirected_components(self) -> list[set[str]]:
        """Weakly-connected components (actor name sets)."""
        adj: dict[str, set[str]] = {a: set() for a in self._actors}
        for e in self._edges.values():
            adj[e.src].add(e.dst)
            adj[e.dst].add(e.src)
        seen: set[str] = set()
        comps: list[set[str]] = []
        for start in self._actors:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in adj[node]:
                    if nxt not in comp:
                        comp.add(nxt)
                        stack.append(nxt)
            seen |= comp
            comps.append(comp)
        return comps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r}: "
            f"{len(self._actors)} actors, {len(self._edges)} edges>"
        )


class SDFGraph(CSDFGraph):
    """A CSDF graph restricted to single-phase actors."""

    def add_actor(
        self,
        name: str,
        duration: float | Sequence[float] = 0.0,
        phases: int | None = None,
    ) -> Actor:
        if phases not in (None, 1):
            raise GraphError("SDFGraph actors are single-phase; use CSDFGraph")
        if not isinstance(duration, (int, float, Fraction)):
            seq = tuple(duration)
            if len(seq) != 1:
                raise GraphError("SDFGraph actors are single-phase; use CSDFGraph")
            duration = seq[0]
        return super().add_actor(name, duration, 1)


def as_sdf(graph: CSDFGraph) -> SDFGraph:
    """Reinterpret a single-phase CSDF graph as an :class:`SDFGraph`."""
    if not graph.is_sdf:
        raise GraphError("graph has multi-phase actors; convert with csdf_to_sdf first")
    g = SDFGraph(graph.name)
    g._actors = dict(graph.actors)
    g._edges = dict(graph.edges)
    return g
