"""(C)SDF → HSDF expansion.

A Homogeneous SDF (HSDF) graph has unit production/consumption on every
edge; each node of the expansion represents one *firing* of the original
actor within one graph iteration.  MCM analysis (:mod:`repro.dataflow.mcm`)
runs on this expansion.

The paper (Section III) notes that MCM techniques cannot be applied to its
CSDF model because the block size ``η_s`` is a parameter, so no fixed-topology
HSDF expansion exists; the expansion below is still essential for analysing
*concrete* instances (fixed ``η_s``) and for the buffer-sizing experiments.

Construction
------------
For an edge ``u → v`` with per-phase production ``p``, consumption ``c`` and
``d`` initial tokens, consumer firing ``j`` (within iteration 0) consumes the
tokens with global indices ``[Ccum(j-1), Ccum(j))``.  Token index ``t``
corresponds to produced-token index ``x = t - d``; for ``x ≥ 0`` it is
produced by the firing ``i`` with ``Pcum(i) ≤ x < Pcum(i+1)`` and for
``x < 0`` by a firing of a *previous* iteration (handled with floor
division).  Each dependency becomes an HSDF edge whose initial-token count is
the iteration distance between producer and consumer firings.
"""

from __future__ import annotations

from .graph import CSDFGraph, GraphError, SDFGraph
from .repetition import firing_repetition_vector

__all__ = ["expand_to_hsdf", "hsdf_node"]


def hsdf_node(actor: str, firing: int) -> str:
    """Name of the HSDF node for the ``firing``-th firing of ``actor``."""
    return f"{actor}#{firing}"


def _cumulative(quanta: tuple[int, ...], firings: int) -> int:
    """Tokens handled by the first ``firings`` firings (may be negative)."""
    ph = len(quanta)
    total = sum(quanta)
    full, rest = divmod(firings, ph)  # Python floor semantics handle negatives
    return full * total + sum(quanta[:rest])


def _producer_of(quanta: tuple[int, ...], x: int) -> int:
    """Global firing index producing token ``x`` (0-based; may be negative)."""
    ph = len(quanta)
    total = sum(quanta)
    # Initial guess below the answer, then scan upward.
    i = (x // total - 1) * ph if total > 0 else 0
    while _cumulative(quanta, i + 1) <= x:
        i += 1
    return i


def expand_to_hsdf(graph: CSDFGraph) -> SDFGraph:
    """Expand a consistent (C)SDF graph into its HSDF equivalent.

    Every node carries the duration of the corresponding phase.  The implicit
    self-edge of each actor is materialised as a cycle through its firings
    with one token on the wrap-around edge, encoding that firings of one
    actor never overlap.
    """
    reps = firing_repetition_vector(graph)
    hsdf = SDFGraph(f"{graph.name}-hsdf")

    for name, actor in graph.actors.items():
        for k in range(reps[name]):
            hsdf.add_actor(hsdf_node(name, k), duration=actor.duration[k % actor.phases])

    # Sequentialise firings of each actor (implicit self-edge).
    for name in graph.actors:
        r = reps[name]
        if r == 1:
            hsdf.add_edge(
                hsdf_node(name, 0), hsdf_node(name, 0), tokens=1, name=f"self:{name}"
            )
        else:
            for k in range(r):
                hsdf.add_edge(
                    hsdf_node(name, k),
                    hsdf_node(name, (k + 1) % r),
                    tokens=1 if k == r - 1 else 0,
                    name=f"seq:{name}:{k}",
                )

    for e in graph.edges.values():
        r_dst = reps[e.dst]
        # (producer firing within iteration, iteration distance) -> dedup
        for j in range(r_dst):
            deps: dict[tuple[int, int], None] = {}
            lo = _cumulative(e.consumption, j)
            hi = _cumulative(e.consumption, j + 1)
            for t in range(lo, hi):
                x = t - e.tokens
                i = _producer_of(e.production, x)
                iteration = i // reps[e.src]
                i_local = i % reps[e.src]
                if iteration > 0:
                    raise GraphError(
                        f"edge {e.name!r}: consumer firing {j} needs a token from a "
                        "future iteration; graph is inconsistent or malformed"
                    )
                deps[(i_local, -iteration)] = None
            # Keep only the tightest (fewest initial tokens) edge per producer.
            tightest: dict[int, int] = {}
            for (i_local, dist) in deps:
                if i_local not in tightest or dist < tightest[i_local]:
                    tightest[i_local] = dist
            for i_local, dist in sorted(tightest.items()):
                hsdf.add_edge(
                    hsdf_node(e.src, i_local),
                    hsdf_node(e.dst, j),
                    tokens=dist,
                    name=f"{e.name}:{i_local}->{j}",
                )
    return hsdf
