"""Structural and behavioural validation of (C)SDF graphs.

The analysis pipeline in :mod:`repro.core` refuses malformed inputs early;
this module groups the checks: consistency (balance equations), liveness
(deadlock-freedom over one iteration — sufficient for (C)SDF since the token
distribution after a complete iteration equals the initial one), and simple
structural sanity (dangling actors, zero-duration cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import CSDFGraph, GraphError
from .repetition import is_consistent, repetition_vector
from .simulation import execute

__all__ = ["ValidationReport", "validate_graph", "check_liveness", "is_deadlock_free"]


@dataclass
class ValidationReport:
    """Aggregated validation outcome; ``ok`` is True when nothing failed."""

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)


def check_liveness(graph: CSDFGraph) -> bool:
    """True when one complete iteration executes without deadlock.

    For consistent (C)SDF graphs, completing one iteration returns the token
    distribution to its initial value, so one deadlock-free iteration implies
    unbounded deadlock-free execution.
    """
    result = execute(graph, iterations=1, record=False, allow_deadlock=True)
    return not result.deadlocked


def is_deadlock_free(graph: CSDFGraph) -> bool:
    """Alias of :func:`check_liveness` with consistency pre-check."""
    return is_consistent(graph) and check_liveness(graph)


def validate_graph(graph: CSDFGraph, require_live: bool = True) -> ValidationReport:
    """Run the full validation battery and return a report."""
    report = ValidationReport()
    if len(graph) == 0:
        report.fail("graph has no actors")
        return report

    try:
        reps = repetition_vector(graph)
    except GraphError as err:
        report.fail(f"inconsistent: {err}")
        return report

    for name in graph.actors:
        if not graph.in_edges(name) and not graph.out_edges(name):
            report.warn(f"actor {name!r} is disconnected")

    for name, actor in graph.actors.items():
        if actor.total_duration == 0:
            report.warn(f"actor {name!r} has zero total firing duration")

    if max(reps.values()) > 1_000_000:
        report.warn("repetition vector is very large; HSDF expansion will be expensive")

    if require_live:
        try:
            if not check_liveness(graph):
                report.fail("graph deadlocks within the first iteration")
        except GraphError as err:
            report.fail(f"execution failed: {err}")
    return report
