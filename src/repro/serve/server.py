"""The asyncio TCP front end of the admission service.

Transport framing is one JSON object per line in both directions
(newline-delimited JSON over ``asyncio.start_server`` — pure stdlib).
The transport layer owns nothing but bytes: every admission decision,
deadline, and failure answer lives in
:class:`~repro.serve.service.AdmissionService`, so the service is fully
testable without a socket and the server loop stays small enough to
audit.

Robustness at this layer:

* a line that is not valid JSON answers a structured ``malformed`` error
  instead of dropping the connection (a fuzzing client cannot wedge the
  accept loop);
* oversized lines (> ``MAX_LINE`` bytes) terminate only that connection;
* a handler exception answers ``internal`` and keeps the connection —
  the service's own state was already protected by its atomic commit;
* client disconnects mid-request are absorbed per connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from .protocol import error_response
from .service import AdmissionService

__all__ = ["MAX_LINE", "handle_connection", "serve_forever"]

#: hard bound on one request line; beyond it the connection is dropped
MAX_LINE = 1 << 20


async def handle_connection(
    service: AdmissionService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection until EOF."""
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # request line exceeded the stream limit: unrecoverable
                # framing for this connection only
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                raw: Any = json.loads(line)
            except json.JSONDecodeError as exc:
                response = error_response(None, "malformed",
                                          f"invalid JSON: {exc}")
            else:
                try:
                    response = await service.submit(raw)
                except Exception as exc:  # never leak a traceback as framing
                    response = error_response(
                        None, "internal", f"unhandled server error: {exc}")
            writer.write(json.dumps(response).encode() + b"\n")
            try:
                await writer.drain()
            except ConnectionError:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # server teardown cancels lingering handlers mid-close; the
            # transport is going away either way
            pass


async def serve_forever(
    service: AdmissionService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: asyncio.Event | None = None,
    bound: list | None = None,
) -> None:
    """Run the TCP front end until a client requests shutdown.

    ``port=0`` binds an ephemeral port; the actual ``(host, port)`` is
    appended to ``bound`` (when given) and ``ready`` is set once the
    socket accepts connections — the shape the CLI and the tests use to
    rendezvous without sleeping.
    """
    await service.start()
    server = await asyncio.start_server(
        lambda r, w: handle_connection(service, r, w),
        host, port, limit=MAX_LINE,
    )
    try:
        addr = server.sockets[0].getsockname()
        if bound is not None:
            bound.append((addr[0], addr[1]))
        if ready is not None:
            ready.set()
        async with server:
            await service.shutdown_requested.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()
