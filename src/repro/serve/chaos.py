"""Seeded fault injection for the admission service itself.

The simulator's fault injector (:mod:`repro.sim.faults`) breaks the
*modelled hardware*; this module breaks the *service*: handler crashes at
the worst possible instants and solver stalls that trip deadlines and the
circuit breaker.  The soak harness arms these to prove the service's
exactly-once claims — a crash after commit but before the response is the
canonical double-apply trap, and an idempotent retry must come back with
the recorded answer instead of a second transition.

Everything is driven by one seeded :class:`random.Random` consulted in
request order, so a failing soak run replays deterministically from its
seed (single-worker services consult it from one task; the batch worker is
the only consumer).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

__all__ = ["InjectedCrash", "ServeChaos"]


class InjectedCrash(RuntimeError):
    """Raised by a chaos hook to simulate a handler crash."""


@dataclass
class ServeChaos:
    """Chaos policy for one service instance.

    Parameters
    ----------
    seed:
        Seed of the single RNG every probabilistic draw uses.
    crash_before:
        Probability a batch handler crashes *before* touching any state
        (clients must see ``internal`` and the state must be unchanged).
    crash_after:
        Probability a batch handler crashes *after* the transition commits
        but before responses are sent (clients must see ``internal``, yet
        an idempotent retry must observe the already-applied transition).
    solve_delay:
        Seconds a stalled solve sleeps (long enough to blow the service's
        ``solver_timeout`` when armed).
    solve_delay_rate:
        Probability any given solve stalls by ``solve_delay``.
    """

    seed: int = 0
    crash_before: float = 0.0
    crash_after: float = 0.0
    solve_delay: float = 0.0
    solve_delay_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_before", "crash_after", "solve_delay_rate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.solve_delay < 0:
            raise ValueError(f"solve_delay must be >= 0, got {self.solve_delay}")
        self._rng = random.Random(self.seed)
        self.crashes = 0
        self.stalls = 0

    def crash_point(self, where: str) -> None:
        """Maybe raise :class:`InjectedCrash` at hook point ``where``."""
        p = self.crash_before if where == "pre" else self.crash_after
        if p and self._rng.random() < p:
            self.crashes += 1
            raise InjectedCrash(f"injected handler crash at {where!r}")

    async def maybe_stall_solve(self) -> None:
        """Maybe sleep a solve long enough to trip the breaker."""
        if self.solve_delay_rate and self._rng.random() < self.solve_delay_rate:
            self.stalls += 1
            await asyncio.sleep(self.solve_delay)
