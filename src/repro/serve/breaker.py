"""Circuit breaker around the admission service's ILP solve path.

The exact Algorithm-1 solve is the one component of the admission service
with unbounded worst-case latency (a pathological candidate system can
stall the MILP).  The breaker keeps a run of solver timeouts from turning
into a convoy: after ``failure_threshold`` consecutive failures it *opens*
and the service answers from the conservative closed-form Eq. 5 bound
(:func:`repro.core.blocksize_ilp.closed_form_block_sizes`) instead of
queueing more doomed solves.  After a seeded-jitter cooldown the breaker
goes *half-open* and lets exactly one probe solve through; a probe success
closes it, a probe failure re-opens it with a fresh jitter draw.

The jitter is drawn from a seeded :class:`random.Random` so a fleet of
services tripped by the same incident does not re-probe in lockstep, yet a
given (seed, failure history) replays deterministically — the same stance
as the seeded retry backoff in :mod:`repro.exp.runner`.

Infeasibility is **not** a failure: a solver that answers "no block size
works" has done its job; only timeouts and solver errors count against the
breaker.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with seeded half-open probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown:
        Seconds the breaker stays open before allowing a probe.
    jitter:
        Upper bound of the uniform extra cooldown drawn per trip from the
        seeded RNG (de-synchronises probe storms).
    seed:
        Seed of the jitter RNG; a fixed seed replays deterministically.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        jitter: float = 1.0,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0 or jitter < 0:
            raise ValueError("cooldown and jitter must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.jitter = jitter
        self._clock = clock
        self._rng = random.Random(seed)
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._retry_at = 0.0
        self._probe_inflight = False
        #: lifetime counters, surfaced through ``stats()``
        self.trips = 0
        self.probes = 0
        self.failures = 0
        self.successes = 0

    # -- state -----------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; an open breaker past its cooldown reads half-open."""
        if self._state == OPEN and self._clock() >= self._retry_at:
            self._state = HALF_OPEN
            self._probe_inflight = False
        return self._state

    @property
    def is_open(self) -> bool:
        """True when the exact solver must not be tried (open, or half-open
        with the single probe slot taken)."""
        state = self.state
        if state == CLOSED:
            return False
        if state == OPEN:
            return True
        return self._probe_inflight

    def begin_probe(self) -> bool:
        """Claim the half-open probe slot; at most one caller wins.

        In the closed state every caller may solve, so this returns True
        without claiming anything.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            self.probes += 1
            return True
        return False

    # -- outcomes --------------------------------------------------------
    def record_success(self) -> None:
        """A solve completed (feasible *or* provably infeasible)."""
        self.successes += 1
        self._consecutive_failures = 0
        self._probe_inflight = False
        self._state = CLOSED

    def record_failure(self) -> None:
        """A solve timed out or errored."""
        self.failures += 1
        self._consecutive_failures += 1
        was_half_open = self.state == HALF_OPEN
        self._probe_inflight = False
        if was_half_open or self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self.trips += 1
        self._opened_at = self._clock()
        self._retry_at = self._opened_at + self.cooldown \
            + self._rng.uniform(0.0, self.jitter)

    def stats(self) -> dict[str, Any]:
        """JSON-friendly snapshot for status responses and reports."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "trips": self.trips,
            "probes": self.probes,
            "failures": self.failures,
            "successes": self.successes,
        }
