"""Wire protocol of the admission-control service.

One request and one response per newline-delimited JSON object.  The
protocol is deliberately small — five operations — and *eagerly*
validated: unknown operations and unknown request fields are rejected up
front with a did-you-mean hint (the same stance as fault-plan and
system-config ingestion), so a misspelled field can never be silently
ignored and later mistaken for a default.

Every rejection carries a machine-readable reason in
``response["error"]["code"]`` drawn from :data:`REJECT_CODES`; clients
branch on the code, never on the human-readable message.

Operations
----------
``join``
    Admit a new stream: requires ``tenant``, ``stream``, ``throughput``
    (``[num, den]`` samples/cycle) and ``reconfigure`` (R_s cycles);
    optional ``priority`` (higher sheds later), ``idempotency_key`` and
    ``deadline`` (seconds the client is willing to wait).
``leave``
    Withdraw a stream: requires ``tenant`` and ``stream``; same optional
    fields as ``join``.
``quote``
    Dry-run admission test: same shape as ``join``, answered inline from
    the closed-form Eq. 5 bound without queueing or mutating anything.
``status``
    Read-only service snapshot (streams, load, breaker, counters).
``shutdown``
    Ask the service to stop accepting work and drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import get_close_matches
from fractions import Fraction
from typing import Any

__all__ = [
    "OPS",
    "REJECT_CODES",
    "ProtocolError",
    "Request",
    "parse_request",
    "ok_response",
    "error_response",
]

#: every operation a request may carry
OPS = frozenset({"join", "leave", "quote", "status", "shutdown"})

#: every machine-readable rejection reason a response may carry
REJECT_CODES = frozenset({
    "overloaded",       # admission queue full or stream table at capacity
    "deadline",         # the request's deadline expired before commit
    "bound_exceeded",   # Eq. 5 admission test failed (load >= 1 / infeasible)
    "breaker_open",     # solver unavailable and the conservative bound
                        # cannot certify the request
    "malformed",        # unparseable or eagerly-rejected request
    "internal",         # handler crashed before producing an answer
    "unknown_stream",   # leave/quote for a stream the service doesn't hold
    "already_joined",   # join for a stream name already bound
    "not_owner",        # leave by a tenant that doesn't own the stream
    "last_stream",      # leave that would empty the system
    "shutting_down",    # service is draining
})

#: request fields, per operation (everything beyond ``op``)
_COMMON_FIELDS = {"tenant", "stream", "idempotency_key", "deadline"}
_FIELDS: dict[str, set[str]] = {
    "join": _COMMON_FIELDS | {"throughput", "reconfigure", "priority"},
    "quote": _COMMON_FIELDS | {"throughput", "reconfigure", "priority"},
    "leave": set(_COMMON_FIELDS),
    "status": set(),
    "shutdown": set(),
}


class ProtocolError(ValueError):
    """Raised for requests rejected by eager validation."""


def _did_you_mean(word: str, options) -> str:
    close = get_close_matches(str(word), sorted(options), n=1)
    return f"; did you mean {close[0]!r}?" if close else ""


@dataclass(frozen=True)
class Request:
    """One validated request."""

    op: str
    tenant: str | None = None
    stream: str | None = None
    throughput: Fraction | None = None
    reconfigure: int | None = None
    priority: int = 0
    idempotency_key: str | None = None
    #: seconds the client is willing to wait; ``None`` = no deadline
    deadline: float | None = None

    @property
    def mutates(self) -> bool:
        return self.op in ("join", "leave")


def parse_request(data: Any) -> Request:
    """Validate one decoded JSON request eagerly, or raise :class:`ProtocolError`."""
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(data).__name__}"
        )
    op = data.get("op")
    if op is None:
        raise ProtocolError(f"request needs an 'op' field; one of {sorted(OPS)}")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}{_did_you_mean(op, OPS)} (expected one of "
            f"{sorted(OPS)})"
        )
    allowed = _FIELDS[op]
    unknown = set(data) - allowed - {"op"}
    if unknown:
        hints = "".join(
            _did_you_mean(u, allowed | {"op"}) for u in sorted(unknown)
        )
        raise ProtocolError(
            f"unknown field(s) {sorted(unknown)} for op {op!r}{hints}"
        )

    tenant = data.get("tenant")
    stream = data.get("stream")
    if op in ("join", "leave", "quote"):
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(f"op {op!r} needs a non-empty string 'tenant'")
        if not isinstance(stream, str) or not stream:
            raise ProtocolError(f"op {op!r} needs a non-empty string 'stream'")

    throughput: Fraction | None = None
    reconfigure: int | None = None
    if op in ("join", "quote"):
        tp = data.get("throughput")
        if (not isinstance(tp, (list, tuple)) or len(tp) != 2
                or not all(isinstance(v, int) and v > 0 for v in tp)):
            raise ProtocolError(
                f"op {op!r} needs 'throughput' as a positive [num, den] "
                f"pair, got {tp!r}"
            )
        throughput = Fraction(tp[0], tp[1])
        rc = data.get("reconfigure")
        if not isinstance(rc, int) or rc < 0:
            raise ProtocolError(
                f"op {op!r} needs 'reconfigure' as a non-negative integer "
                f"cycle count, got {rc!r}"
            )
        reconfigure = rc

    priority = data.get("priority", 0)
    if not isinstance(priority, int):
        raise ProtocolError(f"'priority' must be an integer, got {priority!r}")

    key = data.get("idempotency_key")
    if key is not None and (not isinstance(key, str) or not key):
        raise ProtocolError(
            f"'idempotency_key' must be a non-empty string, got {key!r}"
        )

    deadline = data.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool) \
                or deadline <= 0:
            raise ProtocolError(
                f"'deadline' must be a positive number of seconds, got "
                f"{deadline!r}"
            )
        deadline = float(deadline)

    return Request(
        op=op, tenant=tenant, stream=stream, throughput=throughput,
        reconfigure=reconfigure, priority=priority,
        idempotency_key=key, deadline=deadline,
    )


def ok_response(op: str, **body: Any) -> dict[str, Any]:
    """A success response envelope."""
    return {"ok": True, "op": op, **body}


def error_response(op: str | None, code: str, message: str,
                   **extra: Any) -> dict[str, Any]:
    """A structured rejection; ``code`` must be a :data:`REJECT_CODES` member."""
    if code not in REJECT_CODES:
        raise ValueError(f"unknown reject code {code!r}")
    return {
        "ok": False,
        "op": op,
        "error": {"code": code, "message": message, **extra},
    }
