"""Blocking line-JSON client for the admission service.

A thin synchronous wrapper over a TCP socket — the shape a tenant-side
integration (or the CI smoke script) actually wants: open, fire requests,
read structured answers, no asyncio required on the client side.

:func:`smoke_session` is the scripted CI exercise: join, duplicate-join,
quote, overload probing, leave, and shutdown, asserting the structured
reject codes along the way.  It returns a JSON-friendly summary and is
what ``repro serve --smoke`` runs against its own freshly-bound server.
"""

from __future__ import annotations

import json
import socket
from typing import Any

__all__ = ["ServeClient", "smoke_session"]


class ServeClient:
    """One blocking connection to a running admission service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, block for its response object."""
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _expect(summary: list, name: str, ok: bool, detail: str = "") -> bool:
    summary.append({"check": name, "ok": bool(ok), "detail": detail})
    return bool(ok)


def smoke_session(host: str, port: int, *,
                  shutdown: bool = True) -> dict[str, Any]:
    """Scripted join/overload/leave exercise against a live server.

    Returns ``{"ok": bool, "checks": [...]}`` — every check names the
    behaviour it pins (structured reject codes included), so a CI failure
    reads as *which* contract broke, not just a non-zero exit.
    """
    checks: list[dict[str, Any]] = []
    ok = True
    with ServeClient(host, port) as c:
        status = c.request({"op": "status"})
        ok &= _expect(checks, "status.ok", status.get("ok") is True)
        baseline = len(status.get("streams", {}))

        join = c.request({
            "op": "join", "tenant": "smoke", "stream": "smoke-0",
            "throughput": [1, 4096], "reconfigure": 16,
            "idempotency_key": "smoke-join-0",
        })
        ok &= _expect(checks, "join.admitted", join.get("ok") is True
                      and join.get("admitted") is True, json.dumps(join))
        ok &= _expect(checks, "join.quotes_budget",
                      isinstance(join.get("budget"), int)
                      and join["budget"] > 0)

        retry = c.request({
            "op": "join", "tenant": "smoke", "stream": "smoke-0",
            "throughput": [1, 4096], "reconfigure": 16,
            "idempotency_key": "smoke-join-0",
        })
        ok &= _expect(checks, "join.idempotent_replay",
                      retry.get("replayed") is True
                      and retry.get("transition") == join.get("transition"),
                      json.dumps(retry))

        dup = c.request({
            "op": "join", "tenant": "other", "stream": "smoke-0",
            "throughput": [1, 4096], "reconfigure": 16,
        })
        ok &= _expect(checks, "join.duplicate_rejected",
                      dup.get("ok") is False
                      and dup.get("error", {}).get("code") == "already_joined",
                      json.dumps(dup))

        # an absurd rate must fail the Eq. 5 test with a machine-readable
        # reason (bound_exceeded closed; breaker_open while degraded)
        greedy = c.request({
            "op": "join", "tenant": "smoke", "stream": "smoke-greedy",
            "throughput": [9, 1], "reconfigure": 16,
        })
        ok &= _expect(checks, "join.bound_exceeded",
                      greedy.get("ok") is False
                      and greedy.get("error", {}).get("code")
                      in ("bound_exceeded", "breaker_open"),
                      json.dumps(greedy))

        quote = c.request({
            "op": "quote", "tenant": "smoke", "stream": "smoke-1",
            "throughput": [1, 4096], "reconfigure": 16,
        })
        ok &= _expect(checks, "quote.answers", quote.get("ok") is True
                      and "admit" in quote, json.dumps(quote))

        malformed = c.request({"op": "jion"})
        ok &= _expect(checks, "malformed.did_you_mean",
                      malformed.get("ok") is False
                      and malformed.get("error", {}).get("code") == "malformed"
                      and "join" in malformed.get("error", {}).get("message", ""),
                      json.dumps(malformed))

        not_owner = c.request({"op": "leave", "tenant": "imposter",
                               "stream": "smoke-0"})
        ok &= _expect(checks, "leave.not_owner",
                      not_owner.get("ok") is False
                      and not_owner.get("error", {}).get("code") == "not_owner",
                      json.dumps(not_owner))

        leave = c.request({"op": "leave", "tenant": "smoke",
                           "stream": "smoke-0",
                           "idempotency_key": "smoke-leave-0"})
        ok &= _expect(checks, "leave.ok", leave.get("ok") is True,
                      json.dumps(leave))

        final = c.request({"op": "status"})
        ok &= _expect(checks, "status.restored",
                      len(final.get("streams", {})) == baseline,
                      json.dumps(sorted(final.get("streams", {}))))
        fingerprint = final.get("fingerprint")

        if shutdown:
            down = c.request({"op": "shutdown"})
            ok &= _expect(checks, "shutdown.ack", down.get("ok") is True)

    return {"ok": ok, "checks": checks, "fingerprint": fingerprint}
