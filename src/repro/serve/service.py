"""The multi-tenant admission-control service.

The paper's Eq. 5 bound *is* an online admission test: a stream set is
schedulable iff Algorithm 1 finds block sizes with ``η_s / γ_s ≥ μ_s`` for
every stream.  :class:`AdmissionService` turns that one-shot test into a
long-running allocator in the UltraShare mould: many tenants concurrently
ask to join and leave streams, the service batches compatible requests
into single mode transitions (the same freeze→re-solve→reprogram shape
:class:`repro.arch.reconfig.ReconfigurationManager` executes on the
cycle-level model), and every answer carries the Eq. 5 verdict plus a
closed-form transition-budget quote.

Failure envelope — the robustness machinery is the point, not an add-on:

* **bounded admission queue** — joins/leaves past ``queue_depth`` are
  rejected immediately with ``overloaded`` instead of queueing unboundedly;
* **per-request deadlines** — a request whose deadline lapses before its
  batch commits is rejected with ``deadline``, and a transition never
  includes an expired request (no half-applied state: all mutations happen
  in one synchronous commit step after every check has passed);
* **circuit breaker on the solve path** — repeated solver timeouts open
  the breaker (:mod:`repro.serve.breaker`); while open, requests are
  served from the conservative closed-form Eq. 5 bound
  (:func:`repro.core.blocksize_ilp.closed_form_block_sizes`), and joins
  the conservative bound cannot certify are rejected ``breaker_open``;
* **graceful shedding** — when admission would fail, or the committed
  load crosses ``shed_watermark``, the lowest-priority streams are shed
  (the :class:`repro.sim.faults.AdmissionController` pause policy, applied
  permanently at the service level);
* **idempotency keys** — retried joins/leaves are applied exactly once;
  the response recorded at commit time is replayed to any retry, so even
  a handler crash *between* commit and response cannot double-apply;
* **solve coalescing** — identical in-flight solves (a thundering herd of
  quotes, or quotes racing a transition) share one solver call through a
  per-fingerprint future, backed by the sharded, LRU-bounded
  :class:`repro.exp.cache.ShardedSolverCache`.

Every applied transition is journaled; :func:`replay_journal` rebuilds the
final system bit-identically from the journal alone (the crash-recovery
path), and :func:`journal_to_fault_plan` projects a journal onto the
cycle-level simulator as a churn plan for the reconfiguration manager.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, replace
from fractions import Fraction
from functools import partial
from typing import Any, Callable

from ..core.blocksize_ilp import (
    BlockSizeResult,
    closed_form_block_sizes,
    resolve_block_sizes,
    sharing_load,
    system_fingerprint,
)
from ..core.config_io import system_to_dict
from ..core.conformance import calibrated_system
from ..core.params import GatewaySystem, ParameterError, StreamSpec
from ..core.timing import block_round_length, gamma
from ..exp.cache import ShardedSolverCache
from ..ilp import SolverError
from ..sim.faults import STREAM_JOIN, STREAM_LEAVE, FaultPlan, FaultSpec
from .breaker import OPEN, CircuitBreaker
from .chaos import InjectedCrash, ServeChaos
from .protocol import (
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
)

__all__ = [
    "AdmissionService",
    "ReplayError",
    "replay_journal",
    "journal_to_fault_plan",
    "state_fingerprint",
]

#: reject codes safe to latch under an idempotency key — the answer would
#: be the same on any retry; transient conditions (overloaded, deadline,
#: internal, breaker_open) must stay retryable
_DEFINITIVE_REJECTS = frozenset(
    {"bound_exceeded", "already_joined", "unknown_stream", "not_owner",
     "last_stream"}
)

#: baseline (config-file) streams join with this priority unless shed
#: explicitly; real tenants default to 0, so the baseline sheds last
BASELINE_PRIORITY = 1_000_000
BASELINE_TENANT = "__baseline__"


class ReplayError(ValueError):
    """Raised when a journal does not replay onto its recorded fingerprints."""


def state_fingerprint(system: GatewaySystem) -> str:
    """SHA-256 over the canonical JSON of the full assigned system.

    This is the service's *state* identity — unlike
    :func:`~repro.core.blocksize_ilp.system_fingerprint` it covers the
    block sizes, so two services agree on it only if their entire mode
    (stream set, costs **and** η assignment) is bit-identical.
    """
    blob = json.dumps(system_to_dict(system), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class _Session:
    """One admitted stream's ownership record."""

    stream: str
    tenant: str
    priority: int
    #: index of the transition that admitted it (−1 for baseline streams)
    joined_at: int

    def to_dict(self) -> dict[str, Any]:
        return {"stream": self.stream, "tenant": self.tenant,
                "priority": self.priority, "joined_at": self.joined_at}


@dataclass
class _Pending:
    """One queued join/leave awaiting its batch."""

    req: Request
    future: asyncio.Future
    enqueued_at: float
    deadline_at: float | None

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now > self.deadline_at


class AdmissionService:
    """Long-running multi-tenant admission control over Eq. 5.

    Parameters
    ----------
    system:
        The baseline mode.  Streams without block sizes are solved at
        construction (synchronously); an infeasible baseline raises
        :class:`~repro.core.params.ParameterError`.
    queue_depth:
        Bound on queued (accepted-but-uncommitted) join/leave requests;
        beyond it, requests are rejected ``overloaded``.
    batch_max:
        Most requests folded into one mode transition.
    max_streams:
        Hard cap on concurrently admitted streams (bounded state).
    solver:
        Override for the exact solve: ``f(candidate, previous) ->
        BlockSizeResult`` (sync or async).  Default runs
        :func:`resolve_block_sizes` on a thread so it can be timed out.
    solver_timeout:
        Seconds an exact solve may take before it counts as a breaker
        failure and the request degrades to the closed-form answer.
    breaker:
        The :class:`CircuitBreaker` guarding the solve path.
    cache:
        A :class:`ShardedSolverCache`; shared across quotes/transitions.
    eta_max:
        Cap on any certified block size (C-FIFO headroom); answers needing
        a larger η are rejected.
    shed_watermark:
        Committed-load threshold above which lowest-priority streams are
        proactively shed.
    breaker_load_limit:
        Highest candidate load the *conservative* path will certify; above
        it (while the exact solver is unavailable) joins are rejected
        ``breaker_open``.
    chaos:
        Optional :class:`ServeChaos` fault-injection policy (tests/soak).
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        system: GatewaySystem,
        *,
        backend: str = "scipy",
        c1_mode: str = "sum",
        queue_depth: int = 128,
        batch_max: int = 8,
        max_streams: int = 1024,
        solver: Callable[..., Any] | None = None,
        solver_timeout: float = 5.0,
        breaker: CircuitBreaker | None = None,
        cache: ShardedSolverCache | None = None,
        eta_max: int | None = 65536,
        shed_watermark: Fraction = Fraction(9, 10),
        breaker_load_limit: Fraction = Fraction(17, 20),
        reprogram_words: int = 4,
        bus_word_time: int = 2,
        transition_slack: int = 512,
        idempotency_capacity: int = 65536,
        chaos: ServeChaos | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_depth < 1 or batch_max < 1 or max_streams < 1:
            raise ParameterError(
                "queue_depth, batch_max and max_streams must be >= 1"
            )
        self.backend = backend
        self.c1_mode = c1_mode
        self.queue_depth = queue_depth
        self.batch_max = batch_max
        self.max_streams = max_streams
        self.solver_timeout = solver_timeout
        self.eta_max = eta_max
        self.shed_watermark = shed_watermark
        self.breaker_load_limit = breaker_load_limit
        self.reprogram_words = int(reprogram_words)
        self.bus_word_time = int(bus_word_time)
        self.transition_slack = int(transition_slack)
        self.idempotency_capacity = idempotency_capacity
        self.breaker = breaker or CircuitBreaker()
        self.cache = cache or ShardedSolverCache()
        self.chaos = chaos
        self._solver = solver
        self._clock = clock

        if any(s.block_size is None for s in system.streams):
            result = resolve_block_sizes(system, backend=backend,
                                         c1_mode=c1_mode, eta_max=eta_max)
            system = system.with_block_sizes(result.block_sizes)
        else:
            result = BlockSizeResult(
                block_sizes={s.name: s.block_size for s in system.streams},
                objective=sum(s.block_size for s in system.streams),
                feasible=True, backend="given", load=sharing_load(system),
                fingerprint=system_fingerprint(system, c1_mode=c1_mode),
            )
        #: the baseline mode, kept for journal replay
        self.initial_system = system
        self.system = system
        self._result = result

        self._sessions: dict[str, _Session] = {
            s.name: _Session(s.name, BASELINE_TENANT, BASELINE_PRIORITY, -1)
            for s in system.streams
        }
        #: applied transitions, in commit order (the journal)
        self.transitions: list[dict[str, Any]] = []
        #: streams shed by the degradation policy, in shed order
        self.shed_log: list[dict[str, Any]] = []
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue(maxsize=queue_depth)
        self._carry: _Pending | None = None
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._idem: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._idem_inflight: dict[str, _Pending] = {}
        self._worker_task: asyncio.Task | None = None
        self._running = False
        self._draining = False
        #: set when a client asked for shutdown (the server layer awaits it)
        self.shutdown_requested = asyncio.Event()
        self.counters: dict[str, Any] = {
            "admitted": 0,
            "left": 0,
            "rejected": Counter(),
            "transitions": 0,
            "sheds": 0,
            "coalesced_solves": 0,
            "solver_timeouts": 0,
            "handler_crashes": 0,
            "idempotent_replays": 0,
            "quotes": 0,
        }

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "AdmissionService":
        """Spawn the batch worker (idempotent)."""
        if not self._running:
            self._running = True
            self._worker_task = asyncio.get_running_loop().create_task(
                self._worker(), name="admission-batch-worker"
            )
        return self

    async def stop(self) -> None:
        """Drain: reject queued work as ``shutting_down`` and join the worker."""
        if not self._running:
            return
        self._running = False
        self._draining = True
        # unblock the worker's queue.get with a sentinel
        try:
            self._queue.put_nowait(None)  # type: ignore[arg-type]
        except asyncio.QueueFull:
            pass
        if self._worker_task is not None:
            await self._worker_task
            self._worker_task = None
        for p in self._drain_pending():
            self._finish(p, error_response(
                p.req.op, "shutting_down", "service is draining"))

    def _drain_pending(self) -> list[_Pending]:
        drained: list[_Pending] = []
        if self._carry is not None:
            drained.append(self._carry)
            self._carry = None
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                drained.append(item)
        return drained

    async def __aenter__(self) -> "AdmissionService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- derived views ---------------------------------------------------
    @property
    def load(self) -> Fraction:
        """Committed aggregate load ``c0·Σμ`` of the current mode."""
        return sharing_load(self.system)

    def fingerprint(self) -> str:
        """The current mode's :func:`state_fingerprint`."""
        return state_fingerprint(self.system)

    def journal(self) -> list[dict[str, Any]]:
        """A deep copy of every applied transition, in commit order."""
        return json.loads(json.dumps(self.transitions))

    def status(self) -> dict[str, Any]:
        return ok_response(
            "status",
            streams={name: {
                **s.to_dict(),
                "eta": self.system.stream(name).block_size,
            } for name, s in sorted(self._sessions.items())},
            load=float(self.load),
            load_exact=[self.load.numerator, self.load.denominator],
            queue_depth=self._queue.qsize(),
            queue_capacity=self.queue_depth,
            breaker=self.breaker.stats(),
            transitions=len(self.transitions),
            shed=list(self.shed_log),
            fingerprint=self.fingerprint(),
            counters={**self.counters,
                      "rejected": dict(self.counters["rejected"])},
            cache=self.cache.stats(),
        )

    # -- request entry point ---------------------------------------------
    async def submit(self, raw: Any) -> dict[str, Any]:
        """Handle one decoded request; always returns a response dict."""
        try:
            req = parse_request(raw)
        except ProtocolError as exc:
            self.counters["rejected"]["malformed"] += 1
            return error_response(
                raw.get("op") if isinstance(raw, dict) else None,
                "malformed", str(exc),
            )
        if req.op == "status":
            return self.status()
        if req.op == "shutdown":
            self._draining = True
            self.shutdown_requested.set()
            return ok_response("shutdown", draining=True)
        if req.op == "quote":
            self.counters["quotes"] += 1
            return await self._quote(req)

        # join / leave
        key = req.idempotency_key
        if key is not None:
            recorded = self._idem.get(key)
            if recorded is not None:
                self.counters["idempotent_replays"] += 1
                return {**recorded, "replayed": True}
            inflight = self._idem_inflight.get(key)
            if inflight is not None:
                # concurrent retry of an in-flight request: share the outcome
                self.counters["idempotent_replays"] += 1
                return await asyncio.shield(inflight.future)
        if self._draining or not self._running:
            self.counters["rejected"]["shutting_down"] += 1
            return error_response(req.op, "shutting_down",
                                  "service is draining")
        now = self._clock()
        pending = _Pending(
            req=req,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline_at=None if req.deadline is None else now + req.deadline,
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.counters["rejected"]["overloaded"] += 1
            return error_response(
                req.op, "overloaded",
                f"admission queue full ({self.queue_depth} pending)",
                queue_depth=self.queue_depth,
            )
        if key is not None:
            self._idem_inflight[key] = pending
        return await pending.future

    # -- the batch worker ------------------------------------------------
    async def _worker(self) -> None:
        while self._running:
            first = self._carry
            self._carry = None
            if first is None:
                first = await self._queue.get()
            if first is None:  # stop sentinel
                break
            batch = [first]
            targets = {first.req.stream}
            while len(batch) < self.batch_max:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    self._running = False
                    break
                if nxt.req.stream in targets:
                    # two requests for the same stream cannot share a
                    # transition; hold the second for the next batch
                    self._carry = nxt
                    break
                targets.add(nxt.req.stream)
                batch.append(nxt)
            await self._process_batch(batch)

    async def _process_batch(self, batch: list[_Pending]) -> None:
        try:
            await self._run_batch(batch)
        except InjectedCrash as exc:
            self._crash_batch(batch, exc)
        except Exception as exc:  # never let one batch kill the worker
            self._crash_batch(batch, exc)

    def _crash_batch(self, batch: list[_Pending], exc: Exception) -> None:
        self.counters["handler_crashes"] += 1
        for p in batch:
            if not p.future.done():
                self._finish(p, error_response(
                    p.req.op, "internal",
                    f"handler crashed ({exc}); safe to retry",
                ))

    async def _run_batch(self, batch: list[_Pending]) -> None:
        live: list[_Pending] = []
        for p in batch:
            err = self._screen(p)
            if err is not None:
                self._finish(p, err)
            else:
                live.append(p)
        if not live:
            return
        if self.chaos is not None:
            self.chaos.crash_point("pre")
        if len(live) == 1:
            await self._apply(live, allow_reject=True)
        elif not await self._apply(live, allow_reject=False):
            # the combined transition is infeasible as a whole; degrade to
            # per-request transitions so independently-admissible requests
            # are not punished for sharing a batch with a doomed one
            for p in live:
                if not p.future.done():
                    await self._apply([p], allow_reject=True)

    # -- screening -------------------------------------------------------
    def _screen(self, p: _Pending) -> dict[str, Any] | None:
        """Validate one request against committed state; an error response
        means it never reaches a transition."""
        req = p.req
        if p.expired(self._clock()):
            self.counters["rejected"]["deadline"] += 1
            return error_response(req.op, "deadline",
                                  "deadline expired before processing")
        if req.op == "join":
            if req.stream in self._sessions:
                self.counters["rejected"]["already_joined"] += 1
                return error_response(
                    req.op, "already_joined",
                    f"stream {req.stream!r} is already admitted",
                )
            if len(self._sessions) >= self.max_streams:
                self.counters["rejected"]["overloaded"] += 1
                return error_response(
                    req.op, "overloaded",
                    f"stream table full ({self.max_streams} streams)",
                    max_streams=self.max_streams,
                )
        else:  # leave
            session = self._sessions.get(req.stream)
            if session is None:
                self.counters["rejected"]["unknown_stream"] += 1
                return error_response(
                    req.op, "unknown_stream",
                    f"stream {req.stream!r} is not admitted",
                )
            if session.tenant != req.tenant:
                self.counters["rejected"]["not_owner"] += 1
                return error_response(
                    req.op, "not_owner",
                    f"stream {req.stream!r} belongs to tenant "
                    f"{session.tenant!r}",
                )
            if len(self._sessions) == 1:
                self.counters["rejected"]["last_stream"] += 1
                return error_response(
                    req.op, "last_stream",
                    "cannot remove the last stream",
                )
        return None

    # -- transitions -----------------------------------------------------
    def _candidate(self, group: list[_Pending],
                   minus: tuple[str, ...] = ()) -> GatewaySystem:
        streams: list[StreamSpec] = [
            s for s in self.system.streams
            if s.name not in minus
        ]
        for p in group:
            if p.req.op == "join":
                streams.append(StreamSpec(
                    p.req.stream, p.req.throughput, p.req.reconfigure))
            else:
                streams = [s for s in streams if s.name != p.req.stream]
        return replace(self.system, streams=tuple(streams))

    async def _apply(self, group: list[_Pending], allow_reject: bool) -> bool:
        """Solve and commit one transition for ``group``.

        Returns False (without answering anyone) when the transition is
        rejected and ``allow_reject`` is False — the caller retries the
        requests individually.
        """
        now = self._clock()
        expired = [p for p in group if p.expired(now)]
        for p in expired:
            self.counters["rejected"]["deadline"] += 1
            self._finish(p, error_response(
                p.req.op, "deadline", "deadline expired before commit"))
        group = [p for p in group if p not in expired]
        if not group:
            return True

        sheds: tuple[str, ...] = ()
        candidate = self._candidate(group)
        verdict = await self._solve_shared(candidate)
        if verdict[0] == "reject":
            joins = [p for p in group if p.req.op == "join"]
            if len(group) == 1 and joins:
                shed_verdict = await self._try_shed_assisted(joins[0])
                if shed_verdict is not None:
                    sheds, candidate, verdict = shed_verdict
            if verdict[0] == "reject":
                if not allow_reject:
                    return False
                _tag, code, message = verdict
                for p in group:
                    self.counters["rejected"][code] += 1
                    self._finish(p, error_response(p.req.op, code, message))
                return True

        _tag, result, path = verdict
        # the solve awaited; deadlines may have lapsed meanwhile — an
        # expired request must not ride into the commit, so drop it and
        # re-run the (smaller) transition
        now = self._clock()
        if any(p.expired(now) for p in group):
            for p in group:
                if p.expired(now):
                    self.counters["rejected"]["deadline"] += 1
                    self._finish(p, error_response(
                        p.req.op, "deadline", "deadline expired during solve"))
            remaining = [p for p in group if not p.future.done()]
            if not remaining:
                return True
            return await self._apply(remaining, allow_reject)

        responses = self._commit(candidate, result, path, group, sheds,
                                 via="batch")
        if self.chaos is not None:
            # the canonical double-apply trap: crash *after* the commit,
            # *before* the responses — the transition is journaled and the
            # idempotency store already holds the answers, so retries
            # observe exactly-once semantics
            self.chaos.crash_point("post")
        # watermark maintenance runs before the responses resolve so a
        # client observing its own answer sees the post-shed state; the
        # committed answers are already latched, so a crash inside the
        # shed solve still yields exactly-once retries
        await self._proactive_shed(exempt={p.req.stream for p in group})
        for p, resp in responses:
            self._finish(p, resp, already_latched=True)
        return True

    async def _try_shed_assisted(
        self, p: _Pending
    ) -> tuple[tuple[str, ...], GatewaySystem, tuple] | None:
        """Make room for a higher-priority join by shedding lower priority.

        Victims are the currently-admitted streams with strictly lower
        priority, worst first; the first prefix whose removal makes the
        join feasible wins.  Returns None when no shedding helps.
        """
        victims = self._shed_order(max_priority=p.req.priority)
        for k in range(1, len(victims) + 1):
            minus = tuple(v.stream for v in victims[:k])
            candidate = self._candidate([p], minus=minus)
            verdict = await self._solve_shared(candidate)
            if verdict[0] == "ok":
                return minus, candidate, verdict
        return None

    def _shed_order(self, max_priority: int | None = None) -> list[_Session]:
        """Shed candidates, worst first: lowest priority, newest joiner."""
        sessions = [
            s for s in self._sessions.values()
            if max_priority is None or s.priority < max_priority
        ]
        sessions.sort(key=lambda s: (s.priority, -s.joined_at))
        return sessions

    async def _proactive_shed(self, exempt: set[str]) -> None:
        """Shed lowest-priority streams while the committed load sits above
        the watermark (the AdmissionController policy, service-level).

        Streams of the transition that just committed are exempt — they
        paid for admission under Eq. 5 and are not immediately evicted.
        """
        while self.load > self.shed_watermark and len(self._sessions) > 1:
            order = [s for s in self._shed_order() if s.stream not in exempt]
            if not order:
                return
            victim = order[0]
            candidate = self._candidate([], minus=(victim.stream,))
            verdict = await self._solve_shared(candidate)
            if verdict[0] != "ok":
                return
            _tag, result, path = verdict
            self._commit(candidate, result, path, [], (victim.stream,),
                         via="shed")

    def _commit(
        self,
        candidate: GatewaySystem,
        result: BlockSizeResult,
        path: str,
        group: list[_Pending],
        sheds: tuple[str, ...],
        via: str,
    ) -> list[tuple[_Pending, dict[str, Any]]]:
        """Atomically apply one transition: single synchronous step, no
        awaits — a crash before this ran leaves no trace, a crash after it
        finds the journal and idempotency store already consistent."""
        outgoing = self.system
        new_system = candidate.with_block_sizes(result.block_sizes)
        index = len(self.transitions)
        budget, words = self._budget_quote(outgoing, len(new_system.streams))
        applied: list[dict[str, Any]] = []
        for p in group:
            req = p.req
            if req.op == "join":
                applied.append({
                    "op": "join", "stream": req.stream, "tenant": req.tenant,
                    "throughput": [req.throughput.numerator,
                                   req.throughput.denominator],
                    "reconfigure": req.reconfigure,
                    "priority": req.priority,
                })
            else:
                applied.append({"op": "leave", "stream": req.stream,
                                "tenant": req.tenant})

        self.system = new_system
        self._result = replace(
            result,
            fingerprint=system_fingerprint(new_system, c1_mode=self.c1_mode),
        )
        for name in sheds:
            session = self._sessions.pop(name)
            self.shed_log.append({"stream": name, "tenant": session.tenant,
                                  "priority": session.priority,
                                  "transition": index})
            self.counters["sheds"] += 1
        for p in group:
            if p.req.op == "join":
                self._sessions[p.req.stream] = _Session(
                    p.req.stream, p.req.tenant, p.req.priority, index)
                self.counters["admitted"] += 1
            else:
                self._sessions.pop(p.req.stream, None)
                self.counters["left"] += 1
        load = sharing_load(new_system)
        entry = {
            "index": index,
            "via": via,
            "applied": applied,
            "shed": list(sheds),
            "block_sizes": dict(result.block_sizes),
            "solver": path,
            "load": [load.numerator, load.denominator],
            "budget": budget,
            "bus_words": words,
            "fingerprint": state_fingerprint(new_system),
        }
        self.transitions.append(entry)
        self.counters["transitions"] += 1

        responses: list[tuple[_Pending, dict[str, Any]]] = []
        for p in group:
            resp = self._build_response(p.req, entry, new_system)
            if p.req.idempotency_key is not None:
                self._latch(p.req.idempotency_key, resp)
            responses.append((p, resp))
        return responses

    def _build_response(self, req: Request, entry: dict[str, Any],
                        system: GatewaySystem) -> dict[str, Any]:
        common = {
            "stream": req.stream,
            "transition": entry["index"],
            "budget": entry["budget"],
            "solver": entry["solver"],
            "load": entry["load"],
        }
        if req.op == "join":
            eta = entry["block_sizes"][req.stream]
            g = gamma(system, req.stream)
            guaranteed = Fraction(eta, g)
            return ok_response(
                "join", admitted=True, eta=eta, gamma=g,
                guaranteed=[guaranteed.numerator, guaranteed.denominator],
                **common,
            )
        return ok_response("leave", **common)

    def _budget_quote(self, outgoing: GatewaySystem,
                      streams_after: int) -> tuple[int, int]:
        """Closed-form transition budget: one worst-case block round of the
        outgoing mode (its calibrated Eq. 4 rotation) plus the serialized
        config-bus reprogramming time plus slack — the same quote the
        cycle-level :class:`~repro.arch.reconfig.ReconfigurationManager`
        holds its measured transitions to."""
        words = self.reprogram_words * max(1, streams_after)
        budget = (block_round_length(calibrated_system(outgoing))
                  + words * self.bus_word_time + self.transition_slack)
        return budget, words

    # -- solving ---------------------------------------------------------
    async def _solve_shared(self, candidate: GatewaySystem) -> tuple:
        """Memoized, coalesced solve; never raises through shared futures.

        Returns ``("ok", BlockSizeResult, path)`` or
        ``("reject", code, message)``.
        """
        fp = system_fingerprint(candidate, c1_mode=self.c1_mode)
        cached = self.cache.get(fp)
        if cached is not None:
            return ("ok", cached, "memo")
        shared = self._inflight.get(fp)
        if shared is not None:
            self.counters["coalesced_solves"] += 1
            return await asyncio.shield(shared)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[fp] = fut
        try:
            verdict = await self._solve_uncoalesced(candidate, fp)
        except BaseException:
            if not fut.done():
                fut.set_result(("reject", "internal", "solve crashed"))
            raise
        else:
            if not fut.done():
                fut.set_result(verdict)
            return verdict
        finally:
            self._inflight.pop(fp, None)

    async def _solve_uncoalesced(self, candidate: GatewaySystem,
                                 fp: tuple) -> tuple:
        breaker = self.breaker
        if breaker.state == OPEN or not breaker.begin_probe():
            return self._conservative(candidate, fp)

        async def attempt() -> BlockSizeResult:
            if self.chaos is not None:
                await self.chaos.maybe_stall_solve()
            return await self._call_solver(candidate)

        try:
            result = await asyncio.wait_for(attempt(), self.solver_timeout)
        except (asyncio.TimeoutError, SolverError):
            breaker.record_failure()
            self.counters["solver_timeouts"] += 1
            # degrade this request rather than failing it: the closed-form
            # answer is valid, just not minimal
            return self._conservative(candidate, fp)
        except ParameterError as exc:
            # infeasibility is an *answer*, not a solver failure
            breaker.record_success()
            return ("reject", "bound_exceeded", str(exc))
        breaker.record_success()
        self.cache.put(fp, result)
        path = "warm" if result.warm_start else "ilp"
        return ("ok", result, path)

    def _conservative(self, candidate: GatewaySystem, fp: tuple) -> tuple:
        """The closed-form Eq. 5 answer served while the solver is out."""
        load = sharing_load(candidate)
        if load >= 1:
            return ("reject", "bound_exceeded",
                    f"aggregate load c0*sum(mu) = {float(load):.4f} >= 1")
        if load > self.breaker_load_limit:
            return ("reject", "breaker_open",
                    f"solver unavailable and load {float(load):.4f} exceeds "
                    f"the conservative certification limit "
                    f"{float(self.breaker_load_limit):.2f}")
        sizes = closed_form_block_sizes(candidate, c1_mode=self.c1_mode,
                                        eta_max=self.eta_max)
        if sizes is None:
            return ("reject", "breaker_open",
                    "solver unavailable and the closed-form bound cannot "
                    "certify this request")
        result = BlockSizeResult(
            block_sizes=sizes, objective=sum(sizes.values()), feasible=True,
            backend="closed-form", load=load, fingerprint=fp,
        )
        return ("ok", result, "closed-form")

    async def _call_solver(self, candidate: GatewaySystem) -> BlockSizeResult:
        fn = self._solver
        previous = self._result
        if fn is None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, partial(
                resolve_block_sizes, candidate, previous=previous,
                backend=self.backend, c1_mode=self.c1_mode,
                eta_max=self.eta_max,
            ))
        out = fn(candidate, previous)
        if asyncio.iscoroutine(out):
            out = await out
        return out

    # -- quotes ----------------------------------------------------------
    async def _quote(self, req: Request) -> dict[str, Any]:
        """Dry-run admission: the Eq. 5 verdict and budget, no mutation."""
        if req.stream in self._sessions:
            return ok_response("quote", admit=False, reason="already_joined",
                               stream=req.stream)
        candidate = self._candidate_for_quote(req)
        verdict = await self._solve_shared(candidate)
        if verdict[0] == "reject":
            _tag, code, message = verdict
            return ok_response("quote", admit=False, reason=code,
                               message=message, stream=req.stream)
        _tag, result, path = verdict
        budget, _words = self._budget_quote(
            self.system, len(candidate.streams))
        assigned = candidate.with_block_sizes(result.block_sizes)
        eta = result.block_sizes[req.stream]
        g = gamma(assigned, req.stream)
        guaranteed = Fraction(eta, g)
        load = sharing_load(candidate)
        return ok_response(
            "quote", admit=True, stream=req.stream, eta=eta, gamma=g,
            guaranteed=[guaranteed.numerator, guaranteed.denominator],
            budget=budget, solver=path,
            load=[load.numerator, load.denominator],
        )

    def _candidate_for_quote(self, req: Request) -> GatewaySystem:
        streams = (*self.system.streams,
                   StreamSpec(req.stream, req.throughput, req.reconfigure))
        return replace(self.system, streams=streams)

    # -- bookkeeping -----------------------------------------------------
    def _latch(self, key: str, response: dict[str, Any]) -> None:
        self._idem[key] = response
        self._idem.move_to_end(key)
        while len(self._idem) > self.idempotency_capacity:
            self._idem.popitem(last=False)

    def _finish(self, p: _Pending, response: dict[str, Any],
                already_latched: bool = False) -> None:
        key = p.req.idempotency_key
        if key is not None:
            self._idem_inflight.pop(key, None)
            if not already_latched and not response.get("ok") \
                    and response["error"]["code"] in _DEFINITIVE_REJECTS:
                self._latch(key, response)
        if not p.future.done():
            p.future.set_result(response)


# ---------------------------------------------------------------------------
# journal replay & simulator projection
# ---------------------------------------------------------------------------

def replay_journal(
    initial_system: GatewaySystem,
    journal: list[dict[str, Any]],
) -> GatewaySystem:
    """Rebuild the final mode from the baseline plus the applied journal.

    This is the crash-recovery path: the journal alone (applied requests,
    shed decisions and the committed block sizes) deterministically
    reconstructs the service's state, and every entry's recorded
    fingerprint is re-verified along the way — a divergence raises
    :class:`ReplayError` at the exact transition that drifted.
    """
    system = initial_system
    system.require_block_sizes()
    for entry in journal:
        streams = list(system.streams)
        removed = {op["stream"] for op in entry["applied"]
                   if op["op"] == "leave"}
        removed |= set(entry.get("shed", ()))
        streams = [s for s in streams if s.name not in removed]
        for op in entry["applied"]:
            if op["op"] == "join":
                num, den = op["throughput"]
                streams.append(StreamSpec(
                    op["stream"], Fraction(num, den), op["reconfigure"]))
        system = replace(system, streams=tuple(streams)).with_block_sizes(
            entry["block_sizes"])
        got = state_fingerprint(system)
        if got != entry["fingerprint"]:
            raise ReplayError(
                f"transition {entry['index']} replays to fingerprint "
                f"{got[:16]}..., journal recorded "
                f"{entry['fingerprint'][:16]}..."
            )
    return system


def journal_to_fault_plan(
    journal: list[dict[str, Any]],
    *,
    start_at: int = 1024,
    spacing: int = 4096,
    seed: int = 0,
) -> FaultPlan:
    """Project a service journal onto the cycle-level simulator.

    Every applied (and shed) stream change becomes a churn
    :class:`~repro.sim.faults.FaultSpec` for the
    :class:`~repro.arch.reconfig.ReconfigurationManager`; all requests of
    one service transition share an arming cycle, mirroring how the batch
    committed as a single mode change.  Feed the plan to a
    :class:`repro.api.Scenario` built from the service's
    ``initial_system`` to check the admitted schedule end to end.
    """
    specs: list[FaultSpec] = []
    for i, entry in enumerate(journal):
        at = start_at + i * spacing
        for op in entry["applied"]:
            if op["op"] == "join":
                specs.append(FaultSpec(
                    kind=STREAM_JOIN, at=at, target=op["stream"],
                    params={"throughput": list(op["throughput"]),
                            "reconfigure": op["reconfigure"],
                            "block_size": entry["block_sizes"][op["stream"]]},
                ))
            else:
                specs.append(FaultSpec(
                    kind=STREAM_LEAVE, at=at, target=op["stream"]))
        for name in entry.get("shed", ()):
            specs.append(FaultSpec(kind=STREAM_LEAVE, at=at, target=name))
    return FaultPlan(specs=tuple(specs), seed=seed)
