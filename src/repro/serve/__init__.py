"""Fault-tolerant multi-tenant admission-control service.

The paper's Eq. 5 test decides, offline, whether a stream set fits the
shared accelerator chain.  This package serves that decision *online*:
a stdlib-only (``asyncio``) TCP service where many tenants concurrently
join and leave streams, compatible requests batch into single mode
transitions, and every answer carries the Eq. 5 verdict plus a
transition-budget quote::

    PYTHONPATH=src python -m repro serve examples/configs/two_radios.json

    # from another shell / process
    from repro.serve import ServeClient
    with ServeClient("127.0.0.1", 9178) as c:
        c.request({"op": "join", "tenant": "t0", "stream": "s0",
                   "throughput": [1, 64], "reconfigure": 40})

The failure envelope is explicit — bounded queues (``overloaded``),
per-request deadlines (``deadline``), a circuit breaker over the ILP
solve path (``breaker_open``), priority shedding near the bound, and
idempotency keys for exactly-once retries; see
:class:`~repro.serve.service.AdmissionService`.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import InjectedCrash, ServeChaos
from .client import ServeClient, smoke_session
from .protocol import (
    OPS,
    REJECT_CODES,
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
)
from .server import serve_forever
from .service import (
    AdmissionService,
    ReplayError,
    journal_to_fault_plan,
    replay_journal,
    state_fingerprint,
)

__all__ = [
    "OPS",
    "REJECT_CODES",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "AdmissionService",
    "CircuitBreaker",
    "InjectedCrash",
    "ProtocolError",
    "ReplayError",
    "Request",
    "ServeChaos",
    "ServeClient",
    "error_response",
    "journal_to_fault_plan",
    "ok_response",
    "parse_request",
    "replay_journal",
    "serve_forever",
    "smoke_session",
    "state_fingerprint",
]
