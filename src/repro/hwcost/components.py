"""FPGA hardware-cost database (paper Table I / Fig. 11, Virtex-6).

The published component costs (Table I) are encoded exactly; the per-part
breakdown of the gateway pair (Fig. 11: MicroBlaze, entry-gateway logic,
exit-gateway, FIR+down-sampler, CORDIC) is reconstructed so that the parts
of the entry+exit pair sum to the published pair total — the figure's bars
are only readable approximately, so the split is documented as an estimate
while every Table-I number is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComponentCost", "COMPONENTS", "component", "CostError"]


class CostError(KeyError):
    """Raised for unknown components."""


@dataclass(frozen=True)
class ComponentCost:
    """Resource usage of one hardware component on the Virtex-6."""

    name: str
    slices: int
    luts: int
    source: str  # "table1" (exact) or "fig11-estimate"

    def __add__(self, other: "ComponentCost") -> "ComponentCost":
        return ComponentCost(
            f"{self.name}+{other.name}",
            self.slices + other.slices,
            self.luts + other.luts,
            "derived",
        )

    def __mul__(self, count: int) -> "ComponentCost":
        return ComponentCost(
            f"{count}x{self.name}", self.slices * count, self.luts * count, "derived"
        )

    __rmul__ = __mul__


# Exact Table I entries.
_TABLE1 = [
    ComponentCost("entry_exit_pair", 3788, 4445, "table1"),
    ComponentCost("fir_downsampler", 6512, 10837, "table1"),
    ComponentCost("cordic", 1714, 1882, "table1"),
]

# Fig. 11 breakdown of the pair (estimated split; sums to the pair total).
# "the hardware costs can be mostly attributed to the MicroBlaze processor"
_FIG11 = [
    ComponentCost("microblaze", 2300, 2700, "fig11-estimate"),
    ComponentCost("entry_gateway_logic", 900, 1100, "fig11-estimate"),
    ComponentCost("exit_gateway", 588, 645, "fig11-estimate"),
]

COMPONENTS: dict[str, ComponentCost] = {c.name: c for c in (*_TABLE1, *_FIG11)}

assert (
    sum(c.slices for c in _FIG11) == COMPONENTS["entry_exit_pair"].slices
), "Fig. 11 split must sum to the Table I pair total (slices)"
assert (
    sum(c.luts for c in _FIG11) == COMPONENTS["entry_exit_pair"].luts
), "Fig. 11 split must sum to the Table I pair total (LUTs)"


def component(name: str) -> ComponentCost:
    """Look up a component by name."""
    try:
        return COMPONENTS[name]
    except KeyError:
        raise CostError(
            f"unknown component {name!r}; known: {sorted(COMPONENTS)}"
        ) from None
