"""Shared-vs-non-shared hardware cost comparison (paper Table I, Sec. VI-B).

The demonstrator needs each accelerator type four times (two chains × two
channels).  Without sharing that means four physical instances of each;
with gateways, one of each plus the entry+exit pair.  This module composes
arbitrary such comparisons from the component database and reproduces
Table I exactly for the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .components import ComponentCost, component

__all__ = ["BillOfMaterials", "SharingComparison", "compare_sharing", "paper_table1"]


@dataclass
class BillOfMaterials:
    """A named collection of components with counts."""

    name: str
    items: list[tuple[int, ComponentCost]] = field(default_factory=list)

    def add(self, count: int, comp: ComponentCost | str) -> "BillOfMaterials":
        if isinstance(comp, str):
            comp = component(comp)
        if count < 0:
            raise ValueError("component count cannot be negative")
        self.items.append((count, comp))
        return self

    @property
    def slices(self) -> int:
        return sum(n * c.slices for n, c in self.items)

    @property
    def luts(self) -> int:
        return sum(n * c.luts for n, c in self.items)

    def rows(self) -> list[tuple[str, int, int, int]]:
        """(name, count, slices, luts) rows for report rendering."""
        return [(c.name, n, n * c.slices, n * c.luts) for n, c in self.items]


@dataclass(frozen=True)
class SharingComparison:
    """Result of a shared-vs-duplicated cost comparison."""

    non_shared: BillOfMaterials
    shared: BillOfMaterials

    @property
    def slice_savings(self) -> int:
        return self.non_shared.slices - self.shared.slices

    @property
    def lut_savings(self) -> int:
        return self.non_shared.luts - self.shared.luts

    @property
    def slice_savings_pct(self) -> float:
        return 100.0 * self.slice_savings / self.non_shared.slices

    @property
    def lut_savings_pct(self) -> float:
        return 100.0 * self.lut_savings / self.non_shared.luts

    @property
    def accelerator_reduction_pct(self) -> float:
        """Reduction in accelerator instance count (the paper's 75%)."""
        n_old = sum(n for n, c in self.non_shared.items)
        n_new = sum(
            n for n, c in self.shared.items
            if c.name in {c2.name for _n2, c2 in self.non_shared.items}
        )
        return 100.0 * (n_old - n_new) / n_old

    def table(self) -> str:
        """Render in the shape of the paper's Table I."""
        lines = ["Component                     Slices    LUTs"]
        for name, n, s, l in self.shared.rows():
            lines.append(f"{n}x {name:<25} {s:>7} {l:>7}")
        lines.append(
            f"Non-shared {self.non_shared.name:<17} {self.non_shared.slices:>7} "
            f"{self.non_shared.luts:>7}"
        )
        lines.append(
            f"Shared {self.shared.name:<21} {self.shared.slices:>7} {self.shared.luts:>7}"
        )
        lines.append(
            f"Savings                       {self.slice_savings:>7} {self.lut_savings:>7}"
            f"   ({self.slice_savings_pct:.1f}% / {self.lut_savings_pct:.1f}%)"
        )
        return "\n".join(lines)


def compare_sharing(
    accelerator_counts: dict[str, int],
    shared_counts: dict[str, int] | None = None,
    gateway_pairs: int = 1,
) -> SharingComparison:
    """Compare duplicated accelerators against gateway-shared instances.

    ``accelerator_counts`` maps component names to the instance count a
    non-shared design needs; ``shared_counts`` (default: one of each) to the
    shared design's counts.  The shared design additionally pays for
    ``gateway_pairs`` entry+exit pairs.
    """
    non_shared = BillOfMaterials("duplicated")
    for name, n in sorted(accelerator_counts.items()):
        non_shared.add(n, name)
    shared = BillOfMaterials("with gateways")
    shared.add(gateway_pairs, "entry_exit_pair")
    for name, n in sorted((shared_counts or {k: 1 for k in accelerator_counts}).items()):
        shared.add(n, name)
    return SharingComparison(non_shared, shared)


def paper_table1() -> SharingComparison:
    """The exact Table I configuration: 4×(F+D) + 4×C vs gateways + 1 each."""
    return compare_sharing({"fir_downsampler": 4, "cordic": 4})
