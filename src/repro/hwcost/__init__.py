"""Hardware cost model reproducing the paper's Table I and Fig. 11."""

from .components import COMPONENTS, ComponentCost, CostError, component
from .model import (
    BillOfMaterials,
    SharingComparison,
    compare_sharing,
    paper_table1,
)

__all__ = [
    "BillOfMaterials",
    "COMPONENTS",
    "ComponentCost",
    "CostError",
    "SharingComparison",
    "compare_sharing",
    "component",
    "paper_table1",
]
