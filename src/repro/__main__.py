"""Command-line interface: regenerate the paper's headline numbers.

Usage::

    python -m repro blocksizes [--clock HZ] [--audio HZ] [--margin PCT]
    python -m repro verify
    python -m repro table1
    python -m repro fig8
    python -m repro utilization
    python -m repro schedule [--eta N]

Each subcommand prints one reproduced artefact; together they cover the
evaluation section.  `pytest benchmarks/ --benchmark-only -s` runs the full
harness with assertions.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction


def cmd_blocksizes(args: argparse.Namespace) -> int:
    from .app import PAPER_BLOCK_SIZES, pal_block_sizes

    # e.g. --margin 0.127 (percent) -> rate_margin = 1.00127
    margin = Fraction(1) + Fraction(int(round(args.margin * 10000)), 1_000_000)
    sizes = pal_block_sizes(
        audio_rate=args.audio, clock_hz=args.clock, rate_margin=margin
    )
    print(f"Algorithm-1 block sizes (audio {args.audio} Hz, clock {args.clock} Hz, "
          f"margin {args.margin}%):")
    for name, eta in sorted(sizes.items()):
        print(f"  η[{name}] = {eta}")
    print(f"paper: stage-1 {PAPER_BLOCK_SIZES['stage1']}, "
          f"stage-2 {PAPER_BLOCK_SIZES['stage2']} "
          "(reproduced exactly at --margin 0.127)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .app import pal_block_sizes, pal_gateway_system
    from .core import verify_system

    system = pal_gateway_system().with_block_sizes(pal_block_sizes())
    report = verify_system(system)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_table1(args: argparse.Namespace) -> int:
    from .hwcost import paper_table1

    cmp = paper_table1()
    print(cmp.table())
    print(f"accelerator instances reduced by {cmp.accelerator_reduction_pct:.0f}%")
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    from .dataflow import SDFGraph, min_capacity_for_liveness

    print("Fig. 8b: minimum buffer capacity vs block size (consumer drains 5)")
    for eta in range(1, 6):
        g = SDFGraph("fig8")
        g.add_actor("vA", 1)
        g.add_actor("vB", 5)
        g.add_edge("vA", "vB", production=eta, consumption=5, name="ch")
        alpha = min_capacity_for_liveness(g, "ch")
        print(f"  η={eta}: α={alpha}")
    print("paper: 5, 6, 7, 8, 5 — non-monotone")
    return 0


def cmd_utilization(args: argparse.Namespace) -> int:
    from .app import pal_block_sizes, pal_gateway_system
    from .core import analyze_utilization

    system = pal_gateway_system().with_block_sizes(pal_block_sizes())
    u = analyze_utilization(system)
    print(f"round length            : {u.round_length} cycles")
    print(f"gateway per-sample copy : {float(u.gateway_copy_fraction):.1%}")
    print(f"reconfiguration R_s     : {float(u.reconfig_fraction):.1%}")
    print(f"data movement           : {float(u.data_processing_fraction):.1%} "
          "(paper ≈5%)")
    print(f"state management        : {float(u.state_management_fraction):.1%} "
          "(paper ≈95%)")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    from .core import (
        AcceleratorSpec,
        GatewaySystem,
        StreamSpec,
        build_stream_csdf,
        parametric_schedule,
    )
    from .dataflow import admissible_schedule

    system = GatewaySystem(
        accelerators=(AcceleratorSpec("acc", 2),),
        streams=(StreamSpec("s", Fraction(1, 100), 20, block_size=args.eta),),
        entry_copy=5,
        exit_copy=1,
    )
    print(parametric_schedule(system, "s").describe())
    graph, _info = build_stream_csdf(
        system, "s", producer_period=1, consumer_period=1,
        alpha0=2 * args.eta, alpha3=2 * args.eta, prequeued=2 * args.eta,
    )
    sched = admissible_schedule(graph, iterations=1)
    print()
    print(sched.render())
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Full analysis of a user-supplied gateway system (JSON config)."""
    from pathlib import Path

    from .core import (
        analyze_utilization,
        compute_block_sizes,
        gamma,
        load_system,
        sample_latency_bound,
        sharing_load,
        tau_hat,
        verify_system,
    )

    system = load_system(Path(args.config).read_text())
    load = sharing_load(system)
    print(f"aggregate load c0·Σμ = {float(load):.4f}")
    if load >= 1:
        print("INFEASIBLE: the shared chain cannot serve these rates")
        return 1
    result = compute_block_sizes(system, backend=args.backend)
    assigned = system.with_block_sizes(result.block_sizes)
    print("\nblock sizes (Algorithm 1):")
    for name, eta in result.block_sizes.items():
        print(f"  η[{name}] = {eta}   τ̂ = {tau_hat(assigned, name)}  "
              f"L̂ = {float(sample_latency_bound(assigned, name)):.0f} cycles")
    print(f"rotation γ̂ = {gamma(assigned, assigned.streams[0].name)} cycles")
    u = analyze_utilization(assigned)
    print(f"gateway copy {float(u.gateway_copy_fraction):.1%}, "
          f"reconfig {float(u.reconfig_fraction):.1%}")
    report = verify_system(assigned)
    print()
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="IPDPSW'15 accelerator-sharing reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("blocksizes", help="Algorithm-1 block sizes (PAL app)")
    p.add_argument("--clock", type=int, default=100_000_000)
    p.add_argument("--audio", type=int, default=44_100)
    p.add_argument("--margin", type=float, default=0.0,
                   help="rate margin in percent (0.127 reproduces the paper)")
    p.set_defaults(fn=cmd_blocksizes)

    p = sub.add_parser("verify", help="full verification of the PAL deployment")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("table1", help="Table I cost comparison")
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("fig8", help="Fig. 8 buffer non-monotonicity")
    p.set_defaults(fn=cmd_fig8)

    p = sub.add_parser("utilization", help="Section VI-A utilization split")
    p.set_defaults(fn=cmd_utilization)

    p = sub.add_parser("schedule", help="Fig. 6 schedule (symbolic + concrete)")
    p.add_argument("--eta", type=int, default=6)
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser("analyze", help="analyze a JSON gateway-system config")
    p.add_argument("config", help="path to a system JSON (see repro.core.config_io)")
    p.add_argument("--backend", choices=("scipy", "bnb"), default="scipy")
    p.set_defaults(fn=cmd_analyze)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
